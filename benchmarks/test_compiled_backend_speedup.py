"""Compiled execution backend gate over the PLDS + NPB suite.

Two properties of ``--exec-backend compiled``:

* **Zero drift** — with timing injected to zero, the compiled backend's
  report is byte-for-byte identical to the interpreter's on every
  benchmark: same verdicts, same provenance, same step counts, same
  snapshot digests, same JSON.  This runs at the default schedule
  preset.
* **Wall speedup** — the whole-suite analyze pipeline must run at least
  2.5x faster single-process under the compiled backend.  The timed
  configuration is replay-rich (identity + reverse + 16 random
  schedules) and skips the static pre-filter: the backend's design
  point is compiling each module once and amortizing it across many
  schedule replays (paper §IV-B runs one execution per schedule), so
  the gate measures the pipeline in its replay-bound regime rather
  than one dominated by the shared observer-based profiling stage.
"""

from __future__ import annotations

import time

from conftest import format_table

from repro.benchsuite import ALL_BENCHMARKS
from repro.core import DcaAnalyzer
from repro.core.schedules import ScheduleConfig

MIN_SPEEDUP = 2.5
#: Testing schedules for the timed gate: identity + reverse + 16 randoms.
GATE_RANDOM_SCHEDULES = 16


def _zero():
    return 0.0


def _analyze_suite(exec_backend=None, clock=None, schedules=None,
                   static_filter=True):
    reports = {}
    for bench in ALL_BENCHMARKS:
        analyzer = DcaAnalyzer(
            bench.compile(fresh=True),
            rtol=bench.rtol,
            liveout_policy=bench.liveout_policy,
            clock=clock,
            static_filter=static_filter,
            exec_backend=exec_backend,
            schedules=schedules,
        )
        reports[bench.name] = analyzer.analyze()
    return reports


def test_compiled_backend_zero_drift(capsys):
    interp = _analyze_suite(exec_backend="interp", clock=_zero)
    compiled = _analyze_suite(exec_backend="compiled", clock=_zero)
    rows = []
    for name, report in interp.items():
        other = compiled[name]
        drift = "identical" if report.to_json() == other.to_json() else "DRIFT"
        rows.append((name, len(report.results), report.schedule_executions, drift))
    with capsys.disabled():
        print("\n== Exec backend: interp vs compiled ==")
        print(format_table(("Benchmark", "loops", "executions", "report"), rows))
    drifted = [name for name, *_, drift in rows if drift != "identical"]
    assert not drifted, f"compiled backend drifted on: {drifted}"


def test_compiled_backend_wall_speedup(capsys):
    def gate_config():
        return ScheduleConfig.default(n_random=GATE_RANDOM_SCHEDULES)

    # Warm both paths (pyc, analysis caches) before timing.
    _analyze_suite(exec_backend="compiled", clock=_zero)

    start = time.perf_counter()
    _analyze_suite(
        exec_backend="interp", clock=_zero, schedules=gate_config(),
        static_filter=False,
    )
    interp_s = time.perf_counter() - start

    start = time.perf_counter()
    _analyze_suite(
        exec_backend="compiled", clock=_zero, schedules=gate_config(),
        static_filter=False,
    )
    compiled_s = time.perf_counter() - start

    speedup = interp_s / compiled_s if compiled_s else float("inf")
    with capsys.disabled():
        print(
            "\n== Compiled backend wall speedup: interp %.2fs / compiled %.2fs "
            "= %.2fx (gate %.1fx, %d testing schedules) =="
            % (interp_s, compiled_s, speedup, MIN_SPEEDUP,
               2 + GATE_RANDOM_SCHEDULES)
        )
    assert speedup >= MIN_SPEEDUP, (
        f"--exec-backend compiled delivered only {speedup:.2f}x over the "
        f"suite (interp {interp_s:.2f}s, compiled {compiled_s:.2f}s)"
    )
