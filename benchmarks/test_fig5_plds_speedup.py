"""Fig. 5 — overall speedup from DCA parallelization of PLDS kernels
(treeadd, perimeter, water, ks, spmatmat, BFS, ising).

The executor models DCA's linearize-then-dispatch code generation: the
iterator slice of each kernel stays sequential (``serial_fractions``),
only the payload parallelizes.  Shape: every program speeds up; programs
whose payload dominates (BFS, spmatmat, ising) scale best, pure-traversal
kernels less — the baseline code generators in Table II detect nothing,
so their speedup is 1× by construction.
"""

from conftest import format_table

from repro.benchsuite import FIG5_BENCHMARKS
from repro.core import iterator_fraction
from repro.parallel import MachineModel, ParallelSimulator


def _fig5(dca_reports, detection_contexts):
    rows = []
    for bench in FIG5_BENCHMARKS:
        report = dca_reports[bench.name]
        ctx = detection_contexts[bench.name]
        module = bench.compile(fresh=True)
        commutative = report.commutative_labels()
        flows = ctx.profile.memory_flow_edges() if ctx.profile else {}
        fractions = {}
        for label in commutative:
            func = module.functions[report.loop(label).function]
            fractions[label] = iterator_fraction(
                func, label, memory_flow=flows.get(label)
            )
        sim = ParallelSimulator(module, model=MachineModel(cores=72))
        sp = sim.simulate(commutative, serial_fractions=fractions)
        kernel = bench.table2.kernel_label
        rows.append(
            (
                bench.name,
                f"{sp.speedup:.2f}x",
                f"{fractions.get(kernel, 0.0):.0%}",
                ", ".join(sp.selection.chosen) or "(none)",
            )
        )
    return rows


def test_fig5_plds_speedup(benchmark, dca_reports, detection_contexts, capsys):
    rows = benchmark.pedantic(
        _fig5, args=(dca_reports, detection_contexts), rounds=1, iterations=1
    )
    table = format_table(
        ("Benchmark", "DCA speedup", "Iterator share", "Parallelized"), rows
    )
    with capsys.disabled():
        print("\n== Fig. 5: DCA speedup on PLDS programs (72 cores) ==")
        print(table)

    speedups = {r[0]: float(r[1].rstrip("x")) for r in rows}
    assert all(s >= 1.0 for s in speedups.values())
    # At least the payload-heavy programs must show real speedup.
    assert sum(1 for s in speedups.values() if s > 1.5) >= 4
    assert max(speedups.values()) > 4.0
