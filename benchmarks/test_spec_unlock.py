"""Gate for the commutativity-spec registry's benchmark impact.

Two sides of the same contract:

* **Unlock** — with specs enabled, the order-insensitive-container
  benchmarks (``otter``, ``hash``) flip their chain-building loops from
  non-commutative to commutative, at least one of them decided purely
  statically (``static-specs`` provenance).
* **Zero drift** — on every other benchmark, the specs-on report is
  identical to the specs-off report (modulo wall-clock cost fields):
  declaring specs for containers a program does not use must change
  nothing.
"""

from __future__ import annotations

import pytest

from repro.benchsuite import ALL_BENCHMARKS, by_name
from repro.core import DcaAnalyzer
from repro.core.report import DECIDED_STATIC_SPECS

SPEC_BENCHMARKS = ("otter", "hash")


def _specs_on_report(name):
    bench = by_name(name)
    module = bench.compile(fresh=True)
    return DcaAnalyzer(
        module, rtol=bench.rtol, liveout_policy=bench.liveout_policy,
        specs=True,
    ).analyze()


@pytest.fixture(scope="module")
def specs_on_reports():
    return {b.name: _specs_on_report(b.name) for b in ALL_BENCHMARKS}


def _stable(report):
    """Report serialization with the wall-clock cost fields removed."""
    payload = report.to_dict()
    payload["metrics"].pop("stage_times_ms", None)
    for row in payload["loops"].values():
        del row["cost"]
    return payload


@pytest.mark.parametrize("name", SPEC_BENCHMARKS)
def test_specs_unlock_container_benchmark(name, dca_reports,
                                          specs_on_reports):
    off = dca_reports[name]
    on = specs_on_reports[name]
    assert set(on.results) == set(off.results)

    flipped = [
        label for label in off.results
        if not off.results[label].is_commutative
        and on.results[label].is_commutative
    ]
    regressed = [
        label for label in off.results
        if off.results[label].is_commutative
        and not on.results[label].is_commutative
    ]
    assert flipped, f"{name}: specs unlocked no loop"
    assert not regressed, f"{name}: specs regressed {regressed}"


def test_specs_static_provenance(specs_on_reports):
    """At least one unlocked loop is decided without any execution."""
    static_spec_loops = [
        (name, label)
        for name in SPEC_BENCHMARKS
        for label, result in specs_on_reports[name].results.items()
        if result.serialized_decided_by == DECIDED_STATIC_SPECS
    ]
    assert static_spec_loops


def test_specs_zero_drift_elsewhere(dca_reports, specs_on_reports):
    for bench in ALL_BENCHMARKS:
        if bench.name in SPEC_BENCHMARKS:
            continue
        assert _stable(specs_on_reports[bench.name]) == \
            _stable(dca_reports[bench.name]), \
            f"{bench.name}: specs-on report drifted"


def test_specs_off_never_uses_spec_provenance(dca_reports):
    for name, report in dca_reports.items():
        for label, result in report.results.items():
            assert result.serialized_decided_by != DECIDED_STATIC_SPECS, \
                f"{name}/{label}: spec provenance leaked into specs-off run"
