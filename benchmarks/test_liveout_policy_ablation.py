"""Ablation — live-out verification scope (DESIGN.md §5, items 2 & 3).

Compares the two verification policies on loops whose order sensitivity
lives in different places:

* ``map``              — order-free everywhere: both policies accept;
* ``transient-order``  — scratch memory written order-dependently but
  dead after the loop: *strict already relaxes it* via liveness;
* ``worklist-order``   — a linked worklist whose node order is live after
  the loop but washes out of the eventual program result: only the
  ``eventual`` policy accepts (the paper's BFS top-down-step argument);
* ``observable-order`` — the permutation reaches the printed output:
  both policies must reject.

Also measures the cost (extra executions) of each policy.
"""

from conftest import format_table

from repro import compile_program
from repro.core import DcaAnalyzer

_PROGRAMS = {
    "map": """
func void main() {
  int[] a = new int[12];
  for (int i = 0; i < 12; i = i + 1) { a[i] = i * 3; }
  int s = 0;
  for (int i = 0; i < 12; i = i + 1) { s = s + a[i]; }
  print(s);
}
""",
    "transient-order": """
func void main() {
  int[] scratch = new int[8];
  int s = 0;
  int cur = 0;
  for (int i = 0; i < 8; i = i + 1) {
    scratch[cur] = i;
    cur = (cur + 3) % 8;
    s += i * i;
  }
  print(s);
}
""",
    "worklist-order": """
struct Node { int val; Node* next; }
func void main() {
  int[] a = new int[10];
  for (int i = 0; i < 10; i = i + 1) { a[i] = (i * 7) % 10; }
  Node* bag = null;
  for (int i = 0; i < 10; i = i + 1) {
    if (a[i] % 2 == 0) {
      Node* n = new Node;
      n->val = a[i];
      n->next = bag;
      bag = n;
    }
  }
  int s = 0;
  Node* p = bag;
  while (p) { s = s + p->val; p = p->next; }
  print(s);
}
""",
    "observable-order": """
func void main() {
  int last = 0;
  for (int i = 0; i < 10; i = i + 1) { last = i * 2 + 1; }
  print(last);
}
""",
}

#: Loop of interest per program.
_TARGETS = {
    "map": "main.L0",
    "transient-order": "main.L0",
    "worklist-order": "main.L1",
    "observable-order": "main.L0",
}


def _ablate():
    rows = []
    for name, source in _PROGRAMS.items():
        verdicts = []
        for policy in ("strict", "eventual"):
            module = compile_program(source)
            # Static pre-screen off: the ablation compares the *dynamic*
            # live-out comparison policies, so every loop must reach it.
            report = DcaAnalyzer(
                module, liveout_policy=policy, static_filter=False
            ).analyze()
            result = report.loop(_TARGETS[name])
            verdicts.append(
                "commutative" if result.is_commutative else result.verdict
            )
        rows.append((name, *verdicts))
    return rows


def test_liveout_policy_ablation(benchmark, capsys):
    rows = benchmark.pedantic(_ablate, rounds=1, iterations=1)
    table = format_table(("pattern", "strict", "eventual"), rows)
    with capsys.disabled():
        print("\n== Ablation: live-out verification policy ==")
        print(table)

    data = {r[0]: {"strict": r[1], "eventual": r[2]} for r in rows}
    # Order-free loops pass under both policies.
    assert data["map"]["strict"] == "commutative"
    assert data["map"]["eventual"] == "commutative"
    # Dead scratch is already relaxed by liveness under strict.
    assert data["transient-order"]["strict"] == "commutative"
    # Live worklist ordering: strict rejects, eventual accepts (paper §I).
    assert data["worklist-order"]["strict"] != "commutative"
    assert data["worklist-order"]["eventual"] == "commutative"
    # Observable order sensitivity is rejected by both.
    assert data["observable-order"]["strict"] != "commutative"
    assert data["observable-order"]["eventual"] != "commutative"
