"""Table III — NPB loops reported parallelizable by the static baselines
(IDIOMS, Polly, ICC), their union ("Combined Static"), and DCA.

Paper shape: DCA finds roughly twice the combined static count
(86% vs 44% of all loops); ICC is the strongest static tool; IDIOMS is
narrow but contributes reduction/histogram loops the others miss.
"""

from conftest import format_table

from repro.baselines import combine_static
from repro.benchsuite import NPB_BENCHMARKS


def _table(dca_reports, detection_contexts, detectors):
    rows = []
    totals = [0] * 6
    for bench in NPB_BENCHMARKS:
        ctx = detection_contexts[bench.name]
        report = dca_reports[bench.name]
        per_tool = {
            name: detectors[name].detect(ctx)
            for name in ("idioms", "polly", "icc")
        }
        combined = combine_static(list(per_tool.values()))
        n_loops = len(report.results)
        counts = [
            sum(1 for r in per_tool[name].values() if r.parallel)
            for name in ("idioms", "polly", "icc")
        ]
        n_combined = sum(1 for r in combined.values() if r.parallel)
        dca = len(report.commutative_labels())
        row = (bench.name, n_loops, *counts, n_combined, dca)
        rows.append(row)
        for i, v in enumerate(row[1:]):
            totals[i] += v
    rows.append(("Total", *totals))
    return rows


def test_table3_static_detection(
    benchmark, dca_reports, detection_contexts, detectors, capsys
):
    rows = benchmark.pedantic(
        _table,
        args=(dca_reports, detection_contexts, detectors),
        rounds=1,
        iterations=1,
    )
    table = format_table(
        ("Benchmark", "Loops", "IDIOMS", "Polly", "ICC", "Combined", "DCA"),
        rows,
    )
    with capsys.disabled():
        print("\n== Table III: static detection on NPB ==")
        print(table)
        total = rows[-1]
        print(
            f"Combined static: {total[5]}/{total[1]} "
            f"({100*total[5]/total[1]:.0f}%), DCA: {total[6]}/{total[1]} "
            f"({100*total[6]/total[1]:.0f}%)"
        )

    total = rows[-1]
    n_loops, idioms, polly, icc, combined, dca = total[1:]
    assert dca >= 1.5 * combined, "DCA should roughly double combined static"
    assert icc >= polly, "ICC is the most robust static detector"
    assert icc >= idioms
    assert idioms > 0 and polly > 0
    assert combined <= idioms + polly + icc
