"""Table II — PLDS kernels detected as commutative by DCA while every
baseline technique fails to identify any of them.

Reports, per program: origin, kernel function, sequential coverage of the
kernel loop, DCA's verdict, the number of baseline detectors finding it,
and the literature's exploitation technique.
"""

from conftest import format_table

from repro.benchsuite import PLDS_BENCHMARKS
from repro.interp.interpreter import Interpreter
from repro.interp.profiler import Profiler


def _coverage(bench, label):
    module = bench.compile(fresh=True)
    profiler = Profiler()
    Interpreter(module, profiler=profiler).run(bench.entry)
    return profiler.coverage(label)


def _table(dca_reports, detection_contexts, detectors):
    rows = []
    for bench in PLDS_BENCHMARKS:
        info = bench.table2
        label = info.kernel_label
        report = dca_reports[bench.name]
        verdict = report.loop(label)
        ctx = detection_contexts[bench.name]
        baseline_hits = sum(
            1
            for det in detectors.values()
            if det.detect(ctx).get(label) and det.detect(ctx)[label].parallel
        )
        cov = _coverage(bench, label)
        lit = (
            f"{info.lit_loop_speedup}x loop"
            if info.lit_loop_speedup
            else f"{info.lit_overall_speedup}x overall"
        )
        rows.append(
            (
                bench.name,
                info.origin,
                info.function,
                f"{cov:.0%}",
                "yes" if verdict.is_commutative else verdict.verdict,
                baseline_hits,
                lit,
                info.technique,
            )
        )
    return rows


def test_table2_plds_detection(
    benchmark, dca_reports, detection_contexts, detectors, capsys
):
    rows = benchmark.pedantic(
        _table,
        args=(dca_reports, detection_contexts, detectors),
        rounds=1,
        iterations=1,
    )
    table = format_table(
        (
            "Benchmark",
            "Origin",
            "Function",
            "Coverage",
            "DCA",
            "Baselines",
            "Lit.speedup",
            "Technique",
        ),
        rows,
    )
    with capsys.disabled():
        print("\n== Table II: PLDS kernels ==")
        print(table)

    # The paper's headline: DCA detects every kernel; no baseline detects any.
    for row in rows:
        assert row[4] == "yes", f"DCA missed PLDS kernel in {row[0]}"
        assert row[5] == 0, f"a baseline unexpectedly detected {row[0]}"
