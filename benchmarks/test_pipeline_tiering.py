"""Pipeline (DSWP) tiering gate over the full benchmark suite.

Two contracts, one per direction of the tiering switch:

* **Tiering on** — loops the DOALL-only analysis leaves on the floor
  (non-commutative PLDS/NPB loops) must be recovered: at least two tier
  as ``PIPELINE`` with a stage plan whose simulated DSWP execution
  beats sequential (>1.0x local speedup) on the default machine model.
* **Tiering off** — zero drift: every benchmark's report bytes, config
  fingerprint, and workload digest must match the pre-tiering goldens
  in ``goldens/pre_tiering_digests.json`` exactly.  Turning the feature
  off must be indistinguishable from the feature never having existed,
  down to the cache key.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Tuple

import pytest

from repro.benchsuite import ALL_BENCHMARKS
from repro.core import DcaAnalyzer
from repro.parallel import ParallelSimulator

GOLDENS = os.path.join(
    os.path.dirname(__file__), "goldens", "pre_tiering_digests.json"
)


def _zero() -> float:
    return 0.0


@pytest.fixture(scope="module")
def tiered_reports() -> Dict[str, object]:
    """Tiered DCA reports for every benchmark (specs pinned off, same
    contract as the conftest ``dca_reports`` fixture)."""
    reports = {}
    for bench in ALL_BENCHMARKS:
        analyzer = DcaAnalyzer(
            bench.compile(fresh=True),
            rtol=bench.rtol,
            liveout_policy=bench.liveout_policy,
            specs=False,
            tiering=True,
        )
        reports[bench.name] = analyzer.analyze()
    return reports


def test_tiering_recovers_pipeline_loops(tiered_reports, capsys):
    """>=2 non-commutative suite loops must pipeline profitably."""
    rows = []
    profitable = 0
    for bench in ALL_BENCHMARKS:
        report = tiered_reports[bench.name]
        plans = {
            label: result.pipeline_plan
            for label, result in report.results.items()
            if result.tier == "PIPELINE" and result.pipeline_plan
        }
        if not plans:
            continue
        sim = ParallelSimulator(bench.compile(fresh=True))
        speedup = sim.simulate(
            sorted(plans),
            min_coverage=0.0,
            drop_unprofitable=False,
            pipeline_plans=plans,
        )
        for label in sorted(plans):
            detail = speedup.loops.get(label)
            if detail is None:
                continue
            assert detail.mode == "pipeline"
            stages = len(plans[label]["stages"])
            rows.append(
                (bench.name, label, stages, detail.local_speedup)
            )
            if detail.local_speedup > 1.0:
                profitable += 1

    with capsys.disabled():
        print("\n== Pipeline tiering: simulated DSWP local speedups ==")
        for name, label, stages, local in rows:
            print(f"  {name:10s} {label:14s} stages={stages} "
                  f"local={local:.2f}x")

    assert len(rows) >= 2, "suite produced fewer than 2 PIPELINE loops"
    assert profitable >= 2, (
        f"only {profitable} PIPELINE loops beat sequential: {rows}"
    )


def test_tier_counts_cover_every_loop(tiered_reports):
    for bench in ALL_BENCHMARKS:
        report = tiered_reports[bench.name]
        counts = report.tier_counts()
        assert sum(counts.values()) == len(report.results), bench.name
        data = report.to_dict()
        assert data["report_schema_version"] == 2, bench.name
        assert data["tier_counts"] == counts, bench.name


def test_tiering_off_is_zero_drift(monkeypatch):
    """Tiering off: all 24 reports and cache keys byte-match pre-PR."""
    monkeypatch.delenv("REPRO_TIERING", raising=False)
    with open(GOLDENS) as handle:
        goldens: Dict[str, Dict[str, str]] = json.load(handle)
    assert sorted(goldens) == sorted(b.name for b in ALL_BENCHMARKS)

    drifted = []
    for bench in ALL_BENCHMARKS:
        analyzer = DcaAnalyzer(
            bench.compile(fresh=True),
            rtol=bench.rtol,
            liveout_policy=bench.liveout_policy,
            specs=False,
            clock=_zero,
        )
        report = analyzer.analyze()
        got = {
            "report_sha256": hashlib.sha256(
                report.to_json().encode()
            ).hexdigest(),
            "config_fingerprint": analyzer.config_fingerprint(),
            "workload_digest": analyzer.workload_digest(),
        }
        want = goldens[bench.name]
        for key in want:
            if got[key] != want[key]:
                drifted.append(f"{bench.name}.{key}: "
                               f"{want[key][:12]} -> {got[key][:12]}")
    assert not drifted, "tiering-off drift vs pre-PR goldens:\n" + "\n".join(
        drifted
    )
