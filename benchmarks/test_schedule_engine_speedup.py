"""Schedule-engine parallelization gate over the PLDS + NPB suite.

Two properties of ``--backend process``:

* **Zero drift** — with timing injected to zero, the process backend's
  report is byte-for-byte identical to the serial one on every
  benchmark: same verdicts, same provenance, same counters, same JSON.
  This always runs.
* **Wall speedup** — at ``--jobs 4`` the dynamic stage must complete the
  whole suite at least 1.8x faster than serial.  This only makes sense
  with real parallel hardware, so it skips on machines with fewer than
  four CPUs.
"""

from __future__ import annotations

import os
import time

import pytest

from conftest import format_table

from repro.benchsuite import ALL_BENCHMARKS
from repro.core import DcaAnalyzer

JOBS = 4
MIN_SPEEDUP = 1.8


def _zero():
    return 0.0


def _analyze_suite(backend=None, jobs=None, clock=None):
    reports = {}
    for bench in ALL_BENCHMARKS:
        analyzer = DcaAnalyzer(
            bench.compile(fresh=True),
            rtol=bench.rtol,
            liveout_policy=bench.liveout_policy,
            clock=clock,
            backend=backend,
            jobs=jobs,
        )
        reports[bench.name] = analyzer.analyze()
    return reports


def test_process_backend_zero_drift(capsys):
    serial = _analyze_suite(clock=_zero)
    process = _analyze_suite(backend="process", jobs=JOBS, clock=_zero)
    rows = []
    for name, report in serial.items():
        other = process[name]
        drift = "identical" if report.to_json() == other.to_json() else "DRIFT"
        rows.append((name, len(report.results), report.schedule_executions, drift))
    with capsys.disabled():
        print("\n== Schedule engine: serial vs process (jobs=%d) ==" % JOBS)
        print(format_table(("Benchmark", "loops", "executions", "report"), rows))
    drifted = [name for name, *_, drift in rows if drift != "identical"]
    assert not drifted, f"process backend drifted on: {drifted}"


@pytest.mark.skipif(
    (os.cpu_count() or 1) < JOBS,
    reason=f"wall-speedup gate needs >= {JOBS} CPUs",
)
def test_process_backend_wall_speedup(capsys):
    # Warm both paths (pool spawn, pyc) before timing.
    _analyze_suite(backend="process", jobs=JOBS)

    start = time.perf_counter()
    _analyze_suite()
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    _analyze_suite(backend="process", jobs=JOBS)
    process_s = time.perf_counter() - start

    speedup = serial_s / process_s if process_s else float("inf")
    with capsys.disabled():
        print(
            "\n== Schedule engine wall speedup: serial %.2fs / process %.2fs "
            "= %.2fx (gate %.1fx, jobs=%d) ==" % (serial_s, process_s, speedup, MIN_SPEEDUP, JOBS)
        )
    assert speedup >= MIN_SPEEDUP, (
        f"--jobs {JOBS} delivered only {speedup:.2f}x over the suite "
        f"(serial {serial_s:.2f}s, process {process_s:.2f}s)"
    )
