"""Shared, session-cached evaluation state for the benchmark harnesses.

Running DCA and the five detectors over the whole suite is the expensive
part; every table/figure harness consumes these cached results and only
its own aggregation runs under pytest-benchmark timing.
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro.baselines import (
    DependenceProfilingDetector,
    DiscoPopDetector,
    IccDetector,
    IdiomsDetector,
    PollyDetector,
    build_context,
)
from repro.benchsuite import ALL_BENCHMARKS, NPB_BENCHMARKS, PLDS_BENCHMARKS
from repro.core import DcaAnalyzer


@pytest.fixture(scope="session")
def dca_reports() -> Dict[str, object]:
    """DCA reports for every benchmark in the suite.

    Specs are pinned off: the table/figure harnesses and their ground
    truth encode the paper's byte-exact verification contract.  The
    spec-relaxed verdicts are gated separately by test_spec_unlock.py.
    """
    reports = {}
    for bench in ALL_BENCHMARKS:
        module = bench.compile(fresh=True)
        analyzer = DcaAnalyzer(
            module, rtol=bench.rtol, liveout_policy=bench.liveout_policy,
            specs=False,
        )
        reports[bench.name] = analyzer.analyze()
    return reports


@pytest.fixture(scope="session")
def detection_contexts() -> Dict[str, object]:
    """Baseline detection contexts (one profiled run per benchmark)."""
    return {
        bench.name: build_context(bench.compile(fresh=True))
        for bench in ALL_BENCHMARKS
    }


@pytest.fixture(scope="session")
def detectors():
    return {
        "dep-profiling": DependenceProfilingDetector(),
        "discopop": DiscoPopDetector(),
        "idioms": IdiomsDetector(),
        "polly": PollyDetector(),
        "icc": IccDetector(),
    }


def npb_names():
    return [b.name for b in NPB_BENCHMARKS]


def plds_names():
    return [b.name for b in PLDS_BENCHMARKS]


def format_table(headers, rows) -> str:
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    out = ["  ".join(str(h).ljust(w) for h, w in zip(headers, widths))]
    out.append("  ".join("-" * w for w in widths))
    for row in rows:
        out.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)
