"""Static pre-screen savings — dynamic schedule executions avoided.

The static commutativity prover resolves provable loops before the
dynamic stage runs, so every statically decided loop saves its full
permutation-testing budget (identity + perturbing schedules).  This
harness runs DCA over the PLDS + NPB suites twice — with and without
the pre-screen — and reports, per benchmark:

* candidate loops that reached the testing stage,
* loops the static pass decided,
* dynamic schedule executions in each mode.

Assertions encode the PR's acceptance criteria: on the PLDS suite the
filtered run performs strictly fewer schedule executions, at least 25%
of candidate loops across PLDS + NPB skip permutation testing, the two
modes agree on every verdict, and no static proof ever contradicts the
dynamic oracle.
"""

from conftest import format_table

from repro.benchsuite import NPB_BENCHMARKS, PLDS_BENCHMARKS
from repro.core import (
    COMMUTATIVE,
    DECIDED_STATIC,
    NON_COMMUTATIVE,
    RUNTIME_FAULT,
    SPLIT_MISMATCH,
    DcaAnalyzer,
)

_REFUTES_COMMUTATIVE = {NON_COMMUTATIVE, RUNTIME_FAULT, SPLIT_MISMATCH}


def _run(bench, static_filter):
    analyzer = DcaAnalyzer(
        bench.compile(fresh=True),
        entry=bench.entry,
        rtol=bench.rtol,
        liveout_policy=bench.liveout_policy,
        static_filter=static_filter,
    )
    return analyzer.analyze()


def _measure():
    rows = []
    for bench in PLDS_BENCHMARKS + NPB_BENCHMARKS:
        filtered = _run(bench, static_filter=True)
        unfiltered = _run(bench, static_filter=False)
        hits, tested = filtered.static_hit_rate()
        # Consume the counts through the report's machine-readable
        # "metrics" section — the same surface `analyze --json` exposes.
        filtered_metrics = filtered.to_dict()["metrics"]
        unfiltered_metrics = unfiltered.to_dict()["metrics"]
        rows.append(
            {
                "suite": bench.suite,
                "name": bench.name,
                "tested": tested,
                "static": hits,
                "sched_with": filtered_metrics["schedule_executions"],
                "sched_without": unfiltered_metrics["schedule_executions"],
                "saved_bound": filtered_metrics[
                    "schedule_executions_saved_static"
                ],
                "filtered": filtered,
                "unfiltered": unfiltered,
            }
        )
    return rows


def test_static_filter_savings(benchmark, capsys):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)

    table = format_table(
        ("Suite", "Benchmark", "Tested", "Static", "Sched(filter)",
         "Sched(full)", "Saved"),
        [
            (
                r["suite"],
                r["name"],
                r["tested"],
                r["static"],
                r["sched_with"],
                r["sched_without"],
                r["sched_without"] - r["sched_with"],
            )
            for r in rows
        ],
    )
    hits = sum(r["static"] for r in rows)
    tested = sum(r["tested"] for r in rows)
    saved = sum(r["sched_without"] - r["sched_with"] for r in rows)
    with capsys.disabled():
        print("\n== Static pre-screen: dynamic-testing savings ==")
        print(table)
        print(
            f"\n{hits}/{tested} tested loops decided statically "
            f"({hits / tested:.0%}); {saved} schedule executions saved"
        )

    # Strict reduction on the PLDS suite.
    plds = [r for r in rows if r["suite"] == "plds"]
    assert sum(r["sched_with"] for r in plds) < sum(
        r["sched_without"] for r in plds
    ), "pre-screen saved no schedule executions on PLDS"
    # At least 25% of candidate loops skip permutation testing overall.
    assert hits / tested >= 0.25, f"hit rate {hits}/{tested} below 25%"
    # The reports' own savings estimate bounds the measured savings:
    # statically decided loops account for the full testing budget, but a
    # non-commutative loop may short-circuit mid-way in the full run.
    assert saved > 0
    for r in rows:
        actual_saved = r["sched_without"] - r["sched_with"]
        if r["static"]:
            assert 0 < actual_saved <= r["saved_bound"], (
                f"{r['name']}: saved {actual_saved} outside "
                f"(0, {r['saved_bound']}]"
            )
        else:
            assert actual_saved == 0 and r["saved_bound"] == 0

    for r in rows:
        filtered, unfiltered = r["filtered"], r["unfiltered"]
        for label, result in filtered.results.items():
            oracle = unfiltered.results[label]
            # Both modes reach the same verdict for every loop.
            assert result.verdict == oracle.verdict, (
                f"{r['name']} {label}: filtered={result.verdict} "
                f"unfiltered={oracle.verdict}"
            )
            # Soundness: a static decision never contradicts the oracle.
            if result.decided_by == DECIDED_STATIC:
                if result.verdict == COMMUTATIVE:
                    assert oracle.verdict not in _REFUTES_COMMUTATIVE
                else:
                    assert oracle.verdict != COMMUTATIVE
