"""Serving gate over the PLDS + NPB suite: drift, throughput, dedup.

Three properties of the ``repro serve`` daemon:

* **Zero verdict drift** — every benchmark analyzed through the HTTP
  daemon must produce exactly the per-loop verdicts (and verdict
  histogram) that a local in-process session produces under the same
  config.  This pass also leaves the server's shared cache warm for the
  throughput gate.
* **Warm-server throughput** — submitting the whole suite to the warm
  daemon must be at least 1.5x faster than analyzing it with repeated
  cold CLI invocations (one fresh ``python -m repro analyze`` process
  per program, cache off): the daemon amortizes interpreter boot, pool
  spin-up, and cache opens that every cold CLI call repays.
* **Dedup under concurrency** — K identical concurrent submissions with
  a cache-cold config must execute exactly one analysis: K-1 requests
  coalesce onto the leader's in-flight future and every response body
  is byte-identical.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from conftest import format_table

from repro.api import AnalysisConfig, AnalysisSession
from repro.benchsuite import ALL_BENCHMARKS
from repro.serve import AnalysisServer, ServeClient, ServeConfig, serving

MIN_SPEEDUP = 1.5
DEDUP_CLIENTS = 6

SRC_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "src")


def _bench_config_fields(bench) -> dict:
    """The per-request config override matching local evaluation."""
    return {
        "entry": bench.entry,
        "rtol": bench.rtol,
        "liveout_policy": bench.liveout_policy,
        "specs": False,
    }


@pytest.fixture(scope="module")
def warm_server(tmp_path_factory):
    """One daemon for the whole module, with a private cache + ledger."""
    root = tmp_path_factory.mktemp("serve-bench")
    server = AnalysisServer(
        ServeConfig(port=0, workers=4, queue_depth=64),
        base=AnalysisConfig(
            cache_dir=str(root / "cache"),
            ledger_dir=str(root / "ledger"),
        ),
    )
    with serving(server):
        yield server


@pytest.fixture(scope="module")
def client(warm_server):
    return ServeClient(f"http://127.0.0.1:{warm_server.port}")


@pytest.fixture(scope="module")
def served_reports(client):
    """Every benchmark analyzed through the daemon (populates the
    shared cache as a side effect)."""
    reports = {}
    for bench in ALL_BENCHMARKS:
        status, _, data = client.analyze(
            bench.source,
            config=_bench_config_fields(bench),
            name=bench.name,
        )
        assert status == 200, f"{bench.name}: HTTP {status}: {data}"
        reports[bench.name] = data["report"]
    return reports


def test_served_verdicts_match_local(served_reports, capsys):
    """Gate: zero verdict drift between the daemon and a local session."""
    rows = []
    drifted = []
    for bench in ALL_BENCHMARKS:
        config = AnalysisConfig(
            cache_mode="off", ledger_dir="off", **_bench_config_fields(bench)
        )
        with AnalysisSession(config) as session:
            local = session.analyze(bench.source, source_path=bench.name)
        local_verdicts = {
            label: result.verdict for label, result in local.results.items()
        }
        served = served_reports[bench.name]
        served_verdicts = {
            label: info["verdict"]
            for label, info in served["loops"].items()
        }
        ok = (
            served_verdicts == local_verdicts
            and served["verdict_counts"] == local.verdict_counts()
        )
        if not ok:
            drifted.append(bench.name)
        rows.append(
            (
                bench.name,
                len(local_verdicts),
                sum(1 for v in served_verdicts.values()
                    if v.startswith("commutative")),
                "identical" if ok else "DRIFT",
            )
        )
    with capsys.disabled():
        print("\n== Served vs local verdicts ==")
        print(
            format_table(
                ("Benchmark", "loops", "commutative", "verdicts"), rows
            )
        )
    assert not drifted, f"served verdicts drifted on: {drifted}"


def test_warm_server_beats_cold_cli(served_reports, client, tmp_path, capsys):
    """Gate: the warm daemon sustains >= 1.5x the throughput of
    repeated cold CLI invocations over the same suite."""
    # Cold baseline: one fresh interpreter per program, cache off.
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_CACHE_DIR", None)
    env.pop("REPRO_LEDGER_DIR", None)
    paths = {}
    for bench in ALL_BENCHMARKS:
        path = tmp_path / f"{bench.name}.mc"
        path.write_text(bench.source)
        paths[bench.name] = str(path)

    cold_start = time.perf_counter()
    for bench in ALL_BENCHMARKS:
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro", "analyze",
                paths[bench.name],
                "--entry", bench.entry,
                "--rtol", str(bench.rtol),
                "--policy", bench.liveout_policy,
                "--no-specs", "--no-cache", "--no-ledger", "--json",
            ],
            env=env,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, f"{bench.name}: {proc.stderr}"
    cold_s = time.perf_counter() - cold_start

    # Warm daemon: the same suite, same per-bench configs — request
    # fingerprints match the warm-up pass, so the shared cache that
    # served_reports populated serves the replays.
    warm_start = time.perf_counter()
    for bench in ALL_BENCHMARKS:
        status, _, data = client.analyze(
            bench.source,
            config=_bench_config_fields(bench),
            name=bench.name,
        )
        assert status == 200, f"{bench.name}: HTTP {status}"
        served = served_reports[bench.name]
        assert data["report"]["verdict_counts"] == served["verdict_counts"]
    warm_s = time.perf_counter() - warm_start

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    with capsys.disabled():
        print("\n== Warm server vs cold CLI over the suite ==")
        print(
            format_table(
                ("path", "programs", "wall s", "per program ms"),
                [
                    ("cold CLI", len(ALL_BENCHMARKS), f"{cold_s:.2f}",
                     f"{1000 * cold_s / len(ALL_BENCHMARKS):.0f}"),
                    ("warm serve", len(ALL_BENCHMARKS), f"{warm_s:.2f}",
                     f"{1000 * warm_s / len(ALL_BENCHMARKS):.0f}"),
                ],
            )
        )
        print(f"speedup: {speedup:.2f}x (gate: >= {MIN_SPEEDUP}x)")
    assert speedup >= MIN_SPEEDUP, (
        f"warm server only {speedup:.2f}x faster than cold CLI "
        f"(needs {MIN_SPEEDUP}x)"
    )


def test_concurrent_duplicates_execute_once(warm_server, client, capsys):
    """Gate: K identical concurrent submissions -> one analysis."""
    # A config fingerprint this module has not used yet, so the shared
    # cache is cold for it and the work is real.
    bench = max(ALL_BENCHMARKS, key=lambda b: len(b.source))
    config = {
        "entry": bench.entry,
        "rtol": bench.rtol,
        "liveout_policy": bench.liveout_policy,
        "specs": False,
        "static_filter": False,
        "schedule_seed": 987654321,
    }
    before_analyses = warm_server.metrics.value("serve.analyses", 0)
    before_coalesced = warm_server.metrics.value("serve.coalesced", 0)

    def submit(_):
        return client.request(
            "POST", "/v1/analyze", {"source": bench.source, "config": config}
        )

    with ThreadPoolExecutor(DEDUP_CLIENTS) as pool:
        results = list(pool.map(submit, range(DEDUP_CLIENTS)))

    statuses = [status for status, _, _ in results]
    bodies = {body for _, _, body in results}
    analyses = warm_server.metrics.value("serve.analyses", 0) - before_analyses
    coalesced = (
        warm_server.metrics.value("serve.coalesced", 0) - before_coalesced
    )
    with capsys.disabled():
        print(
            f"\n== Dedup: {DEDUP_CLIENTS} concurrent identical requests on "
            f"{bench.name} ==\n"
            f"analyses executed: {analyses}, coalesced joins: {coalesced}, "
            f"distinct bodies: {len(bodies)}"
        )
    assert statuses == [200] * DEDUP_CLIENTS
    assert len(bodies) == 1, "coalesced responses must be byte-identical"
    assert analyses == 1, (
        f"{DEDUP_CLIENTS} identical concurrent requests ran "
        f"{analyses} analyses; coalescing must collapse them to 1"
    )
    assert coalesced == DEDUP_CLIENTS - 1
