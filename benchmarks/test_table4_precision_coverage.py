"""Table IV — DCA precision (false positives/negatives against expert
ground truth) and sequential coverage of the detected loops vs the
combined static baseline's.

Paper shape: zero false positives, zero false negatives among tested
loops; DCA's detected loops cover a substantially larger fraction of
execution time than the combined static tools' (DC, the I/O benchmark,
stays near zero for DCA since its hot loops are excluded).
"""

from conftest import format_table

from repro.baselines import combine_static
from repro.benchsuite import NPB_BENCHMARKS
from repro.core import EXCLUDED_IO, ITERATOR_ONLY, NOT_EXERCISED, UNTESTABLE
from repro.interp.interpreter import Interpreter
from repro.interp.profiler import Profiler
from repro.parallel import NestingObserver

_UNTESTED = (EXCLUDED_IO, ITERATOR_ONLY, NOT_EXERCISED, UNTESTABLE)


def _outermost_coverage(bench, labels):
    """Combined coverage of the outermost loops among ``labels``."""
    module = bench.compile(fresh=True)
    profiler = Profiler()
    nesting = NestingObserver()
    Interpreter(module, observers=[nesting], profiler=profiler).run(bench.entry)
    chosen = []
    labelset = set(labels)
    for label in labels:
        if nesting.ancestors(label) & labelset:
            continue  # covered by an outer selected loop
        chosen.append(label)
    return profiler.coverage_of(chosen)


def _table(dca_reports, detection_contexts, detectors):
    rows = []
    for bench in NPB_BENCHMARKS:
        report = dca_reports[bench.name]
        ctx = detection_contexts[bench.name]
        commutative = set(report.commutative_labels())
        untested = {
            l for l, r in report.results.items() if r.verdict in _UNTESTED
        }
        gt_true = {l for l, v in bench.ground_truth.items() if v}
        gt_false = {l for l, v in bench.ground_truth.items() if not v}
        false_pos = sorted(commutative & gt_false)
        false_neg = sorted((gt_true - commutative) - untested)

        combined = combine_static(
            [detectors[name].detect(ctx) for name in ("idioms", "polly", "icc")]
        )
        static_found = [l for l, r in combined.items() if r.parallel]

        dca_cov = _outermost_coverage(bench, sorted(commutative))
        static_cov = _outermost_coverage(bench, sorted(static_found))
        rows.append(
            (
                bench.name,
                len(report.results),
                len(commutative),
                len(false_pos),
                len(false_neg),
                f"{dca_cov:.0%}",
                f"{static_cov:.0%}",
            )
        )
    return rows


def test_table4_precision_coverage(
    benchmark, dca_reports, detection_contexts, detectors, capsys
):
    rows = benchmark.pedantic(
        _table,
        args=(dca_reports, detection_contexts, detectors),
        rounds=1,
        iterations=1,
    )
    table = format_table(
        ("Bmk", "Loops", "Found", "FalsePos", "FalseNeg", "DCA cov", "Static cov"),
        rows,
    )
    with capsys.disabled():
        print("\n== Table IV: precision and coverage ==")
        print(table)

    for row in rows:
        assert row[3] == 0, f"{row[0]}: DCA produced a false positive"
        assert row[4] == 0, f"{row[0]}: DCA produced a false negative"
    # Coverage: DCA ≥ combined static for every benchmark.
    for row in rows:
        dca_cov = float(row[5].rstrip("%"))
        static_cov = float(row[6].rstrip("%"))
        assert dca_cov >= static_cov - 1e-9, f"{row[0]}: static coverage exceeds DCA"
