"""Ablation — adequacy of the reduced permutation presets (paper §III/§V-D).

DCA accepts a chance of missing an order-sensitive loop because it tests
only a few permutations.  This harness seeds loops with increasingly
subtle order sensitivity and measures which schedule catches each:

* ``sum-first-half``: only iterations 0..n/2 contribute — any permutation
  moving mass across the midpoint catches it, reverse included;
* ``adjacent-swap``: sensitive only to the relative order of one adjacent
  pair — reverse catches it, rotation does not;
* ``last-wins``: a scalar keeps the value of the *last* iteration —
  caught by any permutation that changes the final element;
* ``benign``: a true reduction, no schedule may flag it.

Shape: identity alone catches nothing; the paper preset
(reverse + random shuffles) catches every seeded violation here while
never flagging the benign loop — the "surprisingly powerful in practice"
claim at micro scale.
"""

from conftest import format_table

from repro import compile_program
from repro.core import (
    DcaAnalyzer,
    EvenOddSchedule,
    IdentitySchedule,
    RandomSchedule,
    ReverseSchedule,
    RotationSchedule,
    ScheduleConfig,
)

_PROGRAMS = {
    "sum-first-half": """
func void main() {
  int[] a = new int[16];
  int s = 0;
  for (int i = 0; i < 16; i = i + 1) {
    if (s < 100) { a[i] = i; }
    s = s + 20;
  }
  int t = 0;
  for (int i = 0; i < 16; i = i + 1) { t = t + a[i]; }
  print(t);
}
""",
    "adjacent-swap": """
func void main() {
  int[] a = new int[12];
  int last = 0 - 1;
  for (int i = 0; i < 12; i = i + 1) {
    if (i == 7) { a[i] = last; } else { a[i] = i; }
    last = i;
  }
  int t = 0;
  for (int i = 0; i < 12; i = i + 1) { t = t + a[i] * (i + 1); }
  print(t);
}
""",
    "last-wins": """
func void main() {
  int winner = 0;
  for (int i = 0; i < 10; i = i + 1) {
    winner = i * 3 + 1;
  }
  print(winner);
}
""",
    "benign": """
func void main() {
  int s = 0;
  for (int i = 0; i < 16; i = i + 1) { s += i * i; }
  print(s);
}
""",
}

_SCHEDULE_SETS = {
    "identity-only": ScheduleConfig([IdentitySchedule()]),
    "rotate1": ScheduleConfig([IdentitySchedule(), RotationSchedule(1)]),
    "reverse": ScheduleConfig([IdentitySchedule(), ReverseSchedule()]),
    "evenodd": ScheduleConfig([IdentitySchedule(), EvenOddSchedule()]),
    "paper-preset": ScheduleConfig.default(n_random=2),
    "random4": ScheduleConfig(
        [IdentitySchedule()] + [RandomSchedule(100 + i) for i in range(4)]
    ),
}


def _ablate():
    rows = []
    for prog_name, source in _PROGRAMS.items():
        verdicts = []
        for sched_name, config in _SCHEDULE_SETS.items():
            module = compile_program(source)
            # Static pre-screen off: this ablation measures what the
            # *dynamic* schedules alone can observe.
            report = DcaAnalyzer(
                module, schedules=config, static_filter=False
            ).analyze()
            target = report.loop("main.L0")
            verdicts.append("comm" if target.is_commutative else "CAUGHT")
        rows.append((prog_name, *verdicts))
    return rows


def test_schedule_ablation(benchmark, capsys):
    rows = benchmark.pedantic(_ablate, rounds=1, iterations=1)
    headers = ("Program", *(name for name in _SCHEDULE_SETS))
    table = format_table(headers, rows)
    with capsys.disabled():
        print("\n== Ablation: permutation-schedule adequacy ==")
        print(table)

    data = {r[0]: dict(zip(list(_SCHEDULE_SETS), r[1:])) for r in rows}
    # Identity alone can never observe order sensitivity.
    for name in ("sum-first-half", "adjacent-swap", "last-wins"):
        assert data[name]["identity-only"] == "comm"
    # The paper preset catches every seeded violation here.
    for name in ("sum-first-half", "adjacent-swap", "last-wins"):
        assert data[name]["paper-preset"] == "CAUGHT", name
    # ...and never flags a true reduction.
    for sched in _SCHEDULE_SETS:
        assert data["benign"][sched] == "comm"
    # Reverse alone already catches the midpoint and adjacent cases.
    assert data["sum-first-half"]["reverse"] == "CAUGHT"
    assert data["adjacent-swap"]["reverse"] == "CAUGHT"
