"""Table I — NPB loops reported parallelizable by the dynamic baselines
(dependence profiling [8], DiscoPoP [9]) vs commutative by DCA.

Paper shape: DCA closely matches both dynamic techniques per benchmark
and in total (paper: 1203 vs 696/720 of 1397 — DCA ≥ each baseline).
"""

from conftest import format_table

from repro.benchsuite import NPB_BENCHMARKS


def _table(dca_reports, detection_contexts, detectors):
    rows = []
    totals = [0, 0, 0, 0]
    for bench in NPB_BENCHMARKS:
        ctx = detection_contexts[bench.name]
        report = dca_reports[bench.name]
        n_loops = len(report.results)
        dep = sum(
            1 for r in detectors["dep-profiling"].detect(ctx).values() if r.parallel
        )
        dpop = sum(
            1 for r in detectors["discopop"].detect(ctx).values() if r.parallel
        )
        dca = len(report.commutative_labels())
        rows.append((bench.name, n_loops, dep, dpop, dca))
        for i, v in enumerate((n_loops, dep, dpop, dca)):
            totals[i] += v
    rows.append(("Total", *totals))
    return rows


def test_table1_dynamic_detection(
    benchmark, dca_reports, detection_contexts, detectors, capsys
):
    rows = benchmark.pedantic(
        _table,
        args=(dca_reports, detection_contexts, detectors),
        rounds=1,
        iterations=1,
    )
    table = format_table(
        ("Benchmark", "Loops", "DepProfiling", "DiscoPoP", "DCA"), rows
    )
    with capsys.disabled():
        print("\n== Table I: dynamic detection on NPB ==")
        print(table)

    total = dict((r[0], r) for r in rows)["Total"]
    n_loops, dep, dpop, dca = total[1:]
    # Shape: DCA matches or exceeds each dynamic baseline and finds a
    # large majority of all loops.
    assert dca >= dep
    assert dca >= dpop
    assert dca >= 0.6 * n_loops
