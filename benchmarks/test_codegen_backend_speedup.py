"""Codegen execution backend gate over the PLDS + NPB suite.

Two properties of ``--exec-backend codegen``:

* **Zero drift** — with timing injected to zero, the codegen backend's
  report is byte-for-byte identical to the interpreter's on every
  benchmark: same verdicts, same provenance, same step counts, same
  snapshot digests, same JSON.  This runs at the default schedule
  preset and each benchmark's own liveout policy.
* **Wall speedup** — the whole-suite analyze pipeline must run at least
  2x faster than the closure-compiled backend (which itself gates 2.5x
  over the interpreter).  The timed configuration is replay-rich
  (identity + reverse + 16 random schedules), skips the static
  pre-filter, and uses the ``eventual`` liveout policy so the replay
  loop — the part the backend accelerates — dominates instead of the
  per-``rt_verify`` heap-snapshot capture that ``strict`` pays equally
  on every backend.  The warmup pass also populates the on-disk
  artifact cache, so the timed codegen pass loads marshalled code
  objects instead of re-lowering each module (the cache is keyed by
  module digest, and ``bench.compile(fresh=True)`` builds fresh module
  objects each pass, which defeats the in-memory memo by design).
"""

from __future__ import annotations

import time

from conftest import format_table

from repro.benchsuite import ALL_BENCHMARKS
from repro.core import DcaAnalyzer
from repro.core.schedules import ScheduleConfig

MIN_SPEEDUP = 2.0
#: Testing schedules for the timed gate: identity + reverse + 16 randoms.
GATE_RANDOM_SCHEDULES = 16


def _zero():
    return 0.0


def _analyze_suite(exec_backend=None, clock=None, schedules=None,
                   static_filter=True, liveout_policy=None):
    reports = {}
    for bench in ALL_BENCHMARKS:
        analyzer = DcaAnalyzer(
            bench.compile(fresh=True),
            rtol=bench.rtol,
            liveout_policy=liveout_policy or bench.liveout_policy,
            clock=clock,
            static_filter=static_filter,
            exec_backend=exec_backend,
            schedules=schedules,
        )
        reports[bench.name] = analyzer.analyze()
    return reports


def test_codegen_backend_zero_drift(capsys):
    interp = _analyze_suite(exec_backend="interp", clock=_zero)
    codegen = _analyze_suite(exec_backend="codegen", clock=_zero)
    rows = []
    for name, report in interp.items():
        other = codegen[name]
        drift = "identical" if report.to_json() == other.to_json() else "DRIFT"
        rows.append((name, len(report.results), report.schedule_executions, drift))
    with capsys.disabled():
        print("\n== Exec backend: interp vs codegen ==")
        print(format_table(("Benchmark", "loops", "executions", "report"), rows))
    drifted = [name for name, *_, drift in rows if drift != "identical"]
    assert not drifted, f"codegen backend drifted on: {drifted}"


def test_codegen_backend_wall_speedup(capsys, tmp_path, monkeypatch):
    from repro.interp.codegen import CODEGEN_CACHE_ENV, codegen_stats

    monkeypatch.setenv(CODEGEN_CACHE_ENV, str(tmp_path / "artifacts"))

    def gate_config():
        return ScheduleConfig.default(n_random=GATE_RANDOM_SCHEDULES)

    # Warm both paths (pyc, analysis caches, codegen disk artifacts)
    # before timing.  The warmup must use the gate config: with the
    # static pre-filter off, the analyzer instruments loops the filter
    # would have skipped, and those instrumented modules need their
    # artifacts on disk before the timed pass.
    _analyze_suite(
        exec_backend="compiled", clock=_zero, schedules=gate_config(),
        static_filter=False, liveout_policy="eventual",
    )
    _analyze_suite(
        exec_backend="codegen", clock=_zero, schedules=gate_config(),
        static_filter=False, liveout_policy="eventual",
    )

    start = time.perf_counter()
    _analyze_suite(
        exec_backend="compiled", clock=_zero, schedules=gate_config(),
        static_filter=False, liveout_policy="eventual",
    )
    compiled_s = time.perf_counter() - start

    before = dict(codegen_stats())
    start = time.perf_counter()
    _analyze_suite(
        exec_backend="codegen", clock=_zero, schedules=gate_config(),
        static_filter=False, liveout_policy="eventual",
    )
    codegen_s = time.perf_counter() - start
    after = codegen_stats()

    speedup = compiled_s / codegen_s if codegen_s else float("inf")
    with capsys.disabled():
        print(
            "\n== Codegen backend wall speedup: compiled %.2fs / codegen %.2fs "
            "= %.2fx (gate %.1fx, %d testing schedules, eventual liveout) =="
            % (compiled_s, codegen_s, speedup, MIN_SPEEDUP,
               2 + GATE_RANDOM_SCHEDULES)
        )
    # The warmup pass populated the artifact store; the timed pass must
    # have been replay-bound, not compile-bound.
    compiles = after["compiles"] - before["compiles"]
    assert compiles == 0, (
        f"timed codegen pass recompiled {compiles} modules despite a warm "
        f"artifact cache"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"--exec-backend codegen delivered only {speedup:.2f}x over the "
        f"compiled backend (compiled {compiled_s:.2f}s, codegen {codegen_s:.2f}s)"
    )
