"""Fig. 7 — DCA vs expert parallelization of NPB.

Three series: DCA's commutative loops, the expert's loop-level selection
("Expert Manual (Loop-only)"), and the full expert parallelization
including whole-program restructuring beyond single loops
(``expert_extra_fraction``: pipelines, work sharing, fused sections).

Paper shape: DCA matches expert loop-level parallelization (it detects
every data-parallel loop the expert exploits); full expert restructuring
pulls ahead exactly on the benchmarks the paper names (DC, FT, LU, CG).
"""

import math

from conftest import format_table

from repro.benchsuite import NPB_BENCHMARKS
from repro.parallel import MachineModel, ParallelSimulator


def _gmean(values):
    return math.exp(sum(math.log(max(v, 1e-9)) for v in values) / len(values))


def _simulate(bench, labels, extra=0.0):
    sim = ParallelSimulator(
        bench.compile(fresh=True), model=MachineModel(cores=72)
    )
    return sim.simulate(list(labels), expert_extra_fraction=extra).speedup


def _fig7(dca_reports):
    rows = []
    cols = {"dca": [], "expert_loop": [], "expert_full": []}
    for bench in NPB_BENCHMARKS:
        report = dca_reports[bench.name]
        dca = _simulate(bench, report.commutative_labels())
        expert_loop = _simulate(bench, bench.expert_loops)
        expert_full = _simulate(
            bench, bench.expert_loops, extra=bench.expert_extra_fraction
        )
        cols["dca"].append(dca)
        cols["expert_loop"].append(expert_loop)
        cols["expert_full"].append(expert_full)
        rows.append(
            (bench.name, f"{dca:.2f}x", f"{expert_loop:.2f}x", f"{expert_full:.2f}x")
        )
    rows.append(
        (
            "GMean",
            f"{_gmean(cols['dca']):.2f}x",
            f"{_gmean(cols['expert_loop']):.2f}x",
            f"{_gmean(cols['expert_full']):.2f}x",
        )
    )
    return rows


def test_fig7_expert_comparison(benchmark, dca_reports, capsys):
    rows = benchmark.pedantic(_fig7, args=(dca_reports,), rounds=1, iterations=1)
    table = format_table(
        ("Benchmark", "DCA", "Expert(loop-only)", "Expert Manual"), rows
    )
    with capsys.disabled():
        print("\n== Fig. 7: DCA vs expert parallelization ==")
        print(table)

    data = {r[0]: [float(c.rstrip("x")) for c in r[1:]] for r in rows}
    gmean = data["GMean"]
    # DCA matches expert loop-level parallelization within a small factor.
    assert gmean[0] >= 0.8 * gmean[1]
    # Full expert restructuring is at least as good as loop-only.
    assert gmean[2] >= gmean[1] - 1e-9
    # The paper's named benchmarks where the expert pulls ahead.
    for name in ("DC", "FT", "LU"):
        assert data[name][2] > data[name][0], f"expert should lead DCA on {name}"
