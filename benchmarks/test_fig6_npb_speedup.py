"""Fig. 6 — overall NPB speedups from parallelizing the loops each
technique detects: IDIOMS vs Polly vs ICC vs DCA (+ geometric mean).

Paper shape: DCA consistently outperforms every static baseline; EP is
near-linear for DCA; DC stays at ~1x (I/O-bound, loops excluded); the
DCA geomean beats each baseline's geomean.
"""

import math

from conftest import format_table

from repro.baselines import combine_static
from repro.benchsuite import NPB_BENCHMARKS
from repro.parallel import MachineModel, ParallelSimulator


def _speedup(bench, labels):
    sim = ParallelSimulator(
        bench.compile(fresh=True), model=MachineModel(cores=72)
    )
    return sim.simulate(list(labels)).speedup


def _gmean(values):
    return math.exp(sum(math.log(max(v, 1e-9)) for v in values) / len(values))


def _fig6(dca_reports, detection_contexts, detectors):
    rows = []
    columns = {name: [] for name in ("idioms", "polly", "icc", "dca")}
    for bench in NPB_BENCHMARKS:
        ctx = detection_contexts[bench.name]
        report = dca_reports[bench.name]
        per_tool = {}
        for name in ("idioms", "polly", "icc"):
            detected = [
                l for l, r in detectors[name].detect(ctx).items() if r.parallel
            ]
            per_tool[name] = _speedup(bench, detected)
        per_tool["dca"] = _speedup(bench, report.commutative_labels())
        for name, value in per_tool.items():
            columns[name].append(value)
        rows.append(
            (
                bench.name,
                *(f"{per_tool[n]:.2f}x" for n in ("idioms", "polly", "icc", "dca")),
            )
        )
    rows.append(
        (
            "GMean",
            *(
                f"{_gmean(columns[n]):.2f}x"
                for n in ("idioms", "polly", "icc", "dca")
            ),
        )
    )
    return rows


def test_fig6_npb_speedup(
    benchmark, dca_reports, detection_contexts, detectors, capsys
):
    rows = benchmark.pedantic(
        _fig6,
        args=(dca_reports, detection_contexts, detectors),
        rounds=1,
        iterations=1,
    )
    table = format_table(("Benchmark", "IDIOMS", "Polly", "ICC", "DCA"), rows)
    with capsys.disabled():
        print("\n== Fig. 6: NPB speedups (72 simulated cores) ==")
        print(table)

    data = {r[0]: [float(c.rstrip("x")) for c in r[1:]] for r in rows}
    gmean = data["GMean"]
    assert gmean[3] >= max(gmean[:3]), "DCA geomean must lead"
    # EP near-linear for DCA, far above every static tool.
    assert data["EP"][3] > 10
    assert data["EP"][3] > max(data["EP"][:3])
    # DC is I/O bound: nobody gets real speedup.
    assert data["DC"][3] < 2.0
    # DCA never loses to a baseline on any benchmark.
    for name, values in data.items():
        if name == "GMean":
            continue
        assert values[3] >= max(values[:3]) - 1e-6, f"DCA loses on {name}"
