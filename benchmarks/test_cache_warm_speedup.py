"""Persistent-cache gate over the PLDS + NPB suite.

Two properties of ``--cache DIR``:

* **Zero drift** — with timing injected to zero, a cold run populating
  a fresh cache and a warm run served from it both produce reports
  byte-for-byte identical to an uncached run, on every benchmark; and
  the warm pass must avoid at least 90% of the schedule executions the
  cold pass performed.  This always runs.
* **Wall speedup** — with the static pre-screen off (so the dynamic
  stage dominates, the workload the cache exists for), a warm pass over
  the whole suite must complete at least 1.3x faster than its cold
  pass.
"""

from __future__ import annotations

import time

from conftest import format_table

from repro.benchsuite import ALL_BENCHMARKS
from repro.cache import AnalysisCache
from repro.core import DcaAnalyzer

MIN_SKIP_FRACTION = 0.90
MIN_SPEEDUP = 1.3


def _zero():
    return 0.0


def _analyze_suite(cache=None, clock=None, static_filter=True):
    reports = {}
    for bench in ALL_BENCHMARKS:
        analyzer = DcaAnalyzer(
            bench.compile(fresh=True),
            rtol=bench.rtol,
            liveout_policy=bench.liveout_policy,
            static_filter=static_filter,
            clock=clock,
            cache=cache,
        )
        reports[bench.name] = analyzer.analyze()
    return reports


def test_cache_zero_drift(tmp_path, capsys):
    uncached = _analyze_suite(clock=_zero)
    with AnalysisCache(str(tmp_path)) as cache:
        cold = _analyze_suite(cache=cache, clock=_zero)
        warm = _analyze_suite(cache=cache, clock=_zero)

    rows = []
    drifted = []
    executed = avoided = 0
    for name, baseline in uncached.items():
        cold_ok = cold[name].to_json() == baseline.to_json()
        warm_ok = warm[name].to_json() == baseline.to_json()
        if not (cold_ok and warm_ok):
            drifted.append(name)
        executed += cold[name].schedule_executions
        avoided += warm[name].cache.schedule_executions_avoided
        rows.append(
            (
                name,
                cold[name].schedule_executions,
                warm[name].cache.hits,
                warm[name].cache.misses,
                "identical" if cold_ok and warm_ok else "DRIFT",
            )
        )
    with capsys.disabled():
        print("\n== Persistent cache: uncached vs cold vs warm ==")
        print(
            format_table(
                ("Benchmark", "executions", "hits", "misses", "report"), rows
            )
        )
        print(
            "suite: %d schedule executions cold, %d avoided warm (%.0f%%)"
            % (executed, avoided, 100.0 * avoided / executed if executed else 0)
        )
    assert not drifted, f"cache drifted on: {drifted}"
    assert executed > 0, "suite performed no schedule executions"
    fraction = avoided / executed
    assert fraction >= MIN_SKIP_FRACTION, (
        f"warm pass avoided only {fraction:.0%} of {executed} schedule "
        f"executions (gate {MIN_SKIP_FRACTION:.0%})"
    )


def test_cache_warm_wall_speedup(tmp_path, capsys):
    with AnalysisCache(str(tmp_path)) as cache:
        start = time.perf_counter()
        _analyze_suite(cache=cache, static_filter=False)
        cold_s = time.perf_counter() - start

        start = time.perf_counter()
        _analyze_suite(cache=cache, static_filter=False)
        warm_s = time.perf_counter() - start

    speedup = cold_s / warm_s if warm_s else float("inf")
    with capsys.disabled():
        print(
            "\n== Cache wall speedup: cold %.2fs / warm %.2fs = %.2fx "
            "(gate %.1fx) ==" % (cold_s, warm_s, speedup, MIN_SPEEDUP)
        )
    assert speedup >= MIN_SPEEDUP, (
        f"warm pass delivered only {speedup:.2f}x over the suite "
        f"(cold {cold_s:.2f}s, warm {warm_s:.2f}s)"
    )
