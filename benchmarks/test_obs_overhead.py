"""Observability overhead — disabled hooks must be (near) free.

Every instrumentation site in the pipeline guards on the observability
context's ``enabled`` flag (or receives the shared no-op span), so a
disabled context should cost one attribute check on the interpreter's
hot path.  This harness verifies that claim empirically on a PLDS
subset:

* **baseline** — the interpreter with the hooks surgically removed
  (``_exec_intrinsic`` without the tally guard, ``run`` without the
  flush wrapper), i.e. the pre-observability interpreter;
* **disabled** — the shipped interpreter with observability off (the
  default for every user who never asks for a trace).

Wall time is noisy under CI, so the comparison is paired min-of-N with
retry rounds: the assertion passes as soon as any round sees the
disabled/baseline ratio under the 2% budget.

The harness also runs one benchmark with observability *enabled* and
reports the per-stage cost so the price of tracing is on the record.
"""

from __future__ import annotations

import time

from conftest import format_table

import repro.obs as obs
from repro.benchsuite import PLDS_BENCHMARKS
from repro.core import DcaAnalyzer
from repro.interp.interpreter import Interpreter
from repro.interp.values import MiniCRuntimeError

#: Cheap-but-representative PLDS subset (~0.7 s per full-suite pass).
SUBSET_NAMES = ("mcf", "twolf", "otter")

#: Overhead budget for disabled observability.
MAX_OVERHEAD = 0.02
REPS_PER_ROUND = 3
MAX_ROUNDS = 5


def _no_hook_exec_intrinsic(self, instr, frame):
    """``Interpreter._exec_intrinsic`` without the obs tally guard."""
    args = [self._value(a, frame) for a in instr.args]
    if self.runtime is None:
        raise MiniCRuntimeError(
            f"intrinsic {instr.func!r} executed without a runtime"
        )
    result = self.runtime.handle_intrinsic(self, instr.func, args)
    if instr.dest is not None:
        frame[instr.dest] = result


def _no_hook_run(self, entry="main", args=None):
    """``Interpreter.run`` without the obs flush wrapper."""
    if entry not in self.module.functions:
        raise MiniCRuntimeError(f"no function named {entry!r}")
    return self._call_function(entry, list(args or []))


def _subset():
    by_name = {b.name: b for b in PLDS_BENCHMARKS}
    return [by_name[name] for name in SUBSET_NAMES]


def _analyze_all(benches, modules):
    for bench in benches:
        DcaAnalyzer(
            modules[bench.name],
            entry=bench.entry,
            rtol=bench.rtol,
            liveout_policy=bench.liveout_policy,
        ).analyze()


def _min_of(n, fn):
    best = float("inf")
    for _ in range(n):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_disabled_obs_overhead(benchmark, capsys, monkeypatch):
    assert not obs.is_enabled(), "overhead run requires the disabled default"
    benches = _subset()
    modules = {b.name: b.compile(fresh=True) for b in benches}

    def measure_round():
        # Paired: baseline (hooks stripped) vs shipped interpreter,
        # interleaved so drift hits both sides alike.
        with monkeypatch.context() as patch:
            patch.setattr(Interpreter, "_exec_intrinsic", _no_hook_exec_intrinsic)
            patch.setattr(Interpreter, "run", _no_hook_run)
            baseline = _min_of(REPS_PER_ROUND, lambda: _analyze_all(benches, modules))
        disabled = _min_of(REPS_PER_ROUND, lambda: _analyze_all(benches, modules))
        return baseline, disabled

    # Warm-up pass (imports, caches, branch predictors).
    _analyze_all(benches, modules)

    rounds = []
    for _ in range(MAX_ROUNDS):
        baseline, disabled = benchmark.pedantic(
            measure_round, rounds=1, iterations=1
        ) if not rounds else measure_round()
        ratio = disabled / baseline
        rounds.append((baseline, disabled, ratio))
        if ratio < 1.0 + MAX_OVERHEAD:
            break

    table = format_table(
        ("Round", "Baseline(s)", "Disabled(s)", "Overhead"),
        [
            (i + 1, f"{b:.4f}", f"{d:.4f}", f"{(r - 1.0) * 100:+.2f}%")
            for i, (b, d, r) in enumerate(rounds)
        ],
    )
    with capsys.disabled():
        print("\n== Disabled-observability overhead "
              f"(PLDS subset: {', '.join(SUBSET_NAMES)}) ==")
        print(table)

    best = min(r for _, _, r in rounds)
    assert best < 1.0 + MAX_OVERHEAD, (
        f"disabled observability costs {(best - 1.0) * 100:.2f}% "
        f"(budget {MAX_OVERHEAD * 100:.0f}%) across {len(rounds)} rounds"
    )


def test_enabled_obs_cost_on_record(capsys):
    """Not an assertion on speed — documents what tracing costs."""
    bench = _subset()[1]  # twolf: mid-sized, exercises the dynamic stage
    module = bench.compile(fresh=True)
    start = time.perf_counter()
    with obs.enabled() as ctx:
        report = DcaAnalyzer(
            module,
            entry=bench.entry,
            rtol=bench.rtol,
            liveout_policy=bench.liveout_policy,
        ).analyze()
        spans = len(ctx.tracer.spans)
        instructions = ctx.metrics.value("interp.instructions")
    enabled_ms = (time.perf_counter() - start) * 1000.0

    rows = [
        (stage, f"{ms:.2f}")
        for stage, ms in sorted(report.stage_times_ms.items())
    ]
    with capsys.disabled():
        print(f"\n== Enabled-observability cost ({bench.name}) ==")
        print(format_table(("Stage", "ms"), rows))
        print(
            f"total {enabled_ms:.1f} ms, {spans} spans, "
            f"{instructions} interpreted instructions"
        )

    assert spans > 0
    assert instructions > 0
    assert set(report.stage_times_ms) >= {"selection", "golden", "dynamic"}
    assert not obs.is_enabled()
