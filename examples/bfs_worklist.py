#!/usr/bin/env python3
"""The paper's Fig. 2 walkthrough: BFS with worklists.

Runs the full analysis pipeline on the Lonestar-style BFS benchmark and
shows the machinery the paper describes:

1. profile-guided iterator recognition pulling ``pop(frontier)`` into the
   iterator slice through a memory dependence,
2. DCA detecting the top-down step as commutative,
3. every baseline detector failing on the same loop.

Run:  python examples/bfs_worklist.py
"""

from repro.baselines import (
    DependenceProfilingDetector,
    DiscoPopDetector,
    IccDetector,
    IdiomsDetector,
    PollyDetector,
    build_context,
)
from repro.benchsuite import by_name
from repro.core import DcaAnalyzer, iterator_fraction

KERNEL = "main.L3"  # the top-down step (paper Fig. 2, lines 9-23)


def main() -> None:
    bench = by_name("BFS")
    module = bench.compile(fresh=True)

    print("== Iterator/payload separation of the top-down step ==")
    ctx = build_context(bench.compile(fresh=True))
    flows = ctx.profile.memory_flow_edges()
    frac_static = iterator_fraction(module.functions["main"], KERNEL)
    frac_guided = iterator_fraction(
        module.functions["main"], KERNEL, memory_flow=flows.get(KERNEL)
    )
    print(f"  iterator share, register slice only : {frac_static:.0%}")
    print(f"  iterator share, profile-guided      : {frac_guided:.0%}")
    print("  (the difference is pop() joining the iterator through the")
    print("   frontier->size memory dependence)\n")

    print("== DCA on the whole program ==")
    report = DcaAnalyzer(bench.compile(fresh=True), rtol=bench.rtol).analyze()
    for label in sorted(report.results):
        result = report.results[label]
        marker = " <= the paper's claim" if label == KERNEL else ""
        print(f"  {label}: {result.verdict}{marker}")

    print("\n== The five baselines on the same kernel loop ==")
    for detector_cls in (
        DependenceProfilingDetector,
        DiscoPopDetector,
        IdiomsDetector,
        PollyDetector,
        IccDetector,
    ):
        det = detector_cls()
        result = det.detect(ctx)[KERNEL]
        verdict = "parallel" if result.parallel else "NOT parallel"
        print(f"  {det.name:14s}: {verdict:13s} ({result.reason[:60]})")


if __name__ == "__main__":
    main()
