#!/usr/bin/env python3
"""Parallelize a PLDS program end-to-end (paper §IV-C / Fig. 5).

Takes the Olden ``treeadd`` port, runs DCA, synthesizes the OpenMP-style
clauses, and simulates execution on machines of increasing core counts —
showing both the achievable speedup and the Amdahl wall from the
sequential iterator (linearization) phase.

Run:  python examples/plds_speedup.py
"""

from repro.baselines import build_context
from repro.benchsuite import by_name
from repro.core import DcaAnalyzer, iterator_fraction
from repro.parallel import MachineModel, ParallelSimulator


def main() -> None:
    bench = by_name("treeadd")
    module = bench.compile(fresh=True)

    report = DcaAnalyzer(bench.compile(fresh=True), rtol=bench.rtol).analyze()
    commutative = report.commutative_labels()
    print(f"DCA found commutative: {', '.join(commutative)}")

    ctx = build_context(bench.compile(fresh=True))
    flows = ctx.profile.memory_flow_edges()
    fractions = {
        label: iterator_fraction(
            module.functions[report.loop(label).function],
            label,
            memory_flow=flows.get(label),
        )
        for label in commutative
    }
    for label, frac in fractions.items():
        print(f"  {label}: {frac:.0%} of the body is the (serial) iterator")

    print("\ncores  speedup   parallelized loops")
    for cores in (2, 4, 8, 16, 32, 72, 144):
        sim = ParallelSimulator(
            bench.compile(fresh=True), model=MachineModel(cores=cores)
        )
        sp = sim.simulate(commutative, serial_fractions=fractions)
        chosen = ", ".join(sp.selection.chosen) or "(none profitable)"
        print(f"{cores:5d}  {sp.speedup:6.2f}x  {chosen}")
        for label, detail in sp.loops.items():
            clauses = detail.clauses.pragma() if detail.clauses else ""
            if cores == 72 and clauses:
                print(f"         codegen: {clauses}")

    print(
        "\nThe curve flattens early: DCA's linearize-then-dispatch scheme"
        "\nkeeps the worklist traversal sequential, so the payload share"
        "\nbounds the speedup (the paper's Table II techniques — partition-"
        "\ning, DSWP — attack exactly that limit)."
    )


if __name__ == "__main__":
    main()
