#!/usr/bin/env python3
"""Quickstart: run Dynamic Commutativity Analysis on the paper's Fig. 1.

Compiles two loops that perform the same map operation — one array-based,
one over a pointer-linked list — and shows that DCA detects both as
commutative, plus a genuinely order-dependent loop it correctly rejects.

Run:  python examples/quickstart.py
"""

from repro import compile_program
from repro.core import DcaAnalyzer

SOURCE = """
struct Node { int val; Node* next; }

func void main() {
  // Fig. 1(a): array-based map.
  int[] array = new int[16];
  for (int i = 0; i < 16; i = i + 1) {
    array[i] = array[i] + 1;
  }

  // Build a linked list (ordered construction: NOT commutative).
  Node* head = null;
  for (int k = 0; k < 12; k = k + 1) {
    Node* n = new Node;
    n->val = k;
    n->next = head;
    head = n;
  }

  // Fig. 1(b): the same map over the list. Dependence analysis sees a
  // cross-iteration read-after-write on `ptr` and gives up; DCA permutes
  // the payload and observes identical live-outs.
  Node* ptr = head;
  while (ptr) {
    ptr->val = ptr->val + 1;
    ptr = ptr->next;
  }

  // A prefix sum: genuinely order-dependent.
  int[] pre = new int[10];
  int acc = 0;
  for (int j = 0; j < 10; j = j + 1) {
    acc = acc + j;
    pre[j] = acc;
  }

  int check = 0;
  ptr = head;
  while (ptr) { check = check + ptr->val; ptr = ptr->next; }
  for (int j = 0; j < 10; j = j + 1) { check = check + pre[j] + array[j]; }
  print(check);
}
"""


def main() -> None:
    module = compile_program(SOURCE)
    report = DcaAnalyzer(module).analyze()

    print("DCA verdicts (paper Fig. 1 loops):\n")
    notes = {
        "main.L0": "array map        (Fig. 1a)",
        "main.L1": "list construction",
        "main.L2": "PLDS map         (Fig. 1b)",
        "main.L3": "prefix sum",
        "main.L4": "list reduction",
        "main.L5": "array reduction",
    }
    for label in sorted(report.results):
        result = report.results[label]
        mark = "PARALLELIZABLE" if result.is_commutative else "ordered"
        print(f"  {label}  {notes.get(label, ''):26s} -> {result.verdict:18s} [{mark}]")

    print(f"\n{report.executions} instrumented executions performed.")
    print("Note how the pointer-chasing loop (main.L2) — invisible to every")
    print("dependence-based technique — is detected just like the array loop.")


if __name__ == "__main__":
    main()
