#!/usr/bin/env python3
"""Detection shoot-out on one NPB kernel (paper Tables I & III in miniature).

Runs DCA and all five baseline detectors on the EP benchmark and prints a
per-loop verdict matrix.

Run:  python examples/npb_detection.py [benchmark-name]
"""

import sys

from repro.baselines import (
    DependenceProfilingDetector,
    DiscoPopDetector,
    IccDetector,
    IdiomsDetector,
    PollyDetector,
    build_context,
)
from repro.benchsuite import by_name
from repro.core import DcaAnalyzer


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "EP"
    bench = by_name(name)

    report = DcaAnalyzer(
        bench.compile(fresh=True),
        rtol=bench.rtol,
        liveout_policy=bench.liveout_policy,
    ).analyze()
    ctx = build_context(bench.compile(fresh=True))

    detectors = [
        DependenceProfilingDetector(),
        DiscoPopDetector(),
        IdiomsDetector(),
        PollyDetector(),
        IccDetector(),
    ]
    results = {det.name: det.detect(ctx) for det in detectors}

    header = f"{'loop':12s} " + " ".join(f"{d.name[:8]:>8s}" for d in detectors)
    header += f" {'DCA':>18s}  ground-truth"
    print(f"Benchmark {bench.name}: {bench.description}\n")
    print(header)
    print("-" * len(header))
    for label in sorted(report.results):
        row = f"{label:12s} "
        for det in detectors:
            verdict = results[det.name].get(label)
            row += f"{'yes' if verdict and verdict.parallel else '-':>8s} "
        dca = report.results[label]
        row += f"{dca.verdict:>18s}"
        truth = bench.ground_truth.get(label)
        row += f"  {'parallel' if truth else 'ordered' if truth is not None else '?'}"
        print(row)

    found = len(report.commutative_labels())
    print(f"\nDCA: {found}/{len(report.results)} loops commutative; "
          f"expert parallelizes {len(bench.expert_loops)} of them.")


if __name__ == "__main__":
    main()
