#!/usr/bin/env python3
"""CI guard: ``repro.obs`` must import nothing outside the stdlib.

The observability subsystem is dependency-free by design so it can be
vendored or enabled in any environment the pipeline runs in.  This
script ast-parses every module under ``src/repro/obs`` and fails (exit
code 1) if any import resolves to a module that is neither in
``sys.stdlib_module_names`` nor inside ``repro.obs`` itself.  Notably,
importing other ``repro`` packages from ``repro.obs`` is a violation:
the dependency arrow points *into* obs, never out of it.

Run from the repository root::

    python tools/check_obs_stdlib.py
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

OBS_DIR = Path(__file__).resolve().parents[1] / "src" / "repro" / "obs"
ALLOWED_PREFIXES = ("repro.obs",)

#: Modules the subsystem is expected to ship; a rename or an
#: accidentally-dropped file fails CI instead of silently narrowing the
#: guard's coverage.
REQUIRED_MODULES = (
    "__init__.py",
    "events.py",
    "export.py",
    "ledger.py",
    "metrics.py",
    "tracer.py",
)


def _root(name: str) -> str:
    return name.split(".", 1)[0]


def _allowed(name: str) -> bool:
    if _root(name) in sys.stdlib_module_names:
        return True
    return any(
        name == prefix or name.startswith(prefix + ".")
        for prefix in ALLOWED_PREFIXES
    )


def check_file(path: Path) -> list[str]:
    violations = []
    tree = ast.parse(path.read_text(), filename=str(path))
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            names = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative import stays inside repro.obs
                continue
            names = [node.module] if node.module else []
        else:
            continue
        for name in names:
            if not _allowed(name):
                violations.append(
                    f"{path}:{node.lineno}: non-stdlib import {name!r}"
                )
    return violations


def main() -> int:
    files = sorted(OBS_DIR.glob("*.py"))
    if not files:
        print(f"error: no modules found under {OBS_DIR}", file=sys.stderr)
        return 2
    present = {path.name for path in files}
    missing = [name for name in REQUIRED_MODULES if name not in present]
    if missing:
        print(
            f"error: expected obs modules missing: {', '.join(missing)}",
            file=sys.stderr,
        )
        return 1
    violations = []
    for path in files:
        violations.extend(check_file(path))
    if violations:
        print("repro.obs must stay stdlib-only; violations:", file=sys.stderr)
        for line in violations:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"ok: {len(files)} modules in repro.obs are stdlib-only")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
