"""Parser unit tests."""

import pytest

from repro.lang import ast_nodes as ast
from repro.lang.errors import ParseError
from repro.lang.parser import parse
from repro.lang.types import (
    BOOL,
    FLOAT,
    INT,
    VOID,
    ArrayType,
    PointerType,
)


def parse_main(body):
    program = parse("func void main() { %s }" % body)
    return program.functions[0].body


def first_stmt(body):
    return parse_main(body)[0]


def test_struct_declaration():
    program = parse("struct Node { int val; Node* next; }")
    decl = program.structs[0]
    assert decl.name == "Node"
    assert decl.field_names == ["val", "next"]
    assert decl.field_types == [INT, PointerType("Node")]


def test_global_declarations():
    program = parse("int n = 5; float x; bool f = true;")
    assert [g.name for g in program.globals] == ["n", "x", "f"]
    assert program.globals[0].var_type == INT
    assert isinstance(program.globals[0].init, ast.IntLit)
    assert program.globals[1].init is None


def test_function_signature():
    program = parse("func int add(int a, float b) { return a; }")
    func = program.functions[0]
    assert func.name == "add"
    assert func.return_type == INT
    assert [(p.name, p.param_type) for p in func.params] == [
        ("a", INT),
        ("b", FLOAT),
    ]


def test_array_types():
    program = parse("int[] a; int[][] b; Node*[] c; struct Node { int v; }")
    assert program.globals[0].var_type == ArrayType(INT)
    assert program.globals[1].var_type == ArrayType(ArrayType(INT))
    assert program.globals[2].var_type == ArrayType(PointerType("Node"))


def test_vardecl_vs_multiplication():
    # `Node* p` is a declaration; like C, the `IDENT * IDENT ;` statement
    # form resolves as a declaration, so multiplications in statement
    # position need an assignment or parentheses.
    stmts = parse_main("Node* p = null; int a = 1; int b = 2; a * b;")
    assert isinstance(stmts[0], ast.VarDecl)
    assert isinstance(stmts[3], ast.VarDecl)  # parsed as `a* b;`
    expr = parse_main("int a = 1; int b = 2; int r = a * b;")[2]
    assert isinstance(expr.init, ast.BinOp)


def test_compound_assignment_keeps_operator():
    stmt = first_stmt("int x = 0; x += 3;")
    stmts = parse_main("int x = 0; x += 3;")
    assign = stmts[1]
    assert isinstance(assign, ast.Assign)
    assert assign.compound_op == "+"
    assert isinstance(assign.value, ast.IntLit)


def test_operator_precedence():
    stmt = first_stmt("int x = 1 + 2 * 3;")
    assert isinstance(stmt.init, ast.BinOp)
    assert stmt.init.op == "+"
    assert stmt.init.rhs.op == "*"


def test_comparison_binds_looser_than_arithmetic():
    stmt = first_stmt("bool b = 1 + 2 < 4;")
    assert stmt.init.op == "<"
    assert stmt.init.lhs.op == "+"


def test_logical_operators_precedence():
    stmt = first_stmt("bool b = true || false && false;")
    assert stmt.init.op == "||"
    assert stmt.init.rhs.op == "&&"


def test_parentheses_override():
    stmt = first_stmt("int x = (1 + 2) * 3;")
    assert stmt.init.op == "*"
    assert stmt.init.lhs.op == "+"


def test_field_access_and_index_chain():
    stmt = first_stmt("int v = p->next->vals[3];")
    index = stmt.init
    assert isinstance(index, ast.IndexAccess)
    field = index.base
    assert isinstance(field, ast.FieldAccess)
    assert field.field_name == "vals"
    assert field.base.field_name == "next"


def test_dot_is_synonym_for_arrow():
    a = first_stmt("int v = p.val;")
    b = first_stmt("int v = p->val;")
    assert isinstance(a.init, ast.FieldAccess)
    assert a.init.field_name == b.init.field_name == "val"


def test_new_struct_and_new_array():
    stmts = parse_main(
        "Node* p = new Node; int[] a = new int[10]; Node*[] q = new Node*[5];"
    )
    assert isinstance(stmts[0].init, ast.NewStruct)
    assert isinstance(stmts[1].init, ast.NewArray)
    assert stmts[1].init.elem_type == INT
    assert stmts[2].init.elem_type == PointerType("Node")


def test_nested_array_allocation():
    stmt = first_stmt("int[][] m = new int[][4];")
    assert stmt.init.elem_type == ArrayType(INT)


def test_if_else_if_chain():
    stmt = first_stmt("if (a) { } else if (b) { } else { }")
    assert isinstance(stmt, ast.If)
    assert isinstance(stmt.else_body[0], ast.If)
    assert stmt.else_body[0].else_body == []or stmt.else_body[0].else_body is not None


def test_while_and_for():
    stmts = parse_main(
        "while (x) { x = x - 1; } for (int i = 0; i < 3; i = i + 1) { }"
    )
    assert isinstance(stmts[0], ast.While)
    assert isinstance(stmts[1], ast.For)
    assert isinstance(stmts[1].init, ast.VarDecl)


def test_for_with_empty_clauses():
    stmt = first_stmt("for (;;) { break; }")
    assert stmt.init is None and stmt.cond is None and stmt.step is None


def test_break_continue_return():
    stmts = parse_main("while (1) { break; continue; } return;")
    assert isinstance(stmts[0].body[0], ast.Break)
    assert isinstance(stmts[0].body[1], ast.Continue)
    assert isinstance(stmts[1], ast.Return)


def test_call_with_arguments():
    stmt = first_stmt("f(1, x, g());")
    call = stmt.expr
    assert isinstance(call, ast.Call)
    assert call.func == "f"
    assert len(call.args) == 3
    assert isinstance(call.args[2], ast.Call)


def test_unary_operators():
    stmt = first_stmt("int x = -y; ")
    assert isinstance(stmt.init, ast.UnOp)
    stmt2 = first_stmt("bool b = !c;")
    assert stmt2.init.op == "!"


def test_missing_semicolon_raises():
    with pytest.raises(ParseError):
        parse("func void main() { int x = 1 }")


def test_unbalanced_braces_raise():
    with pytest.raises(ParseError):
        parse("func void main() { if (x) { }")


def test_bad_type_position_raises():
    with pytest.raises(ParseError):
        parse("func void main() { int = 3; }")


def test_struct_pointer_requires_star():
    with pytest.raises(ParseError):
        parse("func void f(Node n) { }")
