"""OpenMetrics / export-format tests for :mod:`repro.obs.export`.

The acceptance criterion is a round-trip: every instrument recorded
while a real program is analyzed under full observability must appear
in the ``openmetrics`` export, and the exposition must satisfy the
strict parser (HELP/TYPE lines, sample syntax, ``# EOF`` terminator).
"""

import json

import pytest

import repro.obs as obs
from repro.cli import main
from repro.obs.export import (
    EXPORT_FORMATS,
    LABEL_RULES,
    mangle_metric_name,
    parse_openmetrics,
    render_export,
    render_openmetrics,
)
from repro.obs.metrics import MetricsRegistry

PROGRAM = """
func void main() {
  int acc = 0;
  for (int i = 0; i < 8; i = i + 1) { acc += i; }
  print(acc);
}
"""


def expected_family(name: str) -> str:
    """Mirror the renderer's family resolution through the public table."""
    for prefix, _label in LABEL_RULES:
        if name.startswith(prefix) and len(name) > len(prefix):
            return mangle_metric_name(prefix.rstrip("."))
    return mangle_metric_name(name)


# -- name mangling and label rules --------------------------------------------


def test_mangle_replaces_invalid_chars_and_prefixes():
    assert mangle_metric_name("dca.schedule_executions") == (
        "repro_dca_schedule_executions"
    )
    assert mangle_metric_name("a-b c.d") == "repro_a_b_c_d"
    # Already-prefixed names are not double-prefixed.
    assert mangle_metric_name("repro_x") == "repro_x"


def test_label_rules_collapse_dimensional_families():
    registry = MetricsRegistry()
    registry.counter("interp.intrinsic.rt_verify").inc(3)
    registry.counter("interp.intrinsic.print").inc(1)
    text = render_openmetrics(registry)
    families = parse_openmetrics(text)
    fam = families["repro_interp_intrinsic"]
    assert fam["type"] == "counter"
    samples = {labels["name"]: value for _n, labels, value in fam["samples"]}
    assert samples == {"rt_verify": 3.0, "print": 1.0}


def test_label_values_escape_and_round_trip():
    registry = MetricsRegistry()
    tricky = 'weird\\name"with\nnewline'
    registry.counter("interp.intrinsic." + tricky).inc()
    families = parse_openmetrics(render_openmetrics(registry))
    (_name, labels, value), = families["repro_interp_intrinsic"]["samples"]
    assert labels == {"name": tricky}
    assert value == 1.0


# -- renderer shape ------------------------------------------------------------


def test_render_counters_gauges_histograms():
    registry = MetricsRegistry()
    registry.counter("dca.loops").inc(4)
    registry.gauge("schedule.queue_depth").set(7)
    hist = registry.histogram("dca.snapshot_bytes")
    hist.observe(8)
    hist.observe(24)
    text = render_openmetrics(registry)
    families = parse_openmetrics(text)

    assert families["repro_dca_loops"]["type"] == "counter"
    assert families["repro_dca_loops"]["samples"] == [
        ("repro_dca_loops_total", {}, 4.0)
    ]
    assert families["repro_schedule_queue_depth"]["type"] == "gauge"
    summary = families["repro_dca_snapshot_bytes"]
    assert summary["type"] == "summary"
    samples = {name: value for name, _l, value in summary["samples"]}
    assert samples["repro_dca_snapshot_bytes_count"] == 2.0
    assert samples["repro_dca_snapshot_bytes_sum"] == 32.0
    # min/max ride along as companion gauges.
    assert families["repro_dca_snapshot_bytes_min"]["samples"][0][2] == 8.0
    assert families["repro_dca_snapshot_bytes_max"]["samples"][0][2] == 24.0


def test_render_ends_with_eof_and_has_help_type_per_family():
    registry = MetricsRegistry()
    registry.counter("dca.loops").inc()
    text = render_openmetrics(registry)
    assert text.endswith("# EOF\n")
    lines = text.splitlines()
    assert "# HELP repro_dca_loops" in lines[0]
    assert lines[1] == "# TYPE repro_dca_loops counter"


def test_render_is_deterministic():
    def build():
        registry = MetricsRegistry()
        registry.counter("b.two").inc(2)
        registry.counter("a.one").inc(1)
        registry.gauge("c.three").set(3)
        return render_openmetrics(registry)

    assert build() == build()


# -- strict parser -------------------------------------------------------------


def test_parser_rejects_missing_eof():
    with pytest.raises(ValueError, match="EOF"):
        parse_openmetrics("# TYPE x counter\nx_total 1\n")


def test_parser_rejects_content_after_eof():
    with pytest.raises(ValueError, match="after # EOF"):
        parse_openmetrics("# EOF\nx 1\n")


def test_parser_rejects_orphan_sample():
    with pytest.raises(ValueError, match="precedes"):
        parse_openmetrics("x_total 1\n# EOF\n")


def test_parser_rejects_malformed_value_and_labels():
    with pytest.raises(ValueError, match="malformed value"):
        parse_openmetrics("# TYPE x counter\nx_total abc\n# EOF\n")
    with pytest.raises(ValueError, match="malformed labels"):
        parse_openmetrics('# TYPE x counter\nx_total{oops} 1\n# EOF\n')


# -- acceptance: full-pipeline round trip --------------------------------------


@pytest.fixture()
def program_file(tmp_path):
    path = tmp_path / "prog.mc"
    path.write_text(PROGRAM)
    return str(path)


def test_every_profile_instrument_appears_in_openmetrics(program_file):
    from repro.api import AnalysisConfig, AnalysisSession

    with AnalysisSession(AnalysisConfig()) as session:
        _report, ctx = session.profile(
            open(program_file).read(), source_path=program_file
        )
    payload = ctx.metrics.to_dict()
    instruments = (
        list(payload["counters"])
        + list(payload["gauges"])
        + list(payload["histograms"])
    )
    assert instruments, "profile run must record instruments"

    families = parse_openmetrics(render_openmetrics(ctx.metrics))
    for name in instruments:
        fam = expected_family(name)
        assert fam in families, f"instrument {name!r} missing from export"
        assert families[fam]["samples"], f"family {fam!r} has no samples"


def test_profile_export_cli_emits_valid_exposition(program_file, capsys):
    rc = main(["profile", program_file, "--export", "openmetrics"])
    out = capsys.readouterr().out
    assert rc == 0
    families = parse_openmetrics(out)
    assert "repro_interp_instructions" in families
    # The human-readable report is suppressed when exporting to stdout.
    assert "pipeline profile" not in out


def test_profile_export_out_writes_file(program_file, tmp_path, capsys):
    out_path = tmp_path / "metrics.prom"
    rc = main([
        "profile", program_file,
        "--export", "openmetrics", "--export-out", str(out_path),
    ])
    assert rc == 0
    families = parse_openmetrics(out_path.read_text())
    assert families
    assert "export written" in capsys.readouterr().err


def test_export_formats_chrome_trace_and_jsonl(program_file, capsys):
    rc = main(["profile", program_file, "--export", "chrome-trace"])
    trace = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert trace["traceEvents"]

    rc = main(["profile", program_file, "--export", "jsonl"])
    lines = capsys.readouterr().out.strip().splitlines()
    assert rc == 0
    records = [json.loads(line) for line in lines]
    kinds = {record["type"] for record in records}
    assert "span" in kinds and "counter" in kinds


def test_render_export_rejects_unknown_format():
    ctx = obs.enable()
    try:
        with pytest.raises(ValueError, match="unknown export format"):
            render_export(ctx, "xml")
    finally:
        obs.disable()
    assert set(EXPORT_FORMATS) == {"openmetrics", "chrome-trace", "jsonl"}
