"""Type checker unit tests."""

import pytest

from repro.lang.checker import check
from repro.lang.errors import TypeError_
from repro.lang.parser import parse
from repro.lang.types import BOOL, FLOAT, INT, PointerType


def check_ok(source):
    return check(parse(source))


def check_fails(source, fragment=""):
    with pytest.raises(TypeError_) as err:
        check(parse(source))
    if fragment:
        assert fragment in str(err.value)
    return err.value


def test_simple_program_checks():
    checked = check_ok(
        "struct N { int v; } func void main() { N* p = new N; p->v = 3; }"
    )
    assert "N" in checked.structs
    assert checked.functions["main"].return_type.__class__.__name__ == "VoidType"


def test_undefined_variable():
    check_fails("func void main() { x = 1; }", "undefined variable")


def test_undefined_function():
    check_fails("func void main() { g(); }", "undefined function")


def test_duplicate_function():
    check_fails("func void f() { } func void f() { }", "duplicate function")


def test_duplicate_struct():
    check_fails("struct S { int a; } struct S { int b; }", "duplicate struct")


def test_duplicate_local():
    check_fails("func void main() { int x; int x; }", "redeclaration")


def test_shadowing_in_nested_scope_is_allowed():
    check_ok("func void main() { int x = 1; if (x > 0) { int x = 2; } }")


def test_unknown_struct_in_pointer_type():
    check_fails("func void main() { Foo* p = null; }", "unknown struct")


def test_unknown_field():
    check_fails(
        "struct N { int v; } func void main() { N* p = new N; p->w = 1; }",
        "no field",
    )


def test_field_access_on_non_pointer():
    check_fails("func void main() { int x = 1; int y = x->v; }")


def test_indexing_non_array():
    check_fails("func void main() { int x = 1; int y = x[0]; }")


def test_array_index_must_be_int():
    check_fails("func void main() { int[] a = new int[4]; a[1.5] = 0; }")


def test_int_widens_to_float():
    check_ok("func void main() { float x = 3; x = x + 1; }")


def test_float_does_not_narrow_to_int():
    check_fails("func void main() { int x = 1.5; }", "cannot assign")


def test_null_assignable_to_references_only():
    check_ok("struct N { int v; } func void main() { N* p = null; }")
    check_fails("func void main() { int x = null; }")


def test_null_comparison_with_pointer():
    check_ok(
        "struct N { int v; } func void main() { N* p = null;"
        " if (p != null) { } }"
    )


def test_condition_accepts_int_and_pointer():
    check_ok(
        "struct N { int v; } func void main() { int x = 1; N* p = null;"
        " while (x) { x = 0; } if (p) { } }"
    )


def test_condition_rejects_float():
    check_fails("func void main() { float f = 1.0; if (f) { } }")


def test_modulo_requires_ints():
    check_fails("func void main() { float x = 1.0 % 2.0; }")


def test_return_type_checked():
    check_fails("func int f() { return 1.5; }")
    check_fails("func void f() { return 3; }")
    check_fails("func int f() { return; }")


def test_call_arity_checked():
    check_fails(
        "func int f(int a) { return a; } func void main() { f(1, 2); }",
        "expects 1 args",
    )


def test_call_argument_types_checked():
    check_fails(
        "struct N { int v; } func int f(int a) { return a; }"
        " func void main() { N* p = null; f(p); }"
    )


def test_break_outside_loop():
    check_fails("func void main() { break; }", "outside a loop")


def test_compound_assign_requires_numeric():
    check_fails(
        "struct N { int v; } func void main() { N* p = null; p += 1; }"
    )


def test_compound_assign_float_into_int_rejected():
    check_fails("func void main() { int x = 1; x += 0.5; }")


def test_builtin_len_requires_array():
    check_fails("func void main() { int n = len(3); }")


def test_builtin_min_max_polymorphic():
    checked = check_ok(
        "func void main() { int a = min(1, 2); float b = max(1.0, 2); }"
    )
    assert checked is not None


def test_expression_types_annotated():
    checked = check_ok("func void main() { int x = 1 + 2; bool b = x < 3; }")
    body = checked.program.functions[0].body
    assert body[0].init.type == INT
    assert body[1].init.type == BOOL


def test_global_initializer_must_be_constant():
    with pytest.raises(TypeError_):
        from repro.ir.lowering import lower
        lower(check(parse("int g = 1 + 2;")))


def test_void_variable_rejected():
    check_fails("func void main() { void x; }")


def test_user_function_cannot_shadow_builtin():
    check_fails("func int len(int x) { return x; }", "duplicate function")
