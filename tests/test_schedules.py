"""Schedule tests, including hypothesis property tests."""

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.schedules import (
    EvenOddSchedule,
    IdentitySchedule,
    RandomSchedule,
    ReverseSchedule,
    RotationSchedule,
    ScheduleConfig,
    is_valid_permutation,
)

ALL_SCHEDULES = [
    IdentitySchedule(),
    ReverseSchedule(),
    RandomSchedule(7),
    RandomSchedule(12345),
    EvenOddSchedule(),
    RotationSchedule(1),
    RotationSchedule(5),
]


@given(st.integers(min_value=0, max_value=300))
@settings(max_examples=60)
def test_every_schedule_yields_valid_permutation(n):
    for schedule in ALL_SCHEDULES:
        order = schedule.permutation(n)
        assert is_valid_permutation(order, n), (schedule.name, n)


@given(st.integers(min_value=0, max_value=100))
def test_identity_is_identity(n):
    assert IdentitySchedule().permutation(n) == list(range(n))


@given(st.integers(min_value=0, max_value=100))
def test_reverse_is_reverse(n):
    assert ReverseSchedule().permutation(n) == list(range(n))[::-1]


@given(st.integers(min_value=0, max_value=64), st.integers(0, 2**30))
def test_random_schedule_is_deterministic(n, seed):
    a = RandomSchedule(seed).permutation(n)
    b = RandomSchedule(seed).permutation(n)
    assert a == b


def test_random_schedules_differ_by_seed():
    a = RandomSchedule(1).permutation(50)
    b = RandomSchedule(2).permutation(50)
    assert a != b


@given(st.integers(min_value=2, max_value=200))
def test_reverse_actually_perturbs(n):
    assert ReverseSchedule().permutation(n) != list(range(n))


@given(st.integers(min_value=0, max_value=50), st.integers(1, 49))
def test_rotation_wraps(n, k):
    order = RotationSchedule(k).permutation(n)
    assert is_valid_permutation(order, n)
    if n > 1:
        assert order[0] == k % n


def test_default_config_shape():
    config = ScheduleConfig.default(n_random=3)
    names = [s.name for s in config.schedules]
    assert names[0] == "identity"
    assert names[1] == "reverse"
    assert len([n for n in names if n.startswith("random")]) == 3
    # identity is excluded from the perturbing set
    testing = config.testing_schedules()
    assert all(s.name != "identity" for s in testing)
    assert len(testing) == 4


def test_evenodd_separates_parities():
    order = EvenOddSchedule().permutation(6)
    assert order == [0, 2, 4, 1, 3, 5]


def test_is_valid_permutation_rejects_bad():
    assert not is_valid_permutation([0, 0, 1], 3)
    assert not is_valid_permutation([0, 1], 3)
    assert not is_valid_permutation([1, 2, 3], 3)


# -- ScheduleConfig permutation properties -------------------------------------


@given(
    st.lists(st.integers(min_value=-1000, max_value=1000), max_size=64),
    st.integers(0, 2**30),
)
@settings(max_examples=60)
def test_config_schedules_preserve_iteration_multiset(values, seed):
    """Every testing schedule is a true permutation of the identity
    iteration order: applying it to a recorded iterator buffer yields the
    same multiset of iterator values, every value exactly once."""
    config = ScheduleConfig.default(seed=seed)
    identity = [values[i] for i in IdentitySchedule().permutation(len(values))]
    assert identity == values
    for schedule in config.testing_schedules():
        order = schedule.permutation(len(values))
        assert is_valid_permutation(order, len(values)), schedule.name
        permuted = [values[i] for i in order]
        assert sorted(permuted) == sorted(values), schedule.name


@given(st.integers(0, 2**30), st.integers(min_value=0, max_value=64))
@settings(max_examples=60)
def test_random_schedules_reproducible_from_recorded_seed(seed, n):
    """A random schedule's recorded seed fully determines it: rebuilding
    the schedule from the seed reproduces the permutation (the property
    that makes fuzz failures and worker executions replayable)."""
    original = RandomSchedule(seed)
    rebuilt = RandomSchedule(original.seed)
    assert rebuilt.name == original.name
    assert rebuilt.permutation(n) == original.permutation(n)


@given(st.integers(0, 2**30), st.integers(min_value=0, max_value=64))
@settings(max_examples=30)
def test_schedules_survive_pickling(seed, n):
    """Schedules cross process boundaries as work-unit fields; a pickle
    round-trip must preserve the permutation exactly."""
    config = ScheduleConfig.default(seed=seed)
    for schedule in config.schedules:
        clone = pickle.loads(pickle.dumps(schedule))
        assert clone.name == schedule.name
        assert clone.permutation(n) == schedule.permutation(n)
