"""Schedule tests, including hypothesis property tests."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.schedules import (
    EvenOddSchedule,
    IdentitySchedule,
    RandomSchedule,
    ReverseSchedule,
    RotationSchedule,
    ScheduleConfig,
    is_valid_permutation,
)

ALL_SCHEDULES = [
    IdentitySchedule(),
    ReverseSchedule(),
    RandomSchedule(7),
    RandomSchedule(12345),
    EvenOddSchedule(),
    RotationSchedule(1),
    RotationSchedule(5),
]


@given(st.integers(min_value=0, max_value=300))
@settings(max_examples=60)
def test_every_schedule_yields_valid_permutation(n):
    for schedule in ALL_SCHEDULES:
        order = schedule.permutation(n)
        assert is_valid_permutation(order, n), (schedule.name, n)


@given(st.integers(min_value=0, max_value=100))
def test_identity_is_identity(n):
    assert IdentitySchedule().permutation(n) == list(range(n))


@given(st.integers(min_value=0, max_value=100))
def test_reverse_is_reverse(n):
    assert ReverseSchedule().permutation(n) == list(range(n))[::-1]


@given(st.integers(min_value=0, max_value=64), st.integers(0, 2**30))
def test_random_schedule_is_deterministic(n, seed):
    a = RandomSchedule(seed).permutation(n)
    b = RandomSchedule(seed).permutation(n)
    assert a == b


def test_random_schedules_differ_by_seed():
    a = RandomSchedule(1).permutation(50)
    b = RandomSchedule(2).permutation(50)
    assert a != b


@given(st.integers(min_value=2, max_value=200))
def test_reverse_actually_perturbs(n):
    assert ReverseSchedule().permutation(n) != list(range(n))


@given(st.integers(min_value=0, max_value=50), st.integers(1, 49))
def test_rotation_wraps(n, k):
    order = RotationSchedule(k).permutation(n)
    assert is_valid_permutation(order, n)
    if n > 1:
        assert order[0] == k % n


def test_default_config_shape():
    config = ScheduleConfig.default(n_random=3)
    names = [s.name for s in config.schedules]
    assert names[0] == "identity"
    assert names[1] == "reverse"
    assert len([n for n in names if n.startswith("random")]) == 3
    # identity is excluded from the perturbing set
    testing = config.testing_schedules()
    assert all(s.name != "identity" for s in testing)
    assert len(testing) == 4


def test_evenodd_separates_parities():
    order = EvenOddSchedule().permutation(6)
    assert order == [0, 2, 4, 1, 3, 5]


def test_is_valid_permutation_rejects_bad():
    assert not is_valid_permutation([0, 0, 1], 3)
    assert not is_valid_permutation([0, 1], 3)
    assert not is_valid_permutation([1, 2, 3], 3)
