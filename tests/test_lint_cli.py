"""``repro lint`` smoke test over every program in ``examples/``.

Every ``.mc`` file is linted directly; every ``.py`` example is scanned
for an inline ``SOURCE`` program and for ``by_name("...")`` benchmark
references, and each program found is linted too — so example programs
cannot rot silently.
"""

import json
import re
from pathlib import Path

import pytest

from repro.benchsuite import by_name
from repro.cli import main

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _lint(path, capsys, json_mode=False):
    argv = ["lint", str(path)] + (["--json"] if json_mode else [])
    exit_code = main(argv)
    out = capsys.readouterr().out
    # An unsound `commutative` annotation is a lint error by contract.
    expected = 1 if "unsound" in Path(path).name else 0
    assert exit_code == expected
    assert out.strip(), f"no diagnostics for {path}"
    return out


def _programs_from_python(path):
    """(name, source) programs referenced by one example script."""
    text = path.read_text()
    programs = []
    match = re.search(r'SOURCE\s*=\s*(?:r)?"""(.*?)"""', text, re.DOTALL)
    if match:
        programs.append((f"{path.name}:SOURCE", match.group(1)))
    # Literal by_name("X") references plus argv-default names
    # (`sys.argv[1] if ... else "X"`).
    names = set(re.findall(r'by_name\(\s*"([^"]+)"\s*\)', text))
    if "by_name" in text:
        names.update(re.findall(r'else\s+"([^"]+)"', text))
    for name in sorted(names):
        try:
            source = by_name(name).source
        except KeyError:
            continue
        programs.append((f"{path.name}:{name}", source))
    return programs


def _example_files():
    files = sorted(EXAMPLES.iterdir())
    assert files, "examples/ directory is empty"
    return files


@pytest.mark.parametrize(
    "path", _example_files(), ids=lambda p: p.name
)
def test_lint_example(path, tmp_path, capsys):
    if path.suffix == ".mc":
        out = _lint(path, capsys)
        assert "loops (" in out  # summary line present
    elif path.suffix == ".py":
        programs = _programs_from_python(path)
        assert programs, f"{path.name} references no lintable program"
        for name, source in programs:
            target = tmp_path / (re.sub(r"\W", "_", name) + ".mc")
            target.write_text(source)
            _lint(target, capsys)
    else:
        pytest.skip(f"not a lintable example: {path.name}")


def test_lint_json_output(capsys):
    mc_files = [p for p in _example_files() if p.suffix == ".mc"]
    assert mc_files
    payload = json.loads(_lint(mc_files[0], capsys, json_mode=True))
    assert payload["diagnostics"], "JSON output has no diagnostics"
    for diag in payload["diagnostics"]:
        assert diag["severity"] in ("warning", "info", "note")
        assert diag["loop"] and diag["function"]


def test_lint_flags_each_archetype(capsys):
    """The shipped examples cover all three diagnostic severities."""
    seen = set()
    for path in EXAMPLES.glob("*.mc"):
        out = _lint(path, capsys)
        for sev in ("warning", "info", "note"):
            if f" {sev}: " in out:
                seen.add(sev)
    assert seen == {"warning", "info", "note"}


def test_lint_validates_sound_annotation(capsys):
    out = _lint(EXAMPLES / "specs_annotation.mc", capsys)
    assert "[DCA-SPEC]" in out
    assert "DCA-SPEC-UNSOUND" not in out
    assert "monoid" in out


def test_lint_rejects_unsound_annotation(capsys):
    out = _lint(EXAMPLES / "specs_unsound.mc", capsys)
    assert "DCA-SPEC-UNSOUND" in out
    assert "unsound commutative annotation" in out


def test_lint_suggests_declarable_container(capsys):
    """A chain-building loop over an undeclared struct earns a
    DCA-SPEC-SUGGEST note pointing at the missing declaration."""
    out = _lint(EXAMPLES / "pointer_chase.mc", capsys)
    assert "DCA-SPEC-SUGGEST" in out
    assert "order-insensitive" in out


def test_lint_specs_flag_upgrades_annotated_call_loop(capsys):
    path = EXAMPLES / "specs_annotation.mc"
    # --no-specs forces the byte-exact baseline even under REPRO_SPECS=1.
    assert main(["lint", str(path), "--no-specs"]) == 0
    base = capsys.readouterr().out
    assert "DCA-DYN" in base  # call loop deferred to dynamic, specs off
    exit_code = main(["lint", str(path), "--specs"])
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "DCA-DYN" not in out  # proven statically via the annotation
    assert "spec-callee" in out
