"""The analysis daemon: config resolution, HTTP surface, coalescing,
admission control, batch streaming, and the metrics endpoint.

Server-backed tests host the daemon on a background thread via
:func:`repro.serve.serving` with ``port=0`` (a free port per test) and a
temp-dir cache/ledger, so tests are hermetic and parallel-safe.
"""

import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import AnalysisConfig
from repro.obs.export import parse_openmetrics
from repro.obs.ledger import RunLedger
from repro.serve import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    DEFAULT_PRIORITY,
    DEFAULT_QUEUE_DEPTH,
    DEFAULT_WORKERS,
    SERVE_HOST_ENV,
    SERVE_PORT_ENV,
    SERVE_PRIORITY_ENV,
    SERVE_QUEUE_DEPTH_ENV,
    SERVE_WORKERS_ENV,
    AnalysisServer,
    ServeClient,
    ServeConfig,
    resolve_serve_config,
    serving,
)

GOOD = """
func void main() {
  int[] a = new int[16];
  int s = 0;
  for (int i = 0; i < 16; i = i + 1) { a[i] = i * 2; }
  for (int i = 0; i < 16; i = i + 1) { s += a[i]; }
  print(s);
}
"""

#: Big enough that the analysis is still in flight when concurrent
#: duplicate requests arrive — the coalescing tests depend on overlap.
SLOW = """
func void main() {
  int[] a = new int[2000];
  int s = 0;
  for (int i = 0; i < 2000; i = i + 1) { a[i] = i * 3; }
  for (int i = 0; i < 2000; i = i + 1) { s += a[i]; }
  for (int i = 0; i < 2000; i = i + 1) { a[i] = a[i] + s; }
  print(s);
}
"""

BROKEN = "func void main( {"


# ---------------------------------------------------------------------------
# resolve_serve_config: explicit flag > env var > default
# ---------------------------------------------------------------------------


class TestResolveServeConfig:
    def test_defaults(self):
        cfg = resolve_serve_config(environ={})
        assert cfg == ServeConfig(
            host=DEFAULT_HOST,
            port=DEFAULT_PORT,
            queue_depth=DEFAULT_QUEUE_DEPTH,
            workers=DEFAULT_WORKERS,
            default_priority=DEFAULT_PRIORITY,
        )

    def test_env_beats_default(self):
        cfg = resolve_serve_config(
            environ={
                SERVE_HOST_ENV: "0.0.0.0",
                SERVE_PORT_ENV: "9000",
                SERVE_QUEUE_DEPTH_ENV: "7",
                SERVE_WORKERS_ENV: "2",
                SERVE_PRIORITY_ENV: "3",
            }
        )
        assert cfg.host == "0.0.0.0"
        assert cfg.port == 9000
        assert cfg.queue_depth == 7
        assert cfg.workers == 2
        assert cfg.default_priority == 3

    def test_explicit_beats_env(self):
        cfg = resolve_serve_config(
            host="10.0.0.1",
            port=1234,
            queue_depth=5,
            workers=1,
            default_priority=0,
            environ={
                SERVE_HOST_ENV: "0.0.0.0",
                SERVE_PORT_ENV: "9000",
                SERVE_QUEUE_DEPTH_ENV: "7",
                SERVE_WORKERS_ENV: "2",
                SERVE_PRIORITY_ENV: "3",
            },
        )
        assert cfg.host == "10.0.0.1"
        assert cfg.port == 1234
        assert cfg.queue_depth == 5
        assert cfg.workers == 1
        assert cfg.default_priority == 0

    def test_empty_env_value_means_default(self):
        cfg = resolve_serve_config(environ={SERVE_PORT_ENV: ""})
        assert cfg.port == DEFAULT_PORT

    def test_non_integer_env_rejected(self):
        with pytest.raises(ValueError, match="REPRO_SERVE_PORT"):
            resolve_serve_config(environ={SERVE_PORT_ENV: "abc"})

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            ServeConfig(queue_depth=0)
        with pytest.raises(ValueError):
            ServeConfig(workers=0)
        with pytest.raises(ValueError):
            ServeConfig(port=70000)


# ---------------------------------------------------------------------------
# Server fixtures
# ---------------------------------------------------------------------------


@pytest.fixture
def server(tmp_path):
    srv = AnalysisServer(
        ServeConfig(port=0, workers=2, queue_depth=8),
        base=AnalysisConfig(
            cache_dir=str(tmp_path / "cache"),
            ledger_dir=str(tmp_path / "ledger"),
        ),
    )
    with serving(srv):
        yield srv


@pytest.fixture
def client(server):
    return ServeClient(f"http://127.0.0.1:{server.port}")


# ---------------------------------------------------------------------------
# Basic HTTP surface
# ---------------------------------------------------------------------------


class TestEndpoints:
    def test_healthz(self, client, server):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["queue_limit"] == 8
        assert health["workers"] == 2
        assert health["cache"] is True

    def test_analyze_round_trip(self, client):
        status, headers, data = client.analyze(GOOD, name="good.mc")
        assert status == 200
        assert data["kind"] == "analyze"
        report = data["report"]
        assert len(report["loops"]) == 2
        counts = report["verdict_counts"]
        assert counts.get("commutative", 0) + counts.get(
            "commutative-vacuous", 0
        ) == 2
        assert headers.get("X-Repro-Module-Digest") == data["module_digest"]

    def test_detect_round_trip(self, client):
        status, _, data = client.analyze(GOOD, kind="detect")
        assert status == 200
        assert data["kind"] == "detect"
        assert sorted(data["baselines"]) == [
            "dep-profiling", "discopop", "icc", "idioms", "polly",
        ]

    def test_parse_error_is_400(self, client):
        status, _, data = client.analyze(BROKEN)
        assert status == 400
        assert data["status"] == "parse-error"
        assert data["error"]

    def test_missing_source_is_400(self, client):
        status, _, data = client.request_json(
            "POST", "/v1/analyze", {"config": {}}
        )
        assert status == 400
        assert "source" in data["error"]

    def test_unknown_config_field_is_400(self, client):
        status, _, data = client.request_json(
            "POST",
            "/v1/analyze",
            {"source": GOOD, "config": {"backend": "process"}},
        )
        assert status == 400
        assert "backend" in data["error"]

    def test_unknown_endpoint_is_404(self, client):
        status, _, _ = client.request_json("GET", "/v2/nope")
        assert status == 404

    def test_get_on_analyze_is_405(self, client):
        status, _, _ = client.request_json("GET", "/v1/analyze")
        assert status == 405

    def test_malformed_json_body_is_400(self, client):
        status, _, data = client.request("POST", "/v1/analyze")
        assert status == 400

    def test_config_overrides_apply(self, client):
        status, _, data = client.analyze(
            GOOD, config={"static_filter": False}
        )
        assert status == 200
        assert data["report"]["static_filter"] is False

    def test_tiering_accepted_per_request(self, client):
        status, _, data = client.analyze(
            GOOD, config={"tiering": True, "max_pipeline_stages": 3}
        )
        assert status == 200
        report = data["report"]
        assert report["report_schema_version"] == 2
        assert sum(report["tier_counts"].values()) == len(report["loops"])
        for loop in report["loops"].values():
            assert loop["verdict"]["tier"] in (
                "DOALL", "REDUCTION", "PIPELINE", "SEQUENTIAL"
            )

    def test_untiered_request_keeps_schema_1(self, client):
        # Explicit off (the server may inherit REPRO_TIERING from its
        # environment, e.g. the tests-tiering CI job).
        status, _, data = client.analyze(GOOD, config={"tiering": False})
        assert status == 200
        report = data["report"]
        assert "report_schema_version" not in report
        assert "tier_counts" not in report
        for loop in report["loops"].values():
            assert isinstance(loop["verdict"], str)


# ---------------------------------------------------------------------------
# Coalescing
# ---------------------------------------------------------------------------


class TestCoalescing:
    def test_concurrent_duplicates_run_one_analysis(self, client, server):
        """K identical concurrent submissions -> one analysis, K-1
        coalesced joins, byte-identical bodies."""
        before = server.metrics.value("serve.analyses", 0)
        k = 4
        with ThreadPoolExecutor(k) as pool:
            results = list(
                pool.map(
                    lambda _: client.request(
                        "POST", "/v1/analyze", {"source": SLOW}
                    ),
                    range(k),
                )
            )
        assert [status for status, _, _ in results] == [200] * k
        bodies = {body for _, _, body in results}
        assert len(bodies) == 1, "coalesced responses must be byte-identical"
        coalesced = sum(
            1
            for _, headers, _ in results
            if headers.get("X-Repro-Coalesced") == "1"
        )
        analyses = server.metrics.value("serve.analyses", 0) - before
        assert analyses == 1
        assert coalesced == k - 1

    def test_different_configs_do_not_coalesce(self, client, server):
        before = server.metrics.value("serve.analyses", 0)
        with ThreadPoolExecutor(2) as pool:
            futs = [
                pool.submit(
                    client.analyze, SLOW, config={"schedule_seed": seed}
                )
                for seed in (1, 2)
            ]
            results = [f.result() for f in futs]
        assert [r[0] for r in results] == [200, 200]
        assert server.metrics.value("serve.analyses", 0) - before == 2

    def test_sequential_duplicates_hit_warm_cache(self, client, tmp_path):
        # static_filter off forces the dynamic stage, whose verdicts are
        # what the persistent cache stores.
        config = {"static_filter": False}
        first = client.analyze(GOOD, name="warm.mc", config=config)
        second = client.analyze(GOOD, name="warm.mc", config=config)
        assert first[0] == second[0] == 200
        # Not coalesced (no overlap): the second request replays from
        # the shared rw cache.  Everything except this run's stage wall
        # times reproduces the cold report exactly.
        a, b = first[2], second[2]
        a["report"]["metrics"].pop("stage_times_ms")
        b["report"]["metrics"].pop("stage_times_ms")
        assert a == b
        # The server's ledger rows carry per-request cache accounting.
        with RunLedger(str(tmp_path / "ledger")) as ledger:
            rows = [
                row for row in ledger.runs() if row["program"] == "warm.mc"
            ]
        assert len(rows) == 2
        assert any(row["cache_hits"] > 0 for row in rows)
        assert any(row["cache_misses"] > 0 for row in rows)


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------


class TestAdmission:
    def test_queue_overflow_yields_429_with_retry_after(self, tmp_path):
        srv = AnalysisServer(
            ServeConfig(port=0, workers=1, queue_depth=1),
            base=AnalysisConfig(cache_mode="off", ledger_dir="off"),
        )
        with serving(srv):
            client = ServeClient(f"http://127.0.0.1:{srv.port}")
            payloads = [
                {"source": SLOW.replace("2000", str(2000 + n))}
                for n in range(6)
            ]
            with ThreadPoolExecutor(len(payloads)) as pool:
                results = list(
                    pool.map(
                        lambda p: client.request("POST", "/v1/analyze", p),
                        payloads,
                    )
                )
            statuses = sorted(status for status, _, _ in results)
            assert 429 in statuses, statuses
            rejected = next(r for r in results if r[0] == 429)
            assert int(rejected[1]["Retry-After"]) >= 1
            body = json.loads(rejected[2])
            assert body["queue_limit"] == 1
            assert srv.metrics.value("serve.rejected", 0) >= 1

    def test_rejected_requests_do_not_leak_slots(self, tmp_path):
        srv = AnalysisServer(
            ServeConfig(port=0, workers=1, queue_depth=1),
            base=AnalysisConfig(cache_mode="off", ledger_dir="off"),
        )
        with serving(srv):
            client = ServeClient(f"http://127.0.0.1:{srv.port}")
            with ThreadPoolExecutor(4) as pool:
                list(
                    pool.map(
                        lambda n: client.request(
                            "POST",
                            "/v1/analyze",
                            {"source": SLOW.replace("2000", str(3000 + n))},
                        ),
                        range(4),
                    )
                )
            # Once everything drains, a fresh request must be admitted.
            status, _, _ = client.analyze(GOOD)
            assert status == 200
            assert client.healthz()["queue_depth"] == 0


# ---------------------------------------------------------------------------
# Batch streaming
# ---------------------------------------------------------------------------


class TestBatchEndpoint:
    def test_streams_results_and_summary(self, client):
        lines = list(
            client.batch(
                [
                    {"name": "good.mc", "source": GOOD},
                    {"name": "broken.mc", "source": BROKEN},
                ]
            )
        )
        assert [ln["type"] for ln in lines] == ["result", "result", "summary"]
        good, broken, summary = lines
        assert good["status"] == "ok"
        assert good["loops"] == 2
        assert broken["status"] == "parse-error"
        assert summary["programs"] == 2
        assert summary["ok"] == 1
        assert summary["failed"] == 1
        assert summary["status_counts"] == {"ok": 1, "parse-error": 1}

    def test_fail_fast_skips_rest(self, client):
        lines = list(
            client.batch(
                [
                    {"name": "broken.mc", "source": BROKEN},
                    {"name": "good.mc", "source": GOOD},
                ],
                fail_fast=True,
            )
        )
        assert lines[0]["status"] == "parse-error"
        assert lines[1]["status"] == "skipped"
        assert "broken.mc" in lines[1]["error"]
        assert lines[2]["status_counts"] == {"parse-error": 1, "skipped": 1}

    def test_reports_flag_includes_full_report(self, client):
        lines = list(
            client.batch([{"name": "g", "source": GOOD}], reports=True)
        )
        assert "verdict_counts" in lines[0]["report"]

    def test_empty_batch_is_400(self, client):
        status, _, data = client.request_json(
            "POST", "/v1/batch", {"programs": []}
        )
        assert status == 400


# ---------------------------------------------------------------------------
# Metrics endpoint
# ---------------------------------------------------------------------------


class TestMetricsEndpoint:
    def test_round_trips_through_strict_parser(self, client):
        client.analyze(GOOD)
        client.healthz()
        families = parse_openmetrics(client.metrics())
        assert "repro_serve_analyses" in families
        assert "repro_serve_queue_depth" in families
        # Endpoint counters collapse into one labeled family.
        requests = families["repro_serve_requests"]
        endpoints = {
            labels["endpoint"] for _, labels, _ in requests["samples"]
        }
        assert {"analyze", "healthz"} <= endpoints
        responses = families["repro_serve_responses"]
        codes = {labels["code"] for _, labels, _ in responses["samples"]}
        assert "200" in codes

    def test_content_type_is_openmetrics(self, client, server):
        status, headers, _ = client.request("GET", "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith(
            "application/openmetrics-text"
        )


# ---------------------------------------------------------------------------
# Ledger integration
# ---------------------------------------------------------------------------


class TestServeLedger:
    def test_each_served_request_lands_one_row(self, client, server, tmp_path):
        client.analyze(GOOD, name="ledgered.mc")
        client.analyze(GOOD, name="ledgered.mc", kind="detect")
        with RunLedger(str(tmp_path / "ledger")) as ledger:
            rows = ledger.runs()
        kinds = sorted(row["kind"] for row in rows)
        assert kinds == ["serve-analyze", "serve-detect"]
        assert all(row["program"] == "ledgered.mc" for row in rows)


# ---------------------------------------------------------------------------
# CLI integration
# ---------------------------------------------------------------------------


class TestServeCli:
    def test_batch_server_flag(self, server, tmp_path, capsys):
        from repro.cli import main

        (tmp_path / "good.mc").write_text(GOOD)
        (tmp_path / "bad.mc").write_text(BROKEN)
        url = f"http://127.0.0.1:{server.port}"
        code = main(
            ["batch", str(tmp_path / "good.mc"), "--server", url,
             "--no-cache"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "1 ok" in out
        code = main(
            ["batch", str(tmp_path / "good.mc"), str(tmp_path / "bad.mc"),
             "--server", url]
        )
        assert code == 1

    def test_batch_server_jsonl(self, server, tmp_path, capsys):
        from repro.cli import main

        (tmp_path / "good.mc").write_text(GOOD)
        out_path = tmp_path / "out.jsonl"
        url = f"http://127.0.0.1:{server.port}"
        code = main(
            ["batch", str(tmp_path / "good.mc"), "--server", url,
             "--jsonl", str(out_path)]
        )
        assert code == 0
        lines = [
            json.loads(line)
            for line in out_path.read_text().splitlines()
            if line
        ]
        assert len(lines) == 1
        assert lines[0]["status"] == "ok"

    def test_batch_server_rejects_trace(self, tmp_path, capsys):
        from repro.cli import main

        (tmp_path / "good.mc").write_text(GOOD)
        code = main(
            ["batch", str(tmp_path / "good.mc"),
             "--server", "http://127.0.0.1:1",
             "--trace", str(tmp_path / "t.json")]
        )
        assert code == 2

    def test_serve_is_registered(self, capsys):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--port", "0", "--workers", "1"]
        )
        assert args.port == 0
        assert args.workers == 1
        assert args.queue_depth is None


# ---------------------------------------------------------------------------
# Local batch fail-fast (the non-server satellite)
# ---------------------------------------------------------------------------


class TestLocalFailFast:
    def test_serial_fail_fast_skips_rest(self, tmp_path):
        from repro.batch import run_batch

        (tmp_path / "a_bad.mc").write_text(BROKEN)
        (tmp_path / "b_good.mc").write_text(GOOD)
        result = run_batch(
            AnalysisConfig(cache_mode="off"),
            paths=[str(tmp_path)],
            fail_fast=True,
        )
        assert [o.status for o in result.outcomes] == [
            "parse-error", "skipped",
        ]
        assert "a_bad.mc" in result.outcomes[1].error
        assert "skipped" in result.summary()

    def test_serial_all_ok_never_skips(self, tmp_path):
        from repro.batch import run_batch

        (tmp_path / "a.mc").write_text(GOOD)
        (tmp_path / "b.mc").write_text(GOOD)
        result = run_batch(
            AnalysisConfig(cache_mode="off"),
            paths=[str(tmp_path)],
            fail_fast=True,
        )
        assert [o.status for o in result.outcomes] == ["ok", "ok"]

    def test_pooled_fail_fast_records_skips(self, tmp_path):
        from repro.batch import run_batch

        (tmp_path / "a_bad.mc").write_text(BROKEN)
        for n in range(4):
            (tmp_path / f"g{n}.mc").write_text(GOOD)
        result = run_batch(
            AnalysisConfig(cache_mode="off", backend="process", jobs=2),
            paths=[str(tmp_path)],
            fail_fast=True,
        )
        counts = result.status_counts()
        assert counts.get("parse-error") == 1
        assert counts.get("skipped", 0) >= 1
        assert result.programs == 5

    def test_cli_fail_fast_exit_code(self, tmp_path, capsys):
        from repro.cli import main

        (tmp_path / "a_bad.mc").write_text(BROKEN)
        (tmp_path / "b_good.mc").write_text(GOOD)
        code = main(
            ["batch", str(tmp_path), "--fail-fast", "--no-cache"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "skipped" in out
