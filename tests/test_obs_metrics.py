"""Unit tests for the metrics registry and event log (repro.obs)."""

import json

import pytest

import repro.obs as obs
from repro.obs.events import SEVERITIES, EventLog
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def tick(self, seconds):
        self.now += seconds


# -- instruments ----------------------------------------------------------------


def test_counter_increments():
    counter = Counter("c")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5


def test_counter_rejects_negative_increment():
    with pytest.raises(ValueError):
        Counter("c").inc(-1)


def test_gauge_keeps_last_value():
    gauge = Gauge("g")
    gauge.set(3)
    gauge.set(1.5)
    assert gauge.value == 1.5


def test_histogram_summary_statistics():
    hist = Histogram("h")
    for value in (4, 2, 6):
        hist.observe(value)
    assert hist.count == 3
    assert hist.total == 12
    assert hist.min == 2
    assert hist.max == 6
    assert hist.mean == pytest.approx(4.0)
    assert hist.to_dict() == {
        "count": 3, "sum": 12, "min": 2, "max": 6, "mean": 4.0,
    }
    assert Histogram("empty").mean == 0.0


# -- registry -------------------------------------------------------------------


def test_registry_create_on_first_use_is_idempotent():
    reg = MetricsRegistry()
    assert reg.counter("a") is reg.counter("a")
    reg.inc("a", 2)
    assert reg.value("a") == 2


def test_registry_kind_conflict_raises():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(ValueError):
        reg.gauge("x")
    with pytest.raises(ValueError):
        reg.histogram("x")


def test_registry_value_defaults_and_histogram_count():
    reg = MetricsRegistry()
    assert reg.value("missing") == 0
    assert reg.value("missing", default=None) is None
    reg.observe("h", 10.0)
    reg.observe("h", 20.0)
    assert reg.value("h") == 2  # a histogram's value is its count


def test_registry_to_dict_partitions_by_kind():
    reg = MetricsRegistry()
    reg.inc("runs", 3)
    reg.set_gauge("speedup", 2.5)
    reg.observe("bytes", 128)
    dump = reg.to_dict()
    assert dump["counters"] == {"runs": 3}
    assert dump["gauges"] == {"speedup": 2.5}
    assert dump["histograms"]["bytes"]["count"] == 1
    assert reg.names() == ["bytes", "runs", "speedup"]


def test_registry_reset_drops_everything():
    reg = MetricsRegistry()
    reg.inc("a")
    reg.set_gauge("b", 1)
    reg.reset()
    assert reg.names() == []
    assert reg.value("a") == 0


# -- event log ------------------------------------------------------------------


def test_event_log_emits_with_timestamps_and_seq():
    clock = FakeClock()
    log = EventLog(clock=clock)
    clock.tick(0.25)
    first = log.emit("info", "verdict", "loop is commutative", provenance="static")
    second = log.emit("warning", "mismatch", "live-out diverged", loop="main.L0")
    assert first.seq == 0 and second.seq == 1
    assert first.t_ms == pytest.approx(250.0)
    assert second.fields == {"loop": "main.L0"}


def test_event_log_rejects_unknown_severity():
    with pytest.raises(ValueError):
        EventLog(clock=FakeClock()).emit("fatal", "k", "m")


def test_event_log_filter_and_counts():
    log = EventLog(clock=FakeClock())
    log.emit("info", "verdict", "a", provenance="static")
    log.emit("warning", "verdict", "b", provenance="dynamic")
    log.emit("warning", "mismatch", "c", provenance="dynamic")
    assert len(log.filter(severity="warning")) == 2
    assert len(log.filter(kind="verdict")) == 2
    assert len(log.filter(provenance="dynamic", kind="mismatch")) == 1
    counts = log.counts()
    assert counts["warning"] == 2 and counts["info"] == 1 and counts["error"] == 0


def test_event_log_jsonl_round_trip():
    log = EventLog(clock=FakeClock())
    log.emit("note", "stage", "dynamic testing required", loop="main.L1")
    log.emit("info", "stage", "done")
    lines = log.to_jsonl().splitlines()
    assert len(lines) == 2
    parsed = [json.loads(line) for line in lines]
    assert parsed[0]["severity"] == "note"
    assert parsed[0]["fields"] == {"loop": "main.L1"}
    assert parsed[1]["seq"] == 1
    assert EventLog(clock=FakeClock()).to_jsonl() == ""


def test_event_log_reset():
    log = EventLog(clock=FakeClock())
    log.emit("debug", "k", "m")
    log.reset()
    assert log.events == []


# -- shared severity scale ------------------------------------------------------


def test_diagnostics_severities_subset_of_shared_scale():
    from repro.analysis.diagnostics import SEVERITIES as DIAG_SEVERITIES

    assert set(DIAG_SEVERITIES) <= set(SEVERITIES)
    # Order is inherited from the shared scale (most severe first).
    ranks = [SEVERITIES.index(name) for name in DIAG_SEVERITIES]
    assert ranks == sorted(ranks)


def test_diagnostics_mirror_into_event_log():
    from repro.analysis.commutativity import StaticCommutativityAnalysis
    from repro.analysis.diagnostics import DiagnosticEngine
    from repro.driver import compile_program

    module = compile_program(
        """
        func int main() {
            int acc = 0;
            for (int i = 0; i < 8; i = i + 1) {
                acc = acc + i;
            }
            return acc;
        }
        """
    )
    engine = DiagnosticEngine(program="inline")
    engine.ingest_static(StaticCommutativityAnalysis(module).analyze().values())
    log = EventLog(clock=FakeClock())
    emitted = engine.to_events(log, provenance="static")
    assert emitted == len(engine.diagnostics) == len(log.events)
    assert emitted > 0
    for event in log.events:
        assert event.provenance == "static"
        assert event.severity in SEVERITIES
        assert "loop" in event.fields and "function" in event.fields


# -- ObsContext isolation -------------------------------------------------------


def test_disabled_context_records_nothing():
    ctx = obs.ObsContext(enabled=False)
    ctx.count("c")
    ctx.observe("h", 1.0)
    ctx.gauge("g", 2.0)
    ctx.event("info", "k", "m")
    assert ctx.metrics.names() == []
    assert ctx.events.events == []


def test_enabled_context_records_through_guards():
    ctx = obs.ObsContext(enabled=True)
    ctx.count("c", 2)
    ctx.observe("h", 3.0)
    ctx.gauge("g", 4.0)
    ctx.event("info", "k", "m")
    assert ctx.metrics.value("c") == 2
    assert ctx.metrics.value("h") == 1
    assert ctx.metrics.value("g") == 4.0
    assert len(ctx.events.events) == 1


def test_fresh_registry_per_enable_isolates_runs():
    first = obs.enable()
    try:
        first.count("dca.schedule_executions", 7)
        second = obs.enable()
        assert second.metrics.value("dca.schedule_executions") == 0
        assert first.metrics.value("dca.schedule_executions") == 7
    finally:
        obs.disable()


def test_context_reset_clears_all_pillars():
    ctx = obs.ObsContext(enabled=True)
    with ctx.span("s"):
        pass
    ctx.count("c")
    ctx.event("info", "k", "m")
    ctx.reset()
    assert ctx.tracer.spans == []
    assert ctx.metrics.names() == []
    assert ctx.events.events == []


def test_context_to_dict_shape():
    ctx = obs.ObsContext(enabled=True)
    ctx.count("c")
    dump = ctx.to_dict()
    assert dump["enabled"] is True
    assert dump["metrics"]["counters"] == {"c": 1}
    assert dump["spans"] == 0
    assert dump["events"] == []
