"""Closure-compiled execution backend: parity with the interpreter.

The compiled backend's contract is *exact* observable equivalence with
the tree-walking interpreter — same results, same printed output, same
step accounting, and byte-identical fault messages.  These tests drive
both backends over the same programs and compare everything.
"""

import pytest

from repro.core.dca import DcaAnalyzer
from repro.core.runtime import DcaRuntime
from repro.driver import compile_program, run_program
from repro.interp import (
    CompileError,
    CompiledExecutor,
    Interpreter,
    MiniCRuntimeError,
    compile_module,
    create_executor,
    resolve_exec_backend,
)
from repro.interp.compiler import (
    EXEC_BACKEND_ENV,
    _MODULE_CACHE,
    _MODULE_CACHE_MAX,
)
from repro.interp.events import Observer
from repro.interp.profiler import Profiler


def _zero():
    return 0.0


def _run_both(source, entry="main", args=None, max_steps=None):
    """Run one program under both backends; return (interp, compiled)."""
    module = compile_program(source)
    interp = Interpreter(module, max_steps=max_steps)
    compiled = CompiledExecutor(module, max_steps=max_steps)
    return module, interp, compiled, entry, list(args or [])


def _outcome(executor, entry, args):
    try:
        result = executor.run(entry, args)
        return ("ok", result, executor.output_text(), executor.steps)
    except MiniCRuntimeError as exc:
        return ("fault", str(exc), executor.output_text(), executor.steps)


def assert_parity(source, entry="main", args=None, max_steps=None):
    module, interp, compiled, entry, args = _run_both(
        source, entry, args, max_steps
    )
    oi = _outcome(interp, entry, list(args))
    oc = _outcome(compiled, entry, list(args))
    assert oi == oc, f"backend divergence:\ninterp   {oi}\ncompiled {oc}"
    return oi


# -- result / output / step parity -------------------------------------------


def test_arithmetic_parity():
    kind, result, out, steps = assert_parity(
        """
        func int main() {
            int acc = 0;
            for (int i = 0; i < 10; i = i + 1) { acc = acc + i * i; }
            print(acc, 7 / 2, -7 / 2, 7 % 3, -7 % 3, 1.0 / 4.0);
            return acc;
        }
        """
    )
    assert kind == "ok" and result == 285


def test_heap_program_parity():
    assert_parity(
        """
        struct Node { int value; Node* next; }
        func int main() {
            Node* head = null;
            for (int i = 0; i < 8; i = i + 1) {
                Node* n = new Node; n.value = i; n.next = head; head = n;
            }
            int total = 0;
            while (head != null) { total = total + head.value; head = head.next; }
            int[] a = new int[5];
            for (int i = 0; i < len(a); i = i + 1) { a[i] = total + i; }
            print(total, a[0], a[4]);
            return total;
        }
        """
    )


def test_step_counts_identical():
    src = """
    func int work(int n) {
        int acc = 0;
        for (int i = 0; i < n; i = i + 1) { acc = acc + i; }
        return acc;
    }
    func int main() { return work(50) + work(7); }
    """
    module, interp, compiled, entry, args = _run_both(src)
    assert interp.run(entry, args) == compiled.run(entry, args)
    assert interp.steps == compiled.steps


# -- fault parity ------------------------------------------------------------

FAULT_PROGRAMS = [
    ("null deref read", "struct P { int x; }\nfunc int main() { P* p = null; return p.x; }"),
    ("null deref write", "struct P { int x; }\nfunc void main() { P* p = null; p.x = 1; }"),
    ("null array read", "func int main() { int[] a = null; return a[0]; }"),
    ("null array write", "func void main() { int[] a = null; a[0] = 1; }"),
    ("oob read", "func int main() { int[] a = new int[3]; return a[3]; }"),
    ("oob write", "func void main() { int[] a = new int[3]; a[0 - 1] = 9; }"),
    ("int div by zero", "func int main() { int z = 0; return 1 / z; }"),
    ("int mod by zero", "func int main() { int z = 0; return 1 % z; }"),
    ("float div by zero", "func float main() { float z = 0.0; return 1.0 / z; }"),
    ("len of null", "func int main() { int[] a = null; return len(a); }"),
    ("negative array length", "func void main() { int n = 0 - 2; int[] a = new int[n]; }"),
    ("builtin domain error", "func float main() { float x = 0.0 - 1.0; return sqrt(x); }"),
]


@pytest.mark.parametrize(
    "source", [p[1] for p in FAULT_PROGRAMS], ids=[p[0] for p in FAULT_PROGRAMS]
)
def test_fault_message_parity(source):
    kind, message, _out, _steps = assert_parity(source)
    assert kind == "fault"


def test_fault_messages_include_line_numbers():
    src = "struct P { int x; }\nfunc int main() { P* p = null;\n    return p.x; }"
    kind, message, _o, _s = assert_parity(src)
    assert kind == "fault"
    assert "null dereference reading .x (line 3)" == message


def test_step_limit_parity():
    src = "func void main() { while (true) { } }"
    kind, message, _o, steps = assert_parity(src, max_steps=500)
    assert kind == "fault"
    assert message == "step limit exceeded"


def test_step_limit_fires_at_same_step():
    src = """
    func int main() {
        int acc = 0;
        for (int i = 0; i < 100; i = i + 1) { acc = acc + 1; }
        return acc;
    }
    """
    module = compile_program(src)
    baseline = Interpreter(module)
    baseline.run("main", [])
    # Any budget below the full run must fault at the identical count.
    for budget in (baseline.steps - 1, baseline.steps // 2, 7):
        module2, interp, compiled, entry, args = _run_both(
            src, max_steps=budget
        )
        oi = _outcome(interp, entry, [])
        oc = _outcome(compiled, entry, [])
        assert oi == oc
        assert oi[0] == "fault" and oi[1] == "step limit exceeded"


def test_missing_entry_and_arity_messages():
    src = "func int add(int a, int b) { return a + b; }"
    module = compile_program(src)
    for make in (lambda: Interpreter(module), lambda: CompiledExecutor(module)):
        with pytest.raises(MiniCRuntimeError, match=r"no function named 'nope'"):
            make().run("nope", [])
        with pytest.raises(MiniCRuntimeError, match=r"add expects 2 args, got 1"):
            make().run("add", [1])
    assert Interpreter(module).run("add", [2, 3]) == CompiledExecutor(
        module
    ).run("add", [2, 3])


def test_intrinsic_without_runtime_message_parity():
    # Intrinsics only appear in instrumented modules; fabricate one.
    from repro.core.instrument import build_observe_module, compute_verify_spec
    from repro.analysis.purity import EffectAnalysis

    src = """
    func int main() {
        int acc = 0;
        for (int i = 0; i < 4; i = i + 1) { acc = acc + i; }
        return acc;
    }
    """
    module = compile_program(src)
    effects = EffectAnalysis(module)
    label = next(iter(next(iter(module.functions.values())).loops))
    func = module.functions["main"]
    specs = {label: compute_verify_spec(module, func, label, effects)}
    observe = build_observe_module(module, specs)
    msgs = []
    for make in (
        lambda: Interpreter(observe),
        lambda: CompiledExecutor(observe),
    ):
        with pytest.raises(MiniCRuntimeError) as exc:
            make().run("main", [])
        msgs.append(str(exc.value))
    assert msgs[0] == msgs[1]
    assert "executed without a runtime" in msgs[0]


# -- backend selection seam --------------------------------------------------


def test_resolve_exec_backend_explicit_env_default(monkeypatch):
    monkeypatch.delenv(EXEC_BACKEND_ENV, raising=False)
    assert resolve_exec_backend(None) == "interp"
    assert resolve_exec_backend("compiled") == "compiled"
    monkeypatch.setenv(EXEC_BACKEND_ENV, "compiled")
    assert resolve_exec_backend(None) == "compiled"
    assert resolve_exec_backend("interp") == "interp"
    with pytest.raises(ValueError):
        resolve_exec_backend("jit")
    monkeypatch.setenv(EXEC_BACKEND_ENV, "bogus")
    with pytest.raises(ValueError):
        resolve_exec_backend(None)


def test_create_executor_backend_and_fallback():
    module = compile_program("func int main() { return 41 + 1; }")
    assert isinstance(create_executor(module, exec_backend="interp"), Interpreter)
    compiled = create_executor(module, exec_backend="compiled")
    assert isinstance(compiled, CompiledExecutor)
    assert compiled.run("main", []) == 42
    # Observers and profilers force the interpreter.
    assert isinstance(
        create_executor(module, observers=[Observer()], exec_backend="compiled"),
        Interpreter,
    )
    assert isinstance(
        create_executor(module, profiler=Profiler(), exec_backend="compiled"),
        Interpreter,
    )
    assert isinstance(
        create_executor(module, exec_backend="compiled", obs_enabled=True),
        Interpreter,
    )


def test_run_program_exec_backend_threading():
    src = 'func void main() { print("hi", 1 + 1); }'
    r_interp = run_program(src, exec_backend="interp")
    r_compiled = run_program(src, exec_backend="compiled")
    assert r_interp == r_compiled == (None, "hi 2\n")


def test_compile_module_is_cached_per_module():
    module = compile_program("func int main() { return 7; }")
    assert compile_module(module) is compile_module(module)
    key = id(module)
    assert key in _MODULE_CACHE
    # The LRU is bounded: flooding it with fresh modules evicts ours.
    keep = []
    for i in range(_MODULE_CACHE_MAX + 1):
        other = compile_program(f"func int main() {{ return {i}; }}")
        keep.append(other)
        compile_module(other)
    assert key not in _MODULE_CACHE
    assert len(_MODULE_CACHE) <= _MODULE_CACHE_MAX
    # Recompilation after eviction still works and re-caches.
    assert compile_module(module).functions["main"] is not None
    assert id(module) in _MODULE_CACHE


def test_compiled_analyzer_report_matches_interp():
    src = """
    func int main() {
        int[] data = new int[16];
        int acc = 0;
        for (int i = 0; i < len(data); i = i + 1) { data[i] = i * 3; }
        for (int i = 0; i < len(data); i = i + 1) { acc = acc + data[i]; }
        print(acc);
        return acc;
    }
    """
    ri = DcaAnalyzer(
        compile_program(src), static_filter=False, clock=_zero,
        exec_backend="interp",
    ).analyze()
    rc = DcaAnalyzer(
        compile_program(src), static_filter=False, clock=_zero,
        exec_backend="compiled",
    ).analyze()
    assert ri.to_json() == rc.to_json()
    # The backend choice is run metadata, never serialized.
    assert "exec_backend" not in ri.to_json()
    assert ri.exec_backend == "interp" and rc.exec_backend == "compiled"


def test_fast_intrinsics_flag_contract():
    # DcaRuntime opts into direct intrinsic dispatch; the base hook and
    # any custom runtime default to the handle_intrinsic path.
    from repro.interp.interpreter import RuntimeHooks

    assert DcaRuntime.fast_intrinsics is True
    assert RuntimeHooks.fast_intrinsics is False
