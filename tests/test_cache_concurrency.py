"""Concurrent read-write access to the sqlite analysis cache.

The ``repro serve`` daemon shares one open :class:`AnalysisCache`
handle across worker threads, and batch pool workers each open their
own handle on the same directory — so the store must survive both
multi-thread access to a single connection and multi-process WAL
contention (two writers plus readers) without corruption, and the
lifetime traffic counters must reconcile exactly afterwards.
"""

import sqlite3
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import pytest

from repro.cache.store import AnalysisCache

ENTRIES_PER_WRITER = 25


def _writer_process(directory: str, writer_id: int) -> dict:
    """Open a private rw handle and hammer the store; returns the
    traffic this writer generated."""
    with AnalysisCache(directory, mode="rw") as cache:
        for n in range(ENTRIES_PER_WRITER):
            cache.store(
                f"module-{writer_id}",
                f"main.L{n}",
                "fp",
                {"writer": writer_id, "n": n},
            )
            # Re-read our own write (hit) plus probe a key that may not
            # exist yet (hit or miss depending on interleaving).
            assert (
                cache.lookup(f"module-{writer_id}", f"main.L{n}", "fp")
                is not None
            )
            cache.lookup(f"module-{1 - writer_id}", f"main.L{n}", "fp")
        stores = cache._session_counts.get("stores", 0)
        lookups = cache._session_counts.get("lookups", 0)
        hits = cache._session_counts.get("hits", 0)
        misses = cache._session_counts.get("misses", 0)
    return {
        "stores": stores,
        "lookups": lookups,
        "hits": hits,
        "misses": misses,
    }


def _reader_process(directory: str) -> int:
    """Open a read-only handle mid-write and sweep every key."""
    found = 0
    with AnalysisCache(directory, mode="ro") as cache:
        for writer_id in (0, 1):
            for n in range(ENTRIES_PER_WRITER):
                if cache.lookup(f"module-{writer_id}", f"main.L{n}", "fp"):
                    found += 1
    return found


class TestMultiProcessContention:
    def test_two_writers_and_readers_no_corruption(self, tmp_path):
        directory = str(tmp_path / "cache")
        # Seed the store so readers always have a valid schema to open.
        with AnalysisCache(directory, mode="rw") as cache:
            cache.store("seed", "main.L0", "fp", {"seed": True})

        with ProcessPoolExecutor(max_workers=4) as pool:
            writers = [
                pool.submit(_writer_process, directory, writer_id)
                for writer_id in (0, 1)
            ]
            readers = [
                pool.submit(_reader_process, directory) for _ in range(2)
            ]
            writer_counts = [f.result(timeout=120) for f in writers]
            reader_found = [f.result(timeout=120) for f in readers]

        # No writer lost a write, no reader saw a torn one.
        assert all(c["stores"] == ENTRIES_PER_WRITER for c in writer_counts)
        assert all(0 <= n <= 2 * ENTRIES_PER_WRITER for n in reader_found)

        with AnalysisCache(directory, mode="ro") as cache:
            stats = cache.stats()
        assert stats["entries"] == 2 * ENTRIES_PER_WRITER + 1
        # Every store that each writer reported landed in the lifetime
        # counters (the seed handle adds one more).
        assert stats["lifetime_stores"] == 2 * ENTRIES_PER_WRITER + 1
        total_lookups = sum(c["lookups"] for c in writer_counts)
        total_hits = sum(c["hits"] for c in writer_counts)
        total_misses = sum(c["misses"] for c in writer_counts)
        assert total_hits + total_misses == total_lookups
        # Readers bump lookup counters too (ro mode flushes no usage
        # updates on entries but lifetime counts still reconcile).
        assert stats["lifetime_lookups"] >= total_lookups
        assert (
            stats["lifetime_hits"] + stats["lifetime_misses"]
            == stats["lifetime_lookups"]
        )

        # The database itself must be sound after the contention.
        conn = sqlite3.connect(str(tmp_path / "cache" / "analysis.sqlite"))
        try:
            result = conn.execute("PRAGMA integrity_check").fetchone()[0]
        finally:
            conn.close()
        assert result == "ok"

    def test_payloads_survive_interleaving_intact(self, tmp_path):
        directory = str(tmp_path / "cache")
        with AnalysisCache(directory, mode="rw") as cache:
            cache.store("seed", "main.L0", "fp", {"seed": True})
        with ProcessPoolExecutor(max_workers=2) as pool:
            for f in [
                pool.submit(_writer_process, directory, writer_id)
                for writer_id in (0, 1)
            ]:
                f.result(timeout=120)
        with AnalysisCache(directory, mode="ro") as cache:
            for writer_id in (0, 1):
                for n in range(ENTRIES_PER_WRITER):
                    payload = cache.lookup(
                        f"module-{writer_id}", f"main.L{n}", "fp"
                    )
                    assert payload == {"writer": writer_id, "n": n}


class TestSharedHandleThreadSafety:
    """The serve daemon's mode: many threads, one open connection."""

    def test_threads_share_one_handle(self, tmp_path):
        with AnalysisCache(str(tmp_path / "cache"), mode="rw") as cache:

            def worker(thread_id: int) -> int:
                ok = 0
                for n in range(50):
                    cache.store(
                        f"t{thread_id}", f"main.L{n}", "fp", {"n": n}
                    )
                    if cache.lookup(f"t{thread_id}", f"main.L{n}", "fp") == {
                        "n": n
                    }:
                        ok += 1
                return ok

            with ThreadPoolExecutor(max_workers=4) as pool:
                results = list(pool.map(worker, range(4)))
            assert results == [50] * 4
            stats = cache.stats()
            assert stats["entries"] == 200
        # Counters flushed on close reconcile with the traffic.
        with AnalysisCache(str(tmp_path / "cache"), mode="ro") as cache:
            stats = cache.stats()
        assert stats["lifetime_stores"] == 200
        assert stats["lifetime_lookups"] == 200
        assert stats["lifetime_hits"] == 200
        assert stats["lifetime_misses"] == 0

    def test_concurrent_stats_and_writes(self, tmp_path):
        """stats() takes a consistent snapshot while writers run."""
        with AnalysisCache(str(tmp_path / "cache"), mode="rw") as cache:

            def writer() -> None:
                for n in range(100):
                    cache.store("m", f"main.L{n}", "fp", {"n": n})

            def reader() -> bool:
                for _ in range(50):
                    stats = cache.stats()
                    if not 0 <= stats["entries"] <= 100:
                        return False
                return True

            with ThreadPoolExecutor(max_workers=3) as pool:
                w = pool.submit(writer)
                r1 = pool.submit(reader)
                r2 = pool.submit(reader)
                w.result(timeout=60)
                assert r1.result(timeout=60)
                assert r2.result(timeout=60)
            assert cache.stats()["entries"] == 100
