"""Benchmark-suite integrity tests."""

import pytest

from repro import run_program
from repro.benchsuite import ALL_BENCHMARKS, NPB_BENCHMARKS, PLDS_BENCHMARKS, by_name
from repro.core import DcaAnalyzer


@pytest.mark.parametrize("bench", ALL_BENCHMARKS, ids=lambda b: b.name)
def test_benchmark_compiles_and_runs(bench):
    module = bench.compile(fresh=True)
    _, out = run_program(module)
    assert out.strip(), f"{bench.name} produced no output"


@pytest.mark.parametrize("bench", ALL_BENCHMARKS, ids=lambda b: b.name)
def test_metadata_references_real_loops(bench):
    assert bench.validate() == []


@pytest.mark.parametrize("bench", ALL_BENCHMARKS, ids=lambda b: b.name)
def test_benchmark_is_deterministic(bench):
    _, first = run_program(bench.compile(fresh=True))
    _, second = run_program(bench.compile(fresh=True))
    assert first == second


def test_suite_composition():
    assert len(NPB_BENCHMARKS) == 10
    assert len(PLDS_BENCHMARKS) == 14
    names = [b.name for b in ALL_BENCHMARKS]
    assert len(names) == len(set(names))
    for bench in PLDS_BENCHMARKS:
        assert bench.table2 is not None
    assert by_name("EP").name == "EP"
    with pytest.raises(KeyError):
        by_name("nope")


@pytest.mark.parametrize("bench", PLDS_BENCHMARKS, ids=lambda b: b.name)
def test_plds_kernel_detected_by_dca(bench):
    module = bench.compile(fresh=True)
    report = DcaAnalyzer(
        module, rtol=bench.rtol, liveout_policy=bench.liveout_policy
    ).analyze()
    kernel = report.loop(bench.table2.kernel_label)
    assert kernel.is_commutative, f"{bench.name}: {kernel.verdict} ({kernel.reason})"


def test_mcf_latent_dependence_is_input_sensitive():
    """Paper §V-B2: mcf's kernel has a dependence unexercised by the
    default (star-shaped) workload; a deep workload exposes it."""
    mcf = by_name("mcf")

    star = mcf.compile(fresh=True)
    report = DcaAnalyzer(star, rtol=mcf.rtol).analyze()
    assert report.loop("main.L1").is_commutative

    deep = mcf.compile(fresh=True)
    deep.globals["DEEP"].init = 1
    report_deep = DcaAnalyzer(deep, rtol=mcf.rtol).analyze()
    assert not report_deep.loop("main.L1").is_commutative


def test_dc_hot_loops_are_io_excluded():
    from repro.core import EXCLUDED_IO

    dc = by_name("DC")
    report = DcaAnalyzer(dc.compile(fresh=True), rtol=dc.rtol).analyze()
    excluded = [
        l for l, r in report.results.items() if r.verdict == EXCLUDED_IO
    ]
    assert len(excluded) >= 3  # the view-emitting loops


def test_mg_has_not_exercised_loop():
    from repro.core import NOT_EXERCISED

    mg = by_name("MG")
    report = DcaAnalyzer(mg.compile(fresh=True), rtol=mg.rtol).analyze()
    assert report.loop("main.L9").verdict in (NOT_EXERCISED, "commutative-vacuous")


def test_ep_trial_loop_detected_and_hot():
    from repro.interp.interpreter import Interpreter
    from repro.interp.profiler import Profiler

    ep = by_name("EP")
    module = ep.compile(fresh=True)
    profiler = Profiler()
    Interpreter(module, profiler=profiler).run()
    assert profiler.coverage("main.L1") > 0.9
    report = DcaAnalyzer(ep.compile(fresh=True), rtol=ep.rtol).analyze()
    assert report.loop("main.L1").is_commutative
