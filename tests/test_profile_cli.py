"""End-to-end tests for ``repro profile`` and the observability flags.

Validates the acceptance criteria structurally: the Chrome trace file a
profile run emits has real trace events (``ph``/``ts``/``dur``/``name``)
with properly nested spans, the metrics JSON carries the pipeline
counters, and the event log is valid JSONL.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro.obs as obs
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[1]
HISTOGRAM = str(REPO_ROOT / "examples" / "histogram.mc")

PROGRAM = """
func void main() {
  int s = 0;
  for (int i = 0; i < 6; i = i + 1) { s += i; }
  print(s);
}
"""


@pytest.fixture()
def program_file(tmp_path):
    path = tmp_path / "prog.mc"
    path.write_text(PROGRAM)
    return str(path)


def _load_trace(path):
    with open(path) as handle:
        trace = json.load(handle)
    assert "traceEvents" in trace
    return trace["traceEvents"]


def _assert_valid_chrome_events(events):
    assert events, "trace must contain at least one span"
    for event in events:
        assert event["ph"] == "X"
        assert event["name"]
        assert isinstance(event["ts"], (int, float))
        assert isinstance(event["dur"], (int, float))
        assert event["dur"] >= 0


def _assert_nesting(events, child_name, parent_name):
    """Every ``child_name`` event is time-contained in a ``parent_name``."""
    parents = [e for e in events if e["name"] == parent_name]
    children = [e for e in events if e["name"] == child_name]
    assert parents and children
    for child in children:
        assert any(
            parent["ts"] <= child["ts"]
            and child["ts"] + child["dur"] <= parent["ts"] + parent["dur"]
            for parent in parents
        ), f"{child_name} span not nested inside {parent_name}"


def test_profile_histogram_emits_valid_chrome_trace(tmp_path, capsys):
    trace_path = tmp_path / "trace.json"
    assert main(["profile", HISTOGRAM, "--trace", str(trace_path)]) == 0
    events = _load_trace(trace_path)
    _assert_valid_chrome_events(events)
    names = {e["name"] for e in events}
    # All pipeline stages show up as spans...
    assert {"repro.compile", "dca.analyze", "dca.static", "dca.golden"} <= names
    # ...and stage spans nest inside the analyze umbrella span.
    _assert_nesting(events, "dca.static", "dca.analyze")
    _assert_nesting(events, "dca.golden", "dca.analyze")
    out = capsys.readouterr().out
    assert "pipeline profile" in out
    assert "flame" in out


def test_profile_text_output_has_cost_breakdown(capsys):
    assert main(["profile", HISTOGRAM]) == 0
    out = capsys.readouterr().out
    assert "pipeline cost:" in out
    assert "interpreted instructions" in out
    assert "stages:" in out
    # Per-loop cost table includes every histogram loop.
    for label in ("main.L0", "main.L1", "main.L2"):
        assert label in out


def test_profile_no_static_filter_traces_schedule_spans(program_file, tmp_path):
    if os.environ.get("REPRO_SCHEDULE_BACKEND") == "process":
        # Worker schedule spans land on their own trace lanes rather than
        # nested inside the coordinator's dca.loop span.
        pytest.skip("span nesting asserts serial-backend layout")
    trace_path = tmp_path / "trace.json"
    assert main(
        ["profile", program_file, "--no-static-filter", "--trace", str(trace_path)]
    ) == 0
    events = _load_trace(trace_path)
    _assert_valid_chrome_events(events)
    names = {e["name"] for e in events}
    assert {"dca.loop", "dca.schedule"} <= names
    _assert_nesting(events, "dca.schedule", "dca.loop")
    _assert_nesting(events, "dca.loop", "dca.dynamic")
    # Schedule spans carry identifying args.
    schedules = [e for e in events if e["name"] == "dca.schedule"]
    assert all(e["args"].get("loop") == "main.L0" for e in schedules)
    assert {e["args"].get("schedule") for e in schedules} >= {"identity"}


def test_profile_metrics_file(program_file, tmp_path):
    metrics_path = tmp_path / "metrics.json"
    assert main(
        ["profile", program_file, "--no-static-filter",
         "--metrics", str(metrics_path)]
    ) == 0
    with open(metrics_path) as handle:
        payload = json.load(handle)
    assert payload["program"] == program_file
    counters = payload["registry"]["counters"]
    assert counters["dca.schedule_executions"] > 0
    assert counters["dca.snapshots"] > 0
    assert counters["interp.instructions"] > 0
    hists = payload["registry"]["histograms"]
    assert hists["dca.snapshot.bytes"]["count"] == counters["dca.snapshots"]
    report_metrics = payload["report"]
    assert report_metrics["schedule_executions"] == counters[
        "dca.schedule_executions"
    ]
    assert set(report_metrics["stage_times_ms"]) >= {"golden", "dynamic"}


def test_profile_events_file_is_valid_jsonl(program_file, tmp_path):
    events_path = tmp_path / "events.jsonl"
    assert main(["profile", program_file, "--events", str(events_path)]) == 0
    lines = events_path.read_text().splitlines()
    assert lines
    records = [json.loads(line) for line in lines]
    verdicts = [r for r in records if r["kind"] == "verdict"]
    assert verdicts
    assert all(r["severity"] in obs.SEVERITIES for r in records)
    assert any(r.get("provenance") == "static" for r in verdicts)


def test_profile_restores_disabled_context(program_file, tmp_path):
    assert main(["profile", program_file]) == 0
    assert not obs.is_enabled()


def test_analyze_trace_flag_writes_trace(program_file, tmp_path, capsys):
    trace_path = tmp_path / "trace.json"
    assert main(["analyze", program_file, "--trace", str(trace_path)]) == 0
    _assert_valid_chrome_events(_load_trace(trace_path))
    assert "trace written to" in capsys.readouterr().err
    assert not obs.is_enabled()


def test_analyze_profile_flag_prints_cost_table(program_file, capsys):
    assert main(["analyze", program_file, "--profile"]) == 0
    out = capsys.readouterr().out
    assert "pipeline cost:" in out
    assert "loop" in out and "instrs" in out  # table header
    assert "main.L0" in out


def test_detect_trace_and_profile_flags(program_file, tmp_path, capsys):
    trace_path = tmp_path / "trace.json"
    assert main(
        ["detect", program_file, "--profile", "--trace", str(trace_path)]
    ) == 0
    out = capsys.readouterr().out
    assert "cost: DCA" in out
    events = _load_trace(trace_path)
    names = {e["name"] for e in events}
    assert "baseline.profile" in names
    assert "baseline.detect" in names


def test_obs_stdlib_guard_passes():
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "check_obs_stdlib.py")],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stderr
    assert "stdlib-only" in result.stdout
