"""Batch corpus driver: discovery, containment, aggregation, CLI.

Failure containment is the core contract under test: a corpus where one
program fails to parse and another faults at runtime must still produce
an outcome for every program — recorded statuses, never exceptions —
on both the serial path and the process-pool fan-out.
"""

import json

import pytest

from repro.api import AnalysisConfig, AnalysisSession
from repro.batch import (
    STATUS_FAULT,
    STATUS_OK,
    STATUS_PARSE_ERROR,
    discover_programs,
    load_manifest,
    run_batch,
)
from repro.cli import main

GOOD = """
func void main() {
  int[] a = new int[16];
  int s = 0;
  for (int i = 0; i < 16; i = i + 1) { a[i] = i * 2; }
  for (int i = 0; i < 16; i = i + 1) { s += a[i]; }
  print(s);
}
"""

BROKEN = "func void main( {"

FAULTY = """
func void main() {
  int[] a = new int[4];
  int s = 0;
  for (int i = 0; i < 8; i = i + 1) { s += a[i]; }
  print(s);
}
"""


@pytest.fixture
def corpus(tmp_path):
    directory = tmp_path / "corpus"
    directory.mkdir()
    (directory / "a_good.mc").write_text(GOOD)
    (directory / "b_broken.mc").write_text(BROKEN)
    (directory / "c_faulty.mc").write_text(FAULTY)
    (directory / "notes.txt").write_text("not a program")
    return directory


def _config(**kwargs):
    defaults = dict(cache_mode="off")
    defaults.update(kwargs)
    return AnalysisConfig(**defaults)


# ---------------------------------------------------------------------------
# Discovery and manifests
# ---------------------------------------------------------------------------


def test_discover_scans_directories_sorted(corpus, tmp_path):
    extra = tmp_path / "solo.mc"
    extra.write_text(GOOD)
    specs = discover_programs([str(corpus), str(extra)])
    assert [s.path.rsplit("/", 1)[-1] for s in specs] == [
        "a_good.mc", "b_broken.mc", "c_faulty.mc", "solo.mc",
    ]


def test_discover_rejects_missing_path(tmp_path):
    with pytest.raises(FileNotFoundError):
        discover_programs([str(tmp_path / "nope.mc")])


def test_manifest_json_array(tmp_path):
    (tmp_path / "p.mc").write_text(GOOD)
    manifest = tmp_path / "corpus.json"
    manifest.write_text(json.dumps(["p.mc"]))
    specs = load_manifest(str(manifest))
    # Relative manifest paths resolve against the manifest's directory.
    assert specs[0].path == str(tmp_path / "p.mc")


def test_manifest_object_entries_override_config(tmp_path):
    manifest = tmp_path / "corpus.json"
    manifest.write_text(
        json.dumps(
            {"programs": [{"path": "p.mc", "entry": "work", "args": [3]}]}
        )
    )
    spec = load_manifest(str(manifest))[0]
    assert spec.entry == "work"
    assert spec.args == (3,)


def test_manifest_jsonl(tmp_path):
    manifest = tmp_path / "corpus.jsonl"
    manifest.write_text('"one.mc"\n{"path": "two.mc"}\n# comment\n')
    specs = load_manifest(str(manifest))
    assert [s.path for s in specs] == [
        str(tmp_path / "one.mc"), str(tmp_path / "two.mc"),
    ]


def test_manifest_entry_without_path_rejected(tmp_path):
    manifest = tmp_path / "corpus.json"
    manifest.write_text(json.dumps([{"entry": "main"}]))
    with pytest.raises(ValueError):
        load_manifest(str(manifest))


def test_empty_corpus_rejected():
    with pytest.raises(ValueError):
        run_batch(_config(), paths=[])


# ---------------------------------------------------------------------------
# Failure containment + aggregation
# ---------------------------------------------------------------------------


def _check_mixed_result(result):
    assert result.programs == 3
    by_name = {o.path.rsplit("/", 1)[-1]: o for o in result.outcomes}
    assert by_name["a_good.mc"].status == STATUS_OK
    assert by_name["a_good.mc"].loops == 2
    assert by_name["b_broken.mc"].status == STATUS_PARSE_ERROR
    assert "expected" in by_name["b_broken.mc"].error
    assert by_name["c_faulty.mc"].status == STATUS_FAULT
    assert "out of bounds" in by_name["c_faulty.mc"].error
    assert result.status_counts() == {
        STATUS_OK: 1, STATUS_PARSE_ERROR: 1, STATUS_FAULT: 1,
    }
    aggregate = result.to_dict()
    assert aggregate["programs"] == 3
    assert aggregate["loops"] == 2
    assert aggregate["commutative_loops"] == 2


def test_serial_batch_contains_failures(corpus):
    result = run_batch(_config(), paths=[str(corpus)])
    _check_mixed_result(result)


def test_process_batch_contains_failures(corpus):
    result = run_batch(
        _config(backend="process", jobs=2), paths=[str(corpus)]
    )
    _check_mixed_result(result)


def test_outcomes_stay_in_corpus_order_and_stream(corpus):
    streamed = []
    result = run_batch(
        _config(backend="process", jobs=2),
        paths=[str(corpus)],
        on_result=streamed.append,
    )
    assert [o.index for o in result.outcomes] == [0, 1, 2]
    # Streaming sees every outcome exactly once (completion order).
    assert sorted(o.index for o in streamed) == [0, 1, 2]


def test_manifest_overrides_apply_per_program(tmp_path):
    (tmp_path / "alt.mc").write_text(
        """
func void work() {
  int s = 0;
  for (int i = 0; i < 8; i = i + 1) { s += i; }
  print(s);
}
"""
    )
    manifest = tmp_path / "m.json"
    manifest.write_text(json.dumps([{"path": "alt.mc", "entry": "work"}]))
    result = run_batch(_config(), manifest=str(manifest))
    assert result.outcomes[0].status == STATUS_OK
    assert result.outcomes[0].loops == 1


def test_session_batch_entry_point(corpus):
    with AnalysisSession(_config()) as session:
        result = session.batch(paths=[str(corpus)])
    _check_mixed_result(result)


def test_batch_shares_cache_across_programs(tmp_path, corpus):
    config = _config(
        cache_mode="rw", cache_dir=str(tmp_path / "cache"),
        static_filter=False,
    )
    cold = run_batch(config, paths=[str(corpus)])
    warm = run_batch(config, paths=[str(corpus)])
    assert sum(o.cache_misses for o in cold.outcomes) > 0
    assert sum(o.cache_misses for o in warm.outcomes) == 0
    assert sum(o.cache_hits for o in warm.outcomes) == sum(
        o.cache_misses for o in cold.outcomes
    )
    ok = [o for o in warm.outcomes if o.status == STATUS_OK]
    assert ok and all(o.report for o in ok)


# ---------------------------------------------------------------------------
# CLI adapter
# ---------------------------------------------------------------------------


def test_cli_batch_text_output(corpus, capsys):
    # Exit code 1: not every program analyzed cleanly.
    assert main(["batch", str(corpus), "--no-cache"]) == 1
    out = capsys.readouterr().out
    assert "3 programs: 1 ok, 1 parse-error, 1 fault" in out


def test_cli_batch_json_and_jsonl(corpus, tmp_path, capsys):
    jsonl = tmp_path / "results.jsonl"
    code = main(
        ["batch", str(corpus), "--json", "--jsonl", str(jsonl), "--no-cache"]
    )
    assert code == 1
    aggregate = json.loads(capsys.readouterr().out)
    assert aggregate["programs"] == 3
    lines = [json.loads(l) for l in jsonl.read_text().splitlines()]
    assert len(lines) == 3
    assert {l["status"] for l in lines} == {
        STATUS_OK, STATUS_PARSE_ERROR, STATUS_FAULT,
    }


def test_cli_batch_all_ok_exit_zero(tmp_path, capsys):
    (tmp_path / "p.mc").write_text(GOOD)
    assert main(["batch", str(tmp_path / "p.mc"), "--no-cache"]) == 0
    assert "1 programs: 1 ok" in capsys.readouterr().out


def test_cli_batch_requires_programs(capsys):
    assert main(["batch", "--no-cache"]) == 2


def test_cli_batch_merged_trace(corpus, tmp_path, capsys):
    trace = tmp_path / "trace.json"
    main(
        ["batch", str(corpus), "--backend", "process", "--jobs", "2",
         "--trace", str(trace), "--no-cache"]
    )
    capsys.readouterr()
    events = json.loads(trace.read_text())["traceEvents"]
    # Worker spans land on per-program lanes of the merged trace.
    assert {e["name"] for e in events} & {"batch.program"}
    assert len({e["tid"] for e in events}) > 1
