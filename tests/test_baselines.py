"""Baseline detector envelope tests (the Table I/III discriminators)."""

import pytest

from repro import compile_program
from repro.baselines import (
    DependenceProfilingDetector,
    DiscoPopDetector,
    IccDetector,
    IdiomsDetector,
    PollyDetector,
    build_context,
    combine_static,
)

ZOO = """
struct Node { int val; Node* next; }
func float fhelper(float x) { return x * 2.0 + 1.0; }
func void main() {
  int[] a = new int[32];
  int[] b = new int[32];
  int[] hist = new int[8];
  for (int i = 0; i < 32; i = i + 1) { a[i] = i * 3; }              // L0 map
  int s = 0;
  for (int i = 0; i < 32; i = i + 1) { s += a[i]; }                 // L1 reduce
  for (int i = 0; i < 32; i = i + 1) { hist[a[i] % 8] += 1; }       // L2 hist
  for (int i = 1; i < 32; i = i + 1) { b[i] = b[i - 1] + a[i]; }    // L3 rec
  Node* head = null;
  for (int k = 0; k < 8; k = k + 1) {
    Node* n = new Node; n->val = k; n->next = head; head = n;       // L4
  }
  Node* p = head;
  int t = 0;
  while (p) { t += p->val; p = p->next; }                           // L5 PLDS
  float[] f = new float[16];
  for (int i = 0; i < 16; i = i + 1) { f[i] = fhelper(to_float(i)); } // L6
  int m = -1000;
  for (int i = 0; i < 32; i = i + 1) { if (a[i] > m) { m = a[i]; } }  // L7
  print(s, t, m, hist[0], f[3], b[31]);
}
"""

EXPECTED = {
    "dep-profiling": {"main.L0", "main.L1", "main.L6"},
    "discopop": {"main.L0", "main.L1", "main.L2", "main.L6", "main.L7"},
    "idioms": {"main.L1", "main.L2", "main.L7"},
    "polly": {"main.L0"},
    "icc": {"main.L0", "main.L1", "main.L6"},
}


@pytest.fixture(scope="module")
def zoo_ctx():
    return build_context(compile_program(ZOO))


@pytest.mark.parametrize(
    "detector_cls",
    [
        DependenceProfilingDetector,
        DiscoPopDetector,
        IdiomsDetector,
        PollyDetector,
        IccDetector,
    ],
)
def test_detector_envelope_on_zoo(zoo_ctx, detector_cls):
    det = detector_cls()
    found = {l for l, r in det.detect(zoo_ctx).items() if r.parallel}
    assert found == EXPECTED[det.name], det.name


def test_nobody_detects_recurrence_or_plds(zoo_ctx):
    for cls in (
        DependenceProfilingDetector,
        DiscoPopDetector,
        IdiomsDetector,
        PollyDetector,
        IccDetector,
    ):
        found = {l for l, r in cls().detect(zoo_ctx).items() if r.parallel}
        assert "main.L3" not in found  # recurrence
        assert "main.L5" not in found  # pointer chase


def test_combined_static_is_union(zoo_ctx):
    per_tool = [
        cls().detect(zoo_ctx) for cls in (IdiomsDetector, PollyDetector, IccDetector)
    ]
    combined = combine_static(per_tool)
    union = set()
    for results in per_tool:
        union |= {l for l, r in results.items() if r.parallel}
    assert {l for l, r in combined.items() if r.parallel} == union


def test_every_verdict_has_a_reason(zoo_ctx):
    for cls in (DependenceProfilingDetector, PollyDetector):
        for result in cls().detect(zoo_ctx).values():
            assert result.reason


def test_detectors_reject_unexecuted_loops():
    ctx = build_context(
        compile_program(
            """
            int N = 0;
            func void main() {
              if (N > 0) {
                for (int i = 0; i < N; i = i + 1) { }
              }
            }
            """
        )
    )
    for cls in (DependenceProfilingDetector, DiscoPopDetector):
        result = cls().detect(ctx)["main.L0"]
        assert not result.parallel
        assert "not exercised" in result.reason


def test_dynamic_detectors_reject_io_loops():
    ctx = build_context(
        compile_program(
            "func void main() { for (int i = 0; i < 3; i = i + 1) { print(i); } }"
        )
    )
    for cls in (DependenceProfilingDetector, DiscoPopDetector):
        result = cls().detect(ctx)["main.L0"]
        assert not result.parallel


def test_conditional_cursor_rejected_by_dynamics():
    # A conditionally bumped cursor is not a substitutable induction.
    ctx = build_context(
        compile_program(
            """
            func void main() {
              int[] out = new int[16];
              int cur = 0;
              for (int i = 0; i < 16; i = i + 1) {
                if (i % 3 == 0) { out[cur] = i; cur = cur + 1; }
              }
              print(out[0], cur);
            }
            """
        )
    )
    for cls in (DependenceProfilingDetector, DiscoPopDetector):
        assert not cls().detect(ctx)["main.L0"].parallel


def test_icc_handles_pure_calls_polly_does_not():
    ctx = build_context(
        compile_program(
            """
            func int sq(int x) { return x * x; }
            func void main() {
              int[] a = new int[8];
              for (int i = 0; i < 8; i = i + 1) { a[i] = sq(i); }
              print(a[7]);
            }
            """
        )
    )
    assert IccDetector().detect(ctx)["main.L0"].parallel
    assert not PollyDetector().detect(ctx)["main.L0"].parallel


def test_statics_reject_indirect_subscripts():
    ctx = build_context(
        compile_program(
            """
            func void main() {
              int[] idx = new int[8];
              int[] a = new int[8];
              for (int i = 0; i < 8; i = i + 1) { idx[i] = (i * 3) % 8; }
              for (int i = 0; i < 8; i = i + 1) { a[idx[i]] = i; }
              print(a[0]);
            }
            """
        )
    )
    for cls in (PollyDetector, IccDetector):
        assert not cls().detect(ctx)["main.L1"].parallel
    # But the dynamics see the writes are disjoint.
    assert DependenceProfilingDetector().detect(ctx)["main.L1"].parallel
