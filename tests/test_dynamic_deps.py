"""Dynamic memory-dependence profiler tests."""

from repro import compile_program
from repro.analysis.dynamic_deps import DynamicDepProfiler
from repro.interp.interpreter import Interpreter


def profile(source):
    module = compile_program(source)
    profiler = DynamicDepProfiler(module)
    Interpreter(module, observers=[profiler]).run()
    return profiler


def test_map_loop_has_no_cross_iteration_edges():
    profiler = profile(
        "func void main() { int[] a = new int[8];"
        " for (int i = 0; i < 8; i = i + 1) { a[i] = i; } print(a[0]); }"
    )
    deps = profiler.deps_for("main.L0")
    assert not deps.cross_iteration_edges()
    assert "main.L0" in profiler.executed


def test_recurrence_produces_cross_iteration_raw():
    profiler = profile(
        "func void main() { int[] a = new int[8]; a[0] = 1;"
        " for (int i = 1; i < 8; i = i + 1) { a[i] = a[i - 1] + 1; }"
        " print(a[7]); }"
    )
    deps = profiler.deps_for("main.L0")
    raw = deps.cross_iteration_edges("raw")
    assert raw
    # Writer and reader both attribute to sites inside main.
    assert all(e.writer[0] == "main" and e.reader[0] == "main" for e in raw)


def test_same_iteration_rmw_not_cross():
    profiler = profile(
        "func void main() { int[] a = new int[8];"
        " for (int i = 0; i < 8; i = i + 1) { a[i] = a[i] + 1; }"
        " print(a[0]); }"
    )
    deps = profiler.deps_for("main.L0")
    assert not deps.cross_iteration_edges("raw")


def test_histogram_has_cross_iteration_raw():
    profiler = profile(
        "func void main() { int[] h = new int[2];"
        " for (int i = 0; i < 8; i = i + 1) { h[i % 2] += 1; }"
        " print(h[0]); }"
    )
    deps = profiler.deps_for("main.L0")
    assert deps.cross_iteration_edges("raw")


def test_callee_accesses_attributed_to_call_site():
    profiler = profile(
        """
        struct Cell { int v; }
        func void bump(Cell* c) { c->v = c->v + 1; }
        func void main() {
          Cell* c = new Cell;
          for (int i = 0; i < 4; i = i + 1) { bump(c); }
          print(c->v);
        }
        """
    )
    deps = profiler.deps_for("main.L0")
    raw = deps.cross_iteration_edges("raw")
    assert raw
    # Attribution lifts the access out of bump() to the call inside main.
    assert all(e.writer[0] == "main" for e in raw)


def test_privatizable_location():
    profiler = profile(
        "func void main() { int[] tmp = new int[1]; int s = 0;"
        " for (int i = 0; i < 6; i = i + 1) { tmp[0] = i * 2; s = s + tmp[0]; }"
        " print(s); }"
    )
    deps = profiler.deps_for("main.L0")
    # tmp[0] causes cross-iteration WAW/WAR but is written-before-read in
    # every iteration: privatizable.
    cross = deps.cross_iteration_edges("waw") + deps.cross_iteration_edges("war")
    assert cross
    for edge in cross:
        assert profiler.is_privatizable("main.L0", edge.loc)


def test_read_before_write_is_not_privatizable():
    profiler = profile(
        "func void main() { int[] cell = new int[1]; cell[0] = 1; int s = 0;"
        " for (int i = 0; i < 6; i = i + 1) { s = s + cell[0]; cell[0] = i; }"
        " print(s); }"
    )
    deps = profiler.deps_for("main.L0")
    raw = deps.cross_iteration_edges("raw")
    assert raw
    assert not profiler.is_privatizable("main.L0", raw[0].loc)


def test_edges_scoped_to_invocation():
    # Writes from a previous invocation of the loop do not create edges.
    profiler = profile(
        """
        func void main() {
          int[] a = new int[4];
          for (int r = 0; r < 2; r = r + 1) {
            for (int i = 0; i < 4; i = i + 1) { a[i] = a[i] + r; }
          }
          print(a[0]);
        }
        """
    )
    inner = profiler.deps_for("main.L1")
    assert not inner.cross_iteration_edges("raw")
    # The outer loop *does* carry the dependence across its iterations.
    outer = profiler.deps_for("main.L0")
    assert outer.cross_iteration_edges("raw")


def test_memory_flow_edges_exported_per_label():
    profiler = profile(
        "func void main() { int[] a = new int[4]; a[0] = 1;"
        " for (int i = 1; i < 4; i = i + 1) { a[i] = a[i - 1]; }"
        " print(a[3]); }"
    )
    flows = profiler.memory_flow_edges()
    assert "main.L0" in flows
    assert all(len(edge) == 2 for edge in flows["main.L0"])
