"""Differential fuzz smoke: fixed seeds through the full harness.

Every seed's program runs through serial DCA, process DCA, and the
static prover; any verdict or report divergence fails the test with the
generated source attached for reproduction.  CI runs this as the
``fuzz-smoke`` job; raise the seed count locally with
``REPRO_FUZZ_SEEDS=500 pytest tests/fuzz/test_differential.py``.
"""

import os

import pytest

from diffharness import (
    cache_differential_check,
    differential_check,
    specs_soundness_check,
    tier_map,
    tiering_differential_check,
)
from fuzzgen import ARCHETYPES, generate_program

SEED_COUNT = int(os.environ.get("REPRO_FUZZ_SEEDS", "25"))
CACHE_SEED_COUNT = int(os.environ.get("REPRO_FUZZ_CACHE_SEEDS", "10"))
TIER_SEED_COUNT = int(os.environ.get("REPRO_FUZZ_TIER_SEEDS", "10"))


@pytest.mark.parametrize("seed", range(SEED_COUNT))
def test_differential_seed(seed):
    problems = differential_check(seed=seed)
    assert not problems, (
        f"seed {seed} diverged:\n"
        + "\n".join(problems)
        + "\n--- program ---\n"
        + generate_program(seed)
    )


@pytest.mark.parametrize("seed", range(CACHE_SEED_COUNT))
def test_cache_differential_seed(seed, tmp_path):
    problems = cache_differential_check(str(tmp_path), seed=seed)
    assert not problems, (
        f"seed {seed} cache divergence:\n"
        + "\n".join(problems)
        + "\n--- program ---\n"
        + generate_program(seed)
    )


@pytest.mark.parametrize("seed", range(SEED_COUNT))
def test_specs_soundness_seed(seed):
    problems = specs_soundness_check(seed=seed)
    assert not problems, (
        f"seed {seed} specs soundness violation:\n"
        + "\n".join(problems)
        + "\n--- program ---\n"
        + generate_program(seed)
    )


@pytest.mark.parametrize("seed", range(TIER_SEED_COUNT))
def test_tiering_differential_seed(seed):
    problems = tiering_differential_check(seed=seed)
    assert not problems, (
        f"seed {seed} tiering divergence:\n"
        + "\n".join(problems)
        + "\n--- program ---\n"
        + generate_program(seed)
    )


def test_pipeline_archetypes_tier_as_pipeline():
    # At least one generated program in the smoke range must contain a
    # non-commutative loop promoted to PIPELINE — the outcome the
    # pipeline_* archetypes exist to exercise.
    for seed in range(60):
        source = generate_program(seed)
        if "pipeline_" not in source.splitlines()[0]:
            continue
        tiers = tier_map(source)
        if any(entry["tier"] == "PIPELINE" and entry["stages"] >= 2
               for entry in tiers.values()):
            return
    raise AssertionError(
        "no pipeline-archetype program tiered PIPELINE in seeds 0..59"
    )


def test_spec_archetypes_only_commutative_under_specs():
    # At least one generated program in the smoke range must contain a
    # loop that byte-exact verification rejects and spec-relaxed
    # verification accepts — the divergence the registry exists for.
    from repro.core.dca import DcaAnalyzer
    from repro.driver import compile_program

    def zero():
        return 0.0

    for seed in range(60):
        source = generate_program(seed)
        header = source.splitlines()[0]
        if not any(name in header
                   for name in ("bag_insert", "set_insert")):
            continue
        off = DcaAnalyzer(
            compile_program(source), static_filter=False, clock=zero,
            backend="serial", specs=False,
        ).analyze()
        on = DcaAnalyzer(
            compile_program(source), static_filter=False, clock=zero,
            backend="serial", specs=True,
        ).analyze()
        flipped = [
            label for label in off.results
            if not off.results[label].is_commutative
            and on.results[label].is_commutative
        ]
        if flipped:
            return
    raise AssertionError(
        "no spec-archetype program flipped a loop in seeds 0..59"
    )


def test_generator_is_deterministic():
    for seed in (0, 7, 123):
        assert generate_program(seed) == generate_program(seed)


def test_generator_covers_archetypes():
    # Across a modest seed range every archetype should appear at least
    # once — guards against a weight or name falling out of rotation.
    seen = set()
    for seed in range(120):
        header = generate_program(seed).splitlines()[0]
        for name, _ in ARCHETYPES:
            if name in header:
                seen.add(name)
    missing = {name for name, _ in ARCHETYPES} - seen
    assert not missing, f"archetypes never generated: {missing}"
