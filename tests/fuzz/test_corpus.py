"""Fuzz-found regression corpus.

Each ``corpus/*.mc`` is a generated program promoted to a fixture
because its verdict mix is interesting (mixed commutative and
non-commutative loops across the generator's archetypes).  The paired
``*.expect.json`` pins the per-loop dynamic verdicts (static filter
off); every program also re-runs through the full differential harness,
so a regression in either backend or the static prover surfaces here
with a stable reproducer already checked in.
"""

import glob
import json
import os

import pytest

from diffharness import differential_check, tier_map, verdict_map

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CORPUS = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.mc")))
#: Programs additionally pinned under REPRO_TIERING: the paired
#: ``*.tiers.json`` freezes each loop's tier and pipeline stage count.
TIERED = [p for p in CORPUS if os.path.exists(p.replace(".mc", ".tiers.json"))]


def test_corpus_is_populated():
    assert len(CORPUS) >= 5
    # The corpus exists to pin *mixed* behaviour.
    mixed = 0
    for path in CORPUS:
        with open(path.replace(".mc", ".expect.json")) as handle:
            verdicts = set(json.load(handle).values())
        if {"commutative", "non-commutative"} <= verdicts:
            mixed += 1
    assert mixed >= 5


@pytest.mark.parametrize("path", CORPUS, ids=os.path.basename)
def test_corpus_program_matches_expected_verdicts(path):
    with open(path) as handle:
        source = handle.read()
    with open(path.replace(".mc", ".expect.json")) as handle:
        expected = json.load(handle)
    assert verdict_map(source) == expected


@pytest.mark.parametrize("path", CORPUS, ids=os.path.basename)
def test_corpus_program_passes_differential_harness(path):
    with open(path) as handle:
        source = handle.read()
    problems = differential_check(source=source)
    assert not problems, f"{path} diverged:\n" + "\n".join(problems)


def test_tiered_corpus_is_populated():
    # The tier goldens must pin loops that DOALL-only analysis leaves on
    # the floor: non-commutative loops promoted to PIPELINE.
    assert len(TIERED) >= 2
    pipelined = 0
    for path in TIERED:
        with open(path.replace(".mc", ".tiers.json")) as handle:
            tiers = json.load(handle)
        if any(entry["tier"] == "PIPELINE" for entry in tiers.values()):
            pipelined += 1
    assert pipelined >= 2


@pytest.mark.parametrize("path", TIERED, ids=os.path.basename)
def test_corpus_program_matches_expected_tiers(path):
    with open(path) as handle:
        source = handle.read()
    with open(path.replace(".mc", ".tiers.json")) as handle:
        expected = json.load(handle)
    assert tier_map(source) == expected
    # Tiering must not disturb the pinned verdicts.
    with open(path.replace(".mc", ".expect.json")) as handle:
        verdicts = json.load(handle)
    assert verdict_map(source) == verdicts
