"""Seeded random MiniC program generator for differential fuzzing.

Programs are assembled from weighted *loop archetypes* chosen to stress
exactly the behaviours the paper's dynamic stage must classify
correctly — the generator is deliberately biased toward reductions,
pointer chases, and loop-carried dependences rather than uniform random
code, because those are where verdicts can plausibly diverge between
execution orders:

* ``map`` / ``cond_count`` / ``reduction`` / ``max_reduction`` /
  ``histogram`` — commutative idioms (distinct writes, associative
  updates, scatter-add);
* ``last_writer`` / ``sub_chain`` / ``prefix`` / ``cross_inplace`` —
  order-dependent updates and loop-carried flow (non-commutative under
  the strict policy);
* ``pointer_chase`` — heap building (order-dependent structure) plus a
  pointer traversal whose payload commutes, the paper's motivating case
  for dynamic over static analysis;
* ``call_chain`` / ``permuted_fault`` / ``step_burner`` — execution
  backend stressors: deep helper-call chains (cross-frame step
  accounting), an order-sensitive divisor whose divide-by-zero fault
  can appear only under some schedules (fault paths mid-replay), and a
  nested busy loop whose per-iteration step count is large enough that
  an externally imposed ``max_steps`` exhausts mid-loop;
* ``pipeline_cursor`` / ``pipeline_chase_sum`` / ``pipeline_shift`` —
  non-commutative loops with *pipeline structure*: a sequential SCC (a
  scalar recurrence, an order-sensitive traversal accumulator, or a
  prefix memory cycle) feeding an independent parallel SCC in the same
  loop body.  Under ``REPRO_TIERING`` these must tier as ``PIPELINE``
  (multiple stages) rather than ``SEQUENTIAL``, and the tiered report
  must stay byte-identical across schedule and execution backends;
* ``bag_insert`` / ``set_insert`` / ``bag_insert_global`` — container
  building over the *declared* ``BagNode``/``SetNode`` types: byte-exact
  verification calls them non-commutative (the chain permutes with the
  schedule), verification modulo the commutativity-spec registry calls
  them commutative (the content multiset does not).  These exist so the
  specs-on/off soundness cross-check has programs where the two modes
  legitimately differ.

Everything is integer-valued, so verdicts never hinge on float roundoff
tolerance, and all I/O happens after the loops (prints inside a loop
would get it excluded at selection).  ``generate_program(seed)`` is a
pure function of the seed: the same seed always yields the same source,
which is how CI failures are reproduced locally (see DESIGN.md §9).
"""

from __future__ import annotations

import random

__all__ = ["ARCHETYPES", "generate_program"]

#: (name, weight).  Weights bias toward the order-sensitive archetypes.
ARCHETYPES = (
    ("map", 2),
    ("reduction", 3),
    ("max_reduction", 2),
    ("histogram", 3),
    ("cond_count", 2),
    ("last_writer", 3),
    ("sub_chain", 2),
    ("prefix", 3),
    ("cross_inplace", 2),
    ("pointer_chase", 3),
    ("pipeline_cursor", 2),
    ("pipeline_chase_sum", 2),
    ("pipeline_shift", 2),
    ("bag_insert", 2),
    ("set_insert", 2),
    ("bag_insert_global", 1),
    ("call_chain", 2),
    ("permuted_fault", 2),
    ("step_burner", 2),
)


class _Emitter:
    def __init__(self, rng: random.Random, n: int):
        self.rng = rng
        self.n = n
        self.body: list[str] = []
        self.prints: list[str] = []
        self.globals: list[str] = []
        self.funcs: list[str] = []
        #: (c1, c2, mod) of the shared input fill; lets archetypes
        #: simulate the golden-order values at generation time.
        self.fill: tuple[int, int, int] = (0, 0, 1)
        self.needs_node = False
        self.needs_bag = False
        self.needs_set = False

    def input_values(self) -> list[int]:
        """The deterministic contents of the shared input array ``a``."""
        c1, c2, mod = self.fill
        return [(i * c1 + c2) % mod - mod // 2 for i in range(self.n)]

    def line(self, text: str) -> None:
        self.body.append(f"  {text}")

    def for_loop(self, body_lines, var: str = "i", start: int = 0) -> None:
        self.line(f"for (int {var} = {start}; {var} < {self.n}; {var} = {var} + 1) {{")
        for text in body_lines:
            self.line(f"  {text}")
        self.line("}")

    def checksum_array(self, k: int, arr: str, length) -> None:
        """Reduce an array to a printable scalar (itself a commutative
        reduction loop, so it also feeds the oracle)."""
        acc = f"chk{k}"
        self.line(f"int {acc} = 0;")
        self.line(f"for (int j = 0; j < {length}; j = j + 1) {{")
        self.line(f"  {acc} += {arr}[j];")
        self.line("}")
        self.prints.append(acc)


def _emit_map(e: _Emitter, k: int) -> None:
    c1, c2 = e.rng.randint(2, 9), e.rng.randint(0, 20)
    e.line(f"int[] b{k} = new int[{e.n}];")
    e.for_loop([f"b{k}[i] = a[i] * {c1} + {c2};"])
    e.checksum_array(k, f"b{k}", e.n)


def _emit_reduction(e: _Emitter, k: int) -> None:
    c = e.rng.randint(1, 7)
    e.line(f"int s{k} = 0;")
    e.for_loop([f"s{k} += a[i] * {c};"])
    e.prints.append(f"s{k}")


def _emit_max_reduction(e: _Emitter, k: int) -> None:
    e.line(f"int m{k} = -1000;")
    e.for_loop([f"m{k} = max(m{k}, a[i]);"])
    e.prints.append(f"m{k}")


def _emit_histogram(e: _Emitter, k: int) -> None:
    buckets = e.rng.choice((4, 8))
    e.line(f"int[] h{k} = new int[{buckets}];")
    e.for_loop([f"h{k}[abs(a[i]) % {buckets}] += 1;"])
    e.checksum_array(k, f"h{k}", buckets)


def _emit_cond_count(e: _Emitter, k: int) -> None:
    mod = e.rng.randint(2, 5)
    e.line(f"int c{k} = 0;")
    e.for_loop([f"if (abs(a[i]) % {mod} == 0) {{", f"  c{k} += 1;", "}"])
    e.prints.append(f"c{k}")


def _emit_last_writer(e: _Emitter, k: int) -> None:
    # Order-dependent: whichever iteration runs last wins.
    e.line(f"int last{k} = 0;")
    e.for_loop([f"last{k} = a[i];"])
    e.prints.append(f"last{k}")


def _emit_sub_chain(e: _Emitter, k: int) -> None:
    # Subtraction does not commute: s = a[i] - s is order-dependent.
    e.line(f"int s{k} = {e.rng.randint(0, 5)};")
    e.for_loop([f"s{k} = a[i] - s{k};"])
    e.prints.append(f"s{k}")


def _emit_prefix(e: _Emitter, k: int) -> None:
    # Loop-carried flow a[i] <- a[i-1]: a prefix sum is the classic
    # non-commutative loop.
    e.line(f"int[] p{k} = new int[{e.n}];")
    e.for_loop([f"p{k}[i] = a[i];"])
    e.for_loop([f"p{k}[i] = p{k}[i] + p{k}[i - 1];"], var="i", start=1)
    e.checksum_array(k, f"p{k}", e.n)


def _emit_cross_inplace(e: _Emitter, k: int) -> None:
    # In-place cross-read: iteration i reads a slot another iteration
    # mutates, so the result depends on execution order.
    e.line(f"int[] x{k} = new int[{e.n}];")
    e.for_loop([f"x{k}[i] = a[i];"])
    e.for_loop([f"x{k}[i] = x{k}[i] + x{k}[{e.n - 1} - i];"])
    e.checksum_array(k, f"x{k}", e.n)


def _emit_pointer_chase(e: _Emitter, k: int) -> None:
    # Build loop: order-dependent list structure (head dependence).
    # Traversal: per-node update + reduction, commutative payload.
    e.needs_node = True
    mul = e.rng.randint(2, 5)
    e.line(f"Node* head{k} = null;")
    e.for_loop(
        [
            "Node* n = new Node;",
            "n.value = a[i];",
            f"n.next = head{k};",
            f"head{k} = n;",
        ]
    )
    e.line(f"int t{k} = 0;")
    e.line(f"Node* p{k} = head{k};")
    e.line(f"while (p{k} != null) {{")
    e.line(f"  p{k}.value = p{k}.value * {mul} + 1;")
    e.line(f"  t{k} += p{k}.value;")
    e.line(f"  p{k} = p{k}.next;")
    e.line("}")
    e.prints.append(f"t{k}")


def _emit_pipeline_cursor(e: _Emitter, k: int) -> None:
    # Scalar recurrence (sequential SCC) feeding an elementwise store
    # (parallel SCC): non-commutative, but pipelinable — the recurrence
    # serializes in stage 0 while the store replicates downstream.
    mul = e.rng.randint(2, 5)
    mod = e.rng.randint(3, 9)
    e.line(f"int cur{k} = 1;")
    e.line(f"int[] pc{k} = new int[{e.n}];")
    e.for_loop(
        [
            f"cur{k} = cur{k} * {mul} + a[i];",
            f"pc{k}[i] = cur{k} % {mod} + a[i] * 2;",
        ]
    )
    e.checksum_array(k, f"pc{k}", e.n)
    e.prints.append(f"cur{k}")


def _emit_pipeline_chase_sum(e: _Emitter, k: int) -> None:
    # Pointer traversal with an order-sensitive accumulator
    # (s = s*2 + value does not commute): the chase + accumulator form
    # one sequential SCC, the per-node payload update another — a
    # pipeline over heap structure.
    e.needs_node = True
    mul = e.rng.randint(2, 4)
    e.line(f"Node* ch{k} = null;")
    e.for_loop(
        [
            "Node* n = new Node;",
            "n.value = a[i];",
            f"n.next = ch{k};",
            f"ch{k} = n;",
        ]
    )
    e.line(f"int cs{k} = 0;")
    e.line(f"Node* cp{k} = ch{k};")
    e.line(f"while (cp{k} != null) {{")
    e.line(f"  cp{k}.value = cp{k}.value * {mul} + 1;")
    e.line(f"  cs{k} = cs{k} * 2 + cp{k}.value;")
    e.line(f"  cp{k} = cp{k}.next;")
    e.line("}")
    e.prints.append(f"cs{k}")


def _emit_pipeline_shift(e: _Emitter, k: int) -> None:
    # Prefix memory cycle (ps[i+1] reads ps[i]) next to an independent
    # elementwise store in the SAME loop: the cycle is one sequential
    # SCC, the store a parallel one — two pipeline stages.
    mul = e.rng.randint(2, 6)
    e.line(f"int[] ps{k} = new int[{e.n + 1}];")
    e.line(f"int[] pq{k} = new int[{e.n}];")
    e.line(f"ps{k}[0] = 0;")
    e.for_loop(
        [
            f"ps{k}[i + 1] = ps{k}[i] + a[i];",
            f"pq{k}[i] = a[i] * {mul};",
        ]
    )
    e.checksum_array(k, f"ps{k}", e.n + 1)
    e.checksum_array(k + 100, f"pq{k}", e.n)


def _emit_bag_insert(e: _Emitter, k: int) -> None:
    # Prepends into a declared BagNode chain: structure permutes with
    # the schedule, content multiset does not — commutative only under
    # the spec registry's multiset equivalence.
    e.needs_bag = True
    mod = e.rng.randint(5, 11)
    e.line(f"BagNode* bag{k} = null;")
    e.for_loop(
        [
            "BagNode* n = new BagNode;",
            f"n.value = abs(a[i]) % {mod};",
            f"n.next = bag{k};",
            f"bag{k} = n;",
        ]
    )
    # Order-insensitive summary: the printed total matches under every
    # schedule even when the chain itself does not.
    e.line(f"int bt{k} = 0;")
    e.line(f"BagNode* bp{k} = bag{k};")
    e.line(f"while (bp{k} != null) {{")
    e.line(f"  bt{k} += bp{k}.value;")
    e.line(f"  bp{k} = bp{k}.next;")
    e.line("}")
    e.prints.append(f"bt{k}")


def _emit_set_insert(e: _Emitter, k: int) -> None:
    # Dedup-insert into a declared SetNode chain: the final membership
    # is order-independent, the link order is not.
    e.needs_set = True
    mod = e.rng.randint(3, 6)
    e.line(f"SetNode* set{k} = null;")
    e.for_loop(
        [
            f"int key = abs(a[i]) % {mod};",
            "int seen = 0;",
            f"SetNode* q = set{k};",
            "while (q != null) {",
            "  if (q.key == key) {",
            "    seen = 1;",
            "  }",
            "  q = q.next;",
            "}",
            "if (seen == 0) {",
            "  SetNode* m = new SetNode;",
            "  m.key = key;",
            f"  m.next = set{k};",
            f"  set{k} = m;",
            "}",
        ]
    )
    e.line(f"int sc{k} = 0;")
    e.line(f"SetNode* sp{k} = set{k};")
    e.line(f"while (sp{k} != null) {{")
    e.line(f"  sc{k} += 1;")
    e.line(f"  sp{k} = sp{k}.next;")
    e.line("}")
    e.prints.append(f"sc{k}")


def _emit_bag_insert_global(e: _Emitter, k: int) -> None:
    # Same multiset semantics, but the chain head lives in a global —
    # exercises the recognizer's global-head path.
    e.needs_bag = True
    mul = e.rng.randint(2, 6)
    e.globals.append(f"BagNode* gbag{k} = null;")
    e.for_loop(
        [
            "BagNode* n = new BagNode;",
            f"n.value = a[i] * {mul};",
            f"n.next = gbag{k};",
            f"gbag{k} = n;",
        ]
    )
    e.line(f"int gt{k} = 0;")
    e.line(f"BagNode* gp{k} = gbag{k};")
    e.line(f"while (gp{k} != null) {{")
    e.line(f"  gt{k} += gp{k}.value;")
    e.line(f"  gp{k} = gp{k}.next;")
    e.line("}")
    e.prints.append(f"gt{k}")


def _emit_call_chain(e: _Emitter, k: int) -> None:
    # Deep helper-call chain (binary fan-out): stresses cross-frame step
    # accounting — the codegen backend flushes its local step counter to
    # the shared state at every call and resyncs on return, and any
    # drift shows up as a report divergence.
    depth = e.rng.randint(3, 5)
    c = e.rng.randint(2, 7)
    e.funcs.append(f"func int f{k}_0(int x) {{ return x * {c} + 1; }}")
    for d in range(1, depth):
        e.funcs.append(
            f"func int f{k}_{d}(int x) "
            f"{{ return f{k}_{d - 1}(x) + f{k}_{d - 1}(x - 1); }}"
        )
    e.line(f"int cc{k} = 0;")
    e.for_loop([f"cc{k} += f{k}_{depth - 1}(a[i]);"])
    e.prints.append(f"cc{k}")


def _emit_permuted_fault(e: _Emitter, k: int) -> None:
    # Order-sensitive divisor: the running value depends on iteration
    # order, so a divide-by-zero can fire in a permuted replay (verdict
    # ``runtime-fault``) without ever firing in the golden run —
    # stressing the backends' fault paths (exact messages, fault-site
    # provenance, step accounting at the faulting instruction) under
    # schedule permutation.  The constant is chosen by simulating the
    # golden order so the top-level execution itself never faults.
    vals = e.input_values()
    start = e.rng.randint(1, 4)
    safe_c = None
    for c in range(start, start + 12):
        dv = c
        ok = True
        for v in vals:
            dv = v - dv
            if dv + c == 0:
                ok = False
                break
        if ok:
            safe_c = c
            break
    if safe_c is None:
        # No golden-safe constant in range (practically unreachable):
        # fall back to a divisor that can never be zero.
        divisor = f"(abs(dv{k}) + 1)"
        safe_c = start
    else:
        divisor = f"(dv{k} + {safe_c})"
    e.line(f"int dv{k} = {safe_c};")
    e.line(f"int fr{k} = 0;")
    e.for_loop(
        [
            f"dv{k} = a[i] - dv{k};",
            f"fr{k} += 100 / {divisor} + a[i] % (abs(dv{k}) + 1);",
        ]
    )
    e.prints.append(f"fr{k}")


def _emit_step_burner(e: _Emitter, k: int) -> None:
    # Nested busy loop with a large per-iteration step count: under an
    # externally imposed max_steps (tests/test_codegen.py sweeps one)
    # the limit exhausts mid-loop, where the codegen backend must charge
    # and check steps exactly like the interpreter.  Also the hot-loop
    # stress for the dispatch-free inlined loop bodies.
    inner = e.rng.randint(8, 20)
    e.line(f"int sb{k} = 0;")
    e.for_loop(
        [
            "int t = 0;",
            f"while (t < {inner}) {{",
            f"  sb{k} += (t * a[i]) % 7;",
            "  t = t + 1;",
            "}",
        ]
    )
    e.prints.append(f"sb{k}")


_EMITTERS = {
    "map": _emit_map,
    "reduction": _emit_reduction,
    "max_reduction": _emit_max_reduction,
    "histogram": _emit_histogram,
    "cond_count": _emit_cond_count,
    "last_writer": _emit_last_writer,
    "sub_chain": _emit_sub_chain,
    "prefix": _emit_prefix,
    "cross_inplace": _emit_cross_inplace,
    "pointer_chase": _emit_pointer_chase,
    "pipeline_cursor": _emit_pipeline_cursor,
    "pipeline_chase_sum": _emit_pipeline_chase_sum,
    "pipeline_shift": _emit_pipeline_shift,
    "bag_insert": _emit_bag_insert,
    "set_insert": _emit_set_insert,
    "bag_insert_global": _emit_bag_insert_global,
    "call_chain": _emit_call_chain,
    "permuted_fault": _emit_permuted_fault,
    "step_burner": _emit_step_burner,
}


def generate_program(seed: int) -> str:
    """Deterministically generate one MiniC program from ``seed``."""
    rng = random.Random(seed)
    n = rng.randint(4, 16)
    e = _Emitter(rng, n)

    names = [name for name, _ in ARCHETYPES]
    weights = [w for _, w in ARCHETYPES]
    chosen = rng.choices(names, weights=weights, k=rng.randint(1, 3))

    # Shared input array with a mildly irregular but deterministic fill.
    c1, c2, mod = rng.randint(3, 11), rng.randint(1, 13), rng.randint(17, 37)
    e.fill = (c1, c2, mod)
    e.line(f"int[] a = new int[{n}];")
    e.for_loop([f"a[i] = (i * {c1} + {c2}) % {mod} - {mod // 2};"])

    for k, name in enumerate(chosen):
        _EMITTERS[name](e, k)

    lines = [f"// fuzz seed {seed}: {', '.join(chosen)} (N={n})"]
    if e.needs_node:
        lines.append("struct Node { int value; Node* next; }")
        lines.append("")
    # Declared container types: field signatures match the default spec
    # registry exactly, so these chains canonicalize under specs.
    if e.needs_bag:
        lines.append("struct BagNode { int value; BagNode* next; }")
        lines.append("")
    if e.needs_set:
        lines.append("struct SetNode { int key; SetNode* next; }")
        lines.append("")
    if e.funcs:
        lines.extend(e.funcs)
        lines.append("")
    lines.extend(e.globals)
    lines.append("func void main() {")
    lines.extend(e.body)
    for name in e.prints:
        lines.append(f"  print({name});")
    lines.append("}")
    return "\n".join(lines) + "\n"
