"""Seeded random MiniC program generator for differential fuzzing.

Programs are assembled from weighted *loop archetypes* chosen to stress
exactly the behaviours the paper's dynamic stage must classify
correctly — the generator is deliberately biased toward reductions,
pointer chases, and loop-carried dependences rather than uniform random
code, because those are where verdicts can plausibly diverge between
execution orders:

* ``map`` / ``cond_count`` / ``reduction`` / ``max_reduction`` /
  ``histogram`` — commutative idioms (distinct writes, associative
  updates, scatter-add);
* ``last_writer`` / ``sub_chain`` / ``prefix`` / ``cross_inplace`` —
  order-dependent updates and loop-carried flow (non-commutative under
  the strict policy);
* ``pointer_chase`` — heap building (order-dependent structure) plus a
  pointer traversal whose payload commutes, the paper's motivating case
  for dynamic over static analysis.

Everything is integer-valued, so verdicts never hinge on float roundoff
tolerance, and all I/O happens after the loops (prints inside a loop
would get it excluded at selection).  ``generate_program(seed)`` is a
pure function of the seed: the same seed always yields the same source,
which is how CI failures are reproduced locally (see DESIGN.md §9).
"""

from __future__ import annotations

import random

__all__ = ["ARCHETYPES", "generate_program"]

#: (name, weight).  Weights bias toward the order-sensitive archetypes.
ARCHETYPES = (
    ("map", 2),
    ("reduction", 3),
    ("max_reduction", 2),
    ("histogram", 3),
    ("cond_count", 2),
    ("last_writer", 3),
    ("sub_chain", 2),
    ("prefix", 3),
    ("cross_inplace", 2),
    ("pointer_chase", 3),
)


class _Emitter:
    def __init__(self, rng: random.Random, n: int):
        self.rng = rng
        self.n = n
        self.body: list[str] = []
        self.prints: list[str] = []
        self.needs_node = False

    def line(self, text: str) -> None:
        self.body.append(f"  {text}")

    def for_loop(self, body_lines, var: str = "i", start: int = 0) -> None:
        self.line(f"for (int {var} = {start}; {var} < {self.n}; {var} = {var} + 1) {{")
        for text in body_lines:
            self.line(f"  {text}")
        self.line("}")

    def checksum_array(self, k: int, arr: str, length) -> None:
        """Reduce an array to a printable scalar (itself a commutative
        reduction loop, so it also feeds the oracle)."""
        acc = f"chk{k}"
        self.line(f"int {acc} = 0;")
        self.line(f"for (int j = 0; j < {length}; j = j + 1) {{")
        self.line(f"  {acc} += {arr}[j];")
        self.line("}")
        self.prints.append(acc)


def _emit_map(e: _Emitter, k: int) -> None:
    c1, c2 = e.rng.randint(2, 9), e.rng.randint(0, 20)
    e.line(f"int[] b{k} = new int[{e.n}];")
    e.for_loop([f"b{k}[i] = a[i] * {c1} + {c2};"])
    e.checksum_array(k, f"b{k}", e.n)


def _emit_reduction(e: _Emitter, k: int) -> None:
    c = e.rng.randint(1, 7)
    e.line(f"int s{k} = 0;")
    e.for_loop([f"s{k} += a[i] * {c};"])
    e.prints.append(f"s{k}")


def _emit_max_reduction(e: _Emitter, k: int) -> None:
    e.line(f"int m{k} = -1000;")
    e.for_loop([f"m{k} = max(m{k}, a[i]);"])
    e.prints.append(f"m{k}")


def _emit_histogram(e: _Emitter, k: int) -> None:
    buckets = e.rng.choice((4, 8))
    e.line(f"int[] h{k} = new int[{buckets}];")
    e.for_loop([f"h{k}[abs(a[i]) % {buckets}] += 1;"])
    e.checksum_array(k, f"h{k}", buckets)


def _emit_cond_count(e: _Emitter, k: int) -> None:
    mod = e.rng.randint(2, 5)
    e.line(f"int c{k} = 0;")
    e.for_loop([f"if (abs(a[i]) % {mod} == 0) {{", f"  c{k} += 1;", "}"])
    e.prints.append(f"c{k}")


def _emit_last_writer(e: _Emitter, k: int) -> None:
    # Order-dependent: whichever iteration runs last wins.
    e.line(f"int last{k} = 0;")
    e.for_loop([f"last{k} = a[i];"])
    e.prints.append(f"last{k}")


def _emit_sub_chain(e: _Emitter, k: int) -> None:
    # Subtraction does not commute: s = a[i] - s is order-dependent.
    e.line(f"int s{k} = {e.rng.randint(0, 5)};")
    e.for_loop([f"s{k} = a[i] - s{k};"])
    e.prints.append(f"s{k}")


def _emit_prefix(e: _Emitter, k: int) -> None:
    # Loop-carried flow a[i] <- a[i-1]: a prefix sum is the classic
    # non-commutative loop.
    e.line(f"int[] p{k} = new int[{e.n}];")
    e.for_loop([f"p{k}[i] = a[i];"])
    e.for_loop([f"p{k}[i] = p{k}[i] + p{k}[i - 1];"], var="i", start=1)
    e.checksum_array(k, f"p{k}", e.n)


def _emit_cross_inplace(e: _Emitter, k: int) -> None:
    # In-place cross-read: iteration i reads a slot another iteration
    # mutates, so the result depends on execution order.
    e.line(f"int[] x{k} = new int[{e.n}];")
    e.for_loop([f"x{k}[i] = a[i];"])
    e.for_loop([f"x{k}[i] = x{k}[i] + x{k}[{e.n - 1} - i];"])
    e.checksum_array(k, f"x{k}", e.n)


def _emit_pointer_chase(e: _Emitter, k: int) -> None:
    # Build loop: order-dependent list structure (head dependence).
    # Traversal: per-node update + reduction, commutative payload.
    e.needs_node = True
    mul = e.rng.randint(2, 5)
    e.line(f"Node* head{k} = null;")
    e.for_loop(
        [
            "Node* n = new Node;",
            "n.value = a[i];",
            f"n.next = head{k};",
            f"head{k} = n;",
        ]
    )
    e.line(f"int t{k} = 0;")
    e.line(f"Node* p{k} = head{k};")
    e.line(f"while (p{k} != null) {{")
    e.line(f"  p{k}.value = p{k}.value * {mul} + 1;")
    e.line(f"  t{k} += p{k}.value;")
    e.line(f"  p{k} = p{k}.next;")
    e.line("}")
    e.prints.append(f"t{k}")


_EMITTERS = {
    "map": _emit_map,
    "reduction": _emit_reduction,
    "max_reduction": _emit_max_reduction,
    "histogram": _emit_histogram,
    "cond_count": _emit_cond_count,
    "last_writer": _emit_last_writer,
    "sub_chain": _emit_sub_chain,
    "prefix": _emit_prefix,
    "cross_inplace": _emit_cross_inplace,
    "pointer_chase": _emit_pointer_chase,
}


def generate_program(seed: int) -> str:
    """Deterministically generate one MiniC program from ``seed``."""
    rng = random.Random(seed)
    n = rng.randint(4, 16)
    e = _Emitter(rng, n)

    names = [name for name, _ in ARCHETYPES]
    weights = [w for _, w in ARCHETYPES]
    chosen = rng.choices(names, weights=weights, k=rng.randint(1, 3))

    # Shared input array with a mildly irregular but deterministic fill.
    c1, c2, mod = rng.randint(3, 11), rng.randint(1, 13), rng.randint(17, 37)
    e.line(f"int[] a = new int[{n}];")
    e.for_loop([f"a[i] = (i * {c1} + {c2}) % {mod} - {mod // 2};"])

    for k, name in enumerate(chosen):
        _EMITTERS[name](e, k)

    lines = [f"// fuzz seed {seed}: {', '.join(chosen)} (N={n})"]
    if e.needs_node:
        lines.append("struct Node { int value; Node* next; }")
        lines.append("")
    lines.append("func void main() {")
    lines.extend(e.body)
    for name in e.prints:
        lines.append(f"  print({name});")
    lines.append("}")
    return "\n".join(lines) + "\n"
