"""Make the fuzz helpers (fuzzgen, diffharness) importable by the tests
in this directory without packaging them."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
