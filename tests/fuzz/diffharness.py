"""Differential harness: serial DCA vs process DCA vs the static prover.

The correctness bar for parallelizing our own analyzer is the one the
paper sets for target loops: identical results under any execution
order.  :func:`differential_check` enforces it three ways for one
program:

1. **Backend equality** — the full JSON report (verdicts, provenance,
   reasons, counters, digests) must be byte-identical between the
   serial and the process schedule backends AND across all three
   execution backends: interpreter, closure-compiled, and Python-source
   codegen (each on both schedule backends).  All runs use a zero clock
   so timing fields cannot differ.
2. **Static agreement** — where the static prover *proves* a verdict,
   the dynamic oracle must not contradict it (same contract as
   ``tests/test_static_commutativity.py``): a commutativity proof is
   refuted by ``non-commutative`` / ``runtime-fault`` /
   ``split-mismatch``; a race proof is refuted by a ``commutative``
   verdict on a loop that actually reached two iterations.
3. **Execution accounting** — executed + statically saved + skipped
   schedule executions must cover exactly (1 + testing schedules) per
   eligible loop (see DcaReport.schedules_skipped).

:func:`cache_differential_check` extends the same bar to the persistent
cache: a cold run populating a fresh cache and a warm run served from it
must both serialize byte-identically to an uncached run, with the warm
run hitting for every dynamically decided loop.

Returns a list of human-readable divergence descriptions; an empty list
means the program passed.  Reproduce any CI seed locally with::

    PYTHONPATH=src python -c "
    import sys; sys.path.insert(0, 'tests/fuzz')
    from fuzzgen import generate_program
    from diffharness import differential_check
    print(generate_program(SEED)); print(differential_check(seed=SEED))"
"""

from __future__ import annotations

import difflib
from typing import Dict, List, Optional

from repro.analysis.commutativity import (
    PROVEN_COMMUTATIVE,
    StaticCommutativityAnalysis,
)
from repro.analysis.specs import default_registry, registry_from_env
from repro.cache import AnalysisCache
from repro.core.dca import DcaAnalyzer
from repro.core.report import (
    COMMUTATIVE,
    DECIDED_CACHE,
    DECIDED_DYNAMIC,
    DECIDED_STATIC,
    DECIDED_STATIC_SPECS,
    NON_COMMUTATIVE,
    RUNTIME_FAULT,
    SPLIT_MISMATCH,
)
from repro.core.schedules import ScheduleConfig
from repro.driver import compile_program

from fuzzgen import generate_program

__all__ = [
    "accounting_violation",
    "cache_differential_check",
    "differential_check",
    "specs_soundness_check",
    "tier_map",
    "tiering_differential_check",
]

#: Dynamic verdicts that contradict a static commutativity proof.
_REFUTES_COMMUTATIVE = {NON_COMMUTATIVE, RUNTIME_FAULT, SPLIT_MISMATCH}


def _zero() -> float:
    return 0.0


def accounting_violation(report) -> Optional[str]:
    """Check the schedule-execution accounting invariant on a report.

    ``executed + saved + skipped == eligible × (1 + testing schedules)``
    where eligible loops are those decided statically or dynamically.
    Returns a description of the violation, or None.
    """
    n_schedules = 1 + len(ScheduleConfig.default().testing_schedules())
    eligible = sum(
        1
        for r in report.results.values()
        if r.decided_by in (DECIDED_STATIC, DECIDED_STATIC_SPECS,
                            DECIDED_DYNAMIC, DECIDED_CACHE)
    )
    skipped = sum(report.schedules_skipped.values())
    total = report.schedule_executions + report.static_schedules_saved + skipped
    if total != eligible * n_schedules:
        return (
            f"accounting: executed {report.schedule_executions} + saved "
            f"{report.static_schedules_saved} + skipped {skipped} != "
            f"{eligible} eligible loops x {n_schedules} schedules"
        )
    return None


def differential_check(
    source: Optional[str] = None,
    seed: Optional[int] = None,
    jobs: int = 2,
) -> List[str]:
    """Run one program through all three analyses; return divergences."""
    if source is None:
        source = generate_program(seed)
    problems: List[str] = []

    serial = DcaAnalyzer(
        compile_program(source), static_filter=False, clock=_zero,
        backend="serial",
    ).analyze()
    process = DcaAnalyzer(
        compile_program(source),
        static_filter=False,
        clock=_zero,
        backend="process",
        jobs=jobs,
    ).analyze()
    # Exec-backend axis: the closure-compiled and codegen backends must
    # reproduce the interpreter's report byte-for-byte, on both schedule
    # backends.
    exec_variants = []
    for exec_backend in ("compiled", "codegen"):
        exec_variants.append((
            f"{exec_backend}-serial",
            DcaAnalyzer(
                compile_program(source), static_filter=False, clock=_zero,
                backend="serial", exec_backend=exec_backend,
            ).analyze(),
        ))
        exec_variants.append((
            f"{exec_backend}-process",
            DcaAnalyzer(
                compile_program(source),
                static_filter=False,
                clock=_zero,
                backend="process",
                jobs=jobs,
                exec_backend=exec_backend,
            ).analyze(),
        ))

    j_serial = serial.to_json()
    for name, other in [("process", process)] + exec_variants:
        j_other = other.to_json()
        if j_serial != j_other:
            diff = "\n".join(
                list(
                    difflib.unified_diff(
                        j_serial.splitlines(),
                        j_other.splitlines(),
                        fromfile="serial",
                        tofile=name,
                        lineterm="",
                    )
                )[:40]
            )
            problems.append(f"{name} report divergence:\n{diff}")

    # The static side resolves specs the same way the analyzer runs
    # above did (REPRO_SPECS), so the agreement check compares the two
    # stages under one verification semantics.
    static = StaticCommutativityAnalysis(
        compile_program(source), specs=registry_from_env()
    ).analyze()
    for label, verdict in static.items():
        if not verdict.is_proven or label not in serial.results:
            continue
        dynamic = serial.results[label]
        if verdict.verdict == PROVEN_COMMUTATIVE:
            if dynamic.verdict in _REFUTES_COMMUTATIVE:
                problems.append(
                    f"{label}: static commutativity proof contradicted by "
                    f"dynamic verdict {dynamic.verdict} ({dynamic.reason})"
                )
        elif dynamic.verdict == COMMUTATIVE and dynamic.max_trip >= 2:
            problems.append(
                f"{label}: static race proof contradicted by dynamic "
                f"verdict {dynamic.verdict}"
            )

    for name, report in (("serial", serial), ("process", process)):
        violation = accounting_violation(report)
        if violation:
            problems.append(f"{name} {violation}")

    return problems


def specs_soundness_check(
    source: Optional[str] = None,
    seed: Optional[int] = None,
) -> List[str]:
    """Specs-on vs specs-off soundness for one program.

    Verification modulo the spec registry is a *relaxation* of the
    byte-exact comparison: any loop commutative without specs must stay
    commutative with them (flips the other way — unlocked containers —
    are the feature, not a divergence).  The specs-on static prover must
    also not be contradicted by the specs-on dynamic oracle.
    """
    if source is None:
        source = generate_program(seed)
    problems: List[str] = []

    off = DcaAnalyzer(
        compile_program(source), static_filter=False, clock=_zero,
        backend="serial", specs=False,
    ).analyze()
    on = DcaAnalyzer(
        compile_program(source), static_filter=False, clock=_zero,
        backend="serial", specs=True,
    ).analyze()

    if set(on.results) != set(off.results):
        problems.append(
            "specs changed the analyzed loop set: "
            f"{sorted(set(on.results) ^ set(off.results))}"
        )
    for label in sorted(set(off.results) & set(on.results)):
        r_off, r_on = off.results[label], on.results[label]
        if r_off.is_commutative and not r_on.is_commutative:
            problems.append(
                f"{label}: specs-on regressed a commutative loop: "
                f"{r_off.verdict} -> {r_on.verdict} ({r_on.reason})"
            )

    static = StaticCommutativityAnalysis(
        compile_program(source), specs=default_registry()
    )
    for label, verdict in static.analyze().items():
        if not verdict.is_proven or label not in on.results:
            continue
        dynamic = on.results[label]
        if verdict.verdict == PROVEN_COMMUTATIVE:
            if dynamic.verdict in _REFUTES_COMMUTATIVE:
                problems.append(
                    f"{label}: specs-on static proof contradicted by "
                    f"dynamic verdict {dynamic.verdict}"
                )
        elif dynamic.verdict == COMMUTATIVE and dynamic.max_trip >= 2:
            problems.append(
                f"{label}: specs-on static race proof contradicted by "
                f"dynamic verdict {dynamic.verdict}"
            )
    return problems


def cache_differential_check(
    cache_dir: str,
    source: Optional[str] = None,
    seed: Optional[int] = None,
) -> List[str]:
    """Cold-vs-warm persistent-cache equality for one program.

    Runs the program uncached, then twice against a fresh cache
    directory.  Both cached reports must serialize byte-identically to
    the uncached one; the cold run must store (never hit) and the warm
    run must be served entirely from cache — one hit per loop the cold
    run decided dynamically, zero misses.  The warm report must also
    still satisfy the schedule-execution accounting invariant, with
    cache-replayed loops counted as eligible.
    """
    if source is None:
        source = generate_program(seed)
    problems: List[str] = []

    def analyze(cache):
        return DcaAnalyzer(
            compile_program(source),
            static_filter=False,
            clock=_zero,
            backend="serial",
            cache=cache,
            source_text=source,
        ).analyze()

    uncached = analyze(None)
    with AnalysisCache(cache_dir) as cache:
        cold = analyze(cache)
        warm = analyze(cache)

    j_uncached = uncached.to_json()
    for name, report in (("cold", cold), ("warm", warm)):
        j_other = report.to_json()
        if j_other != j_uncached:
            diff = "\n".join(
                list(
                    difflib.unified_diff(
                        j_uncached.splitlines(),
                        j_other.splitlines(),
                        fromfile="uncached",
                        tofile=name,
                        lineterm="",
                    )
                )[:40]
            )
            problems.append(f"{name} cached report divergence:\n{diff}")

    if cold.cache.hits:
        problems.append(f"cold run hit the empty cache {cold.cache.hits}x")
    expected = sum(
        1
        for r in uncached.results.values()
        if r.decided_by == DECIDED_DYNAMIC
    )
    if cold.cache.stores != expected:
        problems.append(
            f"cold run stored {cold.cache.stores} verdicts, expected "
            f"{expected} (one per dynamically decided loop)"
        )
    if warm.cache.misses or warm.cache.hits != expected:
        problems.append(
            f"warm run not fully cached: {warm.cache.hits} hits / "
            f"{warm.cache.misses} misses, expected {expected} hits / 0"
        )
    violation = accounting_violation(warm)
    if violation:
        problems.append(f"warm {violation}")
    return problems


def tiering_differential_check(
    source: Optional[str] = None,
    seed: Optional[int] = None,
    jobs: int = 2,
) -> List[str]:
    """Byte-identity of *tiered* reports across every backend pair.

    The tiering stage recomputes tiers from the dependence profile on
    every run, so the same report-identity bar as
    :func:`differential_check` applies to the schema-2 serialization:
    serial vs process schedule backends, each under the interpreter,
    closure-compiled, and codegen execution backends.  Also checks that
    turning tiering ON never changes a verdict — tiers annotate the
    report, they must not perturb the oracle.
    """
    if source is None:
        source = generate_program(seed)
    problems: List[str] = []

    def analyze(backend: str, exec_backend: str, **kwargs):
        return DcaAnalyzer(
            compile_program(source),
            static_filter=False,
            clock=_zero,
            backend=backend,
            exec_backend=exec_backend,
            **kwargs,
        ).analyze()

    tiered = analyze("serial", "interp", tiering=True)
    j_tiered = tiered.to_json()
    variants = [
        ("process-interp", ("process", "interp")),
        ("serial-compiled", ("serial", "compiled")),
        ("process-compiled", ("process", "compiled")),
        ("serial-codegen", ("serial", "codegen")),
        ("process-codegen", ("process", "codegen")),
    ]
    for name, (backend, exec_backend) in variants:
        kwargs = {"tiering": True}
        if backend == "process":
            kwargs["jobs"] = jobs
        other = analyze(backend, exec_backend, **kwargs)
        j_other = other.to_json()
        if j_other != j_tiered:
            diff = "\n".join(
                list(
                    difflib.unified_diff(
                        j_tiered.splitlines(),
                        j_other.splitlines(),
                        fromfile="serial-interp",
                        tofile=name,
                        lineterm="",
                    )
                )[:40]
            )
            problems.append(f"tiered {name} report divergence:\n{diff}")

    untiered = analyze("serial", "interp", tiering=False)
    for label in sorted(untiered.results):
        if tiered.results[label].verdict != untiered.results[label].verdict:
            problems.append(
                f"{label}: tiering changed the verdict "
                f"{untiered.results[label].verdict} -> "
                f"{tiered.results[label].verdict}"
            )
    return problems


def tier_map(source: str) -> Dict[str, Dict[str, object]]:
    """Per-loop {tier, stages} under tiering — corpus tier goldens."""
    report = DcaAnalyzer(
        compile_program(source), static_filter=False, clock=_zero,
        backend="serial", tiering=True,
    ).analyze()
    out: Dict[str, Dict[str, object]] = {}
    for label in sorted(report.results):
        result = report.results[label]
        plan = result.pipeline_plan
        out[label] = {
            "tier": result.tier,
            "stages": len(plan["stages"]) if plan else 0,
        }
    return out


def verdict_map(source: str) -> Dict[str, str]:
    """Per-loop dynamic verdicts (static filter off) — corpus goldens."""
    report = DcaAnalyzer(
        compile_program(source), static_filter=False, clock=_zero,
        backend="serial",
    ).analyze()
    return {label: report.results[label].verdict for label in sorted(report.results)}
