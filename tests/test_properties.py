"""Hypothesis property tests over the whole DCA pipeline.

The central invariants:

* any randomly generated *map* loop (disjoint element updates from pure
  expressions) is commutative;
* any loop whose final state threads a running value into distinguishable
  per-element slots is non-commutative;
* DCA's transformed programs always replay the original semantics under
  the identity schedule (checked implicitly: a split-mismatch verdict
  would surface otherwise).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import compile_program, run_program
from repro.core import COMMUTATIVE, NON_COMMUTATIVE, SPLIT_MISMATCH, DcaAnalyzer

#: Pure int expression templates over (i, element a[i]).
_EXPRS = [
    "i * {c1} + {c2}",
    "(i + {c1}) * (i + {c2})",
    "i % ({c1} + 1) + {c2}",
    "a[i] + i * {c1} - {c2}",
    "a[i] * {c1} + i",
]


@st.composite
def map_loop_programs(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    template = draw(st.sampled_from(_EXPRS))
    c1 = draw(st.integers(0, 9))
    c2 = draw(st.integers(0, 9))
    expr = template.format(c1=c1, c2=c2)
    source = f"""
    func void main() {{
      int[] a = new int[{n}];
      for (int i = 0; i < {n}; i = i + 1) {{ a[i] = {expr}; }}
      int s = 0;
      for (int i = 0; i < {n}; i = i + 1) {{ s = s + a[i] * (i + 1); }}
      print(s);
    }}
    """
    return source


@given(map_loop_programs())
@settings(max_examples=25, deadline=None)
def test_random_map_loops_are_commutative(source):
    module = compile_program(source)
    report = DcaAnalyzer(module).analyze()
    assert report.loop("main.L0").verdict == COMMUTATIVE
    # And the weighted-sum consumer loop is a plain reduction:
    assert report.loop("main.L1").verdict == COMMUTATIVE


@st.composite
def running_value_programs(draw):
    n = draw(st.integers(min_value=3, max_value=10))
    step = draw(st.integers(1, 7))
    source = f"""
    func void main() {{
      int[] out = new int[{n}];
      int run = 0;
      for (int i = 0; i < {n}; i = i + 1) {{
        run = run + {step};
        out[i] = run * (i + 1);
      }}
      int s = 0;
      for (int i = 0; i < {n}; i = i + 1) {{ s = s + out[i] * (i + 2); }}
      print(s);
    }}
    """
    return source


@given(running_value_programs())
@settings(max_examples=15, deadline=None)
def test_running_value_loops_are_non_commutative(source):
    module = compile_program(source)
    report = DcaAnalyzer(module).analyze()
    assert report.loop("main.L0").verdict == NON_COMMUTATIVE


@given(map_loop_programs())
@settings(max_examples=15, deadline=None)
def test_split_transformation_never_breaks_semantics(source):
    """No generated map loop may produce a split-mismatch verdict."""
    module = compile_program(source)
    report = DcaAnalyzer(module).analyze()
    for result in report.results.values():
        assert result.verdict != SPLIT_MISMATCH


@given(
    st.lists(st.integers(-20, 20), min_size=2, max_size=10),
)
@settings(max_examples=25, deadline=None)
def test_interpreter_agrees_with_python_on_sums(values):
    n = len(values)
    inits = " ".join(
        f"a[{i}] = {v};" if v >= 0 else f"a[{i}] = 0 - {-v};"
        for i, v in enumerate(values)
    )
    source = f"""
    func void main() {{
      int[] a = new int[{n}];
      {inits}
      int s = 0;
      for (int i = 0; i < {n}; i = i + 1) {{ s = s + a[i]; }}
      print(s);
    }}
    """
    _, out = run_program(source)
    assert out == f"{sum(values)}\n"


@given(st.integers(-1000, 1000), st.integers(-50, 50))
@settings(max_examples=50)
def test_div_mod_identity_matches_c(a, b):
    if b == 0:
        return
    from repro.interp.interpreter import _c_mod, _trunc_div

    q, r = _trunc_div(a, b), _c_mod(a, b)
    assert q * b + r == a
    assert abs(r) < abs(b)
    # Sign of remainder follows the dividend (C99).
    assert r == 0 or (r > 0) == (a > 0)
