"""Cross-subsystem observability tests.

Covers the merge matrix (worker telemetry absorbed through
``Tracer.absorb`` / ``MetricsRegistry.merge`` while the compiled exec
backend and the process schedule backend are active together), the
cache-counter reconciliation against ``CacheAccounting``, and the batch
driver's guarantee that failed programs still appear in the merged
trace.
"""

import pytest

import repro.obs as obs
from repro.api import AnalysisConfig, AnalysisSession
from repro.batch import (
    STATUS_OK,
    STATUS_WORKER_LOST,
    ProgramOutcome,
    _absorb_or_flush,
)

PROGRAM = """
func void main() {
  int[] data = new int[16];
  for (int i = 0; i < 16; i = i + 1) { data[i] = i * 3; }
  int s = 0;
  for (int j = 0; j < 16; j = j + 1) { s += data[j]; }
  print(s);
}
"""


@pytest.fixture()
def program_file(tmp_path):
    path = tmp_path / "prog.mc"
    path.write_text(PROGRAM)
    return str(path)


# -- merge matrix: process schedule backend x compiled exec backend ------------


def test_worker_telemetry_merges_under_process_and_compiled(program_file):
    config = AnalysisConfig(
        backend="process", jobs=2, exec_backend="compiled",
        static_filter=False,
    )
    try:
        with AnalysisSession(config) as session:
            report, ctx = session.profile(
                open(program_file).read(), source_path=program_file
            )
    finally:
        obs.disable()
    assert report.schedule_executions > 0

    # Tracer.absorb: worker spans land on nonzero lanes next to the
    # coordinator's lane 0.
    lanes = {span.lane for span in ctx.tracer.spans}
    assert 0 in lanes
    assert lanes - {0}, "expected worker spans on their own lanes"

    # MetricsRegistry.merge: worker-side interpreter counters reach the
    # coordinator registry alongside coordinator-side scheduler ones.
    counters = ctx.metrics.to_dict()["counters"]
    assert counters["interp.instructions"] > 0
    assert counters["schedule.tasks_submitted"] == report.schedule_executions
    # Compiled execution cannot observe, so under full observability
    # every compiled request records a fallback — proving the exec
    # backend instrumentation crossed the process boundary too.
    assert counters["exec.fallback.obs-enabled"] >= 1
    assert counters["exec.backend.interp"] >= 1


def test_merged_totals_match_serial_run(program_file):
    source = open(program_file).read()

    def instructions(config):
        try:
            with AnalysisSession(config) as session:
                _report, ctx = session.profile(
                    source, source_path=program_file
                )
            return ctx.metrics.to_dict()["counters"]["interp.instructions"]
        finally:
            obs.disable()

    serial = instructions(AnalysisConfig(static_filter=False))
    merged = instructions(
        AnalysisConfig(backend="process", jobs=2, static_filter=False)
    )
    assert merged == serial


# -- cache counters reconcile with CacheAccounting -----------------------------


def test_cache_registry_counters_reconcile_with_accounting(
    program_file, tmp_path
):
    source = open(program_file).read()
    config = AnalysisConfig(
        cache_dir=str(tmp_path / "cache"), static_filter=False
    )

    def run():
        try:
            with AnalysisSession(config) as session:
                return session.profile(source, source_path=program_file)
        finally:
            obs.disable()

    for expectation in ("cold", "warm"):
        report, ctx = run()
        accounting = report.cache
        counters = ctx.metrics.to_dict()["counters"]
        assert accounting.enabled
        assert counters.get("cache.hits", 0) == accounting.hits
        assert counters.get("cache.misses", 0) == accounting.misses
        assert counters.get("cache.invalidations", 0) == (
            accounting.invalidations
        )
        assert counters.get("cache.stores", 0) == accounting.stores
        assert counters.get("cache.lookups", 0) == (
            accounting.hits + accounting.misses
        )
        if expectation == "cold":
            assert accounting.misses > 0 and accounting.hits == 0
        else:
            assert accounting.hits > 0 and accounting.misses == 0


def test_cache_store_lifetime_stats_match_session_traffic(tmp_path):
    from repro.cache import AnalysisCache

    directory = str(tmp_path / "cache")
    with AnalysisCache(directory) as cache:
        key = dict(module_digest="m" * 16, loop_id="L0", fingerprint="fp")
        assert cache.lookup(**key) is None
        cache.store(payload={"verdict": "commutative", "loop": "L0"}, **key)
        assert cache.lookup(**key) is not None
        stats = cache.stats()
        assert stats["lifetime_lookups"] == 2
        assert stats["lifetime_hits"] == 1
        assert stats["lifetime_misses"] == 1
        assert stats["lifetime_stores"] == 1
        assert stats["lifetime_hit_rate"] == pytest.approx(0.5)
    # Counters survive the close() flush into sqlite meta.
    with AnalysisCache(directory, mode="ro") as reopened:
        stats = reopened.stats()
    assert stats["lifetime_lookups"] == 2
    assert stats["lifetime_hits"] == 1


# -- batch flush guarantee -----------------------------------------------------


def outcome(status, obs_payload=None):
    return ProgramOutcome(
        path="lost.mc", index=3, status=status, error="pool broke",
        wall_ms=5.0, obs=obs_payload,
    )


def test_worker_lost_outcome_gets_synthetic_span_and_event():
    ctx = obs.enable()
    try:
        _absorb_or_flush(ctx, outcome(STATUS_WORKER_LOST), lane=4)
        (span,) = ctx.tracer.spans
        assert span.name == "batch.program"
        assert span.lane == 4
        assert span.args["synthetic"] is True
        assert span.args["status"] == STATUS_WORKER_LOST
        (event,) = ctx.events.events
        assert event.severity == "error"
        assert event.kind == "batch.telemetry-lost"
        assert "lost.mc" in event.message
    finally:
        obs.disable()


def test_shipped_payload_absorbs_instead_of_synthesizing():
    payload = {
        "pid": 123,
        "spans": [{
            "sid": 1, "parent": None, "name": "repro.compile",
            "args": {}, "path": ["repro.compile"],
            "start_us": 0.0, "dur_us": 10.0, "depth": 0,
        }],
        "metrics": {"counters": {"interp.runs": 2}},
        "events": [],
    }
    ctx = obs.enable()
    try:
        out = outcome(STATUS_OK, obs_payload=payload)
        _absorb_or_flush(ctx, out, lane=2)
        assert out.obs is None, "payload must be dropped after absorption"
        (span,) = ctx.tracer.spans
        assert span.name == "repro.compile"
        assert span.lane == 2
        assert ctx.metrics.to_dict()["counters"]["interp.runs"] == 2
        assert not ctx.events.events
    finally:
        obs.disable()


def test_ok_outcome_without_payload_stays_silent():
    ctx = obs.enable()
    try:
        _absorb_or_flush(ctx, outcome(STATUS_OK), lane=1)
        assert not ctx.tracer.spans
        assert not ctx.events.events
    finally:
        obs.disable()


def test_disabled_context_drops_payload_quietly():
    ctx = obs.current()
    assert not ctx.enabled
    out = outcome(STATUS_WORKER_LOST, obs_payload={"spans": []})
    _absorb_or_flush(ctx, out, lane=1)
    assert out.obs is None


def test_pooled_batch_trace_includes_failed_programs(tmp_path):
    good = tmp_path / "good.mc"
    good.write_text(PROGRAM)
    bad = tmp_path / "bad.mc"
    bad.write_text("func void main() { this is not minic }")

    config = AnalysisConfig(backend="process", jobs=2, obs=True)
    ctx = obs.enable()
    try:
        with AnalysisSession(config) as session:
            result = session.batch(paths=[str(good), str(bad)])
        statuses = {o.path: o.status for o in result.outcomes}
        assert statuses[str(good)] == STATUS_OK
        assert statuses[str(bad)] != STATUS_OK
        # Both programs own a lane in the merged trace — the parse
        # failure ships its (error-bearing) telemetry too.
        lanes = {span.lane for span in ctx.tracer.spans}
        assert {1, 2} <= lanes
        counters = ctx.metrics.to_dict()["counters"]
        assert counters["batch.outcome.ok"] == 1
        assert sum(
            v for k, v in counters.items() if k.startswith("batch.outcome.")
        ) == 2
    finally:
        obs.disable()
