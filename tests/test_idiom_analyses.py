"""Reduction/induction/histogram recognition, alias, purity and affine tests."""

from repro import compile_program
from repro.analysis.affine import AffineContext, cross_iteration_dependence
from repro.analysis.alias import PointsTo
from repro.analysis.loops import build_loop_forest
from repro.analysis.purity import EffectAnalysis
from repro.analysis.reductions import (
    CARRIED_UNKNOWN,
    INDUCTION,
    POINTER_CHASE,
    REDUCTION_ADD,
    REDUCTION_MINMAX_COND,
    REDUCTION_MUL,
    classify_loop,
)
from repro.ir.instructions import Reg


def loop_idioms(source, label="main.L0"):
    module = compile_program(source)
    fname = label.rsplit(".L", 1)[0]
    func = module.functions[fname]
    forest = build_loop_forest(func)
    return classify_loop(func, forest.loops[label]), module


def test_induction_recognized():
    idioms, _ = loop_idioms(
        "func void main() { int s = 0;"
        " for (int i = 0; i < 9; i = i + 1) { s = s + 1; } print(s); }"
    )
    assert idioms.scalars[Reg("i")] == INDUCTION


def test_add_reduction_recognized():
    idioms, _ = loop_idioms(
        "func void main() { int[] a = new int[8]; int s = 0;"
        " for (int i = 0; i < 8; i = i + 1) { s += a[i]; } print(s); }"
    )
    assert idioms.scalars[Reg("s")] == REDUCTION_ADD


def test_mul_reduction_recognized():
    idioms, _ = loop_idioms(
        "func void main() { int p = 1;"
        " for (int i = 1; i < 6; i = i + 1) { p = p * i; } print(p); }"
    )
    assert idioms.scalars[Reg("p")] == REDUCTION_MUL


def test_conditional_max_recognized():
    idioms, _ = loop_idioms(
        "func void main() { int[] a = new int[8]; int m = 0 - 99;"
        " for (int i = 0; i < 8; i = i + 1) {"
        "   if (a[i] > m) { m = a[i]; } } print(m); }"
    )
    assert idioms.scalars[Reg("m")] == REDUCTION_MINMAX_COND


def test_pointer_chase_recognized():
    idioms, _ = loop_idioms(
        """
        struct Node { int v; Node* next; }
        func void main() {
          Node* p = null;
          int s = 0;
          while (p) { s = s + p->v; p = p->next; }
          print(s);
        }
        """
    )
    assert idioms.scalars[Reg("p")] == POINTER_CHASE


def test_escaping_accumulator_is_unknown():
    # A running value with a loop-varying step that feeds other
    # computation is neither an induction nor a reduction.
    idioms, _ = loop_idioms(
        "func void main() { int[] a = new int[8]; int r = 0;"
        " for (int i = 0; i < 8; i = i + 1) { r = r + i; a[i] = r; }"
        " print(a[7]); }"
    )
    assert idioms.scalars[Reg("r")] == CARRIED_UNKNOWN


def test_constant_step_running_value_is_induction():
    # `r = r + 1` is a derived induction even when consumed elsewhere —
    # induction substitution makes the loop parallelizable.
    idioms, _ = loop_idioms(
        "func void main() { int[] a = new int[8]; int r = 0;"
        " for (int i = 0; i < 8; i = i + 1) { r = r + 1; a[i] = r; }"
        " print(a[7]); }"
    )
    assert idioms.scalars[Reg("r")] == INDUCTION


def test_conditional_cursor_is_not_induction():
    idioms, _ = loop_idioms(
        "func void main() { int c = 0;"
        " for (int i = 0; i < 8; i = i + 1) {"
        "   if (i % 2 == 0) { c = c + 1; } } print(c); }"
    )
    assert idioms.scalars[Reg("c")] != INDUCTION


def test_histogram_recognized():
    idioms, _ = loop_idioms(
        "func void main() { int[] h = new int[4]; int[] a = new int[16];"
        " for (int i = 0; i < 16; i = i + 1) { h[a[i] % 4] += 1; }"
        " print(h[0]); }"
    )
    assert len(idioms.histograms) == 1
    assert idioms.histograms[0].op == "+"
    assert len(idioms.histogram_sites) == 2


def test_plain_store_is_not_histogram():
    idioms, _ = loop_idioms(
        "func void main() { int[] a = new int[8];"
        " for (int i = 0; i < 8; i = i + 1) { a[i] = i; } print(a[0]); }"
    )
    assert not idioms.histograms


# -- purity ---------------------------------------------------------------


def test_effect_analysis_transitive():
    module = compile_program(
        """
        int g = 0;
        func int pure_sq(int x) { return x * x; }
        func void writes_global() { g = g + 1; }
        func void indirect() { writes_global(); }
        func void noisy() { print(1); }
        func void main() { indirect(); noisy(); print(pure_sq(2)); }
        """
    )
    effects = EffectAnalysis(module)
    assert effects.of("pure_sq").is_pure
    assert "g" in effects.of("writes_global").globals_written
    assert "g" in effects.of("indirect").globals_written
    assert effects.of("noisy").does_io
    assert effects.of("main").does_io
    assert not effects.of("indirect").does_io


def test_allocation_makes_impure():
    module = compile_program(
        """
        struct N { int v; }
        func N* make() { return new N; }
        func void main() { N* p = make(); print(p->v); }
        """
    )
    effects = EffectAnalysis(module)
    assert effects.of("make").allocates
    assert not effects.of("make").is_pure


# -- alias ---------------------------------------------------------------


def test_distinct_allocations_do_not_alias():
    module = compile_program(
        """
        func void main() {
          int[] a = new int[4];
          int[] b = new int[4];
          int[] c = a;
          a[0] = 1; b[0] = 2; c[0] = 3;
          print(a[0], b[0]);
        }
        """
    )
    pts = PointsTo(module)
    assert not pts.may_alias("main", Reg("a"), Reg("b"))
    assert pts.may_alias("main", Reg("a"), Reg("c"))


def test_alias_flows_through_calls():
    module = compile_program(
        """
        func int[] pick(int[] x) { return x; }
        func void main() {
          int[] a = new int[4];
          int[] b = pick(a);
          b[0] = 1;
          print(a[0]);
        }
        """
    )
    pts = PointsTo(module)
    assert pts.may_alias("main", Reg("a"), Reg("b"))


def test_alias_through_struct_fields():
    module = compile_program(
        """
        struct Box { int[] data; }
        func void main() {
          Box* box = new Box;
          int[] a = new int[4];
          box->data = a;
          int[] b = box->data;
          print(len(b));
        }
        """
    )
    pts = PointsTo(module)
    assert pts.may_alias("main", Reg("a"), Reg("b"))


# -- affine -----------------------------------------------------------------


def affine_ctx(source, label="main.L0"):
    module = compile_program(source)
    func = module.functions["main"]
    forest = build_loop_forest(func)
    return AffineContext(func, forest.loops[label], forest), func


def test_affine_subscripts_collected():
    ctx, _ = affine_ctx(
        "func void main() { int[] a = new int[20];"
        " for (int i = 0; i < 10; i = i + 1) { a[2 * i + 1] = i; }"
        " print(a[1]); }"
    )
    accesses = ctx.collect_accesses()
    writes = [acc for acc in accesses if acc.is_write]
    assert len(writes) == 1
    sub = writes[0].subscripts[0]
    assert sub[Reg("i")] == 2
    assert sub.get(None, 0) == 1


def test_identical_subscripts_carry_no_cross_dep():
    ctx, _ = affine_ctx(
        "func void main() { int[] a = new int[10];"
        " for (int i = 0; i < 10; i = i + 1) { a[i] = a[i] + 1; }"
        " print(a[0]); }"
    )
    accesses = ctx.collect_accesses()
    tested = ctx.tested_ivs()
    steps = {r: s for r, (_l, s) in ctx.ivs.items()}
    write = [a for a in accesses if a.is_write][0]
    read = [a for a in accesses if not a.is_write][0]
    assert not cross_iteration_dependence(write, read, tested, steps)


def test_shifted_subscripts_carry_dep():
    ctx, _ = affine_ctx(
        "func void main() { int[] a = new int[12];"
        " for (int i = 1; i < 11; i = i + 1) { a[i] = a[i - 1] + 1; }"
        " print(a[0]); }"
    )
    accesses = ctx.collect_accesses()
    tested = ctx.tested_ivs()
    steps = {r: s for r, (_l, s) in ctx.ivs.items()}
    write = [a for a in accesses if a.is_write][0]
    read = [a for a in accesses if not a.is_write][0]
    assert cross_iteration_dependence(write, read, tested, steps)


def test_nonaffine_subscript_detected():
    ctx, _ = affine_ctx(
        "func void main() { int[] a = new int[16]; int[] idx = new int[16];"
        " for (int i = 0; i < 16; i = i + 1) { a[idx[i]] = i; }"
        " print(a[0]); }"
    )
    accesses = ctx.collect_accesses()
    write = [acc for acc in accesses if acc.is_write][0]
    assert write.subscripts[-1] is None
