"""IR utilities: clone, verifier, printer, cleanup pass."""

import pytest

from repro import compile_program, run_program
from repro.ir.clone import clone_function, clone_module
from repro.ir.instructions import BinOp, Const, Jump, Mov, Reg, Ret
from repro.ir.passes import fuse_single_use_temps
from repro.ir.printer import format_function, format_module
from repro.ir.verify import VerificationError, verify_function, verify_module

SOURCE = """
struct Node { int v; Node* next; }
int g = 7;
func int twice(int x) { return x * 2; }
func void main() {
  int s = 0;
  for (int i = 0; i < 5; i = i + 1) { s = s + twice(i); }
  print(s, g);
}
"""


def test_clone_is_deep_for_instructions():
    module = compile_program(SOURCE)
    cloned = clone_module(module)
    f1 = module.functions["main"]
    f2 = cloned.functions["main"]
    assert f1 is not f2
    for b1, b2 in zip(f1.ordered_blocks(), f2.ordered_blocks()):
        assert b1.name == b2.name
        for i1, i2 in zip(b1.instrs, b2.instrs):
            assert i1 is not i2
            assert str(i1) == str(i2)


def test_clone_runs_identically():
    module = compile_program(SOURCE)
    _, a = run_program(module)
    _, b = run_program(clone_module(module))
    assert a == b


def test_clone_mutation_does_not_leak():
    module = compile_program(SOURCE)
    cloned = clone_module(module)
    cloned.functions["main"].blocks["entry0"].instrs.insert(
        0, Mov(Reg("zz"), Const(1))
    )
    original_first = module.functions["main"].blocks["entry0"].instrs[0]
    assert not (isinstance(original_first, Mov) and original_first.dest == Reg("zz"))


def test_verifier_accepts_compiled_modules():
    verify_module(compile_program(SOURCE))


def test_verifier_rejects_missing_terminator():
    module = compile_program("func void main() { int a = 1; print(a); }")
    main = module.functions["main"]
    main.blocks[main.entry].instrs.pop()  # drop the ret
    with pytest.raises(VerificationError, match="terminator"):
        verify_function(main)


def test_verifier_rejects_empty_block():
    module = compile_program("func void main() { }")
    main = module.functions["main"]
    main.blocks[main.entry].instrs.clear()
    with pytest.raises(VerificationError, match="empty block"):
        verify_function(main)


def test_verifier_rejects_dangling_branch():
    module = compile_program("func void main() { }")
    main = module.functions["main"]
    main.blocks[main.entry].instrs[-1] = Jump("nowhere")
    with pytest.raises(VerificationError, match="unknown block"):
        verify_function(main)


def test_verifier_rejects_undefined_register_use():
    module = compile_program("func void main() { }")
    main = module.functions["main"]
    main.blocks[main.entry].instrs.insert(
        0, BinOp(Reg("x"), "+", Reg("ghost"), Const(1))
    )
    with pytest.raises(VerificationError, match="undefined register"):
        verify_function(main)


def test_verifier_rejects_mid_block_terminator():
    module = compile_program("func void main() { int a = 1; print(a); }")
    main = module.functions["main"]
    main.blocks[main.entry].instrs.insert(1, Ret(None))
    with pytest.raises(VerificationError, match="terminator in block body"):
        verify_function(main)


def test_printer_roundtrips_key_features():
    module = compile_program(SOURCE)
    text = format_module(module)
    assert "struct Node" in text
    assert "global" in text and "@g" in text
    assert "func main" in text
    assert "; loop main.L0" in text
    assert "call twice" in text


def test_fusion_reduces_instruction_count():
    module_raw = compile_program(SOURCE, optimize=False)
    module_opt = compile_program(SOURCE, optimize=True)
    raw = sum(len(b.instrs) for b in module_raw.functions["main"].ordered_blocks())
    opt = sum(len(b.instrs) for b in module_opt.functions["main"].ordered_blocks())
    assert opt < raw


def test_fusion_is_idempotent():
    module = compile_program(SOURCE, optimize=True)
    again = sum(
        fuse_single_use_temps(f) for f in module.functions.values()
    )
    assert again == 0


def test_fusion_skips_multi_use_temps():
    # `t` feeds two consumers: it must not be fused into either.
    source = """
    func void main() {
      int a = 3;
      int t = a * a;
      int x = t + 1;
      int y = t + 2;
      print(x, y);
    }
    """
    _, out = run_program(compile_program(source, optimize=True))
    assert out == "10 11\n"


def test_remove_unreachable_prunes_loop_metadata():
    module = compile_program(
        "func void main() { if (false) { while (true) { } } print(1); }"
    )
    main = module.functions["main"]
    # The while(true) loop is unreachable; its metadata must not survive
    # in a form that points at missing blocks.
    for meta in main.loops.values():
        assert meta.header in main.blocks
