"""Persistent analysis cache: store units + analyzer integration.

The load-bearing property is at the bottom: a warm re-analysis must
serialize **byte-identically** to both its own cold run and an entirely
uncached run, while avoiding every schedule execution the cold run paid
for.  The store units above it pin the sqlite-level behaviours that
property rests on (modes, invalidation, gc, semantics purge, verify).
"""

import json
import sqlite3

import pytest

from repro.api import AnalysisConfig, AnalysisSession
from repro.cache import AnalysisCache, open_cache, resolve_cache_dir
from repro.cache.keys import SEMANTICS_VERSION
from repro.cache.store import CACHE_DB_NAME
from repro.core.dca import DcaAnalyzer
from repro.core.report import DECIDED_CACHE, DECIDED_DYNAMIC
from repro.driver import compile_program

PROGRAM = """
func void main() {
  int[] a = new int[24];
  int s = 0;
  for (int i = 0; i < 24; i = i + 1) {
    a[i] = i * 7 % 5;
  }
  for (int i = 0; i < 24; i = i + 1) {
    s += a[i];
  }
  print(s);
}
"""

PAYLOAD = {"result": {"verdict": "commutative"}, "skipped": {}}


def _zero() -> float:
    return 0.0


@pytest.fixture
def cache(tmp_path):
    with AnalysisCache(str(tmp_path)) as store:
        yield store


def _analyze(cache, source=PROGRAM, **kwargs):
    defaults = dict(
        static_filter=False, clock=_zero, backend="serial",
        cache=cache, source_text=source,
    )
    defaults.update(kwargs)
    return DcaAnalyzer(compile_program(source), **defaults).analyze()


# ---------------------------------------------------------------------------
# Store units
# ---------------------------------------------------------------------------


def test_miss_then_hit(cache):
    assert cache.lookup("m1", "L0", "f1") is None
    assert cache.store("m1", "L0", "f1", PAYLOAD)
    assert cache.lookup("m1", "L0", "f1") == PAYLOAD
    # Key is the full triple: any component changing is a miss.
    assert cache.lookup("m2", "L0", "f1") is None
    assert cache.lookup("m1", "L1", "f1") is None
    assert cache.lookup("m1", "L0", "f2") is None


def test_hit_accounting(cache):
    cache.store("m1", "L0", "f1", PAYLOAD)
    cache.lookup("m1", "L0", "f1")
    cache.lookup("m1", "L0", "f1")
    assert cache.stats()["total_hits"] == 2


def test_ro_mode_reads_but_never_writes(tmp_path):
    with AnalysisCache(str(tmp_path)) as rw:
        rw.store("m1", "L0", "f1", PAYLOAD)
    with AnalysisCache(str(tmp_path), mode="ro") as ro:
        assert ro.lookup("m1", "L0", "f1") == PAYLOAD
        assert not ro.store("m1", "L1", "f1", PAYLOAD)
        assert ro.stats()["entries"] == 1
        # ro hits must not bump usage counters either.
        assert ro.stats()["total_hits"] == 0


def test_refresh_mode_always_misses_but_stores(tmp_path):
    with AnalysisCache(str(tmp_path)) as rw:
        rw.store("m1", "L0", "f1", PAYLOAD)
    fresher = {"result": {"verdict": "non-commutative"}, "skipped": {}}
    with AnalysisCache(str(tmp_path), mode="refresh") as refresh:
        assert refresh.lookup("m1", "L0", "f1") is None
        assert refresh.store("m1", "L0", "f1", fresher)
    with AnalysisCache(str(tmp_path)) as rw:
        assert rw.lookup("m1", "L0", "f1") == fresher


def test_stale_sibling_detects_invalidation(cache):
    cache.store("m1", "L0", "f-old", PAYLOAD)
    assert cache.has_stale_sibling("m1", "L0", "f-new")
    assert not cache.has_stale_sibling("m1", "L1", "f-new")
    assert not cache.has_stale_sibling("m1", "L0", "f-old")


def test_clear(cache):
    cache.store("m1", "L0", "f1", PAYLOAD)
    cache.store("m1", "L1", "f1", PAYLOAD)
    assert cache.clear() == 2
    assert cache.stats()["entries"] == 0
    assert cache.lookup("m1", "L0", "f1") is None


def test_gc_age_and_lru(tmp_path):
    now = [0.0]
    with AnalysisCache(str(tmp_path), clock=lambda: now[0]) as cache:
        cache.store("m1", "old", "f1", PAYLOAD)
        now[0] = 10 * 86400.0
        for i in range(3):
            cache.store("m1", f"new{i}", "f1", PAYLOAD)
        result = cache.gc(max_age_days=5)
        assert result["removed_age"] == 1
        result = cache.gc(max_entries=2)
        assert result["removed_lru"] == 1
        assert result["remaining"] == 2


def test_semantics_version_purge(tmp_path):
    with AnalysisCache(str(tmp_path)) as cache:
        cache.store("m1", "L0", "f1", PAYLOAD)
        path = cache.path
    with sqlite3.connect(path) as conn:
        conn.execute(
            "UPDATE meta SET value=? WHERE key='semantics_version'",
            (str(SEMANTICS_VERSION - 1),),
        )
    # Reopening against an older semantics version must purge wholesale:
    # entries computed under different analyzer semantics are poison.
    with AnalysisCache(str(tmp_path)) as cache:
        assert cache.lookup("m1", "L0", "f1") is None
        stats = cache.stats()
        assert stats["entries"] == 0
        assert stats["semantics_purges"] == 1
        assert stats["semantics_version"] == SEMANTICS_VERSION


def test_resolve_cache_dir_precedence(monkeypatch, tmp_path):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    assert resolve_cache_dir(None) is None
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
    assert resolve_cache_dir(None) == str(tmp_path / "env")
    assert resolve_cache_dir(str(tmp_path / "flag")) == str(tmp_path / "flag")
    assert open_cache(None, mode="off") is None


# ---------------------------------------------------------------------------
# Analyzer integration
# ---------------------------------------------------------------------------


def test_cold_populates_warm_replays(cache):
    cold = _analyze(cache)
    dynamic = sum(
        1
        for r in cold.results.values()
        if r.decided_by == DECIDED_DYNAMIC
    )
    assert dynamic == 2
    assert (cold.cache.hits, cold.cache.stores) == (0, dynamic)

    warm = _analyze(cache)
    assert (warm.cache.hits, warm.cache.misses) == (dynamic, 0)
    assert warm.cache.schedule_executions_avoided == cold.schedule_executions
    for result in warm.results.values():
        assert result.decided_by == DECIDED_CACHE
        assert result.from_cache
        # Serialization folds the replay back into its origin stage.
        assert result.serialized_decided_by == DECIDED_DYNAMIC


def test_warm_report_byte_identical_to_cold_and_uncached(cache):
    uncached = _analyze(None)
    cold = _analyze(cache)
    warm = _analyze(cache)
    assert cold.to_json() == uncached.to_json()
    assert warm.to_json() == uncached.to_json()
    # The in-memory provenance differs even though the bytes match.
    assert warm.decided_by_counts() != cold.decided_by_counts()
    assert warm.decided_by_counts(serialized=True) == cold.decided_by_counts(
        serialized=True
    )


def test_config_change_invalidates(cache):
    _analyze(cache)
    warm = _analyze(cache, rtol=1e-3)
    assert warm.cache.hits == 0
    assert warm.cache.misses == 2
    # Same loops cached under the old fingerprint → counted invalidated.
    assert warm.cache.invalidations == 2


def test_entries_shared_across_exec_backends(cache):
    # exec_backend is outside the fingerprint: compiled runs must be
    # served by interp-written entries (the byte-identity contract).
    _analyze(cache, exec_backend="interp")
    warm = _analyze(cache, exec_backend="compiled")
    assert (warm.cache.hits, warm.cache.misses) == (2, 0)


def test_statically_decided_loops_bypass_cache(cache):
    report = _analyze(cache, static_filter=True)
    # This program's loops are statically provable: nothing reaches the
    # dynamic stage, so nothing is cached — and nothing breaks.
    assert report.cache.enabled
    assert report.cache.stores == 0
    assert _analyze(cache, static_filter=True).cache.hits == 0


def test_fault_injection_disables_cache(cache):
    analyzer = DcaAnalyzer(
        compile_program(PROGRAM),
        static_filter=False,
        cache=cache,
        fault_injection={("L0", "reverse"): "raise"},
    )
    assert analyzer.cache is None


def test_cost_summary_mentions_cache(cache):
    _analyze(cache)
    warm = _analyze(cache)
    assert "cache: 2 hits / 0 misses" in warm.cost_summary()
    # The serialized report must NOT mention the cache anywhere.
    assert "cache" not in json.dumps(warm.to_dict())


def test_session_wires_cache(tmp_path):
    config = AnalysisConfig(cache_dir=str(tmp_path), static_filter=False)
    with AnalysisSession(config) as session:
        cold = session.analyze(PROGRAM)
        warm = session.analyze(PROGRAM)
    assert cold.cache.stores == 2
    assert (warm.cache.hits, warm.cache.misses) == (2, 0)
    assert (tmp_path / CACHE_DB_NAME).exists()


def test_verify_passes_on_honest_cache(cache):
    _analyze(cache)
    result = cache.verify(sample=10)
    assert result["checked"] == 2
    assert result["ok"] == 2
    assert result["mismatches"] == []


def test_verify_catches_tampering(tmp_path):
    with AnalysisCache(str(tmp_path)) as cache:
        _analyze(cache)
        path = cache.path
    with sqlite3.connect(path) as conn:
        row = conn.execute(
            "SELECT rowid, payload FROM entries LIMIT 1"
        ).fetchone()
        payload = json.loads(row[1])
        payload["result"]["verdict"] = "non-commutative"
        conn.execute(
            "UPDATE entries SET payload=? WHERE rowid=?",
            (json.dumps(payload), row[0]),
        )
    with AnalysisCache(str(tmp_path)) as cache:
        result = cache.verify(sample=10)
    assert len(result["mismatches"]) == 1
    diffs = result["mismatches"][0]["diffs"]
    assert "verdict" in diffs
