"""Lexer unit tests."""

import pytest

from repro.lang.errors import LexError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokKind


def kinds(source):
    return [t.kind for t in tokenize(source)][:-1]  # drop EOF


def test_empty_input_yields_only_eof():
    toks = tokenize("")
    assert len(toks) == 1
    assert toks[0].kind is TokKind.EOF


def test_integer_literal():
    toks = tokenize("42")
    assert toks[0].kind is TokKind.INT
    assert toks[0].text == "42"


def test_float_literal_forms():
    assert kinds("1.5") == [TokKind.FLOAT]
    assert kinds("2.") == [TokKind.FLOAT]
    assert kinds("1e3") == [TokKind.FLOAT]
    assert kinds("1.5e-2") == [TokKind.FLOAT]
    assert kinds("1E+4") == [TokKind.FLOAT]


def test_int_followed_by_method_like_dot():
    # "1.x" is not a float; it lexes as INT DOT IDENT.
    assert kinds("1 . x") == [TokKind.INT, TokKind.DOT, TokKind.IDENT]


def test_keywords_vs_identifiers():
    assert kinds("if iffy") == [TokKind.KW_IF, TokKind.IDENT]
    assert kinds("whilex while") == [TokKind.IDENT, TokKind.KW_WHILE]
    assert kinds("new null true false") == [
        TokKind.KW_NEW,
        TokKind.KW_NULL,
        TokKind.KW_TRUE,
        TokKind.KW_FALSE,
    ]


def test_two_char_operators():
    assert kinds("-> == != <= >= && || += -= *= /=") == [
        TokKind.ARROW,
        TokKind.EQ,
        TokKind.NE,
        TokKind.LE,
        TokKind.GE,
        TokKind.AND,
        TokKind.OR,
        TokKind.PLUS_ASSIGN,
        TokKind.MINUS_ASSIGN,
        TokKind.STAR_ASSIGN,
        TokKind.SLASH_ASSIGN,
    ]


def test_single_char_operators():
    assert kinds("( ) { } [ ] , ; . * + - / % = < > !") == [
        TokKind.LPAREN, TokKind.RPAREN, TokKind.LBRACE, TokKind.RBRACE,
        TokKind.LBRACKET, TokKind.RBRACKET, TokKind.COMMA, TokKind.SEMI,
        TokKind.DOT, TokKind.STAR, TokKind.PLUS, TokKind.MINUS,
        TokKind.SLASH, TokKind.PERCENT, TokKind.ASSIGN, TokKind.LT,
        TokKind.GT, TokKind.NOT,
    ]


def test_line_comments_are_skipped():
    assert kinds("a // comment\n b") == [TokKind.IDENT, TokKind.IDENT]


def test_block_comments_are_skipped():
    assert kinds("a /* x\ny */ b") == [TokKind.IDENT, TokKind.IDENT]


def test_unterminated_block_comment_raises():
    with pytest.raises(LexError):
        tokenize("a /* never closed")


def test_string_literal_with_escapes():
    toks = tokenize('"a\\nb\\t\\"q\\\\"')
    assert toks[0].kind is TokKind.STRING
    assert toks[0].text == 'a\nb\t"q\\'


def test_unterminated_string_raises():
    with pytest.raises(LexError):
        tokenize('"oops')


def test_bad_escape_raises():
    with pytest.raises(LexError):
        tokenize('"\\q"')


def test_unexpected_character_raises():
    with pytest.raises(LexError):
        tokenize("a $ b")


def test_line_and_column_tracking():
    toks = tokenize("a\n  b")
    assert (toks[0].line, toks[0].col) == (1, 1)
    assert (toks[1].line, toks[1].col) == (2, 3)


def test_minus_then_number_is_two_tokens():
    assert kinds("-5") == [TokKind.MINUS, TokKind.INT]


def test_identifier_with_underscores_and_digits():
    toks = tokenize("_x9_y")
    assert toks[0].kind is TokKind.IDENT
    assert toks[0].text == "_x9_y"
