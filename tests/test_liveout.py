"""Live-out snapshot tests: canonicalization and tolerant comparison."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.liveout import capture, snapshots_equal
from repro.interp.values import ArrayObj, StructObj
from repro.lang.types import INT


def make_array(oid, data):
    return ArrayObj(oid, INT, list(data))


def make_node(oid, val, nxt=None):
    return StructObj(oid, "Node", {"val": val, "next": nxt})


def test_scalar_roots():
    snap = capture([1, 2.5, True, None])
    assert snap.roots == (1, 2.5, True, None)
    assert snap.objects == ()


def test_heap_canonicalization_is_allocation_order_independent():
    # Same structure built with different object ids must snapshot equal.
    a1 = make_node(10, 1, make_node(11, 2))
    b1 = make_node(99, 1, make_node(42, 2))
    assert snapshots_equal(capture([a1]), capture([b1]))


def test_value_difference_detected():
    a = make_node(1, 1, make_node(2, 2))
    b = make_node(1, 1, make_node(2, 3))
    assert not snapshots_equal(capture([a]), capture([b]))


def test_structure_difference_detected():
    a = make_node(1, 1, make_node(2, 2))
    b = make_node(1, 1, None)
    assert not snapshots_equal(capture([a]), capture([b]))


def test_shared_object_identity_preserved():
    shared = make_node(5, 7)
    two_refs = capture([shared, shared])
    two_copies = capture([make_node(5, 7), make_node(6, 7)])
    assert two_refs.roots[0] == two_refs.roots[1]
    assert two_copies.roots[0] != two_copies.roots[1]
    assert not snapshots_equal(two_refs, two_copies)


def test_cyclic_structures_terminate_and_compare():
    a = make_node(1, 1)
    a.fields["next"] = a
    b = make_node(2, 1)
    b.fields["next"] = b
    assert snapshots_equal(capture([a]), capture([b]))
    c = make_node(3, 2)
    c.fields["next"] = c
    assert not snapshots_equal(capture([a]), capture([c]))


def test_arrays_compare_elementwise():
    assert snapshots_equal(
        capture([make_array(1, [1, 2, 3])]), capture([make_array(9, [1, 2, 3])])
    )
    assert not snapshots_equal(
        capture([make_array(1, [1, 2, 3])]), capture([make_array(1, [1, 2, 4])])
    )
    assert not snapshots_equal(
        capture([make_array(1, [1, 2])]), capture([make_array(1, [1, 2, 3])])
    )


def test_float_tolerance():
    a = capture([make_array(1, [1.0, 2.0])])
    b = capture([make_array(1, [1.0 + 1e-12, 2.0 - 1e-12])])
    assert snapshots_equal(a, b, rtol=1e-9)
    c = capture([make_array(1, [1.01, 2.0])])
    assert not snapshots_equal(a, c, rtol=1e-9)


def test_bool_not_confused_with_int():
    assert not snapshots_equal(capture([True]), capture([1]))
    assert not snapshots_equal(capture([False]), capture([0]))


def test_mixed_graph_of_structs_and_arrays():
    arr = make_array(1, [10, 20])
    node = StructObj(2, "Holder", {"data": arr, "tag": 5})
    snap = capture([node, arr])
    assert snap.size() == 2
    # Root 1 (the array) must be the same canonical object reached via the
    # struct's field.
    assert snap.roots[1] == snap.objects[0][2][0]


@st.composite
def int_list_pairs(draw):
    data = draw(st.lists(st.integers(-100, 100), min_size=0, max_size=12))
    return data


@given(int_list_pairs())
@settings(max_examples=50)
def test_capture_is_deterministic(data):
    a = capture([make_array(1, data), sum(data)])
    b = capture([make_array(77, data), sum(data)])
    assert snapshots_equal(a, b)
    assert a == b  # canonical ids make them structurally identical


@given(
    st.lists(st.integers(-50, 50), min_size=1, max_size=10),
    st.integers(0, 9),
    st.integers(-3, 3),
)
@settings(max_examples=50)
def test_any_single_element_change_is_detected(data, idx, delta):
    if delta == 0:
        delta = 1
    idx = idx % len(data)
    changed = list(data)
    changed[idx] += delta
    assert not snapshots_equal(
        capture([make_array(1, data)]), capture([make_array(1, changed)])
    )


def test_snapshot_digest_memoized_and_content_based():
    from repro.core.liveout import snapshot_digest

    a = capture([1, make_array(1, [1, 2, 3])])
    b = capture([1, make_array(9, [1, 2, 3])])  # same content, new oid
    da = snapshot_digest(a)
    assert a.__dict__["_digest"] == da
    assert snapshot_digest(a) is da  # memoized, not recomputed
    assert snapshot_digest(b) == da  # canonicalization => content identity
    c = capture([1, make_array(1, [1, 2, 4])])
    assert snapshot_digest(c) != da


def test_snapshot_digest_does_not_affect_equality():
    from repro.core.liveout import snapshot_digest

    a = capture([make_node(1, 5)])
    b = capture([make_node(2, 5)])
    snapshot_digest(a)  # memoize on one side only
    assert a == b
    assert snapshots_equal(a, b)
