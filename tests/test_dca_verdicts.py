"""End-to-end DCA verdicts on a catalogue of loop patterns.

Each case is a small program with one loop of interest and the verdict
the analysis must produce — the behavioural contract of the whole
static + dynamic pipeline.
"""

import pytest

from repro import compile_program
from repro.core import (
    COMMUTATIVE,
    COMMUTATIVE_VACUOUS,
    EXCLUDED_IO,
    ITERATOR_ONLY,
    NON_COMMUTATIVE,
    NOT_EXERCISED,
    DcaAnalyzer,
    ScheduleConfig,
)


def verdict_of(source, label="main.L0", **kwargs):
    module = compile_program(source)
    report = DcaAnalyzer(module, **kwargs).analyze()
    return report.loop(label)


def test_array_map_commutative():
    result = verdict_of(
        """
        func void main() {
          int[] a = new int[10];
          for (int i = 0; i < 10; i = i + 1) { a[i] = a[i] + 1; }
          print(a[5]);
        }
        """
    )
    assert result.verdict == COMMUTATIVE


def test_plds_map_commutative():
    # Paper Fig. 1(b): the motivating pointer-chasing loop.
    result = verdict_of(
        """
        struct Node { int val; Node* next; }
        func void main() {
          Node* head = null;
          for (int k = 0; k < 6; k = k + 1) {
            Node* n = new Node; n->val = k; n->next = head; head = n;
          }
          Node* ptr = head;
          while (ptr) { ptr->val = ptr->val + 1; ptr = ptr->next; }
          int s = 0;
          ptr = head;
          while (ptr) { s = s + ptr->val; ptr = ptr->next; }
          print(s);
        }
        """,
        label="main.L1",
    )
    assert result.verdict == COMMUTATIVE


def test_scalar_reduction_commutative():
    result = verdict_of(
        """
        func void main() {
          int s = 0;
          for (int i = 0; i < 10; i = i + 1) { s += i * i; }
          print(s);
        }
        """
    )
    assert result.verdict == COMMUTATIVE


def test_float_reduction_needs_tolerance():
    source = """
    func void main() {
      float s = 0.0;
      for (int i = 0; i < 20; i = i + 1) { s = s + 1.0 / to_float(i + 1); }
      print(s);
    }
    """
    tolerant = verdict_of(source, rtol=1e-6)
    assert tolerant.verdict == COMMUTATIVE


def test_prefix_sum_non_commutative():
    result = verdict_of(
        """
        func void main() {
          int[] pre = new int[8];
          int acc = 0;
          for (int i = 0; i < 8; i = i + 1) { acc = acc + i; pre[i] = acc; }
          int s = 0;
          for (int i = 0; i < 8; i = i + 1) { s = s + pre[i] * (i + 1); }
          print(s);
        }
        """
    )
    assert result.verdict == NON_COMMUTATIVE


def test_ordered_list_build_non_commutative():
    result = verdict_of(
        """
        struct Node { int val; Node* next; }
        func void main() {
          Node* head = null;
          for (int k = 0; k < 6; k = k + 1) {
            Node* n = new Node; n->val = k; n->next = head; head = n;
          }
          print(head->val);
        }
        """
    )
    assert result.verdict == NON_COMMUTATIVE


def test_histogram_commutative():
    result = verdict_of(
        """
        func void main() {
          int[] h = new int[4];
          for (int i = 0; i < 20; i = i + 1) { h[i % 4] += 1; }
          print(h[0], h[3]);
        }
        """
    )
    assert result.verdict == COMMUTATIVE


def test_io_loop_excluded():
    result = verdict_of(
        """
        func void main() {
          for (int i = 0; i < 3; i = i + 1) { print(i); }
        }
        """
    )
    assert result.verdict == EXCLUDED_IO


def test_io_via_callee_excluded():
    result = verdict_of(
        """
        func void show(int x) { print(x); }
        func void main() {
          for (int i = 0; i < 3; i = i + 1) { show(i); }
        }
        """
    )
    assert result.verdict == EXCLUDED_IO


def test_not_exercised_loop():
    # The loop must never be *reached*; a zero-trip loop that is reached
    # still verifies (and is vacuously commutative).
    result = verdict_of(
        """
        int N = 0;
        func void main() {
          int s = 0;
          if (N > 0) {
            for (int i = 0; i < N; i = i + 1) { s = s + i; }
          }
          print(s);
        }
        """
    )
    assert result.verdict == NOT_EXERCISED


def test_zero_trip_reached_loop_is_vacuous():
    result = verdict_of(
        """
        int N = 0;
        func void main() {
          int s = 0;
          for (int i = 0; i < N; i = i + 1) { s = s + i; }
          print(s);
        }
        """
    )
    assert result.verdict == COMMUTATIVE_VACUOUS


def test_single_iteration_is_vacuous():
    result = verdict_of(
        """
        func void main() {
          int s = 0;
          for (int i = 0; i < 1; i = i + 1) { s = s + 5; }
          print(s);
        }
        """
    )
    assert result.verdict == COMMUTATIVE_VACUOUS


def test_pure_traversal_is_iterator_only():
    result = verdict_of(
        """
        struct Node { Node* next; }
        func void main() {
          Node* head = null;
          for (int k = 0; k < 4; k = k + 1) {
            Node* n = new Node; n->next = head; head = n;
          }
          Node* p = head;
          while (p) { p = p->next; }
          print(p == null);
        }
        """,
        label="main.L1",
    )
    assert result.verdict == ITERATOR_ONLY


def test_transient_scratch_is_relaxed():
    # The scratch array is written in an order-dependent way but is dead
    # after the loop: liveness-based commutativity ignores it (§II-C).
    result = verdict_of(
        """
        func void main() {
          int[] scratch = new int[8];
          int s = 0;
          int cur = 0;
          for (int i = 0; i < 8; i = i + 1) {
            scratch[cur] = i;
            cur = (cur + 3) % 8;
            s += i;
          }
          print(s);
        }
        """
    )
    assert result.verdict == COMMUTATIVE


def test_order_sensitive_scratch_that_is_live_fails():
    # Same loop, but the scratch array is consumed afterwards.
    result = verdict_of(
        """
        func void main() {
          int[] scratch = new int[8];
          int s = 0;
          int cur = 0;
          for (int i = 0; i < 8; i = i + 1) {
            scratch[cur] = i;
            cur = (cur + 3) % 8;
            s += i;
          }
          print(s, scratch[1]);
        }
        """
    )
    assert result.verdict == NON_COMMUTATIVE


def test_argmax_with_unique_values_commutative():
    result = verdict_of(
        """
        func void main() {
          int[] a = new int[12];
          for (int i = 0; i < 12; i = i + 1) { a[i] = (i * 7) % 12; }
          int best = 0 - 1;
          int where = 0 - 1;
          for (int i = 0; i < 12; i = i + 1) {
            if (a[i] > best) { best = a[i]; where = i; }
          }
          print(best, where);
        }
        """,
        label="main.L1",
    )
    assert result.verdict == COMMUTATIVE


def test_argmax_with_ties_non_commutative():
    # First-wins tie-breaking is order-sensitive.
    result = verdict_of(
        """
        func void main() {
          int[] a = new int[8];
          for (int i = 0; i < 8; i = i + 1) { a[i] = i % 2; }
          int best = 0 - 1;
          int where = 0 - 1;
          for (int i = 0; i < 8; i = i + 1) {
            if (a[i] > best) { best = a[i]; where = i; }
          }
          print(best, where);
        }
        """,
        label="main.L1",
    )
    assert result.verdict == NON_COMMUTATIVE


def test_eventual_policy_relaxes_downstream_insensitive_loops():
    # pre[] differs under permutation, but the program only prints the
    # permutation-invariant total: the eventual policy accepts it.
    source = """
    func void main() {
      int[] pre = new int[8];
      int acc = 0;
      for (int i = 0; i < 8; i = i + 1) { acc = acc + i; pre[i] = acc; }
      int s = 0;
      for (int i = 0; i < 8; i = i + 1) { s = s + pre[i]; }
      print(s);
    }
    """
    strict = verdict_of(source)
    relaxed = verdict_of(source, liveout_policy="eventual")
    assert strict.verdict == NON_COMMUTATIVE
    assert relaxed.verdict == NON_COMMUTATIVE  # sum of prefix sums IS order-sensitive

    source2 = source.replace("s = s + pre[i];", "s = s + pre[i] * 0;")
    relaxed2 = verdict_of(source2, liveout_policy="eventual")
    assert relaxed2.verdict == COMMUTATIVE


def test_runtime_fault_under_permutation():
    # Reversed execution divides by zero (a[i] consumed before written).
    result = verdict_of(
        """
        func void main() {
          int[] a = new int[6];
          a[0] = 1;
          int s = 0;
          for (int i = 1; i < 6; i = i + 1) {
            a[i] = a[i - 1] + 1;
            s = s + 100 / a[i - 1];
          }
          print(s, a[5]);
        }
        """
    )
    assert result.verdict in (NON_COMMUTATIVE, "runtime-fault")


def test_loops_in_called_functions_are_analyzed():
    module = compile_program(
        """
        func int total(int[] a) {
          int s = 0;
          for (int i = 0; i < len(a); i = i + 1) { s = s + a[i]; }
          return s;
        }
        func void main() {
          int[] a = new int[6];
          for (int i = 0; i < 6; i = i + 1) { a[i] = i; }
          print(total(a));
        }
        """
    )
    report = DcaAnalyzer(module).analyze()
    assert report.loop("total.L0").verdict == COMMUTATIVE
    assert report.loop("main.L0").verdict == COMMUTATIVE


def test_multi_invocation_loop():
    # The inner loop runs once per outer iteration; all invocations must
    # verify against their own golden snapshots.
    module = compile_program(
        """
        func void main() {
          int[] a = new int[6];
          int s = 0;
          for (int r = 0; r < 3; r = r + 1) {
            for (int i = 0; i < 6; i = i + 1) { a[i] = a[i] + r; }
          }
          for (int i = 0; i < 6; i = i + 1) { s = s + a[i]; }
          print(s);
        }
        """
    )
    report = DcaAnalyzer(module).analyze()
    inner = report.loop("main.L1")
    assert inner.verdict == COMMUTATIVE
    assert inner.invocations == 3


def test_report_helpers():
    module = compile_program(
        """
        func void main() {
          int s = 0;
          for (int i = 0; i < 4; i = i + 1) { s += i; }
          print(s);
        }
        """
    )
    report = DcaAnalyzer(module).analyze()
    assert report.commutative_labels() == ["main.L0"]
    assert report.verdict_counts() == {COMMUTATIVE: 1}
    assert "main.L0" in report.summary()
    # The static pre-screen proves the reduction, so only the profile and
    # golden runs execute; without it the dynamic stage adds schedule runs.
    assert report.loop("main.L0").decided_by == "static"
    assert report.executions == 2
    dynamic = DcaAnalyzer(module, static_filter=False).analyze()
    assert dynamic.loop("main.L0").decided_by == "dynamic"
    assert dynamic.executions >= 3  # profile + golden + identity(+)
    assert dynamic.schedule_executions > 0
