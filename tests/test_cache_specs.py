"""Cache interaction with the commutativity-spec registry.

Three properties:

* toggling specs changes the configuration fingerprint, so warm
  specs-off entries are *invalidated*, never replayed into a specs-on
  run (and vice versa);
* the specs-off fingerprint description is byte-identical to the
  pre-spec format (no ``specs`` key), so existing caches stay warm;
* ``cache verify`` re-executes entries under their recorded spec
  setting — both kinds of entry survive an honest verify, even with
  ``REPRO_SPECS`` set in the environment.
"""

import pytest

from repro.cache import AnalysisCache
from repro.cache.keys import SEMANTICS_VERSION, fingerprint_description
from repro.core.dca import DcaAnalyzer
from repro.driver import compile_program

# Chain-building payload: dynamically testable, and only commutative
# modulo the declared multiset semantics of BagNode.
PROGRAM = """
struct BagNode { int value; BagNode* next; }

func void main() {
  BagNode* head = null;
  for (int i = 0; i < 12; i = i + 1) {
    BagNode* n = new BagNode;
    n.value = i * 3 % 7;
    n.next = head;
    head = n;
  }
  int total = 0;
  BagNode* p = head;
  while (p != null) {
    total = total + p.value;
    p = p.next;
  }
  print(total);
}
"""


def _zero() -> float:
    return 0.0


@pytest.fixture
def cache(tmp_path):
    with AnalysisCache(str(tmp_path)) as store:
        yield store


def _analyze(cache, specs):
    return DcaAnalyzer(
        compile_program(PROGRAM),
        static_filter=False, clock=_zero, backend="serial",
        cache=cache, source_text=PROGRAM, specs=specs,
    ).analyze()


def test_semantics_version_covers_spec_canonicalization():
    # v2 marks the equivalence-aware verifier; pre-spec stores (v1) are
    # purged wholesale on open (see test_cache.py semantics purge test).
    assert SEMANTICS_VERSION >= 2


def test_specs_off_fingerprint_has_no_specs_key():
    desc = fingerprint_description(
        ("identity", "reverse"), rtol=1e-9, max_steps=10_000,
        liveout_policy="strict", static_filter=False,
    )
    assert "specs" not in desc  # pre-spec caches must stay warm


def test_specs_toggle_invalidates_warm_entries(cache):
    cold = _analyze(cache, specs=False)
    assert cold.cache.stores > 0

    # Specs-on run: different fingerprint, so zero hits and every
    # specs-off sibling counted invalidated (not silently replayed —
    # its digests are byte-exact, the specs-on run's are canonical).
    on = _analyze(cache, specs=True)
    assert on.cache.hits == 0
    assert on.cache.invalidations > 0

    # Both configurations replay warm from their own entries.
    warm_off = _analyze(cache, specs=False)
    assert warm_off.cache.misses == 0
    assert warm_off.to_json() == cold.to_json()
    warm_on = _analyze(cache, specs=True)
    assert warm_on.cache.misses == 0
    assert warm_on.to_json() == on.to_json()


def test_specs_flip_verdict_not_cache_bleed(cache):
    off = _analyze(cache, specs=False)
    on = _analyze(cache, specs=True)
    flipped = [
        label for label in off.results
        if not off.results[label].is_commutative
        and on.results[label].is_commutative
    ]
    assert flipped, "BagNode chain loop should flip under specs"


def test_cache_verify_replays_recorded_spec_setting(cache, monkeypatch):
    _analyze(cache, specs=False)
    _analyze(cache, specs=True)
    # REPRO_SPECS in the environment must not leak into verification:
    # each entry replays under the setting recorded in its fingerprint.
    monkeypatch.setenv("REPRO_SPECS", "1")
    result = cache.verify(sample=10)
    assert result["checked"] == result["ok"] > 0
    assert result["mismatches"] == []
    assert result["unverifiable"] == []
