"""Schedule-engine tests: work units, backends, faults, determinism.

The engine's contract (see ``repro.core.schedule_engine``) is that the
process backend is *indistinguishable* from the serial backend in every
report field — verdicts, provenance, reasons, counters, digests — with
timing zeroed by an injected clock.  These tests pin that contract on
the example programs, exercise the fault-injection hook on both
backends, and check the schedule-execution accounting invariant the
``--json`` metrics section exposes.
"""

import glob
import json
import os
import pickle

import pytest

import repro.obs as obs
from repro.core.dca import DcaAnalyzer
from repro.core.report import (
    DECIDED_DYNAMIC,
    DECIDED_STATIC,
    DECIDED_STATIC_SPECS,
    RUNTIME_FAULT,
)
from repro.core.schedule_engine import (
    FAULT_STYLES,
    LoopPlan,
    ProcessScheduleEngine,
    ScheduleOutcome,
    SerialScheduleEngine,
    create_engine,
    outcome_fails,
    should_test,
)
from repro.core.schedules import ScheduleConfig
from repro.driver import compile_program

EXAMPLES = sorted(glob.glob(os.path.join(os.path.dirname(__file__), "..", "examples", "*.mc")))

REDUCTION_SRC = """
func void main() {
  int[] a = new int[12];
  for (int i = 0; i < 12; i = i + 1) {
    a[i] = i * 3 + 1;
  }
  int total = 0;
  for (int i = 0; i < 12; i = i + 1) {
    total += a[i];
  }
  print(total);
}
"""

LAST_WRITER_SRC = """
func void main() {
  int last = 0;
  for (int i = 0; i < 8; i = i + 1) {
    last = i * 7;
  }
  print(last);
}
"""


def _zero():
    return 0.0


def _analyze(source, **kwargs):
    kwargs.setdefault("static_filter", False)
    kwargs.setdefault("clock", _zero)
    # Pin the backend so ambient REPRO_SCHEDULE_* vars (e.g. the CI
    # process-backend job) cannot flip the "serial" side of a comparison.
    kwargs.setdefault("backend", "serial")
    return DcaAnalyzer(compile_program(source), **kwargs).analyze()


# -- engine construction -------------------------------------------------------


@pytest.fixture
def clean_engine_env(monkeypatch):
    monkeypatch.delenv("REPRO_SCHEDULE_BACKEND", raising=False)
    monkeypatch.delenv("REPRO_SCHEDULE_JOBS", raising=False)


def test_create_engine_defaults_to_serial(clean_engine_env):
    assert isinstance(create_engine(), SerialScheduleEngine)


def test_jobs_implies_process_backend(clean_engine_env):
    engine = create_engine(jobs=3)
    assert isinstance(engine, ProcessScheduleEngine)
    assert engine.jobs == 3


def test_create_engine_rejects_unknown_backend():
    with pytest.raises(ValueError):
        create_engine(backend="threads")


def test_env_backend_resolution(monkeypatch):
    monkeypatch.setenv("REPRO_SCHEDULE_BACKEND", "process")
    monkeypatch.setenv("REPRO_SCHEDULE_JOBS", "2")
    engine = create_engine()
    assert isinstance(engine, ProcessScheduleEngine)
    assert engine.jobs == 2
    # Explicit arguments beat the environment.
    assert isinstance(
        create_engine(backend="serial"), SerialScheduleEngine
    )


# -- shared decision helpers ---------------------------------------------------


def _outcome(**kw):
    base = dict(label="L", schedule_name="reverse", index=1)
    base.update(kw)
    return ScheduleOutcome(**base)


def test_outcome_fails_conditions():
    assert not outcome_fails(_outcome(invocation_count=3), 3)
    assert outcome_fails(_outcome(status="fault", invocation_count=3), 3)
    assert outcome_fails(_outcome(status="worker-lost", invocation_count=3), 3)
    assert outcome_fails(_outcome(violations=1, invocation_count=3), 3)
    assert outcome_fails(_outcome(outcome_ok=False, invocation_count=3), 3)
    assert outcome_fails(_outcome(invocation_count=2), 3)
    # A fail-fast mismatch abort reports via violations, not status.
    assert outcome_fails(
        _outcome(status="mismatch", violations=1, invocation_count=3), 3
    )


def test_should_test_requires_clean_identity_and_two_trips():
    plan = LoopPlan(label="L", expected_invocations=1)
    plan.tasks = [None]
    good = _outcome(index=0, schedule_name="identity", invocation_count=1, max_trip=4)
    assert should_test(plan, good)
    assert not should_test(
        plan, _outcome(index=0, invocation_count=1, max_trip=1)
    )
    assert not should_test(
        plan, _outcome(index=0, invocation_count=2, max_trip=4)
    )


# -- cross-backend report identity ---------------------------------------------


@pytest.mark.parametrize("path", EXAMPLES, ids=os.path.basename)
def test_process_reports_byte_identical_to_serial(path):
    with open(path) as handle:
        source = handle.read()
    serial = _analyze(source)
    process = _analyze(source, backend="process", jobs=2)
    assert serial.to_json() == process.to_json()
    assert serial.backend == "serial" and process.backend == "process"
    # backend/jobs never leak into the serialized report
    assert "backend" not in json.loads(serial.to_json())


def test_speculative_executions_are_discarded():
    """A non-commutative loop short-circuits serially; the process
    backend may speculatively run later schedules, but consumed counters
    and tested-schedule lists must match the serial short-circuit."""
    serial = _analyze(LAST_WRITER_SRC)
    process = _analyze(LAST_WRITER_SRC, backend="process", jobs=4)
    assert serial.to_json() == process.to_json()
    (loop,) = [r for r in serial.results.values() if r.failed_schedule]
    assert loop.verdict == "non-commutative"
    assert serial.schedules_skipped.get("short-circuit")


def test_snapshot_digests_cross_backend_and_schedule():
    serial = _analyze(REDUCTION_SRC)
    process = _analyze(REDUCTION_SRC, backend="process", jobs=2)
    for label, result in serial.results.items():
        other = process.results[label]
        assert result.schedule_digests == other.schedule_digests
        if result.decided_by == DECIDED_DYNAMIC and result.verdict == "commutative":
            # Integer program: every passing schedule reproduced the
            # golden live-outs exactly, so the content digests agree.
            digests = set(result.schedule_digests.values())
            assert len(digests) == 1 and "" not in digests


def test_mismatch_detail_populated_and_identical():
    serial = _analyze(LAST_WRITER_SRC)
    process = _analyze(LAST_WRITER_SRC, backend="process", jobs=2)
    (loop,) = [r for r in serial.results.values() if r.failed_schedule]
    detail = loop.mismatch_detail
    assert detail and detail["loop"] == loop.label
    assert detail["actual_digest"] and detail["expected_digest"]
    assert detail["actual_digest"] != detail["expected_digest"]
    assert process.results[loop.label].mismatch_detail == detail


# -- work units ----------------------------------------------------------------


def test_work_units_pickle_round_trip():
    module = compile_program(REDUCTION_SRC)
    analyzer = DcaAnalyzer(module, static_filter=False, clock=_zero)
    report = analyzer.analyze()
    # Rebuild a plan the way the analyzer does and round-trip it.
    analyzer2 = DcaAnalyzer(compile_program(REDUCTION_SRC), static_filter=False, clock=_zero)
    captured = {}
    original_run = analyzer2._engine.run

    def spy(plans):
        captured["plans"] = list(plans)
        return original_run(plans)

    analyzer2._engine.run = spy
    analyzer2.analyze()
    assert captured["plans"]
    for plan in captured["plans"]:
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.label == plan.label
        assert [t.schedule_name for t in clone.tasks] == [
            t.schedule_name for t in plan.tasks
        ]
    assert report.schedule_executions > 0


# -- faulting workers ----------------------------------------------------------


@pytest.mark.parametrize("backend", ["serial", "process"])
@pytest.mark.parametrize("style", FAULT_STYLES)
def test_faulting_schedule_marks_loop_not_analyzer(backend, style):
    """A schedule that raises, OOMs, or kills its worker must resolve to
    a runtime-fault verdict with failed_schedule set — never hang or
    crash the analyzer."""
    report = _analyze(
        REDUCTION_SRC,
        backend=backend,
        jobs=2,
        fault_injection={("main.L1", "reverse"): style},
    )
    result = report.results["main.L1"]
    assert result.verdict == RUNTIME_FAULT
    assert result.failed_schedule == "reverse"
    assert not result.is_commutative
    assert result.reason == "fault under schedule reverse"
    # The other loop is unaffected.
    assert report.results["main.L0"].verdict == "commutative"


def test_fault_reports_identical_across_backends():
    kwargs = dict(fault_injection={("main.L1", "reverse"): "raise"})
    serial = _analyze(REDUCTION_SRC, **kwargs)
    process = _analyze(REDUCTION_SRC, backend="process", jobs=2, **kwargs)
    assert serial.to_json() == process.to_json()


def test_identity_fault_yields_split_mismatch():
    report = _analyze(
        REDUCTION_SRC, fault_injection={("main.L1", "identity"): "raise"}
    )
    result = report.results["main.L1"]
    assert result.verdict == "split-mismatch"
    assert result.failed_schedule == "identity"


# -- accounting invariant (satellite: --json consistency) ----------------------


def _check_accounting(report, n_schedules):
    eligible = sum(
        1
        for r in report.results.values()
        if r.decided_by in (DECIDED_STATIC, DECIDED_STATIC_SPECS,
                            DECIDED_DYNAMIC)
    )
    skipped = sum(report.schedules_skipped.values())
    assert (
        report.schedule_executions + report.static_schedules_saved + skipped
        == eligible * n_schedules
    ), (
        report.schedule_executions,
        report.static_schedules_saved,
        report.schedules_skipped,
        eligible,
    )


@pytest.mark.parametrize("path", EXAMPLES, ids=os.path.basename)
@pytest.mark.parametrize("static_filter", [True, False])
def test_schedule_execution_accounting_invariant(path, static_filter):
    """executed + statically-saved + skipped == eligible loops × (1 +
    testing schedules), whether loops were decided statically or
    dynamically — the ``schedule_executions`` consistency contract of
    ``repro analyze --json``."""
    with open(path) as handle:
        source = handle.read()
    n_schedules = 1 + len(ScheduleConfig.default().testing_schedules())
    report = _analyze(source, static_filter=static_filter)
    _check_accounting(report, n_schedules)
    # And the JSON metrics section carries the same numbers.
    metrics = json.loads(report.to_json())["metrics"]
    assert metrics["schedule_executions"] == report.schedule_executions
    assert (
        metrics["schedule_executions_saved_static"]
        == report.static_schedules_saved
    )
    assert metrics["schedule_executions_skipped"] == {
        k: report.schedules_skipped[k] for k in sorted(report.schedules_skipped)
    }


# -- worker observability merge ------------------------------------------------


def test_process_backend_merges_worker_obs():
    with obs.enabled() as ctx:
        report = DcaAnalyzer(
            compile_program(REDUCTION_SRC),
            static_filter=False,
            backend="process",
            jobs=2,
        ).analyze()
    names = {s.name for s in ctx.tracer.spans}
    assert {"dca.analyze", "dca.dynamic", "dca.loop", "dca.schedule"} <= names
    # Worker spans land on non-coordinator lanes...
    sched_lanes = {s.lane for s in ctx.tracer.spans if s.name == "dca.schedule"}
    assert sched_lanes and 0 not in sched_lanes
    # ...and the single exported Chrome trace keeps one tid per lane.
    trace = ctx.tracer.to_chrome_trace()
    tids = {e["tid"] for e in trace["traceEvents"]}
    assert len(tids) >= 2
    # Worker-recorded metrics merged into the coordinator registry.
    assert (
        ctx.metrics.value("dca.schedule_executions")
        == report.schedule_executions
    )
    assert ctx.metrics.value("dca.snapshots") == report.snapshots_taken


#: Instrument namespaces describing *how* the run executed rather than
#: *what* the analysis computed.  Like wall timestamps and lanes, they
#: legitimately differ between schedule/exec backends (queue depth,
#: pool rebuilds, compile-cache traffic), so the cross-backend identity
#: contract covers everything outside them.
_STRATEGY_PREFIXES = ("schedule.", "exec.", "compile.")


def _analysis_only(named: dict) -> dict:
    return {
        name: value
        for name, value in named.items()
        if not name.startswith(_STRATEGY_PREFIXES)
    }


def test_obs_aggregates_identical_across_backends():
    """With zero clocks, span name/arg aggregates, analysis metrics, and
    events are identical between backends — the obs half of the
    determinism contract (wall timestamps, lanes, and execution-strategy
    counters are presentation/ops only)."""
    def collect(backend, jobs):
        with obs.enabled(clock=_zero) as ctx:
            DcaAnalyzer(
                compile_program(REDUCTION_SRC),
                static_filter=False,
                clock=_zero,
                backend=backend,
                jobs=jobs,
            ).analyze()
            spans = sorted(
                (s.name, tuple(sorted((k, str(v)) for k, v in s.args.items())))
                for s in ctx.tracer.spans
            )
            metrics = {
                kind: _analysis_only(named)
                for kind, named in ctx.metrics.to_dict().items()
            }
            events = [e.to_dict() for e in ctx.events.events]
        return spans, metrics, events

    serial = collect("serial", None)
    process = collect("process", 2)
    assert serial == process
