"""Iterator/payload separation tests (incl. profile-guided memory flow)."""

from repro import compile_program
from repro.analysis.defuse import ReachingDefs
from repro.analysis.dynamic_deps import DynamicDepProfiler
from repro.analysis.loops import build_loop_forest
from repro.analysis.postdom import ControlDependence
from repro.core.iterator_recognition import iterator_fraction, separate
from repro.interp.interpreter import Interpreter
from repro.ir.instructions import Reg


def separation_for(source, label, profile=False):
    module = compile_program(source)
    flow = None
    if profile:
        profiler = DynamicDepProfiler(module)
        Interpreter(module, observers=[profiler]).run()
        flow = profiler.memory_flow_edges().get(label)
    func_name = label.rsplit(".L", 1)[0]
    func = module.functions[func_name]
    forest = build_loop_forest(func)
    loop = forest.loops[label]
    sep = separate(func, loop, ReachingDefs(func), ControlDependence(func), flow)
    return func, sep


ARRAY_LOOP = """
func void main() {
  int[] a = new int[8];
  for (int i = 0; i < 8; i = i + 1) { a[i] = a[i] + 1; }
  print(a[0]);
}
"""


def test_affine_loop_iterator_is_induction():
    func, sep = separation_for(ARRAY_LOOP, "main.L0")
    iter_instrs = [
        func.blocks[b].instrs[i] for b, i in sep.iterator_sites
    ]
    # The iterator contains the increment and the compare; the payload
    # contains the element update.
    assert any(getattr(i, "op", None) == "+" for i in iter_instrs)
    assert sep.payload_sites
    assert Reg("i") in sep.iter_value_regs


PLDS_LOOP = """
struct Node { int val; Node* next; }
func void main() {
  Node* head = null;
  for (int k = 0; k < 4; k = k + 1) {
    Node* n = new Node; n->val = k; n->next = head; head = n;
  }
  Node* p = head;
  int s = 0;
  while (p) { s = s + p->val; p = p->next; }
  print(s);
}
"""


def test_pointer_chase_iterator():
    func, sep = separation_for(PLDS_LOOP, "main.L1")
    # p = p->next is the iterator; the accumulation is payload.
    iter_defs = set()
    for b, i in sep.iterator_sites:
        iter_defs.update(func.blocks[b].instrs[i].defs())
    assert Reg("p") in iter_defs
    assert not sep.payload_is_empty
    assert Reg("p") in sep.iter_value_regs


WORKLIST_LOOP = """
struct Node { int vert; Node* next; }
struct WL { int size; Node* head; }
func void push(WL* w, int v) {
  Node* n = new Node; n->vert = v; n->next = w->head;
  w->head = n; w->size = w->size + 1;
}
func int pop(WL* w) {
  Node* n = w->head; w->head = n->next; w->size = w->size - 1;
  return n->vert;
}
func void main() {
  WL* wl = new WL;
  int[] out = new int[8];
  for (int i = 0; i < 8; i = i + 1) { push(wl, i); }
  while (wl->size) {
    int v = pop(wl);
    out[v] = v * 2;
  }
  print(out[3]);
}
"""


def test_worklist_pop_requires_memory_flow():
    # Without profiling, the reg-level slice cannot see that pop() feeds
    # the loop condition through memory: pop lands in the payload.
    func, sep_static = separation_for(WORKLIST_LOOP, "main.L1", profile=False)
    static_iter_calls = [
        func.blocks[b].instrs[i]
        for b, i in sep_static.iterator_sites
        if type(func.blocks[b].instrs[i]).__name__ == "Call"
    ]
    assert not static_iter_calls

    func, sep = separation_for(WORKLIST_LOOP, "main.L1", profile=True)
    iter_calls = [
        func.blocks[b].instrs[i]
        for b, i in sep.iterator_sites
        if type(func.blocks[b].instrs[i]).__name__ == "Call"
    ]
    assert any(c.func == "pop" for c in iter_calls)
    # The payload (the out[] update) stays out of the iterator.
    assert sep.payload_sites
    assert Reg("v") in sep.iter_value_regs


def test_iterator_never_depends_on_payload():
    for source, label in ((ARRAY_LOOP, "main.L0"), (PLDS_LOOP, "main.L1")):
        func, sep = separation_for(source, label)
        payload_defs = set()
        for b, i in sep.payload_sites:
            payload_defs.update(func.blocks[b].instrs[i].defs())
        for b, i in sep.iterator_sites:
            for use in func.blocks[b].instrs[i].uses():
                assert use not in payload_defs


def test_empty_payload_detected():
    src = """
    struct Node { Node* next; }
    func void main() {
      Node* head = null;
      for (int k = 0; k < 3; k = k + 1) {
        Node* n = new Node; n->next = head; head = n;
      }
      Node* p = head;
      while (p) { p = p->next; }
      print(1);
    }
    """
    func, sep = separation_for(src, "main.L1")
    assert sep.payload_is_empty


def test_return_in_loop_is_exit_edge():
    src = """
    func int find(int[] a, int x) {
      for (int i = 0; i < len(a); i = i + 1) {
        if (a[i] == x) { return i; }
      }
      return 0 - 1;
    }
    func void main() { int[] a = new int[4]; print(find(a, 0)); }
    """
    module = compile_program(src)
    func = module.functions["find"]
    forest = build_loop_forest(func)
    loop = forest.loops["find.L0"]
    # The `return` block cannot reach the latch, so it sits *outside* the
    # natural loop: the loop sees it as a plain exit edge.
    sep = separate(func, loop, ReachingDefs(func), ControlDependence(func))
    assert not sep.has_return
    ret_blocks = [
        b.name for b in func.ordered_blocks()
        if b.instrs and type(b.instrs[-1]).__name__ == "Ret"
    ]
    assert all(name not in loop.blocks for name in ret_blocks)


def test_iterator_fraction_bounds():
    module = compile_program(ARRAY_LOOP)
    func = module.functions["main"]
    frac = iterator_fraction(func, "main.L0")
    assert 0.0 < frac < 1.0
    assert iterator_fraction(func, "main.L99") == 0.0
