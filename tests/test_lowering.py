"""AST → IR lowering tests."""

import pytest

from repro import compile_program
from repro.ir import (
    BinOp,
    Branch,
    GetIndex,
    Jump,
    Mov,
    Ret,
    SetIndex,
    verify_module,
)
from repro.ir.printer import format_function


def lower_main(body, decls="", optimize=True):
    module = compile_program(f"{decls}\nfunc void main() {{ {body} }}",
                             optimize=optimize)
    return module.functions["main"]


def test_loop_labels_assigned_in_source_order():
    func = lower_main(
        "for (int i = 0; i < 2; i = i + 1) { } while (false) { }"
    )
    assert list(func.loops) == ["main.L0", "main.L1"] or list(func.loops) == [
        "main.L0"
    ]  # while(false) may be removed as unreachable... header remains reachable
    assert "main.L0" in func.loops


def test_loop_metadata_records_kind_and_header():
    func = lower_main("while (true) { break; }")
    meta = func.loops["main.L0"]
    assert meta.kind == "while"
    assert meta.header in func.blocks


def test_function_labels_are_per_function():
    module = compile_program(
        "func void a() { for (int i = 0; i < 1; i = i + 1) { } }"
        "func void b() { for (int i = 0; i < 1; i = i + 1) { } }"
    )
    assert "a.L0" in module.functions["a"].loops
    assert "b.L0" in module.functions["b"].loops


def test_every_block_has_terminator():
    func = lower_main(
        "int x = 0; if (x > 0) { x = 1; } else { x = 2; }"
        " while (x > 0) { x = x - 1; }"
    )
    for block in func.ordered_blocks():
        assert block.instrs
        assert block.instrs[-1].is_terminator()


def test_void_function_gets_implicit_return():
    func = lower_main("int x = 1;")
    terminators = [b.instrs[-1] for b in func.ordered_blocks()]
    assert any(isinstance(t, Ret) for t in terminators)


def test_shortcircuit_produces_branching():
    func = lower_main("int a = 1; int b = 2; if (a > 0 && b > 0) { a = 3; }")
    branches = [i for i in func.instructions() if isinstance(i, Branch)]
    assert len(branches) >= 2  # one for &&, one for the if


def test_condition_on_int_compares_against_zero():
    func = lower_main("int x = 3; while (x) { x = x - 1; }")
    text = format_function(func)
    assert "!=" in text


def test_compound_assign_on_element_evaluates_lvalue_once():
    func = lower_main("int[] a = new int[4]; a[2] += 5;", optimize=False)
    gets = [i for i in func.instructions() if isinstance(i, GetIndex)]
    sets = [i for i in func.instructions() if isinstance(i, SetIndex)]
    assert len(gets) == 1 and len(sets) == 1
    assert gets[0].arr == sets[0].arr
    assert gets[0].index == sets[0].index


def test_int_to_float_widening_inserted():
    func = lower_main("float x = 1; int y = 2; x = x + y;")
    ops = [i.op for i in func.instructions() if hasattr(i, "op")]
    assert "itof" in ops


def test_float_const_widening_is_folded():
    func = lower_main("float x = 3;")
    movs = [i for i in func.instructions() if isinstance(i, Mov)]
    assert any(m.src.value == 3.0 for m in movs if hasattr(m.src, "value"))


def test_unreachable_code_after_return_dropped():
    func = lower_main("return; int x = 1;")
    movs = [i for i in func.instructions() if isinstance(i, Mov)]
    assert not movs


def test_break_jumps_out_of_loop():
    func = lower_main("while (true) { break; } int z = 9;")
    verify_module_ok = True
    from repro.ir.verify import verify_function
    verify_function(func)  # must not raise


def test_variable_shadowing_gets_distinct_registers():
    func = lower_main("int x = 1; if (x > 0) { int x = 2; print(x); }")
    regs = {r.name for r in func.reg_types}
    assert "x" in regs
    assert any(name.startswith("x.") for name in regs)


def test_negative_step_for_loop():
    module = compile_program(
        "func void main() { int s = 0;"
        " for (int j = 5; j > 0; j = j - 1) { s = s + j; } print(s); }"
    )
    from repro import run_program
    _, out = run_program(module)
    assert out == "15\n"


def test_global_access_lowered_to_load_store():
    from repro.ir import LoadGlobal, StoreGlobal
    module = compile_program(
        "int g = 1; func void main() { g = g + 1; }"
    )
    instrs = list(module.functions["main"].instructions())
    assert any(isinstance(i, LoadGlobal) for i in instrs)
    assert any(isinstance(i, StoreGlobal) for i in instrs)


def test_copy_fusion_canonicalizes_induction():
    func = lower_main("for (int i = 0; i < 4; i = i + 1) { }")
    binops = [
        i
        for i in func.instructions()
        if isinstance(i, BinOp) and i.op == "+"
    ]
    # After fusion the increment writes %i directly.
    assert any(b.dest.name == "i" and b.lhs == b.dest for b in binops)


def test_fusion_preserves_semantics():
    src = (
        "func void main() { int a = 2; int b = 3;"
        " int c = a * b + a - b; a = c * 2; print(a, c); }"
    )
    from repro import run_program
    _, opt = run_program(compile_program(src, optimize=True))
    _, raw = run_program(compile_program(src, optimize=False))
    assert opt == raw == "10 5\n"
