"""Liveness, loop live-in/live-out and reaching-definitions tests."""

from repro import compile_program
from repro.analysis.defuse import DefUseGraph, ReachingDefs
from repro.analysis.liveness import Liveness, LoopLiveness
from repro.analysis.loops import build_loop_forest
from repro.ir.instructions import Reg


def main_func(body, decls=""):
    module = compile_program(f"{decls}\nfunc void main() {{ {body} }}")
    return module.functions["main"]


def loop_liveness(func):
    forest = build_loop_forest(func)
    return LoopLiveness(func, forest), forest


def test_dead_value_not_live():
    func = main_func("int x = 1; int y = 2; print(y);")
    liveness = Liveness(func)
    assert Reg("x") not in liveness.live_out[func.entry] | liveness.live_in[func.entry]


def test_loop_accumulator_is_live_out_scalar():
    func = main_func(
        "int s = 0; for (int i = 0; i < 4; i = i + 1) { s = s + i; } print(s);"
    )
    ll, forest = loop_liveness(func)
    loop = forest.loops["main.L0"]
    assert Reg("s") in ll.live_out_scalars(loop)


def test_unused_loop_result_not_live_out():
    func = main_func(
        "int s = 0; for (int i = 0; i < 4; i = i + 1) { s = s + i; } print(1);"
    )
    ll, forest = loop_liveness(func)
    loop = forest.loops["main.L0"]
    assert Reg("s") not in ll.live_out_scalars(loop)


def test_reference_defined_before_loop_is_liveout_root():
    func = main_func(
        "int[] a = new int[4];"
        " for (int i = 0; i < 4; i = i + 1) { a[i] = i; }"
        " print(a[0]);"
    )
    ll, forest = loop_liveness(func)
    loop = forest.loops["main.L0"]
    assert Reg("a") in ll.live_out_refs(loop)


def test_live_in_includes_upward_exposed_values():
    func = main_func(
        "int n = 10; int s = 0;"
        " for (int i = 0; i < n; i = i + 1) { s = s + n; } print(s);"
    )
    ll, forest = loop_liveness(func)
    loop = forest.loops["main.L0"]
    live_in = ll.live_in_regs(loop)
    assert Reg("n") in live_in


def test_iterator_final_value_live_out():
    func = main_func(
        "int i = 0; while (i < 7) { i = i + 1; } print(i);"
    )
    ll, forest = loop_liveness(func)
    loop = forest.loops["main.L0"]
    assert Reg("i") in ll.live_out_scalars(loop)


def test_reaching_defs_unique_in_straightline():
    func = main_func("int x = 1; x = 2; print(x);")
    reaching = ReachingDefs(func)
    # The print's use of x must see exactly the second definition.
    for block in func.ordered_blocks():
        for idx, instr in enumerate(block.instrs):
            for reg in instr.uses():
                if reg == Reg("x"):
                    sites = reaching.reaching((block.name, idx), reg)
                    assert len(sites) == 1


def test_reaching_defs_merge_at_join():
    func = main_func(
        "int x = 1; int c = 0;"
        " if (c > 0) { x = 2; } print(x);"
    )
    reaching = ReachingDefs(func)
    found = False
    for block in func.ordered_blocks():
        for idx, instr in enumerate(block.instrs):
            if Reg("x") in instr.uses():
                sites = reaching.reaching((block.name, idx), Reg("x"))
                if len(sites) == 2:
                    found = True
    assert found, "use at join should see both definitions"


def test_loop_carried_def_reaches_header_use():
    func = main_func("int i = 0; while (i < 3) { i = i + 1; }")
    reaching = ReachingDefs(func)
    forest = build_loop_forest(func)
    loop = forest.loops["main.L0"]
    header = func.blocks[loop.header]
    # The header's compare uses i; defs from inside and outside both reach.
    for idx, instr in enumerate(header.instrs):
        if Reg("i") in instr.uses():
            sites = reaching.reaching((loop.header, idx), Reg("i"))
            in_loop = {s for s in sites if s[0] in loop.blocks}
            outside = sites - in_loop
            assert in_loop and outside


def test_defuse_graph_edges():
    func = main_func("int a = 1; int b = a + 2; print(b);")
    graph = DefUseGraph(func)
    # Every use site appears in `sources`.
    assert graph.sources
    for use_site, def_sites in graph.sources.items():
        for def_site in def_sites:
            assert use_site in graph.users[def_site]
