"""Machine model, selection and simulated-executor tests."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import compile_program
from repro.core import DcaAnalyzer
from repro.parallel import (
    MachineModel,
    ParallelSimulator,
    dynamic_makespan,
    parallel_invocation_time,
    static_makespan,
)


# -- machine model -----------------------------------------------------------


@given(
    st.lists(st.integers(1, 100), min_size=1, max_size=60),
    st.integers(1, 16),
)
@settings(max_examples=60)
def test_makespan_bounds(costs, workers):
    """Makespan is at least the critical path and at most the serial sum."""
    total = sum(costs)
    for fn in (static_makespan, dynamic_makespan):
        span = fn(costs, workers, task_cost=0)
        assert span >= max(costs)
        assert span <= total
        assert span >= total / workers - 1e-9


@given(st.lists(st.integers(1, 50), min_size=1, max_size=40))
def test_single_worker_is_serial(costs):
    assert static_makespan(costs, 1, 0) == sum(costs)
    assert dynamic_makespan(costs, 1, 0) == sum(costs)


@given(st.lists(st.integers(1, 50), min_size=1, max_size=30))
def test_more_workers_never_hurt_dynamic(costs):
    spans = [dynamic_makespan(costs, w, 0) for w in (1, 2, 4, 8)]
    assert spans == sorted(spans, reverse=True) or all(
        a >= b for a, b in zip(spans, spans[1:])
    )


def test_uniform_costs_split_evenly():
    costs = [10] * 8
    assert static_makespan(costs, 4, 0) == 20
    assert dynamic_makespan(costs, 4, 0) == 20
    assert static_makespan(costs, 8, 0) == 10


def test_task_cost_charged():
    costs = [10] * 4
    assert dynamic_makespan(costs, 4, task_cost=5) == 15


def test_empty_iteration_list():
    assert static_makespan([], 4, 0) == 0
    assert dynamic_makespan([], 4, 0) == 0
    model = MachineModel(cores=4)
    assert parallel_invocation_time([], model) == model.fork_join_cost


def test_reduction_merge_cost_scales_with_vars():
    model = MachineModel(cores=8)
    base = parallel_invocation_time([10] * 8, model, reduction_vars=0)
    with_red = parallel_invocation_time([10] * 8, model, reduction_vars=2)
    assert with_red > base


def test_with_cores_copies_model():
    model = MachineModel(cores=72, task_cost=9)
    small = model.with_cores(4)
    assert small.cores == 4
    assert small.task_cost == 9


# -- simulator -----------------------------------------------------------------


HOT_LOOP = """
func void main() {
  float s = 0.0;
  for (int k = 0; k < 128; k = k + 1) {
    float acc = 0.0;
    for (int j = 0; j < 20; j = j + 1) {
      acc = acc + to_float(k * j % 17) * 0.25;
    }
    s += acc;
  }
  print(s);
}
"""


def test_simulator_parallelizes_hot_outer_loop():
    module = compile_program(HOT_LOOP)
    report = DcaAnalyzer(module, rtol=1e-7).analyze()
    sim = ParallelSimulator(module, model=MachineModel(cores=72))
    sp = sim.simulate(report.commutative_labels())
    assert sp.selection.chosen == ["main.L0"]
    assert "main.L1" in sp.selection.skipped  # nested
    assert sp.speedup > 10


def test_speedup_monotone_in_cores():
    module = compile_program(HOT_LOOP)
    report = DcaAnalyzer(module, rtol=1e-7).analyze()
    speedups = []
    for cores in (2, 8, 32):
        sim = ParallelSimulator(module, model=MachineModel(cores=cores))
        speedups.append(sim.simulate(report.commutative_labels()).speedup)
    assert speedups[0] < speedups[1] < speedups[2]


def test_unprofitable_loop_skipped():
    module = compile_program(
        """
        func void main() {
          int[] a = new int[4];
          for (int i = 0; i < 4; i = i + 1) { a[i] = i; }
          print(a[3]);
        }
        """
    )
    sim = ParallelSimulator(module, model=MachineModel(cores=72))
    sp = sim.simulate(["main.L0"], min_coverage=0.0)
    assert sp.selection.chosen == []
    assert sp.speedup == 1.0


def test_serial_fraction_reduces_speedup():
    module = compile_program(HOT_LOOP)
    report = DcaAnalyzer(module, rtol=1e-7).analyze()
    labels = report.commutative_labels()
    sim = ParallelSimulator(module, model=MachineModel(cores=72))
    free = sim.simulate(labels).speedup
    sim2 = ParallelSimulator(module, model=MachineModel(cores=72))
    constrained = sim2.simulate(
        labels, serial_fractions={"main.L0": 0.5}
    ).speedup
    assert constrained < free
    assert constrained < 2.5  # Amdahl with half the loop serial


def test_expert_extra_fraction_improves():
    module = compile_program(HOT_LOOP)
    sim = ParallelSimulator(module, model=MachineModel(cores=72))
    nothing = sim.simulate([]).speedup
    sim2 = ParallelSimulator(module, model=MachineModel(cores=72))
    restructured = sim2.simulate([], expert_extra_fraction=0.9).speedup
    assert nothing == 1.0
    assert restructured > 2.0


def test_clauses_synthesized_for_reduction():
    module = compile_program(
        """
        func void main() {
          int s = 0;
          for (int i = 0; i < 64; i = i + 1) { s += i * i; }
          print(s);
        }
        """
    )
    sim = ParallelSimulator(module, model=MachineModel(cores=8))
    sp = sim.simulate(["main.L0"], min_coverage=0.0)
    if sp.selection.chosen:
        clauses = sp.loops["main.L0"].clauses
        assert any("s" in r for r in clauses.reductions)
        assert "reduction" in clauses.pragma()


def test_nesting_observer_tracks_call_boundaries():
    module = compile_program(
        """
        func int inner(int n) {
          int s = 0;
          for (int j = 0; j < n; j = j + 1) { s = s + j; }
          return s;
        }
        func void main() {
          int t = 0;
          for (int i = 0; i < 3; i = i + 1) { t = t + inner(4); }
          print(t);
        }
        """
    )
    from repro.interp.interpreter import Interpreter
    from repro.parallel import NestingObserver

    obs = NestingObserver()
    Interpreter(module, observers=[obs]).run()
    # inner.L0 nests dynamically inside main.L0 (through the call).
    assert "main.L0" in obs.ancestors("inner.L0")
