"""Dominators, postdominators, loop forest and control dependence."""

from repro import compile_program
from repro.analysis.cfg import compute_dominators, dominates, reverse_postorder
from repro.analysis.loops import build_loop_forest, invalidate_loops
from repro.analysis.postdom import ControlDependence, PostDominators


def main_func(body, decls=""):
    module = compile_program(f"{decls}\nfunc void main() {{ {body} }}")
    return module.functions["main"]


def test_entry_dominates_everything():
    func = main_func(
        "int x = 0; if (x > 0) { x = 1; } else { x = 2; } print(x);"
    )
    idom = compute_dominators(func)
    for name in func.block_order:
        assert dominates(idom, func.entry, name)


def test_branch_targets_dominated_by_branch_block():
    func = main_func("int x = 0; if (x > 0) { x = 1; }")
    idom = compute_dominators(func)
    # The then-block's immediate dominator is the entry (which branches).
    then_blocks = [n for n in func.block_order if n.startswith("if.then")]
    assert then_blocks
    assert idom[then_blocks[0]] == func.entry


def test_reverse_postorder_starts_at_entry():
    func = main_func("int x = 0; while (x < 3) { x = x + 1; }")
    rpo = reverse_postorder(func)
    assert rpo[0] == func.entry
    assert set(rpo) == set(func.block_order)


def test_loop_forest_finds_source_loops():
    func = main_func(
        "for (int i = 0; i < 2; i = i + 1) {"
        "  for (int j = 0; j < 2; j = j + 1) { }"
        "}"
    )
    forest = build_loop_forest(func)
    assert set(forest.loops) == {"main.L0", "main.L1"}
    inner = forest.loops["main.L1"]
    outer = forest.loops["main.L0"]
    assert inner.parent is outer
    assert inner in outer.children
    assert inner.depth == 1 and outer.depth == 0


def test_loop_blocks_nest_properly():
    func = main_func(
        "for (int i = 0; i < 2; i = i + 1) {"
        "  for (int j = 0; j < 2; j = j + 1) { }"
        "}"
    )
    forest = build_loop_forest(func)
    inner = forest.loops["main.L1"]
    outer = forest.loops["main.L0"]
    assert inner.blocks < outer.blocks


def test_while_loop_has_header_and_latch():
    func = main_func("int x = 5; while (x > 0) { x = x - 1; }")
    forest = build_loop_forest(func)
    loop = forest.loops["main.L0"]
    assert loop.header in loop.blocks
    assert loop.latches
    assert all(l in loop.blocks for l in loop.latches)


def test_exit_edges_leave_the_loop():
    func = main_func(
        "for (int i = 0; i < 3; i = i + 1) { if (i == 2) { break; } }"
    )
    forest = build_loop_forest(func)
    loop = forest.loops["main.L0"]
    edges = loop.exit_edges(func)
    assert len(edges) == 2  # normal exit + break
    for src, dst in edges:
        assert src in loop.blocks
        assert dst not in loop.blocks


def test_innermost_mapping():
    func = main_func(
        "for (int i = 0; i < 2; i = i + 1) {"
        "  for (int j = 0; j < 2; j = j + 1) { }"
        "  int z = i;"
        "}"
    )
    forest = build_loop_forest(func)
    inner = forest.loops["main.L1"]
    assert forest.innermost[inner.header] is inner
    chain = forest.loop_chain(inner.header)
    assert [l.label for l in chain] == ["main.L0", "main.L1"]


def test_loop_forest_cache_and_invalidation():
    func = main_func("while (true) { break; }")
    first = build_loop_forest(func)
    assert build_loop_forest(func) is first
    invalidate_loops(func)
    assert build_loop_forest(func) is not first


def test_postdominators_exit_blocks():
    func = main_func("int x = 0; if (x > 0) { x = 1; } print(x);")
    pd = PostDominators(func)
    merge = [n for n in func.block_order if n.startswith("if.end")][0]
    assert pd.postdominates(merge, func.entry)


def test_control_dependence_of_branch_arms():
    func = main_func("int x = 0; if (x > 0) { x = 1; } else { x = 2; }")
    cd = ControlDependence(func)
    then_block = [n for n in func.block_order if n.startswith("if.then")][0]
    else_block = [n for n in func.block_order if n.startswith("if.else")][0]
    assert func.entry in cd.controlling_blocks(then_block)
    assert func.entry in cd.controlling_blocks(else_block)
    merge = [n for n in func.block_order if n.startswith("if.end")][0]
    assert func.entry not in cd.controlling_blocks(merge)


def test_loop_body_control_dependent_on_header():
    func = main_func("int x = 3; while (x > 0) { x = x - 1; }")
    cd = ControlDependence(func)
    forest = build_loop_forest(func)
    loop = forest.loops["main.L0"]
    body = [n for n in loop.blocks if n != loop.header][0]
    assert loop.header in cd.controlling_blocks(body)
