"""Static commutativity prover: unit cases, DCA integration, soundness.

The agreement test at the bottom checks the pass's contract on the real
benchmark suites: every ``PROVEN_*`` verdict must match what the dynamic
oracle (permutation testing with the pre-screen disabled) finds for that
loop.  To keep it fast, the oracle only tests the statically-proven
loops (``candidate_labels``); the full with/without cost comparison
lives in ``benchmarks/test_static_filter_savings.py``.
"""

import pytest

from repro import compile_program
from repro.analysis.commutativity import (
    PROVEN_COMMUTATIVE,
    PROVEN_NONCOMMUTATIVE,
    UNKNOWN,
    StaticCommutativityAnalysis,
)
from repro.analysis.diagnostics import DiagnosticEngine, diagnostic_from_static
from repro.benchsuite import ALL_BENCHMARKS
from repro.core import DcaAnalyzer
from repro.core.report import (
    COMMUTATIVE,
    DECIDED_DYNAMIC,
    DECIDED_STATIC,
    NON_COMMUTATIVE,
    RUNTIME_FAULT,
    SPLIT_MISMATCH,
)


def verdicts_of(source):
    module = compile_program(source)
    return StaticCommutativityAnalysis(module).analyze()


def verdict_of(source, label="main.L0"):
    return verdicts_of(source)[label]


# -- proven commutative -------------------------------------------------------


def test_independent_array_writes_proven():
    v = verdict_of(
        """
        func void main() {
          int[] a = new int[32];
          for (int i = 0; i < 32; i = i + 1) { a[i] = i * 3 + 1; }
          print(a[7]);
        }
        """
    )
    assert v.verdict == PROVEN_COMMUTATIVE
    assert any(e.kind == "affine-independent" for e in v.evidence)


def test_strided_disjoint_writes_proven():
    v = verdict_of(
        """
        func void main() {
          int[] a = new int[32];
          for (int i = 0; i < 16; i = i + 1) { a[i * 2] = i; }
          print(a[4]);
        }
        """
    )
    assert v.verdict == PROVEN_COMMUTATIVE


def test_int_sum_reduction_proven():
    v = verdict_of(
        """
        func void main() {
          int s = 0;
          for (int i = 0; i < 10; i = i + 1) { s += i * i; }
          print(s);
        }
        """
    )
    assert v.verdict == PROVEN_COMMUTATIVE
    assert any("reduction-add" in e.kind for e in v.evidence)


def test_minmax_reduction_proven():
    v = verdicts_of(
        """
        func void main() {
          int[] a = new int[16];
          for (int i = 0; i < 16; i = i + 1) { a[i] = (i * 13) % 7; }
          int m = 0 - 1000;
          for (int i = 0; i < 16; i = i + 1) { m = max(m, a[i]); }
          print(m);
        }
        """
    )["main.L1"]
    assert v.verdict == PROVEN_COMMUTATIVE
    assert any("minmax" in e.kind for e in v.evidence)


def test_float_minmax_proven():
    # min/max is exact on floats too, unlike +/*.
    v = verdicts_of(
        """
        func void main() {
          float[] a = new float[8];
          for (int i = 0; i < 8; i = i + 1) { a[i] = to_float(i) * 0.5; }
          float m = 0.0;
          for (int i = 0; i < 8; i = i + 1) { m = max(m, a[i]); }
          print(m);
        }
        """
    )["main.L1"]
    assert v.verdict == PROVEN_COMMUTATIVE


def test_histogram_proven():
    v = verdicts_of(
        """
        func void main() {
          int[] h = new int[4];
          int[] a = new int[16];
          for (int i = 0; i < 16; i = i + 1) { a[i] = (i * 5) % 4; }
          for (int i = 0; i < 16; i = i + 1) { h[a[i]] += 1; }
          print(h[0]);
        }
        """
    )["main.L1"]
    assert v.verdict == PROVEN_COMMUTATIVE
    assert any(e.kind == "histogram" for e in v.evidence)


# -- proven non-commutative ---------------------------------------------------


def test_last_value_race_proven_noncommutative():
    v = verdict_of(
        """
        func void main() {
          int winner = 0;
          for (int i = 0; i < 10; i = i + 1) { winner = i * 3 + 1; }
          print(winner);
        }
        """
    )
    assert v.verdict == PROVEN_NONCOMMUTATIVE
    assert v.evidence[0].kind == "scalar-output-race"


def test_ordered_print_proven_noncommutative():
    v = verdict_of(
        """
        func void main() {
          for (int i = 0; i < 5; i = i + 1) { print(i); }
        }
        """
    )
    assert v.verdict == PROVEN_NONCOMMUTATIVE
    assert v.evidence[0].kind == "ordered-io"


def test_io_in_callee_proven_noncommutative():
    v = verdict_of(
        """
        func void shout(int x) { print(x); }
        func void main() {
          for (int i = 0; i < 5; i = i + 1) { shout(i); }
        }
        """
    )
    assert v.verdict == PROVEN_NONCOMMUTATIVE
    assert v.evidence[0].kind == "ordered-io"


# -- unknown (dynamic testing required) ---------------------------------------


def test_unresolved_aliasing_unknown():
    # Two parameter arrays may alias; writes through one, reads the other.
    v = verdicts_of(
        """
        func void scale(int[] dst, int[] src) {
          for (int i = 0; i < 8; i = i + 1) { dst[i] = src[i + 1] * 2; }
        }
        func void main() {
          int[] a = new int[16];
          scale(a, a);
          print(a[0]);
        }
        """
    )["scale.L0"]
    assert v.verdict == UNKNOWN
    assert any(e.kind == "may-alias" for e in v.evidence)


def test_loop_carried_array_dependence_unknown():
    v = verdict_of(
        """
        func void main() {
          int[] a = new int[16];
          for (int i = 1; i < 16; i = i + 1) { a[i] = a[i - 1] + i; }
          print(a[15]);
        }
        """
    )
    assert v.verdict == UNKNOWN
    assert any(e.kind == "loop-carried-access" for e in v.evidence)


def test_float_reduction_unknown():
    v = verdict_of(
        """
        func void main() {
          float s = 0.0;
          for (int i = 0; i < 8; i = i + 1) { s = s + to_float(i) * 0.1; }
          print(s);
        }
        """
    )
    assert v.verdict == UNKNOWN
    assert any(e.kind == "float-reduction" for e in v.evidence)


def test_payload_induction_leak_unknown():
    # `run`'s final value is order-invariant but its intermediate values
    # are read by the array write, baking execution order into `out`.
    v = verdict_of(
        """
        func void main() {
          int[] out = new int[8];
          int run = 0;
          for (int i = 0; i < 8; i = i + 1) {
            run = run + 1;
            out[i] = run * (i + 1);
          }
          print(out[3]);
        }
        """
    )
    assert v.verdict == UNKNOWN
    assert any(e.kind == "payload-induction" for e in v.evidence)


def test_pure_counter_still_proven():
    # The same induction with no outside readers is a pure counter.
    v = verdict_of(
        """
        func void main() {
          int run = 0;
          for (int i = 0; i < 8; i = i + 1) { run = run + 1; }
          print(run);
        }
        """
    )
    assert v.verdict == PROVEN_COMMUTATIVE


# -- diagnostics --------------------------------------------------------------


def test_diagnostics_rendering():
    verdicts = verdicts_of(
        """
        func void main() {
          int winner = 0;
          for (int i = 0; i < 6; i = i + 1) { winner = i * 2; }
          int s = 0;
          for (int i = 0; i < 6; i = i + 1) { s += i; }
          print(winner + s);
        }
        """
    )
    engine = DiagnosticEngine(program="race.mc")
    engine.ingest_static(verdicts.values())
    counts = engine.counts()
    assert counts["warning"] == 1 and counts["info"] == 1
    text = engine.render_text()
    assert "DCA-RACE" in text and "DCA-SAFE" in text
    assert "race.mc" in text
    # Warnings sort before infos.
    assert text.index("DCA-RACE") < text.index("DCA-SAFE")
    import json

    payload = json.loads(engine.render_json())
    assert payload["counts"]["warning"] == 1
    assert len(payload["diagnostics"]) == 2
    diag = diagnostic_from_static(next(iter(verdicts.values())))
    assert diag.severity in ("warning", "info", "note")


# -- DCA integration ----------------------------------------------------------


def test_static_filter_skips_dynamic_testing():
    module = compile_program(
        """
        func void main() {
          int[] a = new int[16];
          for (int i = 0; i < 16; i = i + 1) { a[i] = i; }
          print(a[3]);
        }
        """
    )
    report = DcaAnalyzer(module).analyze()
    result = report.loop("main.L0")
    assert result.verdict == COMMUTATIVE
    assert result.decided_by == DECIDED_STATIC
    assert result.static_verdict == PROVEN_COMMUTATIVE
    assert result.schedules_tested == []
    assert report.schedule_executions == 0
    assert report.static_hit_rate() == (1, 1)


def test_static_race_verdict_matches_dynamic():
    source = """
        func void main() {
          int winner = 0;
          for (int i = 0; i < 10; i = i + 1) { winner = i * 3 + 1; }
          print(winner);
        }
    """
    static = DcaAnalyzer(compile_program(source)).analyze().loop("main.L0")
    dynamic = (
        DcaAnalyzer(compile_program(source), static_filter=False)
        .analyze()
        .loop("main.L0")
    )
    assert static.decided_by == DECIDED_STATIC
    assert dynamic.decided_by == DECIDED_DYNAMIC
    assert static.verdict == dynamic.verdict == NON_COMMUTATIVE


def test_noncommutative_proof_not_applied_under_eventual_policy():
    # The race proof asserts a per-exit live-out difference; under the
    # eventual policy only the final program outcome counts, so the
    # pre-screen must defer to the dynamic stage.
    source = """
        func void main() {
          int winner = 0;
          for (int i = 0; i < 10; i = i + 1) { winner = i * 3 + 1; }
          print(winner);
        }
    """
    report = DcaAnalyzer(
        compile_program(source), liveout_policy="eventual"
    ).analyze()
    assert report.loop("main.L0").decided_by == DECIDED_DYNAMIC


def test_static_filter_defers_when_loop_never_iterates_twice():
    # A proven loop that never reaches 2 trips must keep the dynamic
    # stage's vacuous verdict, not be upgraded to a full proof.
    source = """
        func void main() {
          int[] a = new int[4];
          for (int i = 0; i < 1; i = i + 1) { a[i] = i; }
          print(a[0]);
        }
    """
    report = DcaAnalyzer(compile_program(source)).analyze()
    result = report.loop("main.L0")
    assert result.decided_by == DECIDED_DYNAMIC
    assert result.verdict == "commutative-vacuous"


def test_report_json_provenance():
    module = compile_program(
        """
        func void main() {
          int s = 0;
          for (int i = 0; i < 8; i = i + 1) { s += i; }
          print(s);
        }
        """
    )
    report = DcaAnalyzer(module).analyze()
    payload = report.to_dict()
    loop = payload["loops"]["main.L0"]
    assert loop["decided_by"] == DECIDED_STATIC
    assert loop["static_verdict"] == PROVEN_COMMUTATIVE
    assert loop["static_evidence"]
    assert payload["static_filter"] is True
    assert payload["decided_by"] == {DECIDED_STATIC: 1}


# -- soundness: static verdicts vs the dynamic oracle -------------------------

#: Dynamic verdicts that contradict a static commutativity proof.
_REFUTES_COMMUTATIVE = {NON_COMMUTATIVE, RUNTIME_FAULT, SPLIT_MISMATCH}


@pytest.mark.parametrize("bench", ALL_BENCHMARKS, ids=lambda b: b.name)
def test_static_verdicts_agree_with_dynamic_oracle(bench):
    # Both stages resolve specs identically (REPRO_SPECS), so the
    # agreement contract holds under either verification semantics.
    from repro.analysis.specs import registry_from_env

    specs = registry_from_env()
    module = compile_program(bench.source)
    static = StaticCommutativityAnalysis(module, specs=specs).analyze()
    proven = [label for label, v in static.items() if v.is_proven]
    if not proven:
        return
    oracle = DcaAnalyzer(
        compile_program(bench.source),
        entry=bench.entry,
        rtol=bench.rtol,
        liveout_policy=bench.liveout_policy,
        candidate_labels=proven,
        static_filter=False,
        specs=specs if specs is not None else False,
    ).analyze()
    for label in proven:
        if label not in oracle.results:
            continue
        dynamic = oracle.results[label].verdict
        sv = static[label].verdict
        if sv == PROVEN_COMMUTATIVE:
            assert dynamic not in _REFUTES_COMMUTATIVE, (
                f"{bench.name} {label}: static proof of commutativity "
                f"contradicted by dynamic verdict {dynamic}"
            )
        elif bench.liveout_policy == "strict":
            # The race proof only claims a difference for per-exit
            # comparison; under the eventual policy it may be masked.
            assert dynamic != COMMUTATIVE or (
                oracle.results[label].max_trip < 2
            ), (
                f"{bench.name} {label}: static race proof contradicted "
                f"by dynamic verdict {dynamic}"
            )
