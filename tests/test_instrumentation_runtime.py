"""Instrumentation passes and DCA runtime unit tests."""

import pytest

from repro import compile_program, run_program
from repro.analysis.purity import EffectAnalysis
from repro.core.instrument import (
    RT_RECORD,
    RT_VERIFY,
    VerifySpec,
    build_observe_module,
    build_test_module,
    compute_verify_spec,
)
from repro.core.runtime import CommutativityMismatch, DcaRuntime
from repro.core.schedules import IdentitySchedule, ReverseSchedule
from repro.interp.interpreter import Interpreter
from repro.ir.instructions import Intrinsic, Reg
from repro.ir.verify import verify_module

SOURCE = """
func void main() {
  int[] a = new int[6];
  int s = 0;
  for (int i = 0; i < 6; i = i + 1) { a[i] = i * 2; }
  for (int i = 0; i < 6; i = i + 1) { s = s + a[i]; }
  print(s);
}
"""


def specs_for(module, labels=("main.L0", "main.L1")):
    effects = EffectAnalysis(module)
    return {
        label: compute_verify_spec(module, module.functions["main"], label, effects)
        for label in labels
    }


def test_verify_spec_contents():
    module = compile_program(SOURCE)
    specs = specs_for(module)
    spec1 = specs["main.L1"]
    assert Reg("s") in spec1.scalar_regs
    # `a` is live after L0 (read by L1) — heap snapshot root.
    assert Reg("a") in specs["main.L0"].ref_regs


def test_verify_spec_includes_written_scalar_globals():
    module = compile_program(
        """
        int total = 0;
        func void main() {
          for (int i = 0; i < 4; i = i + 1) { total = total + i; }
          print(total);
        }
        """
    )
    effects = EffectAnalysis(module)
    spec = compute_verify_spec(module, module.functions["main"], "main.L0", effects)
    assert spec.scalar_globals == ["total"]


def test_observe_module_inserts_verify_per_loop():
    module = compile_program(SOURCE)
    specs = specs_for(module)
    observed = build_observe_module(module, specs)
    verify_module(observed)
    intrinsics = [
        i
        for i in observed.functions["main"].instructions()
        if isinstance(i, Intrinsic) and i.func == RT_VERIFY
    ]
    assert len(intrinsics) == 2
    # The pristine module is untouched.
    assert not [
        i for i in module.functions["main"].instructions() if isinstance(i, Intrinsic)
    ]


def test_observe_run_collects_golden_snapshots():
    module = compile_program(SOURCE)
    specs = specs_for(module)
    observed = build_observe_module(module, specs)
    runtime = DcaRuntime(specs)
    Interpreter(observed, runtime=runtime).run()
    assert runtime.invocation_count("main.L0") == 1
    assert runtime.invocation_count("main.L1") == 1
    assert len(runtime.snapshots["main.L0"]) == 1


def test_test_module_structure():
    module = compile_program(SOURCE)
    specs = specs_for(module)
    inst = build_test_module(module, "main.L0", specs["main.L0"])
    verify_module(inst.module)
    main = inst.module.functions["main"]
    names = set(main.blocks)
    assert any(n.endswith("$rec") for n in names)
    assert any(".d0.permute" in n for n in names)
    records = [
        i
        for i in main.instructions()
        if isinstance(i, Intrinsic) and i.func == RT_RECORD
    ]
    assert len(records) == 1
    assert inst.outline.payload_func in inst.module.functions


def test_identity_replay_matches_golden():
    module = compile_program(SOURCE)
    specs = specs_for(module)
    observed = build_observe_module(module, specs)
    golden_rt = DcaRuntime(specs)
    Interpreter(observed, runtime=golden_rt).run()

    inst = build_test_module(module, "main.L0", specs["main.L0"])
    test_rt = DcaRuntime(
        specs={"main.L0": specs["main.L0"]},
        schedule=IdentitySchedule(),
        golden=golden_rt.snapshots,
    )
    interp = Interpreter(inst.module, runtime=test_rt)
    interp.run()
    assert not test_rt.violations
    assert test_rt.max_trip_count("main.L0") == 6
    assert interp.output_text() == "30\n"


def test_reverse_replay_of_map_also_matches():
    module = compile_program(SOURCE)
    specs = specs_for(module)
    observed = build_observe_module(module, specs)
    golden_rt = DcaRuntime(specs)
    Interpreter(observed, runtime=golden_rt).run()

    inst = build_test_module(module, "main.L0", specs["main.L0"])
    test_rt = DcaRuntime(
        specs={"main.L0": specs["main.L0"]},
        schedule=ReverseSchedule(),
        golden=golden_rt.snapshots,
    )
    Interpreter(inst.module, runtime=test_rt).run()
    assert not test_rt.violations


def test_mismatch_raises_fail_fast():
    source = """
    func void main() {
      int[] out = new int[5];
      int run = 0;
      for (int i = 0; i < 5; i = i + 1) { run = run + 2; out[i] = run * (i + 1); }
      print(out[0], out[4]);
    }
    """
    module = compile_program(source)
    specs = specs_for(module, labels=("main.L0",))
    observed = build_observe_module(module, specs)
    golden_rt = DcaRuntime(specs)
    Interpreter(observed, runtime=golden_rt).run()

    inst = build_test_module(module, "main.L0", specs["main.L0"])
    test_rt = DcaRuntime(
        specs=specs,
        schedule=ReverseSchedule(),
        golden=golden_rt.snapshots,
        fail_fast=True,
    )
    with pytest.raises(CommutativityMismatch):
        Interpreter(inst.module, runtime=test_rt).run()
    assert test_rt.violations


def test_runtime_rejects_unknown_intrinsic():
    from repro.interp.values import MiniCRuntimeError

    runtime = DcaRuntime(specs={})
    with pytest.raises(MiniCRuntimeError):
        runtime.handle_intrinsic(None, "rt_bogus", ["x"])


def test_capture_disabled_still_counts_invocations():
    module = compile_program(SOURCE)
    specs = specs_for(module)
    observed = build_observe_module(module, specs)
    runtime = DcaRuntime(specs, capture_snapshots=False)
    Interpreter(observed, runtime=runtime).run()
    assert runtime.invocation_count("main.L0") == 1
    assert "main.L0" not in runtime.snapshots


def test_permutation_cache_shared_across_invocations():
    from repro.core.schedules import RandomSchedule

    rt = DcaRuntime(specs={}, schedule=RandomSchedule(seed=7))
    for _ in range(2):
        for i in range(5):
            rt._record("main.L0", (i,))
        rt._permute("main.L0")
    first, second = rt._active["main.L0"]
    assert first.order is second.order  # one Fisher-Yates per (name, n)
    assert sorted(first.order) == list(range(5))
    # A different trip count gets its own permutation.
    for i in range(3):
        rt._record("main.L0", (i,))
    rt._permute("main.L0")
    assert sorted(rt._active["main.L0"][-1].order) == list(range(3))
