"""Unit tests for the span tracer (repro.obs.tracer)."""

import json

import pytest

import repro.obs as obs
from repro.obs.tracer import NULL_SPAN, Tracer


class FakeClock:
    """Deterministic monotonic clock: advances only when told."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def tick(self, seconds):
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


def test_span_records_duration(clock):
    tracer = Tracer(clock=clock)
    with tracer.span("work"):
        clock.tick(0.5)
    (rec,) = tracer.spans
    assert rec.name == "work"
    assert rec.dur_us == pytest.approx(500_000)
    assert rec.start_us == pytest.approx(0.0)
    assert rec.depth == 0


def test_span_nesting_parent_links_and_paths(clock):
    tracer = Tracer(clock=clock)
    with tracer.span("outer"):
        clock.tick(0.1)
        with tracer.span("inner", loop="main.L0"):
            clock.tick(0.2)
        clock.tick(0.1)
    inner, outer = tracer.spans  # completion order: children first
    assert inner.name == "inner"
    assert inner.parent == outer.sid
    assert inner.depth == 1
    assert inner.path == ("outer", "inner")
    assert outer.parent is None
    assert outer.path == ("outer",)
    # Time containment: child within parent.
    assert inner.start_us >= outer.start_us
    assert inner.end_us <= outer.end_us
    assert outer.dur_us == pytest.approx(400_000)
    assert inner.dur_us == pytest.approx(200_000)


def test_span_args_and_set(clock):
    tracer = Tracer(clock=clock)
    with tracer.span("s", a=1) as handle:
        handle.set(b=2)
    (rec,) = tracer.spans
    assert rec.args == {"a": 1, "b": 2}


def test_span_completes_on_exception(clock):
    tracer = Tracer(clock=clock)
    with pytest.raises(RuntimeError):
        with tracer.span("fails"):
            clock.tick(0.25)
            raise RuntimeError("boom")
    (rec,) = tracer.spans
    assert rec.dur_us == pytest.approx(250_000)
    assert not tracer._stack  # stack unwound


def test_sibling_spans_share_parent(clock):
    tracer = Tracer(clock=clock)
    with tracer.span("root"):
        for name in ("a", "b"):
            with tracer.span(name):
                clock.tick(0.1)
    a, b, root = tracer.spans
    assert a.parent == root.sid and b.parent == root.sid
    assert a.end_us <= b.start_us  # siblings do not overlap


def test_chrome_trace_export_structure(clock):
    tracer = Tracer(clock=clock)
    with tracer.span("outer", loop="L0"):
        clock.tick(0.001)
        with tracer.span("inner"):
            clock.tick(0.002)
    trace = tracer.to_chrome_trace()
    assert set(trace) == {"traceEvents", "displayTimeUnit"}
    events = trace["traceEvents"]
    assert len(events) == 2
    for event in events:
        assert event["ph"] == "X"
        assert isinstance(event["ts"], (int, float))
        assert isinstance(event["dur"], (int, float))
        assert event["name"]
        assert "pid" in event and "tid" in event
    # Round-trips through JSON (chrome://tracing loads files, not objects).
    json.loads(json.dumps(trace))
    # Events sorted by start time: outer first.
    assert events[0]["name"] == "outer"
    inner, outer = events[1], events[0]
    assert inner["ts"] >= outer["ts"]
    assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]


def test_aggregate_and_total_ms(clock):
    tracer = Tracer(clock=clock)
    for _ in range(3):
        with tracer.span("step"):
            clock.tick(0.01)
    agg = tracer.aggregate()
    assert agg["step"]["count"] == 3
    assert agg["step"]["total_ms"] == pytest.approx(30.0)
    assert tracer.total_ms("step") == pytest.approx(30.0)
    assert tracer.total_ms("absent") == 0.0


def test_flame_summary_renders_nested_tree(clock):
    tracer = Tracer(clock=clock)
    with tracer.span("root"):
        with tracer.span("child"):
            clock.tick(0.5)
        clock.tick(0.5)
    text = tracer.flame_summary()
    lines = text.splitlines()
    assert lines[0].startswith("root")
    assert lines[1].startswith("  child")  # indented under parent
    assert "ms" in lines[0]
    assert Tracer(clock=FakeClock()).flame_summary() == "(no spans recorded)"


def test_reset_clears_spans(clock):
    tracer = Tracer(clock=clock)
    with tracer.span("s"):
        clock.tick(0.1)
    tracer.reset()
    assert tracer.spans == []
    assert tracer.to_chrome_trace()["traceEvents"] == []


def test_null_span_is_reusable_noop():
    with NULL_SPAN as handle:
        assert handle is NULL_SPAN
        assert handle.set(anything=1) is NULL_SPAN
    with NULL_SPAN:
        pass


def test_disabled_context_hands_out_null_span():
    ctx = obs.ObsContext(enabled=False)
    assert ctx.span("anything") is NULL_SPAN
    assert ctx.tracer.spans == []


def test_enabled_contextmanager_restores_previous():
    before = obs.current()
    assert not before.enabled
    with obs.enabled(clock=FakeClock()) as ctx:
        assert obs.current() is ctx
        assert ctx.enabled
        with ctx.span("s"):
            pass
        assert len(ctx.tracer.spans) == 1
    assert obs.current() is before


def test_enable_disable_install_fresh_contexts():
    first = obs.enable()
    try:
        with first.span("s"):
            pass
        second = obs.enable()
        assert second is not first
        assert second.tracer.spans == []
    finally:
        obs.disable()
    assert not obs.current().enabled
