"""Commutativity-spec registry: registry mechanics, the `commutative`
annotation checker (including the interprocedural effect/alias corners
it leans on), snapshot canonicalization, and the static prover's spec
consumption.

The soundness direction throughout: a spec or annotation may only ever
*relax* verification where the declared footprint is provably matched —
anything outside it must be rejected or bailed, never silently trusted.
"""

import pytest

from repro import compile_program
from repro.analysis.commutativity import (
    PROVEN_COMMUTATIVE,
    StaticCommutativityAnalysis,
)
from repro.analysis.purity import EffectAnalysis
from repro.analysis.specs import (
    SpecRegistry,
    chain_insert_spec,
    check_annotations,
    default_registry,
    registry_from_env,
    specs_env_enabled,
)
from repro.core.dca import DcaAnalyzer
from repro.core.liveout import Snapshot, canonicalize_snapshot
from repro.core.report import DECIDED_STATIC_SPECS


def _zero() -> float:
    return 0.0


# ---------------------------------------------------------------------------
# Registry mechanics
# ---------------------------------------------------------------------------

BAG_PROGRAM = """
struct BagNode { int value; BagNode* next; }

func void main() {
  BagNode* head = null;
  for (int i = 0; i < 10; i = i + 1) {
    BagNode* n = new BagNode;
    n.value = i * 5 % 3;
    n.next = head;
    head = n;
  }
  int t = 0;
  BagNode* p = head;
  while (p != null) {
    t = t + p.value;
    p = p.next;
  }
  print(t);
}
"""


def test_registry_digest_is_order_insensitive():
    a = chain_insert_spec(
        "BagNode", "next", (("value", "int"), ("next", "BagNode*"))
    )
    b = chain_insert_spec(
        "SetNode", "next", (("key", "int"), ("next", "SetNode*"))
    )
    assert SpecRegistry((a, b)).digest() == SpecRegistry((b, a)).digest()
    assert SpecRegistry((a,)).digest() != SpecRegistry((a, b)).digest()


def test_chain_slots_requires_exact_signature():
    module = compile_program(BAG_PROGRAM)
    assert default_registry().chain_slots(module) == {"BagNode": 1}

    # Same struct name, different field signature: the spec stays inert.
    imposter = compile_program("""
struct BagNode { int value; int weight; BagNode* next; }

func void main() {
  BagNode* n = new BagNode;
  n.value = 1;
  print(n.value);
}
""")
    assert default_registry().chain_slots(imposter) == {}


def test_extended_registry_covers_module_chains():
    module = compile_program("""
struct Node { int value; Node* next; }

func void main() {
  Node* head = null;
  for (int i = 0; i < 4; i = i + 1) {
    Node* n = new Node;
    n.value = i;
    n.next = head;
    head = n;
  }
  print(head.value);
}
""")
    base = default_registry()
    widened = base.extended_with_module_chains(module)
    assert "Node" not in base.chain_slots(module)
    assert widened.chain_slots(module).get("Node") == 1
    assert widened.digest() != base.digest()


def test_registry_from_env(monkeypatch):
    monkeypatch.delenv("REPRO_SPECS", raising=False)
    assert specs_env_enabled() is None
    assert registry_from_env() is None
    for falsy in ("", "0", "false", "no", "off"):
        monkeypatch.setenv("REPRO_SPECS", falsy)
        assert specs_env_enabled() is False
        assert registry_from_env() is None
    monkeypatch.setenv("REPRO_SPECS", "1")
    assert specs_env_enabled() is True
    assert registry_from_env().digest() == default_registry().digest()


# ---------------------------------------------------------------------------
# Annotation checker: accepted footprints
# ---------------------------------------------------------------------------


def _reports(source):
    return check_annotations(compile_program(source))


def test_pure_annotation_validates():
    reports = _reports("""
commutative func int square(int x) {
  return x * x;
}

func void main() {
  print(square(7));
}
""")
    assert reports["square"].ok and reports["square"].kind == "pure"


def test_monoid_annotations_validate():
    reports = _reports("""
int total = 0;
int peak = 0;

commutative func void add(int x) {
  total = total + x;
}

commutative func void track_max(int x) {
  peak = max(peak, x);
}

func void main() {
  add(3);
  track_max(9);
  print(total);
  print(peak);
}
""")
    assert reports["add"].ok and reports["add"].kind == "monoid"
    assert reports["add"].state_global == "total"
    assert reports["track_max"].ok
    assert reports["track_max"].kind == "monoid"


def test_prng_annotation_validates():
    reports = _reports("""
int seed = 42;

commutative func int next_rand() {
  seed = (seed * 1103515245 + 12345) % 2147483647;
  return seed;
}

func void main() {
  print(next_rand());
}
""")
    assert reports["next_rand"].ok and reports["next_rand"].kind == "prng"
    assert reports["next_rand"].state_global == "seed"


def test_fresh_alloc_annotation_validates():
    reports = _reports("""
struct Pair { int a; int b; }

commutative func Pair* make_pair(int a, int b) {
  Pair* p = new Pair;
  p.a = a;
  p.b = b;
  return p;
}

func void main() {
  Pair* p = make_pair(1, 2);
  print(p.a);
}
""")
    report = reports["make_pair"]
    assert report.ok and report.kind == "fresh-alloc"


# ---------------------------------------------------------------------------
# Annotation checker: interprocedural corners (purity/alias fixpoints)
# ---------------------------------------------------------------------------


def test_direct_recursion_folds_into_summary():
    source = """
commutative func int fib(int n) {
  if (n < 2) {
    return n;
  }
  return fib(n - 1) + fib(n - 2);
}

func void main() {
  print(fib(10));
}
"""
    reports = _reports(source)
    assert reports["fib"].ok and reports["fib"].kind == "pure"
    # The fixpoint must terminate with a closed summary.
    eff = EffectAnalysis(compile_program(source)).of("fib")
    assert not eff.writes_heap and not eff.globals_written


def test_mutual_recursion_folds_into_summary():
    reports = _reports("""
commutative func int is_even(int n) {
  if (n == 0) {
    return 1;
  }
  return is_odd(n - 1);
}

commutative func int is_odd(int n) {
  if (n == 0) {
    return 0;
  }
  return is_even(n - 1);
}

func void main() {
  print(is_even(10));
}
""")
    assert reports["is_even"].ok and reports["is_even"].kind == "pure"
    assert reports["is_odd"].ok and reports["is_odd"].kind == "pure"


def test_recursive_constructor_is_fresh_alloc():
    reports = _reports("""
struct Node { int value; Node* next; }

commutative func Node* build(int n) {
  if (n == 0) {
    return null;
  }
  Node* head = new Node;
  head.value = n;
  head.next = build(n - 1);
  return head;
}

func void main() {
  Node* list = build(5);
  print(list.value);
}
""")
    assert reports["build"].ok and reports["build"].kind == "fresh-alloc"


def test_effects_through_conditional_call_are_not_masked():
    # The impure branch may never execute dynamically; the summary must
    # still include it, so the annotation is rejected.
    reports = _reports("""
int log_count = 0;

func void log_event() {
  log_count = log_count + 1;
  print(log_count);
}

commutative func int guarded(int x) {
  if (x > 100) {
    log_event();
  }
  return x * 2;
}

func void main() {
  print(guarded(3));
}
""")
    report = reports["guarded"]
    assert not report.ok
    assert "I/O" in report.reason or "output order" in report.reason


def test_allocate_only_summary_validates_as_fresh():
    # Allocates scratch space it never leaks: allocate-only summaries
    # must count as fresh, not as arbitrary heap mutation.
    reports = _reports("""
commutative func int scratch_sum(int a, int b) {
  int[] tmp = new int[2];
  tmp[0] = a;
  tmp[1] = b;
  return tmp[0] + tmp[1];
}

func void main() {
  print(scratch_sum(2, 3));
}
""")
    report = reports["scratch_sum"]
    assert report.ok and report.kind == "fresh-alloc"


# ---------------------------------------------------------------------------
# Annotation checker: rejected footprints
# ---------------------------------------------------------------------------


def test_global_overwrite_is_unsound():
    reports = _reports("""
int last = 0;

commutative func void record(int x) {
  last = x;
}

func void main() {
  record(5);
  print(last);
}
""")
    assert not reports["record"].ok


def test_io_is_unsound():
    reports = _reports("""
commutative func void shout(int x) {
  print(x);
}

func void main() {
  shout(1);
}
""")
    report = reports["shout"]
    assert not report.ok and "I/O" in report.reason


def test_stale_heap_write_is_unsound():
    # Writes through a parameter: memory allocated by the *caller*, so
    # the constructor-freshness argument does not apply.
    reports = _reports("""
struct Cell { int value; }

commutative func void poke(Cell* c, int x) {
  c.value = x;
}

func void main() {
  Cell* c = new Cell;
  poke(c, 3);
  print(c.value);
}
""")
    assert not reports["poke"].ok
    assert "fresh" in reports["poke"].reason


def test_multiple_globals_is_unsound():
    reports = _reports("""
int a = 0;
int b = 0;

commutative func void both(int x) {
  a = a + x;
  b = b + x;
}

func void main() {
  both(2);
  print(a);
}
""")
    assert not reports["both"].ok


# ---------------------------------------------------------------------------
# Snapshot canonicalization
# ---------------------------------------------------------------------------

CHAINS = {"BagNode": 1}


def _chain_snapshot(values):
    """A root pointing at a BagNode chain holding ``values`` in order."""
    objects = []
    for i, v in enumerate(values):
        link = ("ref", i + 1) if i + 1 < len(values) else None
        objects.append(("struct", "BagNode", (v, link)))
    return Snapshot(roots=(("ref", 0),), objects=tuple(objects))


def test_canonicalize_equates_permuted_chains():
    a = canonicalize_snapshot(_chain_snapshot([1, 2, 3]), CHAINS)
    b = canonicalize_snapshot(_chain_snapshot([3, 1, 2]), CHAINS)
    assert a == b
    assert a.objects == ()  # chain nodes leave the object table


def test_canonicalize_distinguishes_different_multisets():
    a = canonicalize_snapshot(_chain_snapshot([1, 2, 2]), CHAINS)
    b = canonicalize_snapshot(_chain_snapshot([1, 1, 2]), CHAINS)
    assert a != b


def test_canonicalize_no_declared_nodes_is_identity():
    snap = Snapshot(roots=(("ref", 0),),
                    objects=(("struct", "Other", (1, None)),))
    assert canonicalize_snapshot(snap, CHAINS) is snap


def test_canonicalize_bails_on_link_cycle():
    snap = Snapshot(
        roots=(("ref", 0),),
        objects=(
            ("struct", "BagNode", (1, ("ref", 1))),
            ("struct", "BagNode", (2, ("ref", 0))),
        ),
    )
    assert canonicalize_snapshot(snap, CHAINS) is snap


def test_canonicalize_bails_on_float_content():
    snap = Snapshot(
        roots=(("ref", 0),),
        objects=(("struct", "BagNode", (1.5, None)),),
    )
    assert canonicalize_snapshot(snap, CHAINS) is snap


def test_canonicalize_bails_on_undeclared_reference_in_content():
    snap = Snapshot(
        roots=(("ref", 0),),
        objects=(
            ("struct", "BagNode", (("ref", 1), None)),
            ("array", (7, 8)),
        ),
    )
    assert canonicalize_snapshot(snap, CHAINS) is snap


def test_mid_chain_reference_denotes_the_suffix():
    # Two roots: the head and a mid-chain pointer.  The suffixes differ
    # even though the full chains hold the same multiset.
    def snap(values, mid):
        base = _chain_snapshot(values)
        return Snapshot(roots=base.roots + (("ref", mid),),
                        objects=base.objects)

    a = canonicalize_snapshot(snap([1, 2, 3], 1), CHAINS)
    b = canonicalize_snapshot(snap([2, 1, 3], 1), CHAINS)
    assert a.roots[0] == b.roots[0]  # same full multiset from the head
    assert a.roots[1] != b.roots[1]  # different suffix multisets


def test_canonicalize_renumbers_survivors():
    snap = Snapshot(
        roots=(("ref", 0), ("ref", 1)),
        objects=(
            ("struct", "BagNode", (4, None)),
            ("array", (9,)),
        ),
    )
    out = canonicalize_snapshot(snap, CHAINS)
    assert out.roots[0] == ("chain", "BagNode", ((4,),))
    assert out.roots[1] == ("ref", 0)
    assert out.objects == (("array", (9,)),)


# ---------------------------------------------------------------------------
# Static prover consumption
# ---------------------------------------------------------------------------


def test_chain_build_loop_proven_with_specs_only():
    module = compile_program(BAG_PROGRAM)
    base = StaticCommutativityAnalysis(module).analyze()
    assert base["main.L0"].verdict != PROVEN_COMMUTATIVE

    specd = StaticCommutativityAnalysis(
        compile_program(BAG_PROGRAM), specs=default_registry()
    ).analyze()
    verdict = specd["main.L0"]
    assert verdict.verdict == PROVEN_COMMUTATIVE
    assert verdict.used_specs
    assert any(e.kind == "spec-chain-insert" for e in verdict.evidence)
    # used_specs serializes only when set, keeping specs-off rows stable.
    assert "used_specs" in verdict.to_dict()
    assert "used_specs" not in base["main.L0"].to_dict()


def test_spec_proof_reports_static_specs_provenance():
    report = DcaAnalyzer(
        compile_program(BAG_PROGRAM), clock=_zero, backend="serial",
        specs=True,
    ).analyze()
    assert report.results["main.L0"].decided_by == DECIDED_STATIC_SPECS
    assert report.results["main.L0"].is_commutative


def test_callee_reads_heap_is_never_waived():
    # `acc` is a validated monoid, but it *reads* heap the loop writes:
    # its observations depend on iteration order, so the callee-effects
    # waiver must not extend to the reads-heap blocker.
    source = """
int total = 0;
int[] data = null;

commutative func void acc(int i) {
  total = total + data[i];
}

func void main() {
  data = new int[8];
  int[] out = new int[8];
  for (int i = 0; i < 8; i = i + 1) {
    out[i] = i * 2;
    acc(i);
  }
  print(total);
  print(out[3]);
}
"""
    module = compile_program(source)
    reports = check_annotations(module)
    assert reports["acc"].ok and reports["acc"].kind == "monoid"

    verdicts = StaticCommutativityAnalysis(
        module, specs=default_registry()
    ).analyze()
    verdict = verdicts["main.L0"]
    assert verdict.verdict != PROVEN_COMMUTATIVE
    assert any(e.kind == "callee-reads-heap" for e in verdict.evidence)


def test_unsound_annotation_is_never_trusted():
    # `record` lies about commuting; the prover must keep the
    # callee-effects blocker even with specs enabled.
    source = """
int last = 0;

commutative func void record(int x) {
  last = x;
}

func void main() {
  for (int i = 0; i < 6; i = i + 1) {
    record(i);
  }
  print(last);
}
"""
    verdicts = StaticCommutativityAnalysis(
        compile_program(source), specs=default_registry()
    ).analyze()
    verdict = verdicts["main.L0"]
    assert verdict.verdict != PROVEN_COMMUTATIVE
    assert any(e.kind == "callee-effects" for e in verdict.evidence)
