"""The ``repro.api`` facade: config fingerprints, precedence, sessions.

Covers the three contracts the facade introduces:

* :meth:`AnalysisConfig.fingerprint` is the exact config component of
  the persistent cache key — sensitive to every verdict-relevant knob,
  insensitive to backends/jobs/observability/cache policy.
* Explicit flags always beat the matching ``REPRO_*`` environment
  variables (the documented precedence order).
* :class:`AnalysisSession` drives analyze/detect/profile end-to-end and
  the legacy ``repro.driver`` entry points survive as deprecation shims.
"""

import warnings

import pytest

import repro.obs as obs
from repro.api import AnalysisConfig, AnalysisSession
from repro.core.schedule_engine import resolve_schedule_backend
from repro.interp.compiler import resolve_exec_backend

PROGRAM = """
func void main() {
  int[] a = new int[32];
  int s = 0;
  for (int i = 0; i < 32; i = i + 1) {
    a[i] = i * 3 + 1;
  }
  for (int i = 0; i < 32; i = i + 1) {
    s += a[i];
  }
  print(s);
}
"""


# ---------------------------------------------------------------------------
# AnalysisConfig value semantics and validation
# ---------------------------------------------------------------------------


def test_config_is_frozen_and_hashable():
    config = AnalysisConfig()
    with pytest.raises(Exception):
        config.rtol = 0.5
    assert hash(config) == hash(AnalysisConfig())
    assert config == AnalysisConfig()
    assert config != config.replace(rtol=1e-3)


def test_config_normalizes_mutable_fields():
    config = AnalysisConfig(args=[1, 2], candidate_labels=["L0"])
    assert config.args == (1, 2)
    assert config.candidate_labels == ("L0",)
    hash(config)  # must not raise


@pytest.mark.parametrize(
    "kwargs",
    [
        {"liveout_policy": "bogus"},
        {"cache_mode": "bogus"},
        {"backend": "threads"},
        {"exec_backend": "jit"},
    ],
)
def test_config_rejects_unknown_values(kwargs):
    with pytest.raises(ValueError):
        AnalysisConfig(**kwargs)


# ---------------------------------------------------------------------------
# Fingerprint: the config half of the cache key
# ---------------------------------------------------------------------------


def test_fingerprint_is_stable():
    assert AnalysisConfig().fingerprint() == AnalysisConfig().fingerprint()


@pytest.mark.parametrize(
    "changes",
    [
        {"rtol": 1e-3},
        {"liveout_policy": "eventual"},
        {"static_filter": False},
        {"max_steps": 10_000},
        {"schedule_seed": 7},
        {"n_random_schedules": 3},
        {"candidate_labels": ("L0",)},
    ],
)
def test_fingerprint_changes_with_verdict_relevant_knobs(changes):
    assert (
        AnalysisConfig().fingerprint()
        != AnalysisConfig(**changes).fingerprint()
    )


@pytest.mark.parametrize(
    "changes",
    [
        {"backend": "process", "jobs": 4},
        {"exec_backend": "compiled"},
        {"obs": True},
        {"cache_dir": "/tmp/some-cache", "cache_mode": "refresh"},
        {"entry": "other", "args": (1,)},
    ],
)
def test_fingerprint_ignores_non_verdict_knobs(changes):
    # Backends/jobs/obs/cache are the byte-identity axes: entries must be
    # shared across them.  entry/args live in the *module* digest, not
    # the config fingerprint.
    assert (
        AnalysisConfig().fingerprint()
        == AnalysisConfig(**changes).fingerprint()
    )


def test_fingerprint_matches_analyzer_cache_key():
    # The facade's fingerprint must be the exact key DcaAnalyzer uses,
    # or cache entries written by one would be invisible to the other.
    with AnalysisSession(AnalysisConfig(cache_mode="off")) as session:
        module = session.compile(PROGRAM)
        analyzer = session.analyzer(module)
        assert session.config.fingerprint() == analyzer.config_fingerprint()


# ---------------------------------------------------------------------------
# Precedence: explicit flags beat the environment
# ---------------------------------------------------------------------------


def test_explicit_backend_beats_env(monkeypatch):
    monkeypatch.setenv("REPRO_SCHEDULE_BACKEND", "process")
    monkeypatch.delenv("REPRO_SCHEDULE_JOBS", raising=False)
    assert resolve_schedule_backend("serial", None) == ("serial", None)


def test_explicit_jobs_imply_process_despite_env_serial(monkeypatch):
    monkeypatch.setenv("REPRO_SCHEDULE_BACKEND", "serial")
    assert resolve_schedule_backend(None, 4) == ("process", 4)


def test_env_backend_applies_without_flags(monkeypatch):
    monkeypatch.setenv("REPRO_SCHEDULE_BACKEND", "process")
    monkeypatch.delenv("REPRO_SCHEDULE_JOBS", raising=False)
    assert resolve_schedule_backend(None, None) == ("process", None)


def test_env_jobs_imply_process(monkeypatch):
    monkeypatch.delenv("REPRO_SCHEDULE_BACKEND", raising=False)
    monkeypatch.setenv("REPRO_SCHEDULE_JOBS", "3")
    assert resolve_schedule_backend(None, None) == ("process", 3)


def test_explicit_single_job_stays_serial(monkeypatch):
    monkeypatch.delenv("REPRO_SCHEDULE_BACKEND", raising=False)
    monkeypatch.delenv("REPRO_SCHEDULE_JOBS", raising=False)
    assert resolve_schedule_backend(None, 1) == ("serial", 1)


def test_explicit_exec_backend_beats_env(monkeypatch):
    # The explicit argument must beat REPRO_EXEC_BACKEND for every
    # backend pairing — the same precedence contract documented on
    # resolve_schedule_backend.
    from repro.interp.compiler import EXEC_BACKENDS

    for env_choice in EXEC_BACKENDS:
        monkeypatch.setenv("REPRO_EXEC_BACKEND", env_choice)
        assert resolve_exec_backend(None) == env_choice
        for explicit in EXEC_BACKENDS:
            assert resolve_exec_backend(explicit) == explicit


def test_config_resolution_uses_precedence(monkeypatch):
    monkeypatch.setenv("REPRO_SCHEDULE_BACKEND", "serial")
    monkeypatch.setenv("REPRO_EXEC_BACKEND", "compiled")
    config = AnalysisConfig(jobs=2, exec_backend="interp")
    assert config.resolved_backend() == ("process", 2)
    assert config.resolved_exec_backend() == "interp"
    monkeypatch.setenv("REPRO_EXEC_BACKEND", "codegen")
    assert AnalysisConfig().resolved_exec_backend() == "codegen"
    assert AnalysisConfig(
        exec_backend="compiled"
    ).resolved_exec_backend() == "compiled"


def test_cache_mode_off_ignores_env_dir(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert AnalysisConfig().resolved_cache_dir() == str(tmp_path)
    assert AnalysisConfig(cache_mode="off").resolved_cache_dir() is None


def test_cli_backend_flag_beats_env(monkeypatch, capsys):
    # End-to-end: the CLI flag must win even with the env var set.
    from repro.cli import main

    monkeypatch.setenv("REPRO_SCHEDULE_BACKEND", "process")
    monkeypatch.setenv("REPRO_EXEC_BACKEND", "compiled")
    assert main(
        ["analyze", "examples/array_map.mc", "--backend", "serial",
         "--exec-backend", "interp", "--no-cache"]
    ) == 0
    assert "commutative" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# AnalysisSession end-to-end
# ---------------------------------------------------------------------------


def test_session_analyze():
    with AnalysisSession(AnalysisConfig(cache_mode="off")) as session:
        report = session.analyze(PROGRAM)
    assert len(report.results) == 2
    assert len(report.commutative_loops()) == 2


def test_session_detect():
    with AnalysisSession(AnalysisConfig(cache_mode="off")) as session:
        outcome = session.detect(PROGRAM)
    assert len(outcome.report.results) == 2
    assert set(outcome.detector_names) == set(outcome.baselines)
    verdicts = outcome.baseline_verdicts()
    assert set(verdicts) == set(outcome.detector_names)
    assert "profile" in outcome.costs


def test_session_profile():
    try:
        with AnalysisSession(AnalysisConfig(cache_mode="off")) as session:
            report, ctx = session.profile(PROGRAM)
        assert ctx.enabled
        names = {rec.name for rec in ctx.tracer.spans}
        assert "repro.compile" in names
        assert len(report.results) == 2
    finally:
        obs.disable()


def test_session_accepts_module():
    with AnalysisSession(AnalysisConfig(cache_mode="off")) as session:
        module = session.compile(PROGRAM)
        report = session.analyze(module)
    assert len(report.results) == 2


def test_driver_shims_warn_and_work():
    from repro.driver import analyze_program, profile_program

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        report = analyze_program(PROGRAM)
    assert any(w.category is DeprecationWarning for w in caught)
    assert len(report.results) == 2

    try:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            report, ctx = profile_program(PROGRAM)
        assert any(w.category is DeprecationWarning for w in caught)
        assert ctx.enabled
        assert len(report.results) == 2
    finally:
        obs.disable()
