"""SCC-DAG construction, classification, stage partitioning, tiering.

Covers the pipeline tier end to end: the condensation of the dynamic
dependence graph (:mod:`repro.analysis.sccdag`), the DSWP makespan model
(:func:`repro.parallel.machine.pipeline_invocation_time`), the tiered
verdicts threaded through :class:`~repro.core.dca.DcaAnalyzer`, the
schema-2 report serialization, the config-fingerprint gating, and the
flag>env>default resolution of ``REPRO_TIERING``.
"""

import json

import pytest

from repro.analysis.dynamic_deps import DynamicDepProfiler
from repro.analysis.loops import build_loop_forest
from repro.analysis.reductions import classify_loop
from repro.analysis.sccdag import (
    DEFAULT_MAX_PIPELINE_STAGES,
    SCC_PARALLEL,
    SCC_REDUCTION,
    SCC_SEQUENTIAL,
    TIER_DOALL,
    TIER_PIPELINE,
    TIER_REDUCTION,
    TIER_SEQUENTIAL,
    ParallelismTier,
    build_sccdag,
    partition_stages,
    resolve_tiering,
    stage_shapes,
    tier_display,
)
from repro.core.dca import DcaAnalyzer
from repro.core.report import REPORT_SCHEMA_VERSION
from repro.driver import compile_program
from repro.interp.interpreter import Interpreter
from repro.parallel.machine import (
    MachineModel,
    parallel_invocation_time,
    pipeline_invocation_time,
)


def zero() -> float:
    return 0.0


#: Scalar recurrence (sequential SCC) feeding an elementwise store
#: (parallel SCC): the canonical 2+-SCC pipelinable loop.
CURSOR = """
func void main() {
  int[] a = new int[16];
  int[] out = new int[16];
  for (int i = 0; i < 16; i = i + 1) { a[i] = (i * 7 + 3) % 13; }
  int cur = 1;
  for (int i = 0; i < 16; i = i + 1) {
    cur = cur * 3 + a[i];
    out[i] = cur % 5 + a[i] * 2;
  }
  int s = 0;
  for (int i = 0; i < 16; i = i + 1) { s += out[i]; }
  print(s);
  print(cur);
}
"""

#: Prefix-sum memory cycle: p[i] reads p[i-1] — one carried memory SCC
#: plus an independent parallel store.
SHIFT = """
func void main() {
  int[] a = new int[12];
  int[] p = new int[13];
  int[] b = new int[12];
  for (int i = 0; i < 12; i = i + 1) { a[i] = i * 5 % 7; }
  p[0] = 0;
  for (int i = 0; i < 12; i = i + 1) {
    p[i + 1] = p[i] + a[i];
    b[i] = a[i] * 3;
  }
  int s = 0;
  for (int i = 0; i < 12; i = i + 1) { s += b[i]; }
  print(p[12]);
  print(s);
}
"""

#: Pure elementwise loop — every SCC parallel, commutative, DOALL tier.
ELEMENTWISE = """
func void main() {
  int[] a = new int[10];
  int[] b = new int[10];
  for (int i = 0; i < 10; i = i + 1) { a[i] = i * 3; }
  for (int i = 0; i < 10; i = i + 1) { b[i] = a[i] * 2 + 1; }
  int s = 0;
  for (int i = 0; i < 10; i = i + 1) { s += b[i]; }
  print(s);
}
"""


def _loop_parts(source, label):
    """(func, loop, deps, idioms, is_privatizable) for one loop."""
    module = compile_program(source)
    profiler = DynamicDepProfiler(module)
    Interpreter(module, observers=[profiler]).run("main", ())
    deps = profiler.deps_for(label)
    assert deps is not None
    for func in module.functions.values():
        forest = build_loop_forest(func)
        if label in forest.loops:
            loop = forest.loops[label]
            return (
                func,
                loop,
                deps,
                classify_loop(func, loop),
                lambda loc: profiler.is_privatizable(label, loc),
            )
    raise AssertionError(f"loop {label} not found")


# -- SCC-DAG construction -----------------------------------------------------


def test_recurrence_forms_sequential_scc():
    dag = build_sccdag(*_loop_parts(CURSOR, "main.L1"))
    classes = dag.classification_counts()
    assert classes.get(SCC_SEQUENTIAL, 0) >= 1
    assert classes.get(SCC_PARALLEL, 0) >= 1
    seq = dag.sequential_nodes()[0]
    assert any("carried-unknown" in r for r in seq.reasons)


def test_prefix_memory_cycle_is_sequential():
    dag = build_sccdag(*_loop_parts(SHIFT, "main.L1"))
    assert len(dag.sequential_nodes()) >= 1
    # The independent b[i] store must not be dragged into the cycle.
    assert dag.classification_counts().get(SCC_PARALLEL, 0) >= 1


def test_elementwise_loop_has_no_cycles():
    dag = build_sccdag(*_loop_parts(ELEMENTWISE, "main.L1"))
    assert dag.sequential_nodes() == []
    assert all(n.classification == SCC_PARALLEL for n in dag.nodes)


def test_dag_edges_are_topological():
    dag = build_sccdag(*_loop_parts(CURSOR, "main.L1"))
    for src, dst in dag.edges:
        assert src != dst


def test_sccdag_is_deterministic():
    first = build_sccdag(*_loop_parts(CURSOR, "main.L1"))
    second = build_sccdag(*_loop_parts(CURSOR, "main.L1"))
    assert [n.sites for n in first.nodes] == [n.sites for n in second.nodes]
    assert [n.classification for n in first.nodes] == [
        n.classification for n in second.nodes
    ]
    assert first.edges == second.edges


# -- stage partitioning -------------------------------------------------------


def test_partition_produces_multiple_stages():
    dag = build_sccdag(*_loop_parts(CURSOR, "main.L1"))
    plan = partition_stages(dag)
    assert 2 <= len(plan.stages) <= DEFAULT_MAX_PIPELINE_STAGES
    assert sum(stage.weight for stage in plan.stages) == plan.total_weight
    # Every SCC lands in exactly one stage.
    assigned = [i for stage in plan.stages for i in stage.scc_indices]
    assert sorted(assigned) == sorted(n.index for n in dag.nodes)


def test_partition_respects_max_stages():
    dag = build_sccdag(*_loop_parts(CURSOR, "main.L1"))
    plan = partition_stages(dag, max_stages=2)
    assert len(plan.stages) == 2


def test_partition_stage_order_is_topological():
    dag = build_sccdag(*_loop_parts(CURSOR, "main.L1"))
    plan = partition_stages(dag)
    stage_of = {
        scc: stage.index
        for stage in plan.stages
        for scc in stage.scc_indices
    }
    for src, dst in dag.edges:
        assert stage_of[src] <= stage_of[dst]


def test_sequential_scc_disables_stage_replication():
    dag = build_sccdag(*_loop_parts(CURSOR, "main.L1"))
    plan = partition_stages(dag)
    stage_of = {
        scc: stage.index
        for stage in plan.stages
        for scc in stage.scc_indices
    }
    for node in dag.sequential_nodes():
        assert not plan.stages[stage_of[node.index]].parallel


def test_plan_roundtrips_through_dict():
    dag = build_sccdag(*_loop_parts(CURSOR, "main.L1"))
    plan = partition_stages(dag)
    payload = plan.to_dict()
    assert json.loads(json.dumps(payload)) == payload
    shapes = stage_shapes(payload)
    assert len(shapes) == len(plan.stages)
    assert all(weight > 0 for weight, _ in shapes)


# -- pipeline makespan model --------------------------------------------------


def test_pipeline_time_beats_sequential():
    model = MachineModel()
    costs = [100] * 40
    seq = sum(costs) + model.fork_join_cost
    t = pipeline_invocation_time(costs, [(1, False), (1, False)], model)
    assert t < seq


def test_pipeline_time_never_beats_doall():
    model = MachineModel()
    costs = [100] * 40
    doall = parallel_invocation_time(costs, model)
    piped = pipeline_invocation_time(
        costs, [(1, True), (1, True), (1, False)], model
    )
    assert piped >= doall


def test_pipeline_single_stage_degenerates_to_sequential():
    model = MachineModel()
    costs = [50] * 10
    assert pipeline_invocation_time(costs, [(4, False)], model) == (
        sum(costs) + model.fork_join_cost
    )


def test_pipeline_too_few_cores_degenerates():
    model = MachineModel(cores=1)
    costs = [50] * 10
    t = pipeline_invocation_time(costs, [(1, False), (1, False)], model)
    assert t == sum(costs) + model.fork_join_cost


def test_pipeline_replicated_stage_helps():
    model = MachineModel(cores=8)
    costs = [100] * 40
    narrow = pipeline_invocation_time(
        costs, [(1, False), (3, False)], model
    )
    wide = pipeline_invocation_time(costs, [(1, False), (3, True)], model)
    assert wide < narrow


def test_pipeline_empty_costs():
    assert pipeline_invocation_time([], [(1, False)], MachineModel()) == 0


# -- tiering resolution (flag > env > default) --------------------------------


def test_resolve_tiering_default_off(monkeypatch):
    monkeypatch.delenv("REPRO_TIERING", raising=False)
    assert resolve_tiering(None) is False


def test_resolve_tiering_env(monkeypatch):
    monkeypatch.setenv("REPRO_TIERING", "1")
    assert resolve_tiering(None) is True
    monkeypatch.setenv("REPRO_TIERING", "off")
    assert resolve_tiering(None) is False


def test_resolve_tiering_explicit_beats_env(monkeypatch):
    monkeypatch.setenv("REPRO_TIERING", "1")
    assert resolve_tiering(False) is False
    monkeypatch.delenv("REPRO_TIERING")
    assert resolve_tiering(True) is True


def test_parallelism_tier_enum_values():
    assert ParallelismTier.DOALL.value == TIER_DOALL
    assert ParallelismTier.PIPELINE.value == TIER_PIPELINE
    assert {t.value for t in ParallelismTier} == {
        TIER_DOALL,
        TIER_REDUCTION,
        TIER_PIPELINE,
        TIER_SEQUENTIAL,
    }


def test_tier_display():
    assert tier_display(None) == "-"
    assert tier_display(TIER_DOALL) == "DOALL"
    plan = {"stages": [{}, {}]}
    assert tier_display(TIER_PIPELINE, plan) == "PIPELINE(stages=2)"


# -- analyzer integration -----------------------------------------------------


def test_tiering_assigns_pipeline_tier():
    report = DcaAnalyzer(
        compile_program(CURSOR), clock=zero, tiering=True
    ).analyze()
    result = report.loop("main.L1")
    assert result.verdict == "non-commutative"
    assert result.tier == TIER_PIPELINE
    assert result.pipeline_plan is not None
    assert len(result.pipeline_plan["stages"]) >= 2


def test_tiering_assigns_doall_and_reduction():
    report = DcaAnalyzer(
        compile_program(ELEMENTWISE), clock=zero, tiering=True
    ).analyze()
    assert report.loop("main.L1").tier == TIER_DOALL
    assert report.loop("main.L2").tier == TIER_REDUCTION
    assert report.loop("main.L1").pipeline_plan is None


def test_untestable_loop_tiers_sequential():
    # I/O inside the loop excludes it at selection — no dependence
    # profile to pipeline, so the tier falls through to SEQUENTIAL.
    src = """
func void main() {
  int s = 0;
  for (int i = 0; i < 3; i = i + 1) {
    s += i;
    print(s);
  }
}
"""
    report = DcaAnalyzer(
        compile_program(src), clock=zero, tiering=True
    ).analyze()
    result = report.loop("main.L0")
    assert result.verdict == "excluded-io"
    assert result.tier == TIER_SEQUENTIAL
    assert result.pipeline_plan is None


def test_tiering_off_leaves_tiers_unset(monkeypatch):
    monkeypatch.delenv("REPRO_TIERING", raising=False)
    report = DcaAnalyzer(compile_program(CURSOR), clock=zero).analyze()
    assert report.tiering is False
    assert all(r.tier is None for r in report.results.values())


def test_max_pipeline_stages_validated():
    with pytest.raises(ValueError):
        DcaAnalyzer(compile_program(CURSOR), max_pipeline_stages=1)


def test_max_pipeline_stages_bounds_plan():
    report = DcaAnalyzer(
        compile_program(CURSOR),
        clock=zero,
        tiering=True,
        max_pipeline_stages=2,
    ).analyze()
    plan = report.loop("main.L1").pipeline_plan
    assert plan is not None and len(plan["stages"]) == 2


def test_tier_counts_and_stage_timing():
    report = DcaAnalyzer(
        compile_program(CURSOR), clock=zero, tiering=True
    ).analyze()
    counts = report.tier_counts()
    assert sum(counts.values()) == len(report.results)
    assert "tiering" in report.stage_times_ms


# -- schema-2 serialization ---------------------------------------------------


def test_tiered_report_serializes_schema_2():
    report = DcaAnalyzer(
        compile_program(CURSOR), clock=zero, tiering=True
    ).analyze()
    data = report.to_dict()
    assert data["report_schema_version"] == REPORT_SCHEMA_VERSION
    assert "tier_counts" in data
    loop = data["loops"]["main.L1"]
    verdict = loop["verdict"]
    assert verdict["value"] == "non-commutative"
    assert verdict["tier"] == TIER_PIPELINE
    assert verdict["decided_by"] == loop["decided_by"]
    assert isinstance(verdict["used_specs"], bool)
    # Deprecated flat aliases survive for one release.
    assert "is_commutative" in loop
    assert "decided_by" in loop


def test_untiered_report_has_no_schema_marker():
    report = DcaAnalyzer(
        compile_program(CURSOR), clock=zero, tiering=False
    ).analyze()
    data = report.to_dict()
    assert "report_schema_version" not in data
    assert "tier_counts" not in data
    assert isinstance(data["loops"]["main.L1"]["verdict"], str)


def test_cache_payload_stays_schema_1():
    report = DcaAnalyzer(
        compile_program(CURSOR), clock=zero, tiering=True
    ).analyze()
    payload = report.loop("main.L1").to_payload()
    assert isinstance(payload["verdict"], str)
    assert "tier" not in payload


def test_summary_renders_tier_tags():
    report = DcaAnalyzer(
        compile_program(CURSOR), clock=zero, tiering=True
    ).analyze()
    text = report.summary()
    assert "[PIPELINE(stages=" in text


# -- fingerprint gating -------------------------------------------------------


def test_fingerprint_unchanged_when_tiering_off(monkeypatch):
    monkeypatch.delenv("REPRO_TIERING", raising=False)
    from repro.api import AnalysisConfig

    base = AnalysisConfig()
    off = AnalysisConfig(tiering=False)
    assert base.fingerprint() == off.fingerprint()


def test_fingerprint_changes_when_tiering_on(monkeypatch):
    monkeypatch.delenv("REPRO_TIERING", raising=False)
    from repro.api import AnalysisConfig

    base = AnalysisConfig()
    on = AnalysisConfig(tiering=True)
    assert base.fingerprint() != on.fingerprint()
    # ... and the stage bound participates once tiering is on.
    assert (
        AnalysisConfig(tiering=True, max_pipeline_stages=3).fingerprint()
        != on.fingerprint()
    )
    # ... but is inert while tiering is off.
    assert (
        AnalysisConfig(max_pipeline_stages=3).fingerprint()
        == base.fingerprint()
    )


def test_analyzer_fingerprint_matches_config(monkeypatch):
    monkeypatch.delenv("REPRO_TIERING", raising=False)
    from repro.api import AnalysisConfig

    module = compile_program(CURSOR)
    config = AnalysisConfig(tiering=True, specs=False)
    analyzer = DcaAnalyzer(
        compile_program(CURSOR), specs=False, tiering=True
    )
    assert analyzer.config_fingerprint() == config.fingerprint()


# -- executor integration -----------------------------------------------------


def test_simulator_uses_pipeline_plan():
    from repro.parallel import ParallelSimulator

    module = compile_program(CURSOR)
    report = DcaAnalyzer(
        compile_program(CURSOR), clock=zero, tiering=True
    ).analyze()
    plan = report.loop("main.L1").pipeline_plan
    sim = ParallelSimulator(module)
    speedup = sim.simulate(
        ["main.L1"],
        min_coverage=0.0,
        drop_unprofitable=False,
        pipeline_plans={"main.L1": plan},
    )
    detail = speedup.loops["main.L1"]
    assert detail.mode == "pipeline"
    assert "[pipeline]" in speedup.summary()


# -- deprecation shim ---------------------------------------------------------


def test_legacy_report_dict_flattens_schema_2():
    from repro.api import legacy_report_dict

    report = DcaAnalyzer(
        compile_program(CURSOR), clock=zero, tiering=True
    ).analyze()
    with pytest.warns(DeprecationWarning):
        flat = legacy_report_dict(report.to_dict())
    assert "report_schema_version" not in flat
    assert "tier_counts" not in flat
    assert flat["loops"]["main.L1"]["verdict"] == "non-commutative"
    # The flattened shape matches the schema-1 serialization, modulo the
    # extra "tiering" stage that only the tiered run times.
    untiered = DcaAnalyzer(
        compile_program(CURSOR), clock=zero, tiering=False
    ).analyze().to_dict()
    flat["metrics"].pop("stage_times_ms")
    untiered["metrics"].pop("stage_times_ms")
    assert flat == untiered
