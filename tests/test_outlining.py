"""Payload outlining tests: semantic preservation and shape restrictions."""

import pytest

from repro import compile_program, run_program
from repro.core.payload import OutlineError, outline_payload
from repro.ir.verify import verify_module


def outline_and_run(source, label, func_name="main"):
    """Outline a loop, verify the IR, and run the transformed program."""
    original = compile_program(source)
    _, expected = run_program(compile_program(source))
    module = compile_program(source)
    result = outline_payload(module, module.functions[func_name], label)
    verify_module(module)
    _, actual = run_program(module)
    return result, expected, actual


MAP_LOOP = """
func void main() {
  int[] a = new int[6];
  for (int i = 0; i < 6; i = i + 1) { a[i] = i * i; }
  int s = 0;
  for (int i = 0; i < 6; i = i + 1) { s = s + a[i]; }
  print(s);
}
"""


def test_outlined_map_preserves_semantics():
    result, expected, actual = outline_and_run(MAP_LOOP, "main.L0")
    assert actual == expected == "55\n"
    assert result.payload_func == "__payload_main_L0"


def test_outline_creates_payload_function_and_env_struct():
    module = compile_program(MAP_LOOP)
    result = outline_payload(module, module.functions["main"], "main.L0")
    assert result.payload_func in module.functions
    assert result.env_struct in module.structs
    payload = module.functions[result.payload_func]
    assert payload.params[0][1].struct_name == result.env_struct


def test_accumulator_routed_through_env():
    source = """
    func void main() {
      int s = 0;
      for (int i = 0; i < 5; i = i + 1) { s = s + i * i; }
      print(s);
    }
    """
    result, expected, actual = outline_and_run(source, "main.L0")
    assert actual == expected == "30\n"
    from repro.ir.instructions import Reg
    assert Reg("s") in result.output_regs


def test_conditional_payload_outlines():
    source = """
    func void main() {
      int[] a = new int[8];
      int n = 0;
      for (int i = 0; i < 8; i = i + 1) {
        if (i % 2 == 0) { a[i] = i; n = n + 1; }
      }
      print(n, a[4]);
    }
    """
    _result, expected, actual = outline_and_run(source, "main.L0")
    assert actual == expected == "4 4\n"


def test_payload_with_inner_loop_outlines():
    source = """
    func void main() {
      int total = 0;
      for (int i = 0; i < 4; i = i + 1) {
        int row = 0;
        for (int j = 0; j < 3; j = j + 1) { row = row + i * j; }
        total = total + row;
      }
      print(total);
    }
    """
    result, expected, actual = outline_and_run(source, "main.L0")
    assert actual == expected == "18\n"
    # The inner loop moved into the payload function.
    payload = "__payload_main_L0"


def test_plds_traversal_outlines():
    source = """
    struct Node { int val; Node* next; }
    func void main() {
      Node* head = null;
      for (int k = 0; k < 5; k = k + 1) {
        Node* n = new Node; n->val = k; n->next = head; head = n;
      }
      Node* p = head;
      while (p) { p->val = p->val * 2; p = p->next; }
      int s = 0;
      p = head;
      while (p) { s = s + p->val; p = p->next; }
      print(s);
    }
    """
    _result, expected, actual = outline_and_run(source, "main.L1")
    assert actual == expected == "20\n"


def test_empty_payload_raises():
    source = """
    func void main() {
      int i = 0;
      while (i < 5) { i = i + 1; }
      print(i);
    }
    """
    module = compile_program(source)
    with pytest.raises(OutlineError) as err:
        outline_payload(module, module.functions["main"], "main.L0")
    assert err.value.reason == "empty-payload"


def test_early_return_loop_outlines_via_exit_edge():
    # The return block lies outside the natural loop (it cannot reach the
    # latch), so a loop with an early return still outlines correctly.
    source = """
    func int f(int x) {
      int seen = 0;
      for (int i = 0; i < 5; i = i + 1) {
        seen = seen + 1;
        if (i == x) { return seen; }
      }
      return 0 - seen;
    }
    func void main() { print(f(3), f(9)); }
    """
    original = compile_program(source)
    _, expected = run_program(original)
    module = compile_program(source)
    outline_payload(module, module.functions["f"], "f.L0")
    verify_module(module)
    _, actual = run_program(module)
    assert actual == expected == "4 -5\n"


def test_unknown_loop_raises():
    module = compile_program(MAP_LOOP)
    with pytest.raises(OutlineError) as err:
        outline_payload(module, module.functions["main"], "main.L9")
    assert err.value.reason == "no-such-loop"


def test_outlining_twice_raises():
    module = compile_program(MAP_LOOP)
    outline_payload(module, module.functions["main"], "main.L0")
    with pytest.raises(OutlineError):
        outline_payload(module, module.functions["main"], "main.L0")


def test_multiple_exits_with_break_in_iterator():
    source = """
    func void main() {
      int[] a = new int[10];
      int limit = 7;
      for (int i = 0; i < 10; i = i + 1) {
        if (i == limit) { break; }
        a[i] = i + 1;
      }
      int s = 0;
      for (int i = 0; i < 10; i = i + 1) { s = s + a[i]; }
      print(s);
    }
    """
    _result, expected, actual = outline_and_run(source, "main.L0")
    assert actual == expected == "28\n"


def test_outline_keeps_other_loops_intact():
    module = compile_program(MAP_LOOP)
    outline_payload(module, module.functions["main"], "main.L0")
    assert "main.L1" in module.functions["main"].loops
