"""Interpreter semantics tests."""

import pytest

from repro import compile_program, run_program
from repro.interp import Interpreter, MiniCRuntimeError
from repro.interp.interpreter import _c_mod, _trunc_div


def run_main(body, decls=""):
    src = f"{decls}\nfunc void main() {{ {body} }}"
    _, out = run_program(src)
    return out


def test_print_formatting():
    out = run_main('print("x", 1, 1.5, true, false);')
    assert out == "x 1 1.5 true false\n"


def test_arithmetic_semantics():
    out = run_main("print(7 / 2, -7 / 2, 7 % 3, -7 % 3, 7 % -3);")
    assert out == "3 -3 1 -1 1\n"


def test_trunc_div_helper():
    assert _trunc_div(7, 2) == 3
    assert _trunc_div(-7, 2) == -3
    assert _trunc_div(7, -2) == -3
    assert _trunc_div(-7, -2) == 3
    assert _trunc_div(6, 3) == 2


def test_c_mod_helper():
    assert _c_mod(7, 3) == 1
    assert _c_mod(-7, 3) == -1
    assert _c_mod(7, -3) == 1
    assert _c_mod(-7, -3) == -1


def test_division_by_zero_is_catchable():
    with pytest.raises(MiniCRuntimeError):
        run_main("int x = 1 / 0;")
    with pytest.raises(MiniCRuntimeError):
        run_main("float x = 1.0 / 0.0;")


def test_float_arithmetic():
    out = run_main("float x = 1.0 / 4.0; print(x, x * 8.0);")
    assert out == "0.25 2\n"


def test_int_widening_in_mixed_expressions():
    out = run_main("float x = 1 + 0.5; print(x, 3 / 2.0);")
    assert out == "1.5 1.5\n"


def test_short_circuit_evaluation():
    # The right operand would fault if evaluated.
    out = run_main(
        "int[] a = new int[1]; int i = 5;"
        " if (i < 1 && a[i] == 0) { print(1); } else { print(2); }"
    )
    assert out == "2\n"
    out = run_main(
        "int[] a = new int[1]; int i = 5;"
        " if (i > 1 || a[i] == 0) { print(1); }"
    )
    assert out == "1\n"


def test_struct_fields_default_initialized():
    out = run_main(
        "N* p = new N; print(p->i, p->f, p->b, p->q == null);",
        decls="struct N { int i; float f; bool b; N* q; }",
    )
    assert out == "0 0 false true\n"


def test_array_default_initialized():
    out = run_main("int[] a = new int[3]; print(a[0], a[2], len(a));")
    assert out == "0 0 3\n"


def test_null_dereference_faults():
    with pytest.raises(MiniCRuntimeError, match="null"):
        run_main("N* p = null; p->v = 1;", decls="struct N { int v; }")


def test_out_of_bounds_faults():
    with pytest.raises(MiniCRuntimeError, match="out of bounds"):
        run_main("int[] a = new int[2]; a[2] = 1;")
    with pytest.raises(MiniCRuntimeError, match="out of bounds"):
        run_main("int[] a = new int[2]; int x = a[-1];")


def test_negative_array_length_faults():
    with pytest.raises(MiniCRuntimeError, match="negative"):
        run_main("int[] a = new int[0 - 3];")


def test_reference_equality_is_identity():
    out = run_main(
        "N* a = new N; N* b = new N; N* c = a;"
        " print(a == b, a == c, a != b);",
        decls="struct N { int v; }",
    )
    assert out == "false true true\n"


def test_while_with_break_and_continue():
    out = run_main(
        "int s = 0;"
        " for (int i = 0; i < 10; i = i + 1) {"
        "   if (i == 3) { continue; }"
        "   if (i == 6) { break; }"
        "   s = s + i;"
        " } print(s);"
    )
    assert out == "12\n"  # 0+1+2+4+5


def test_nested_loop_break_targets_innermost():
    out = run_main(
        "int n = 0;"
        " for (int i = 0; i < 3; i = i + 1) {"
        "   for (int j = 0; j < 10; j = j + 1) {"
        "     if (j == 2) { break; }"
        "     n = n + 1;"
        "   }"
        " } print(n);"
    )
    assert out == "6\n"


def test_recursion():
    src = """
    func int fib(int n) {
      if (n < 2) { return n; }
      return fib(n - 1) + fib(n - 2);
    }
    func void main() { print(fib(12)); }
    """
    _, out = run_program(src)
    assert out == "144\n"


def test_globals_read_write_across_functions():
    src = """
    int counter = 10;
    func void bump() { counter = counter + 5; }
    func void main() { bump(); bump(); print(counter); }
    """
    _, out = run_program(src)
    assert out == "20\n"


def test_entry_return_value():
    result, _ = run_program("func int main() { return 41 + 1; }")
    assert result == 42


def test_step_limit_enforced():
    module = compile_program("func void main() { while (true) { } }")
    interp = Interpreter(module, max_steps=1000)
    with pytest.raises(MiniCRuntimeError, match="step limit"):
        interp.run()


def test_math_builtins():
    out = run_main(
        "print(sqrt(9.0), abs(-4), abs(-1.5), min(2, 7), max(2.0, 7.0),"
        " to_int(3.9), to_float(2), floor(2.7));"
    )
    assert out == "3 4 1.5 2 7 3 2 2\n"


def test_pow_exp_log():
    out = run_main("print(pow(2.0, 10.0), log(exp(1.0)));")
    assert out == "1024 1\n"


def test_intrinsic_without_runtime_faults():
    from repro.ir.instructions import Intrinsic, Const
    module = compile_program("func void main() { }")
    entry = module.functions["main"].blocks["entry0"]
    entry.instrs.insert(0, Intrinsic(None, "rt_verify", [Const("x")]))
    with pytest.raises(MiniCRuntimeError, match="without a runtime"):
        Interpreter(module).run()


def test_arrays_of_arrays():
    out = run_main(
        "int[][] m = new int[][3];"
        " for (int i = 0; i < 3; i = i + 1) { m[i] = new int[2]; m[i][1] = i; }"
        " print(m[2][1], m[0][1]);"
    )
    assert out == "2 0\n"


def test_loop_context_tracking_events():
    from repro.interp.events import Observer

    class Recorder(Observer):
        wants_loops = True

        def __init__(self):
            self.events = []

        def on_loop_enter(self, label, invocation):
            self.events.append(("enter", label, invocation))

        def on_loop_iteration(self, label, invocation, iteration):
            self.events.append(("iter", label, iteration))

        def on_loop_exit(self, label, invocation):
            self.events.append(("exit", label, invocation))

    module = compile_program(
        "func void main() { for (int i = 0; i < 3; i = i + 1) { } }"
    )
    rec = Recorder()
    Interpreter(module, observers=[rec]).run()
    labels = [e for e in rec.events if e[0] == "enter"]
    iters = [e for e in rec.events if e[0] == "iter"]
    exits = [e for e in rec.events if e[0] == "exit"]
    assert labels == [("enter", "main.L0", 0)]
    assert [e[2] for e in iters] == [1, 2, 3]  # 3 back edges
    assert exits == [("exit", "main.L0", 0)]


def test_loop_invocation_counting():
    from repro.interp.events import Observer

    class Counter(Observer):
        wants_loops = True

        def __init__(self):
            self.invocations = []

        def on_loop_enter(self, label, invocation):
            if label == "main.L1":
                self.invocations.append(invocation)

    module = compile_program(
        "func void main() {"
        " for (int i = 0; i < 3; i = i + 1) {"
        "   for (int j = 0; j < 2; j = j + 1) { }"
        " } }"
    )
    counter = Counter()
    Interpreter(module, observers=[counter]).run()
    assert counter.invocations == [0, 1, 2]
