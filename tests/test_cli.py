"""CLI smoke tests."""

import json

import pytest

from repro.cli import main

PROGRAM = """
func void main() {
  int s = 0;
  for (int i = 0; i < 6; i = i + 1) { s += i; }
  print(s);
}
"""


@pytest.fixture()
def program_file(tmp_path):
    path = tmp_path / "prog.mc"
    path.write_text(PROGRAM)
    return str(path)


def test_cli_run(program_file, capsys):
    assert main(["run", program_file]) == 0
    assert "15" in capsys.readouterr().out


def test_cli_ir(program_file, capsys):
    assert main(["ir", program_file]) == 0
    out = capsys.readouterr().out
    assert "func main" in out
    assert "; loop main.L0" in out


def test_cli_analyze(program_file, capsys):
    assert main(["analyze", program_file]) == 0
    out = capsys.readouterr().out
    assert "main.L0: commutative" in out
    assert "1/1 loops commutative" in out


def test_cli_analyze_with_cores(program_file, capsys):
    assert main(["analyze", program_file, "--cores", "4"]) == 0
    assert "Simulated on 4 cores" in capsys.readouterr().out


def test_cli_analyze_reports_hit_rate(program_file, capsys):
    assert main(["analyze", program_file]) == 0
    assert "static pre-screen: decided 1/1" in capsys.readouterr().out


def test_cli_analyze_no_static_filter(program_file, capsys):
    assert main(["analyze", program_file, "--no-static-filter"]) == 0
    out = capsys.readouterr().out
    assert "main.L0: commutative" in out
    assert "static pre-screen: disabled" in out


def test_cli_analyze_json(program_file, capsys):
    assert main(["analyze", program_file, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    loop = payload["loops"]["main.L0"]
    # Schema 1 serializes the verdict as a flat string; schema 2 (when
    # REPRO_TIERING is set in the environment) nests it in an object.
    verdict = loop["verdict"]
    if isinstance(verdict, dict):
        verdict = verdict["value"]
    assert verdict == "commutative"
    assert loop["decided_by"] == "static"
    assert payload["static_filter"] is True


def test_cli_analyze_json_metrics_section(program_file, capsys):
    assert main(["analyze", program_file, "--json"]) == 0
    metrics = json.loads(capsys.readouterr().out)["metrics"]
    assert metrics["schedule_executions"] == 0  # statically decided
    assert metrics["interp_instructions"] > 0
    assert metrics["snapshot_bytes"] >= 0
    assert set(metrics["stage_times_ms"]) >= {"selection", "static", "golden"}
    assert metrics["schedule_executions_saved_static"] > 0


def test_cli_analyze_json_metrics_unfiltered(program_file, capsys):
    assert main(["analyze", program_file, "--json", "--no-static-filter"]) == 0
    payload = json.loads(capsys.readouterr().out)
    metrics = payload["metrics"]
    assert metrics["schedule_executions"] > 0
    assert metrics["snapshot_bytes"] > 0
    assert metrics["verify_comparisons"] > 0
    loop = payload["loops"]["main.L0"]
    assert loop["cost"]["schedule_executions"] == metrics["schedule_executions"]
    assert loop["cost"]["interp_instructions"] > 0
    assert loop["cost"]["schedule_times_ms"]


def test_cli_analyze_text_shows_pipeline_cost(program_file, capsys):
    assert main(["analyze", program_file]) == 0
    out = capsys.readouterr().out
    assert "pipeline cost:" in out
    assert "interpreted instructions" in out
    assert "stages:" in out


def test_cli_analyze_tiering_flag(program_file, capsys):
    assert main(["analyze", program_file, "--tiering"]) == 0
    out = capsys.readouterr().out
    assert "tiers:" in out
    assert "DOALL" in out or "REDUCTION" in out


def test_cli_analyze_tiering_env(program_file, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_TIERING", "1")
    assert main(["analyze", program_file]) == 0
    assert "tiers:" in capsys.readouterr().out


def test_cli_no_tiering_flag_beats_env(program_file, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_TIERING", "1")
    assert main(["analyze", program_file, "--no-tiering"]) == 0
    assert "tiers:" not in capsys.readouterr().out


def test_cli_tiering_off_by_default(program_file, capsys, monkeypatch):
    monkeypatch.delenv("REPRO_TIERING", raising=False)
    assert main(["analyze", program_file]) == 0
    assert "tiers:" not in capsys.readouterr().out


def test_cli_analyze_json_tiered_schema(program_file, capsys):
    assert main(["analyze", program_file, "--tiering", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["report_schema_version"] == 2
    loop = payload["loops"]["main.L0"]
    assert loop["verdict"]["value"] == "commutative"
    assert loop["verdict"]["tier"] in ("DOALL", "REDUCTION")


def test_cli_detect(program_file, capsys):
    assert main(["detect", program_file]) == 0
    out = capsys.readouterr().out
    assert "dep-prof" in out
    assert "commutative" in out


def test_cli_detect_json(program_file, capsys):
    assert main(["detect", program_file, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["dca"]["loops"]["main.L0"]["is_commutative"] is True
    assert "dep-profiling" in payload["baselines"]


def test_cli_detect_json_has_metrics_and_costs(program_file, capsys):
    assert main(["detect", program_file, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    metrics = payload["dca"]["metrics"]
    assert metrics["interp_instructions"] > 0
    assert "stage_times_ms" in metrics
    costs = payload["costs"]
    assert costs["profile"]["executions"] == 1
    assert costs["profile"]["instructions"] > 0
    assert "dep-profiling" in costs


def test_cli_lint(program_file, capsys):
    assert main(["lint", program_file]) == 0
    out = capsys.readouterr().out
    assert "DCA-SAFE" in out
    assert "1 loops" in out


def test_cli_lint_json(program_file, capsys):
    assert main(["lint", program_file, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"]["info"] == 1


def test_cli_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])
