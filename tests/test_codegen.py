"""Python-source codegen execution backend: parity with the interpreter.

Same contract as the closure backend (tests/test_compiler.py) — exact
observable equivalence: results, printed output, step accounting, and
byte-identical fault messages — plus the codegen-only surface: the
on-disk artifact cache (warm loads, tamper detection) and pickling of
codegen tasks into process workers.
"""

import glob
import json
import os

import pytest

from repro.core.dca import DcaAnalyzer
from repro.driver import compile_program, run_program
from repro.interp import (
    CodegenExecutor,
    CompileError,
    Interpreter,
    MiniCRuntimeError,
    compile_module_codegen,
    create_executor,
    module_digest,
    resolve_exec_backend,
)
from repro.interp.codegen import (
    CODEGEN_CACHE_ENV,
    _artifact_path,
    codegen_source,
    codegen_stats,
    resolve_codegen_cache_dir,
)
from repro.interp.compiler import EXEC_BACKEND_ENV, EXEC_BACKENDS
from repro.interp.events import Observer
from repro.interp.profiler import Profiler

from test_compiler import FAULT_PROGRAMS

CORPUS = sorted(
    glob.glob(
        os.path.join(os.path.dirname(__file__), "fuzz", "corpus", "*.mc")
    )
)


def _zero():
    return 0.0


def _outcome(executor, entry, args):
    try:
        result = executor.run(entry, args)
        return ("ok", result, executor.output_text(), executor.steps)
    except MiniCRuntimeError as exc:
        return ("fault", str(exc), executor.output_text(), executor.steps)


def assert_parity(source, entry="main", args=None, max_steps=None):
    module = compile_program(source)
    interp = Interpreter(module, max_steps=max_steps)
    codegen = CodegenExecutor(module, max_steps=max_steps)
    oi = _outcome(interp, entry, list(args or []))
    oc = _outcome(codegen, entry, list(args or []))
    assert oi == oc, f"backend divergence:\ninterp  {oi}\ncodegen {oc}"
    return oi


# -- result / output / step / fault parity -----------------------------------


def test_arithmetic_parity():
    kind, result, out, steps = assert_parity(
        """
        func int main() {
            int acc = 0;
            for (int i = 0; i < 10; i = i + 1) { acc = acc + i * i; }
            print(acc, 7 / 2, -7 / 2, 7 % 3, -7 % 3, 1.0 / 4.0);
            return acc;
        }
        """
    )
    assert kind == "ok" and result == 285


def test_call_chain_step_parity():
    src = """
    func int leaf(int x) { return x * 3 + 1; }
    func int mid(int x) { return leaf(x) + leaf(x - 1); }
    func int main() {
        int acc = 0;
        for (int i = 0; i < 20; i = i + 1) { acc = acc + mid(i); }
        return acc;
    }
    """
    module = compile_program(src)
    interp = Interpreter(module)
    codegen = CodegenExecutor(module)
    assert interp.run("main", []) == codegen.run("main", [])
    assert interp.steps == codegen.steps


@pytest.mark.parametrize(
    "source", [p[1] for p in FAULT_PROGRAMS], ids=[p[0] for p in FAULT_PROGRAMS]
)
def test_fault_message_parity(source):
    kind, message, _out, _steps = assert_parity(source)
    assert kind == "fault"


def test_fault_messages_include_line_numbers():
    src = "struct P { int x; }\nfunc int main() { P* p = null;\n    return p.x; }"
    kind, message, _o, _s = assert_parity(src)
    assert kind == "fault"
    assert "null dereference reading .x (line 3)" == message


def test_undefined_register_message_parity():
    # A loop body that reads a register only written on a path the
    # schedule never took surfaces as the interpreter's undefined-read
    # fault; codegen maps the natural UnboundLocalError back to the
    # same message.
    src = """
    func int main() {
        int acc = 0;
        for (int i = 0; i < 4; i = i + 1) {
            int v = 0;
            if (i > 1) { v = i; }
            acc = acc + v;
        }
        return acc;
    }
    """
    assert_parity(src)


def test_step_limit_fires_at_same_step():
    src = """
    func int main() {
        int acc = 0;
        for (int i = 0; i < 100; i = i + 1) { acc = acc + 1; }
        return acc;
    }
    """
    module = compile_program(src)
    baseline = Interpreter(module)
    baseline.run("main", [])
    for budget in (baseline.steps - 1, baseline.steps // 2, 7):
        oi = _outcome(Interpreter(module, max_steps=budget), "main", [])
        oc = _outcome(CodegenExecutor(module, max_steps=budget), "main", [])
        assert oi == oc
        assert oi[0] == "fault" and oi[1] == "step limit exceeded"


def test_step_limit_exhausts_mid_nested_loop():
    # The step_burner fuzz archetype shape: a nested busy loop where a
    # small budget dies mid-inner-loop; interp and codegen must agree on
    # the exact step count at the fault.
    src = """
    func int main() {
        int acc = 0;
        for (int i = 0; i < 12; i = i + 1) {
            int t = 0;
            while (t < 15) { acc = acc + (t * i) % 7; t = t + 1; }
        }
        return acc;
    }
    """
    for budget in (11, 50, 333):
        assert_parity(src, max_steps=budget)


def test_missing_entry_and_arity_messages():
    src = "func int add(int a, int b) { return a + b; }"
    module = compile_program(src)
    for make in (lambda: Interpreter(module), lambda: CodegenExecutor(module)):
        with pytest.raises(MiniCRuntimeError, match=r"no function named 'nope'"):
            make().run("nope", [])
        with pytest.raises(MiniCRuntimeError, match=r"add expects 2 args, got 1"):
            make().run("add", [1])
    assert Interpreter(module).run("add", [2, 3]) == CodegenExecutor(
        module
    ).run("add", [2, 3])


# -- backend selection seam --------------------------------------------------


def test_codegen_in_exec_backends():
    assert "codegen" in EXEC_BACKENDS


def test_resolve_exec_backend_codegen(monkeypatch):
    monkeypatch.delenv(EXEC_BACKEND_ENV, raising=False)
    assert resolve_exec_backend("codegen") == "codegen"
    monkeypatch.setenv(EXEC_BACKEND_ENV, "codegen")
    assert resolve_exec_backend(None) == "codegen"
    # Explicit flag beats the env var for every backend.
    for explicit in EXEC_BACKENDS:
        assert resolve_exec_backend(explicit) == explicit


def test_create_executor_codegen_and_fallback():
    module = compile_program("func int main() { return 41 + 1; }")
    codegen = create_executor(module, exec_backend="codegen")
    assert isinstance(codegen, CodegenExecutor)
    assert codegen.run("main", []) == 42
    # Observers, profilers, and enabled obs need the interpreter's event
    # stream: codegen falls back exactly like the closure backend.
    assert isinstance(
        create_executor(module, observers=[Observer()], exec_backend="codegen"),
        Interpreter,
    )
    assert isinstance(
        create_executor(module, profiler=Profiler(), exec_backend="codegen"),
        Interpreter,
    )
    assert isinstance(
        create_executor(module, exec_backend="codegen", obs_enabled=True),
        Interpreter,
    )


def test_run_program_codegen_backend():
    src = 'func void main() { print("hi", 1 + 1); }'
    assert run_program(src, exec_backend="codegen") == (None, "hi 2\n")


# -- disk artifact cache -----------------------------------------------------


def _fresh(src):
    """A fresh Module object (new id) for the same source text."""
    return compile_program(src)


SRC = """
func int main() {
    int acc = 0;
    for (int i = 0; i < 9; i = i + 1) { acc = acc + i * 2; }
    print(acc);
    return acc;
}
"""


def test_disk_cache_cold_then_warm(tmp_path):
    cache_dir = str(tmp_path)
    before = dict(codegen_stats())
    compile_module_codegen(_fresh(SRC), cache_dir=cache_dir)
    mid = dict(codegen_stats())
    assert mid["compiles"] - before["compiles"] == 1
    assert mid["disk_misses"] - before["disk_misses"] == 1
    digest = module_digest(_fresh(SRC))
    assert os.path.exists(_artifact_path(cache_dir, digest))

    # A fresh module object defeats the id-keyed memo; the digest-keyed
    # artifact must serve the compile.
    program = compile_module_codegen(_fresh(SRC), cache_dir=cache_dir)
    after = dict(codegen_stats())
    assert after["compiles"] == mid["compiles"]
    assert after["disk_hits"] - mid["disk_hits"] == 1
    executor = CodegenExecutor(program)
    assert executor.run("main", []) == 72
    assert executor.output_text() == "72\n"


def test_disk_cache_env_resolution(tmp_path, monkeypatch):
    monkeypatch.setenv(CODEGEN_CACHE_ENV, str(tmp_path / "fromenv"))
    assert resolve_codegen_cache_dir(None) == str(tmp_path / "fromenv")
    # Explicit argument beats the env; empty string disables.
    assert resolve_codegen_cache_dir(str(tmp_path / "arg")) == str(
        tmp_path / "arg"
    )
    assert resolve_codegen_cache_dir("") is None
    monkeypatch.delenv(CODEGEN_CACHE_ENV, raising=False)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "base"))
    assert resolve_codegen_cache_dir(None) == str(tmp_path / "base" / "codegen")
    monkeypatch.setenv("REPRO_CACHE_DIR", "")
    assert resolve_codegen_cache_dir(None) is None


@pytest.mark.parametrize(
    "tamper",
    ["flip-payload", "truncate", "garbage", "wrong-magic"],
)
def test_disk_cache_tamper_recompiles_never_wrong(tmp_path, tamper):
    cache_dir = str(tmp_path)
    compile_module_codegen(_fresh(SRC), cache_dir=cache_dir)
    digest = module_digest(_fresh(SRC))
    path = _artifact_path(cache_dir, digest)
    blob = open(path, "rb").read()
    if tamper == "flip-payload":
        corrupted = blob[:-3] + bytes([blob[-3] ^ 0xFF]) + blob[-2:]
    elif tamper == "truncate":
        corrupted = blob[: len(blob) // 2]
    elif tamper == "garbage":
        corrupted = b"\x00" * len(blob)
    else:
        corrupted = b"XXXX" + blob[4:]
    with open(path, "wb") as fh:
        fh.write(corrupted)

    before = dict(codegen_stats())
    program = compile_module_codegen(_fresh(SRC), cache_dir=cache_dir)
    after = dict(codegen_stats())
    # The corrupt artifact is rejected (a miss, never an exception or a
    # wrong program) and the module recompiles from source.
    assert after["compiles"] - before["compiles"] == 1
    assert after["disk_misses"] - before["disk_misses"] == 1
    executor = CodegenExecutor(program)
    assert executor.run("main", []) == 72
    assert executor.output_text() == "72\n"
    # The rewrite repaired the artifact for the next cold process.
    assert open(path, "rb").read() == blob


def test_codegen_source_is_deterministic():
    a = codegen_source(compile_program(SRC))
    b = codegen_source(compile_program(SRC))
    assert a == b
    assert "def _fn_0_main" in a


def test_compile_error_for_unknown_shape():
    class Bogus:
        pass

    module = compile_program(SRC)
    module.functions["main"].blocks[
        module.functions["main"].entry
    ].instrs.insert(0, Bogus())
    with pytest.raises(CompileError):
        compile_module_codegen(module, cache_dir="")


# -- analyzer integration ----------------------------------------------------


def test_codegen_analyzer_report_matches_interp():
    src = """
    func int main() {
        int[] data = new int[16];
        int acc = 0;
        for (int i = 0; i < len(data); i = i + 1) { data[i] = i * 3; }
        for (int i = 0; i < len(data); i = i + 1) { acc = acc + data[i]; }
        print(acc);
        return acc;
    }
    """
    ri = DcaAnalyzer(
        compile_program(src), static_filter=False, clock=_zero,
        exec_backend="interp",
    ).analyze()
    rc = DcaAnalyzer(
        compile_program(src), static_filter=False, clock=_zero,
        exec_backend="codegen",
    ).analyze()
    assert ri.to_json() == rc.to_json()
    assert rc.exec_backend == "codegen"


def test_codegen_pickles_into_process_workers():
    # Process workers receive the module as a pickled blob and compile
    # codegen programs worker-side; the report must match serial interp.
    src = open(CORPUS[0]).read()
    serial = DcaAnalyzer(
        compile_program(src), static_filter=False, clock=_zero,
        backend="serial", exec_backend="interp",
    ).analyze()
    process = DcaAnalyzer(
        compile_program(src), static_filter=False, clock=_zero,
        backend="process", jobs=2, exec_backend="codegen",
    ).analyze()
    assert serial.to_json() == process.to_json()


def test_corpus_warm_disk_replay_byte_identical(tmp_path, monkeypatch):
    # Corpus program, cold then warm artifact cache: the warm analysis
    # compiles zero modules and its report stays byte-identical to the
    # interpreter's.
    monkeypatch.setenv(CODEGEN_CACHE_ENV, str(tmp_path))
    path = next(p for p in CORPUS if "permuted_fault" in p)
    src = open(path).read()
    interp = DcaAnalyzer(
        compile_program(src), static_filter=False, clock=_zero,
        exec_backend="interp",
    ).analyze()
    cold = DcaAnalyzer(
        compile_program(src), static_filter=False, clock=_zero,
        exec_backend="codegen",
    ).analyze()
    before = dict(codegen_stats())
    warm = DcaAnalyzer(
        compile_program(src), static_filter=False, clock=_zero,
        exec_backend="codegen",
    ).analyze()
    after = dict(codegen_stats())
    assert interp.to_json() == cold.to_json() == warm.to_json()
    assert after["compiles"] == before["compiles"]
    assert after["disk_hits"] > before["disk_hits"]


def test_profile_falls_back_to_interp_on_corpus_program():
    # --profile needs the interpreter's event stream; with the codegen
    # backend requested the session must still produce correct verdicts
    # (execution falls back, analysis does not degrade).
    import repro.obs as obs
    from repro.api import AnalysisConfig, AnalysisSession

    path = CORPUS[0]
    src = open(path).read()
    with open(path.replace(".mc", ".expect.json")) as fh:
        expected = json.load(fh)
    config = AnalysisConfig(
        static_filter=False, exec_backend="codegen", obs=True,
        cache_mode="off",
    )
    try:
        with AnalysisSession(config) as session:
            report, _ctx = session.profile(src)
    finally:
        obs.disable()
    got = {label: report.results[label].verdict for label in report.results}
    assert got == expected
