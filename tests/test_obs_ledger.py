"""Run-ledger tests: recording, trends, regression checks, `repro stats`.

The CI-facing acceptance criterion lives here: after injecting a
synthetic regression into a ledger, ``repro stats`` must exit nonzero
and name the regressed series.
"""

import json

import pytest

from repro.cli import main
from repro.obs.ledger import (
    LEDGER_DIR_ENV,
    RunLedger,
    resolve_ledger_dir,
)

PROGRAM = """
func void main() {
  int s = 0;
  for (int i = 0; i < 5; i = i + 1) { s += i; }
  print(s);
}
"""


class FakeClock:
    def __init__(self):
        self.now = 1_000.0

    def __call__(self):
        self.now += 1.0
        return self.now


def make_ledger(tmp_path):
    return RunLedger(str(tmp_path / "ledger"), clock=FakeClock())


def record_run(ledger, wall_ms=10.0, saved=20, **kw):
    defaults = dict(
        kind="analyze", program="prog.mc", fingerprint="fp0",
        schedule_executions=5, cache_hits=3, cache_misses=1,
        verdicts={"commutative": 2}, stage_times={"static": 4.0},
    )
    defaults.update(kw)
    return ledger.record(wall_ms=wall_ms, executions_saved=saved, **defaults)


# -- recording and reading -----------------------------------------------------


def test_record_and_read_round_trip(tmp_path):
    with make_ledger(tmp_path) as ledger:
        run_id = record_run(ledger, extra={"note": "first"})
        (row,) = ledger.runs()
    assert row["run_id"] == run_id
    assert row["kind"] == "analyze"
    assert row["verdicts"] == {"commutative": 2}
    assert row["stage_times"] == {"static": 4.0}
    assert row["extra"] == {"note": "first"}
    assert row["cache_hit_rate"] == pytest.approx(0.75)


def test_rows_append_only_and_filterable(tmp_path):
    with make_ledger(tmp_path) as ledger:
        record_run(ledger, kind="analyze")
        record_run(ledger, kind="detect")
        record_run(ledger, kind="analyze", program="other.mc")
        assert len(ledger.runs()) == 3
        assert len(ledger.runs(kind="analyze")) == 2
        assert len(ledger.runs(program="other.mc")) == 1
        rows = ledger.runs(limit=2)
        assert [r["run_id"] for r in rows] == [1, 2]


def test_series_split_by_fingerprint(tmp_path):
    with make_ledger(tmp_path) as ledger:
        record_run(ledger, fingerprint="fpA")
        record_run(ledger, fingerprint="fpA")
        record_run(ledger, fingerprint="fpB")
        series = ledger.series()
    assert [(s["fingerprint"], s["runs"]) for s in series] == [
        ("fpA", 2), ("fpB", 1)
    ]


def test_ledger_persists_across_handles(tmp_path):
    with make_ledger(tmp_path) as ledger:
        record_run(ledger)
    with RunLedger(str(tmp_path / "ledger")) as reopened:
        assert len(reopened.runs()) == 1


def test_resolve_ledger_dir_precedence(tmp_path, monkeypatch):
    monkeypatch.delenv(LEDGER_DIR_ENV, raising=False)
    assert resolve_ledger_dir(None) is None
    monkeypatch.setenv(LEDGER_DIR_ENV, str(tmp_path))
    assert resolve_ledger_dir(None) == str(tmp_path)
    assert resolve_ledger_dir("/explicit") == "/explicit"


# -- trends and regressions ----------------------------------------------------


def test_trends_against_rolling_median(tmp_path):
    with make_ledger(tmp_path) as ledger:
        for wall in (10.0, 12.0, 14.0):
            record_run(ledger, wall_ms=wall)
        record_run(ledger, wall_ms=24.0)
        (trend,) = ledger.trends()
    assert trend["runs"] == 4
    assert trend["median_wall_ms"] == pytest.approx(12.0)
    assert trend["wall_ms_delta_pct"] == pytest.approx(100.0)


def test_single_run_cannot_regress(tmp_path):
    with make_ledger(tmp_path) as ledger:
        record_run(ledger, wall_ms=1e6, saved=0)
        assert ledger.check_regressions() == []


def test_wall_time_regression_flagged(tmp_path):
    with make_ledger(tmp_path) as ledger:
        for _ in range(3):
            record_run(ledger, wall_ms=10.0)
        record_run(ledger, wall_ms=15.0)
        (reg,) = ledger.check_regressions(threshold_pct=20.0)
        assert "wall time rose" in reg["reasons"][0]
        # A looser threshold accepts the same data.
        assert ledger.check_regressions(threshold_pct=60.0) == []


def test_executions_saved_drop_flagged(tmp_path):
    with make_ledger(tmp_path) as ledger:
        for _ in range(3):
            record_run(ledger, saved=20)
        record_run(ledger, saved=5)
        (reg,) = ledger.check_regressions(threshold_pct=20.0)
    assert "executions saved dropped" in reg["reasons"][0]


def test_zero_median_saved_is_not_a_regression(tmp_path):
    with make_ledger(tmp_path) as ledger:
        for _ in range(3):
            record_run(ledger, saved=0)
        record_run(ledger, saved=0)
        assert ledger.check_regressions() == []


def test_window_bounds_the_median(tmp_path):
    with make_ledger(tmp_path) as ledger:
        # Ancient slow runs must not mask a recent regression.
        for _ in range(5):
            record_run(ledger, wall_ms=100.0)
        for _ in range(5):
            record_run(ledger, wall_ms=10.0)
        record_run(ledger, wall_ms=20.0)
        assert ledger.check_regressions(threshold_pct=50.0, window=5)
        assert not ledger.check_regressions(threshold_pct=50.0, window=10)


# -- tier counts (ledger schema v2) -------------------------------------------


def test_tiers_round_trip(tmp_path):
    with make_ledger(tmp_path) as ledger:
        record_run(ledger, tiers={"DOALL": 2, "PIPELINE": 1})
        (row,) = ledger.runs()
    assert row["tiers"] == {"DOALL": 2, "PIPELINE": 1}


def test_tiers_default_empty(tmp_path):
    with make_ledger(tmp_path) as ledger:
        record_run(ledger)
        (row,) = ledger.runs()
    assert row["tiers"] == {}


def test_trends_surface_latest_tiers(tmp_path):
    with make_ledger(tmp_path) as ledger:
        record_run(ledger, tiers={"DOALL": 1})
        record_run(ledger, tiers={"DOALL": 1, "PIPELINE": 2})
        (trend,) = ledger.trends()
    assert trend["latest_tiers"] == {"DOALL": 1, "PIPELINE": 2}


def test_v1_ledger_migrates_in_place(tmp_path):
    # Build a schema-v1 database by hand (no tiers column), then reopen
    # it through RunLedger: the ALTER TABLE migration must add the
    # column without touching the existing rows.
    import sqlite3

    from repro.obs.ledger import LEDGER_DB_NAME

    directory = tmp_path / "ledger"
    directory.mkdir()
    conn = sqlite3.connect(str(directory / LEDGER_DB_NAME))
    conn.executescript("""
        CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT NOT NULL);
        CREATE TABLE runs (
            run_id INTEGER PRIMARY KEY AUTOINCREMENT,
            recorded_at REAL NOT NULL,
            kind TEXT NOT NULL,
            program TEXT NOT NULL,
            fingerprint TEXT NOT NULL,
            wall_ms REAL NOT NULL,
            schedule_executions INTEGER NOT NULL DEFAULT 0,
            executions_saved INTEGER NOT NULL DEFAULT 0,
            cache_hits INTEGER NOT NULL DEFAULT 0,
            cache_misses INTEGER NOT NULL DEFAULT 0,
            verdicts TEXT NOT NULL DEFAULT '{}',
            stage_times TEXT NOT NULL DEFAULT '{}',
            extra TEXT
        );
        CREATE INDEX runs_series
            ON runs (kind, program, fingerprint, run_id);
        INSERT INTO meta (key, value) VALUES ('schema_version', '1');
        INSERT INTO runs (recorded_at, kind, program, fingerprint, wall_ms,
                          verdicts)
            VALUES (1.0, 'analyze', 'old.mc', 'fp0', 5.0,
                    '{"commutative": 1}');
    """)
    conn.commit()
    conn.close()

    with RunLedger(str(directory), clock=FakeClock()) as ledger:
        rows = ledger.runs()
        assert len(rows) == 1
        assert rows[0]["verdicts"] == {"commutative": 1}
        assert rows[0]["tiers"] == {}  # backfilled default
        record_run(ledger, tiers={"SEQUENTIAL": 1})
        rows = ledger.runs()
    assert rows[1]["tiers"] == {"SEQUENTIAL": 1}


def test_session_records_tier_counts(tmp_path):
    from repro.api import AnalysisConfig, AnalysisSession

    source = PROGRAM
    ledger_dir = str(tmp_path / "ledger")
    with AnalysisSession(
        AnalysisConfig(ledger_dir=ledger_dir, tiering=True)
    ) as session:
        session.analyze(source, source_path="prog.mc")
    with AnalysisSession(
        AnalysisConfig(ledger_dir=ledger_dir, tiering=False)
    ) as session:
        session.analyze(source, source_path="prog.mc")
    with RunLedger(ledger_dir) as ledger:
        tiered, untiered = ledger.runs()
    assert sum(tiered["tiers"].values()) == sum(
        tiered["verdicts"].values()
    )
    assert untiered["tiers"] == {}


# -- session integration -------------------------------------------------------


@pytest.fixture()
def program_file(tmp_path):
    path = tmp_path / "prog.mc"
    path.write_text(PROGRAM)
    return str(path)


def test_session_records_analyze_runs(program_file, tmp_path):
    from repro.api import AnalysisConfig, AnalysisSession

    ledger_dir = str(tmp_path / "ledger")
    config = AnalysisConfig(ledger_dir=ledger_dir)
    for _ in range(2):
        with AnalysisSession(config) as session:
            session.analyze(open(program_file).read(),
                            source_path=program_file)
    with RunLedger(ledger_dir) as ledger:
        rows = ledger.runs()
    assert len(rows) == 2
    for row in rows:
        assert row["kind"] == "analyze"
        assert row["program"] == program_file
        assert row["fingerprint"] == config.fingerprint()
        assert row["wall_ms"] > 0
        assert row["verdicts"]


def test_ledger_off_sentinel_beats_env(program_file, tmp_path, monkeypatch):
    from repro.api import AnalysisConfig, AnalysisSession

    ledger_dir = tmp_path / "ledger"
    monkeypatch.setenv(LEDGER_DIR_ENV, str(ledger_dir))
    with AnalysisSession(AnalysisConfig(ledger_dir="off")) as session:
        session.analyze(open(program_file).read(), source_path=program_file)
    assert not ledger_dir.exists()


def test_ledger_dir_not_in_fingerprint(tmp_path):
    from repro.api import AnalysisConfig

    base = AnalysisConfig()
    assert base.fingerprint() == AnalysisConfig(
        ledger_dir=str(tmp_path)
    ).fingerprint()


# -- repro stats CLI -----------------------------------------------------------


def test_stats_no_ledger_exits_2(monkeypatch, capsys):
    monkeypatch.delenv(LEDGER_DIR_ENV, raising=False)
    assert main(["stats"]) == 2
    assert "no ledger" in capsys.readouterr().err


def test_stats_empty_ledger_exits_0(tmp_path, capsys):
    ledger_dir = str(tmp_path / "ledger")
    RunLedger(ledger_dir).close()
    assert main(["stats", "--ledger", ledger_dir]) == 0
    assert "no runs recorded" in capsys.readouterr().out


def test_stats_healthy_ledger_exits_0(tmp_path, capsys):
    ledger_dir = str(tmp_path / "ledger")
    with RunLedger(ledger_dir, clock=FakeClock()) as ledger:
        for _ in range(4):
            record_run(ledger, wall_ms=10.0)
    assert main(["stats", "--ledger", ledger_dir]) == 0
    out = capsys.readouterr().out
    assert "prog.mc" in out
    assert "no regressions" in out


def test_stats_renders_tier_column(tmp_path, capsys):
    ledger_dir = str(tmp_path / "ledger")
    with RunLedger(ledger_dir, clock=FakeClock()) as ledger:
        record_run(ledger, tiers={"DOALL": 2, "PIPELINE": 1})
        record_run(ledger, program="plain.mc")  # no tiers recorded
    assert main(["stats", "--ledger", ledger_dir]) == 0
    out = capsys.readouterr().out
    assert "tiers" in out  # column header
    assert "DOALL=2 PIPELINE=1" in out
    assert "-" in out  # untiered series placeholder


def test_stats_exits_1_on_injected_regression(tmp_path, capsys):
    ledger_dir = str(tmp_path / "ledger")
    with RunLedger(ledger_dir, clock=FakeClock()) as ledger:
        for _ in range(4):
            record_run(ledger, wall_ms=10.0, saved=20)
        # Synthetic regression: 3x wall time, saved work gone.
        record_run(ledger, wall_ms=30.0, saved=0)
    assert main(["stats", "--ledger", ledger_dir]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION analyze prog.mc" in out


def test_stats_json_reports_trends_and_regressions(tmp_path, capsys):
    ledger_dir = str(tmp_path / "ledger")
    with RunLedger(ledger_dir, clock=FakeClock()) as ledger:
        for _ in range(4):
            record_run(ledger, wall_ms=10.0)
        record_run(ledger, wall_ms=50.0)
    assert main(["stats", "--ledger", ledger_dir, "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["trends"]
    assert payload["regressions"][0]["reasons"]


def test_stats_threshold_flag_loosens_check(tmp_path, capsys):
    ledger_dir = str(tmp_path / "ledger")
    with RunLedger(ledger_dir, clock=FakeClock()) as ledger:
        for _ in range(4):
            record_run(ledger, wall_ms=10.0)
        record_run(ledger, wall_ms=14.0)
    assert main(["stats", "--ledger", ledger_dir, "--threshold", "20"]) == 1
    capsys.readouterr()
    assert main(["stats", "--ledger", ledger_dir, "--threshold", "80"]) == 0
