"""Persistent, content-addressed analysis cache (sqlite3, stdlib-only).

The store memoizes per-loop DCA verdicts — the full
:class:`~repro.core.report.LoopResult` payload plus the loop's
contribution to report-level accounting — keyed by
``(module digest, loop id, config fingerprint)`` (see
:mod:`repro.cache.keys`).  Layout::

    <cache dir>/dca-cache.sqlite
        meta          schema + semantics version, purge counters
        entries       the memoized payloads (JSON), usage accounting
        fingerprints  fingerprint -> canonical config description
        modules       module digest -> source provenance (for `verify`)

Properties the rest of the pipeline relies on:

* **Byte-faithful payloads.**  ``payload`` is JSON whose floats
  round-trip exactly; a warm replay reconstructs the cold run's
  ``LoopResult`` bit-for-bit (enforced by ``tests/test_cache.py`` and
  ``benchmarks/test_cache_warm_speedup.py``).
* **Self-invalidation.**  The fingerprint is part of the key, so any
  config change is an automatic miss; such stale-sibling misses are
  counted as *invalidations*.  A :data:`~repro.cache.keys.SEMANTICS_VERSION`
  mismatch purges the whole store on open.
* **Multi-process safety.**  Batch workers open their own connections;
  writes are short transactions under a generous busy timeout (WAL when
  the filesystem allows it).
* **Multi-thread safety.**  One handle may be shared across threads —
  the serving daemon funnels every request through a single rw handle —
  so the connection is opened with ``check_same_thread=False`` and all
  statement execution is serialized under an internal lock.  Lock hold
  times are single statements or one short transaction; sqlite itself
  remains the concurrency bottleneck, not the lock.
* **Verifiability.**  When source text is registered for a module,
  ``verify`` can recompile it, re-execute a sample of cached loops with
  the exact recorded configuration, and cross-check verdicts and
  snapshot digests.
"""

from __future__ import annotations

import json
import os
import random
import sqlite3
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence

import repro.obs as obs
from repro.cache.keys import SEMANTICS_VERSION

__all__ = ["AnalysisCache", "CACHE_DB_NAME", "CACHE_DIR_ENV", "CACHE_MODES"]

#: Access counters kept per handle and persisted (summed) into ``meta``
#: on close, so ``repro cache stats`` reports traffic across every run
#: that touched the store, not just row counts.
_LIFETIME_COUNTERS = ("lookups", "hits", "misses", "invalidations", "stores")

CACHE_DB_NAME = "dca-cache.sqlite"

#: Environment fallback for the cache directory (CLI flag wins).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: ``rw`` reads and writes; ``ro`` only reads; ``refresh`` recomputes
#: everything and overwrites (reads are bypassed).
CACHE_MODES = ("rw", "ro", "refresh")

_SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS entries (
    module_digest TEXT NOT NULL,
    loop_id TEXT NOT NULL,
    fingerprint TEXT NOT NULL,
    payload TEXT NOT NULL,
    created_at REAL NOT NULL,
    last_used_at REAL NOT NULL,
    hits INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (module_digest, loop_id, fingerprint)
);
CREATE TABLE IF NOT EXISTS fingerprints (
    fingerprint TEXT PRIMARY KEY,
    description TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS modules (
    module_digest TEXT PRIMARY KEY,
    source_path TEXT,
    source_text TEXT,
    entry TEXT NOT NULL DEFAULT 'main',
    args_json TEXT
);
"""


class AnalysisCache:
    """One open handle on a persistent analysis cache directory."""

    def __init__(
        self,
        directory: str,
        mode: str = "rw",
        clock: Optional[Callable[[], float]] = None,
    ):
        if mode not in CACHE_MODES:
            raise ValueError(
                f"unknown cache mode {mode!r}; expected one of {CACHE_MODES}"
            )
        self.directory = str(directory)
        self.mode = mode
        self._clock = clock or time.time
        os.makedirs(self.directory, exist_ok=True)
        self.path = os.path.join(self.directory, CACHE_DB_NAME)
        # One handle may serve many threads (the serve daemon shares a
        # single rw handle across its worker threads); sqlite's
        # same-thread check is replaced by our own statement lock.
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(
            self.path, timeout=30.0, check_same_thread=False
        )
        self._conn.executescript(_SCHEMA)
        try:  # WAL keeps concurrent batch workers off each other's locks
            self._conn.execute("PRAGMA journal_mode=WAL")
        except sqlite3.DatabaseError:  # pragma: no cover - fs-dependent
            pass
        self._conn.execute("PRAGMA busy_timeout=30000")
        self._session_counts: Dict[str, int] = dict.fromkeys(
            _LIFETIME_COUNTERS, 0
        )
        self._check_versions()

    # -- lifecycle ---------------------------------------------------------

    def _check_versions(self) -> None:
        """Purge wholesale when the store predates the current semantics."""
        with self._lock, self._conn:
            rows = dict(
                self._conn.execute("SELECT key, value FROM meta").fetchall()
            )
            stored = rows.get("semantics_version")
            if stored is not None and int(stored) != SEMANTICS_VERSION:
                self._conn.execute("DELETE FROM entries")
                self._conn.execute("DELETE FROM fingerprints")
                purged = int(rows.get("semantics_purges", "0")) + 1
                self._set_meta("semantics_purges", str(purged))
            self._set_meta("schema_version", str(_SCHEMA_VERSION))
            self._set_meta("semantics_version", str(SEMANTICS_VERSION))

    def _set_meta(self, key: str, value: str) -> None:
        self._conn.execute(
            "INSERT INTO meta (key, value) VALUES (?, ?) "
            "ON CONFLICT(key) DO UPDATE SET value=excluded.value",
            (key, value),
        )

    def _bump(self, name: str, n: int = 1) -> None:
        """Count one cache access: session counter + obs metric."""
        with self._lock:
            self._session_counts[name] += n
        ctx = obs.current()
        if ctx.enabled:
            ctx.count(f"cache.{name}", n)

    def _flush_lifetime_counts(self) -> None:
        """Fold the session's access counters into the persistent meta
        table (skipped in read-only mode, which must not write)."""
        if self.mode == "ro":
            return
        with self._lock:
            pending = {k: v for k, v in self._session_counts.items() if v}
            if not pending:
                return
            try:
                with self._conn:
                    for name, n in pending.items():
                        self._conn.execute(
                            "INSERT INTO meta (key, value) VALUES (?, ?) "
                            "ON CONFLICT(key) DO UPDATE SET value=CAST("
                            "CAST(value AS INTEGER) + CAST(excluded.value "
                            "AS INTEGER) AS TEXT)",
                            (f"lifetime_{name}", str(n)),
                        )
                for name in pending:
                    self._session_counts[name] = 0
            except sqlite3.Error:  # pragma: no cover - racing close/deletion
                pass

    def close(self) -> None:
        self._flush_lifetime_counts()
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "AnalysisCache":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- memoization -------------------------------------------------------

    def lookup(
        self, module_digest: str, loop_id: str, fingerprint: str
    ) -> Optional[Dict[str, object]]:
        """The cached payload for one loop, or None on a miss.

        A hit bumps the entry's usage accounting (except in ``ro`` mode,
        which must not write).  ``refresh`` mode always misses so the
        caller recomputes and overwrites.
        """
        if self.mode == "refresh":
            return None
        self._bump("lookups")
        with self._lock:
            row = self._conn.execute(
                "SELECT payload FROM entries WHERE module_digest=? AND "
                "loop_id=? AND fingerprint=?",
                (module_digest, loop_id, fingerprint),
            ).fetchone()
            if row is None:
                self._bump("misses")
                return None
            self._bump("hits")
            if self.mode != "ro":
                with self._conn:
                    self._conn.execute(
                        "UPDATE entries SET hits=hits+1, last_used_at=? WHERE "
                        "module_digest=? AND loop_id=? AND fingerprint=?",
                        (self._clock(), module_digest, loop_id, fingerprint),
                    )
        return json.loads(row[0])

    def has_stale_sibling(
        self, module_digest: str, loop_id: str, fingerprint: str
    ) -> bool:
        """Whether this miss is really an invalidation: the same loop is
        cached under a different (now unreachable) config fingerprint."""
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM entries WHERE module_digest=? AND loop_id=? "
                "AND fingerprint<>? LIMIT 1",
                (module_digest, loop_id, fingerprint),
            ).fetchone()
        if row is not None:
            self._bump("invalidations")
        return row is not None

    def store(
        self,
        module_digest: str,
        loop_id: str,
        fingerprint: str,
        payload: Dict[str, object],
        fingerprint_description: Optional[Dict[str, object]] = None,
    ) -> bool:
        """Memoize one loop verdict; returns False in read-only mode."""
        if self.mode == "ro":
            return False
        now = self._clock()
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT INTO entries (module_digest, loop_id, fingerprint, "
                "payload, created_at, last_used_at, hits) "
                "VALUES (?, ?, ?, ?, ?, ?, 0) "
                "ON CONFLICT(module_digest, loop_id, fingerprint) DO UPDATE "
                "SET payload=excluded.payload, created_at=excluded.created_at",
                (module_digest, loop_id, fingerprint, json.dumps(payload),
                 now, now),
            )
            if fingerprint_description is not None:
                self._conn.execute(
                    "INSERT OR IGNORE INTO fingerprints "
                    "(fingerprint, description) VALUES (?, ?)",
                    (fingerprint, json.dumps(fingerprint_description,
                                             sort_keys=True)),
                )
        self._bump("stores")
        return True

    def register_module(
        self,
        module_digest: str,
        source_text: Optional[str] = None,
        source_path: Optional[str] = None,
        entry: str = "main",
        args: Sequence[object] = (),
    ) -> None:
        """Record source provenance for a module digest (enables verify)."""
        if self.mode == "ro":
            return
        try:
            args_json: Optional[str] = json.dumps(list(args))
        except TypeError:
            args_json = None  # non-JSON workload args: not verifiable
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT INTO modules (module_digest, source_path, "
                "source_text, entry, args_json) VALUES (?, ?, ?, ?, ?) "
                "ON CONFLICT(module_digest) DO UPDATE SET "
                "source_path=COALESCE(excluded.source_path, source_path), "
                "source_text=COALESCE(excluded.source_text, source_text)",
                (module_digest, source_path, source_text, entry, args_json),
            )

    # -- maintenance -------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return self._stats_locked()

    def _stats_locked(self) -> Dict[str, object]:
        count_entries, total_hits = self._conn.execute(
            "SELECT COUNT(*), COALESCE(SUM(hits), 0) FROM entries"
        ).fetchone()
        (count_modules,) = self._conn.execute(
            "SELECT COUNT(*) FROM modules"
        ).fetchone()
        (count_verifiable,) = self._conn.execute(
            "SELECT COUNT(*) FROM modules WHERE source_text IS NOT NULL"
        ).fetchone()
        (count_fingerprints,) = self._conn.execute(
            "SELECT COUNT(*) FROM fingerprints"
        ).fetchone()
        meta = dict(self._conn.execute("SELECT key, value FROM meta"))
        oldest, newest = self._conn.execute(
            "SELECT MIN(created_at), MAX(created_at) FROM entries"
        ).fetchone()
        try:
            size_bytes = os.path.getsize(self.path)
        except OSError:  # pragma: no cover - racing deletion
            size_bytes = 0
        out = {
            "path": self.path,
            "mode": self.mode,
            "entries": count_entries,
            "modules": count_modules,
            "verifiable_modules": count_verifiable,
            "fingerprints": count_fingerprints,
            "total_hits": int(total_hits),
            "semantics_version": int(meta.get("semantics_version",
                                              SEMANTICS_VERSION)),
            "semantics_purges": int(meta.get("semantics_purges", 0)),
            "oldest_entry": oldest,
            "newest_entry": newest,
            "size_bytes": size_bytes,
        }
        # Access traffic: every run that touched the store flushes its
        # counters into meta on close; this handle's unflushed counts
        # are added so stats stay current mid-session.
        for name in _LIFETIME_COUNTERS:
            out[f"lifetime_{name}"] = (
                int(meta.get(f"lifetime_{name}", 0))
                + self._session_counts[name]
            )
        lookups = out["lifetime_lookups"]
        out["lifetime_hit_rate"] = (
            out["lifetime_hits"] / lookups if lookups else None
        )
        return out

    def clear(self) -> int:
        """Drop every cached verdict; returns the number removed."""
        with self._lock:
            with self._conn:
                (count,) = self._conn.execute(
                    "SELECT COUNT(*) FROM entries"
                ).fetchone()
                self._conn.execute("DELETE FROM entries")
                self._conn.execute("DELETE FROM fingerprints")
                self._conn.execute("DELETE FROM modules")
            self._conn.execute("VACUUM")
        return count

    def gc(
        self,
        max_age_days: Optional[float] = None,
        max_entries: Optional[int] = None,
    ) -> Dict[str, int]:
        """Expire old entries and cap the store size (LRU beyond the cap)."""
        removed_age = removed_lru = 0
        with self._lock, self._conn:
            if max_age_days is not None:
                cutoff = self._clock() - max_age_days * 86400.0
                removed_age = self._conn.execute(
                    "DELETE FROM entries WHERE last_used_at < ?", (cutoff,)
                ).rowcount
            if max_entries is not None:
                (count,) = self._conn.execute(
                    "SELECT COUNT(*) FROM entries"
                ).fetchone()
                overflow = count - max_entries
                if overflow > 0:
                    removed_lru = self._conn.execute(
                        "DELETE FROM entries WHERE rowid IN ("
                        "SELECT rowid FROM entries ORDER BY last_used_at "
                        "ASC, rowid ASC LIMIT ?)",
                        (overflow,),
                    ).rowcount
            # Drop provenance rows no cached entry references any more.
            self._conn.execute(
                "DELETE FROM modules WHERE module_digest NOT IN "
                "(SELECT DISTINCT module_digest FROM entries)"
            )
            self._conn.execute(
                "DELETE FROM fingerprints WHERE fingerprint NOT IN "
                "(SELECT DISTINCT fingerprint FROM entries)"
            )
            (remaining,) = self._conn.execute(
                "SELECT COUNT(*) FROM entries"
            ).fetchone()
        ctx = obs.current()
        if ctx.enabled:
            ctx.count("cache.gc.removed_age", removed_age)
            ctx.count("cache.gc.removed_lru", removed_lru)
            ctx.gauge("cache.gc.remaining", remaining)
        return {
            "removed_age": removed_age,
            "removed_lru": removed_lru,
            "remaining": remaining,
        }

    # -- verification ------------------------------------------------------

    def verify(
        self, sample: int = 10, seed: int = 0
    ) -> Dict[str, object]:
        """Re-execute a sample of cached loops and cross-check payloads.

        Only loops whose module has registered source text are eligible.
        Each sampled loop is recompiled and re-analyzed under its exact
        recorded configuration (restricted to that loop); the fresh
        verdict, invocation/trip counts, tested schedules, and snapshot
        content digests must match the cached payload field-for-field.
        """
        from repro.core.dca import DcaAnalyzer  # local: avoid cycle
        from repro.core.schedules import ScheduleConfig, schedule_from_name
        from repro.driver import compile_program

        with self._lock:
            rows = self._conn.execute(
                "SELECT e.module_digest, e.loop_id, e.fingerprint, e.payload, "
                "m.source_text, m.entry, m.args_json, f.description "
                "FROM entries e "
                "JOIN modules m ON m.module_digest = e.module_digest "
                "JOIN fingerprints f ON f.fingerprint = e.fingerprint "
                "WHERE m.source_text IS NOT NULL AND m.args_json IS NOT NULL "
                "ORDER BY e.module_digest, e.loop_id, e.fingerprint"
            ).fetchall()
        rng = random.Random(seed)
        if len(rows) > sample:
            rows = rng.sample(rows, sample)
        checked = ok = 0
        mismatches: List[Dict[str, object]] = []
        unverifiable: List[Dict[str, object]] = []
        compare_fields = (
            "verdict", "reason", "invocations", "max_trip",
            "schedules_tested", "failed_schedule", "schedule_digests",
        )
        for (digest, loop_id, fingerprint, payload_json, source, entry,
             args_json, desc_json) in rows:
            payload = json.loads(payload_json)
            desc = json.loads(desc_json)
            checked += 1
            # Restore the recorded spec setting explicitly: entries
            # written without specs must replay byte-exact (never pick
            # up REPRO_SPECS from the environment), and spec-relaxed
            # entries need the same registry re-activated.  Only the
            # built-in registry is reconstructible from its digest.
            specs: object = False
            if "specs" in desc:
                from repro.analysis.specs import default_registry
                registry = default_registry()
                if registry.digest() != desc["specs"]:
                    unverifiable.append(
                        {"module": digest, "loop": loop_id,
                         "error": "unknown spec registry digest"}
                    )
                    continue
                specs = registry
            try:
                schedules = ScheduleConfig(
                    [schedule_from_name(n) for n in desc["schedules"]]
                )
                analyzer = DcaAnalyzer(
                    compile_program(source),
                    entry=entry,
                    args=json.loads(args_json),
                    schedules=schedules,
                    rtol=float(desc["rtol"]),
                    max_steps=desc["max_steps"],
                    candidate_labels=[loop_id],
                    liveout_policy=desc["liveout_policy"],
                    static_filter=desc["static_filter"],
                    specs=specs,
                )
                fresh = analyzer.analyze().results.get(loop_id)
            except Exception as exc:
                unverifiable.append(
                    {"module": digest, "loop": loop_id, "error": repr(exc)}
                )
                continue
            cached = payload.get("result", {})
            diffs = {}
            if fresh is None:
                diffs["loop"] = {"expected": loop_id, "actual": None}
            else:
                fresh_dict = fresh.to_dict()
                for name in compare_fields:
                    if fresh_dict.get(name) != cached.get(name):
                        diffs[name] = {
                            "expected": cached.get(name),
                            "actual": fresh_dict.get(name),
                        }
            if diffs:
                mismatches.append(
                    {"module": digest, "loop": loop_id,
                     "fingerprint": fingerprint, "diffs": diffs}
                )
            else:
                ok += 1
        return {
            "checked": checked,
            "ok": ok,
            "mismatches": mismatches,
            "unverifiable": unverifiable,
        }
