"""``repro.cache`` — persistent, content-addressed analysis cache.

The dynamic stage of DCA is expensive by construction (one golden run
plus one run per permutation schedule per loop); this package memoizes
its per-loop verdicts on disk so repeated and corpus-scale analyses are
incremental.  See :mod:`repro.cache.keys` for the three-component key
design and :mod:`repro.cache.store` for the sqlite3 store.

Typical use goes through :class:`repro.api.AnalysisSession` (pass
``cache_dir``) or the CLI (``--cache DIR`` / ``REPRO_CACHE_DIR``, and
the ``repro cache`` maintenance subcommand)::

    from repro.api import AnalysisConfig, AnalysisSession

    session = AnalysisSession(AnalysisConfig(cache_dir="~/.cache/repro"))
    report = session.analyze(source)          # cold: populates the cache
    report = session.analyze(source)          # warm: replays verdicts
"""

from __future__ import annotations

import os
from typing import Optional

from repro.cache.keys import (
    SEMANTICS_VERSION,
    config_fingerprint,
    fingerprint_description,
    module_workload_digest,
)
from repro.cache.store import (
    CACHE_DB_NAME,
    CACHE_DIR_ENV,
    CACHE_MODES,
    AnalysisCache,
)

__all__ = [
    "AnalysisCache",
    "CACHE_DB_NAME",
    "CACHE_DIR_ENV",
    "CACHE_MODES",
    "SEMANTICS_VERSION",
    "config_fingerprint",
    "fingerprint_description",
    "module_workload_digest",
    "open_cache",
    "resolve_cache_dir",
]


def resolve_cache_dir(cache_dir: Optional[str] = None) -> Optional[str]:
    """Resolve the cache directory: explicit argument, then the
    ``REPRO_CACHE_DIR`` environment variable, then disabled (None)."""
    if cache_dir is not None:
        return os.path.expanduser(cache_dir)
    env = os.environ.get(CACHE_DIR_ENV, "").strip()
    return os.path.expanduser(env) if env else None


def open_cache(
    cache_dir: Optional[str] = None, mode: str = "rw"
) -> Optional[AnalysisCache]:
    """Open the resolved cache directory, or None when caching is off."""
    resolved = resolve_cache_dir(cache_dir)
    if resolved is None or mode == "off":
        return None
    return AnalysisCache(resolved, mode=mode)
