"""Cache key derivation for the persistent analysis cache.

A cached per-loop verdict is addressed by three components:

* **module digest** — a content address of the analyzed *workload*: the
  canonical printed IR of the module (``repro.ir.printer.format_module``
  is deterministic: it walks insertion-ordered dicts populated in parse
  order) plus the entry point and the entry arguments.  Pickle bytes are
  deliberately *not* used — pickling can traverse hash-ordered
  containers, and the digest must be stable across processes and
  ``PYTHONHASHSEED`` values.
* **loop id** — the stable ``<function>.L<n>`` label assigned by
  lowering.
* **config fingerprint** — a digest of every analysis setting that can
  change a loop's dynamic verdict or its recorded payload: the schedule
  preset (names encode seeds), ``rtol``, the live-out policy, the step
  budget, the static-filter switch, the candidate restriction, and the
  execution-semantics version below.  Settings that the byte-identity
  contract already excludes from reports (schedule backend, job count,
  exec backend, observability) are deliberately *not* part of the
  fingerprint: reports are byte-identical across them, so cache entries
  are shared across them too.

Any fingerprint change makes old entries unreachable (a miss); the store
additionally counts such stale-sibling misses as *invalidations* so the
effect of a config change is visible in ``repro cache stats``.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Optional, Sequence

from repro.ir.function import Module
from repro.ir.printer import format_module

__all__ = [
    "SEMANTICS_VERSION",
    "config_fingerprint",
    "fingerprint_description",
    "module_workload_digest",
]

#: Version of the execution semantics the cached verdicts were produced
#: under.  Bump whenever interpreter/compiled-backend semantics, the
#: snapshot digest algorithm, or the verdict decision procedure changes
#: in a way that could alter a cached payload; stores created under a
#: different version are purged wholesale on open.
#:
#: v2: commutativity specs (repro.analysis.specs) — rt_verify may
#: canonicalize declared containers before comparison and the static
#: pre-screen may consume spec waivers, so pre-spec entries must not be
#: replayed into spec-aware runs (and vice versa).
SEMANTICS_VERSION = 2


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def module_workload_digest(
    module: Module, entry: str = "main", args: Sequence[object] = ()
) -> str:
    """Content address of one analyzed workload (module + entry + args)."""
    return _sha256(
        "\x00".join([format_module(module), entry, repr(list(args))])
    )


def fingerprint_description(
    schedule_names: Sequence[str],
    rtol: float = 1e-9,
    liveout_policy: str = "strict",
    static_filter: bool = True,
    max_steps: Optional[int] = None,
    candidate_labels: Optional[Sequence[str]] = None,
    specs: Optional[str] = None,
    tiering: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """The canonical, JSON-serializable description a fingerprint hashes.

    Stored alongside cache entries so ``repro cache verify`` can
    reconstruct the exact configuration and re-execute cached loops.

    ``specs`` is the spec-set digest (``SpecRegistry.digest()``) when
    commutativity specs participate in verification, else None.  The key
    is emitted only when set, so specs-off fingerprints are unchanged
    from before the spec layer existed (modulo the semantics version).

    ``tiering`` follows the same pattern for the parallelization-tiering
    stage (``{"max_pipeline_stages": k}`` when tiering is on, else
    None): tiering-off fingerprints match tiering-free releases.
    """
    description: Dict[str, object] = {
        "schedules": list(schedule_names),
        "rtol": repr(rtol),
        "liveout_policy": liveout_policy,
        "static_filter": bool(static_filter),
        "max_steps": max_steps,
        "candidate_labels": (
            sorted(candidate_labels) if candidate_labels is not None else None
        ),
        "semantics_version": SEMANTICS_VERSION,
    }
    if specs is not None:
        description["specs"] = specs
    if tiering is not None:
        description["tiering"] = dict(tiering)
    return description


def config_fingerprint(
    schedule_names: Sequence[str],
    rtol: float = 1e-9,
    liveout_policy: str = "strict",
    static_filter: bool = True,
    max_steps: Optional[int] = None,
    candidate_labels: Optional[Sequence[str]] = None,
    specs: Optional[str] = None,
    tiering: Optional[Dict[str, object]] = None,
) -> str:
    """Digest of the verdict-relevant analysis configuration."""
    description = fingerprint_description(
        schedule_names,
        rtol=rtol,
        liveout_policy=liveout_policy,
        static_filter=static_filter,
        max_steps=max_steps,
        candidate_labels=candidate_labels,
        specs=specs,
        tiering=tiering,
    )
    return _sha256(json.dumps(description, sort_keys=True))
