"""POLLY-style baseline (Grosser et al. [52]).

A polyhedral detector: a loop is parallelizable only when it forms a
static control part (SCoP) —

* no calls (pure math builtins are tolerated, like LLVM intrinsics),
* no pointer/struct accesses, no allocation, no global writes,
* every array subscript affine in the induction variables of the nest,
* all carried scalars are induction variables,

— and the exact dependence test proves the absence of loop-carried
dependences.  Distinct allocation sites are assumed not to alias
(mirroring Polly's reliance on LLVM alias metadata); aliasing candidates
fall back to conservative dependence.

Profitability is out of detection scope, matching the paper's
``-polly-process-unprofitable`` configuration.
"""

from __future__ import annotations

from typing import Tuple

from repro.analysis.affine import AffineContext, cross_iteration_dependence
from repro.analysis.reductions import INDUCTION
from repro.baselines.base import DetectionContext, Detector
from repro.ir.instructions import (
    Call,
    CallBuiltin,
    GetField,
    NewArray,
    NewStruct,
    SetField,
    StoreGlobal,
)
from repro.lang.builtins import builtin_is_pure


class PollyDetector(Detector):
    name = "polly"

    #: Instruction kinds that break the SCoP property outright.
    _SCOP_BREAKERS = (GetField, SetField, NewStruct, NewArray, StoreGlobal)

    def classify_loop(self, ctx: DetectionContext, label: str) -> Tuple[bool, str]:
        func = ctx.function_of(label)
        loop = ctx.loop(label)

        for name in loop.blocks:
            for instr in func.blocks[name].instrs:
                if isinstance(instr, Call):
                    return False, f"call to {instr.func} breaks the SCoP"
                if isinstance(instr, CallBuiltin) and not builtin_is_pure(instr.func):
                    return False, "side-effecting builtin breaks the SCoP"
                if isinstance(instr, self._SCOP_BREAKERS):
                    return False, f"non-affine memory operation: {instr}"

        idioms = ctx.idioms[label]
        for reg, klass in idioms.scalars.items():
            if klass != INDUCTION:
                return False, f"loop-carried scalar {reg} is {klass}"

        actx = AffineContext(func, loop, ctx.forests[func.name])
        accesses = actx.collect_accesses()
        if accesses is None:
            return False, "unresolvable array base"
        for acc in accesses:
            if any(sub is None for sub in acc.subscripts):
                return False, f"non-affine subscript at {acc.site}"

        tested = actx.tested_ivs()
        steps = {reg: step for reg, (_l, step) in actx.ivs.items()}
        for i, a in enumerate(accesses):
            for b in accesses[i:]:
                if not (a.is_write or b.is_write):
                    continue
                if not ctx.points_to.may_alias(func.name, a.root, b.root):
                    continue
                if a.root != b.root:
                    # May-aliasing distinct names: no subscript relation.
                    return False, (
                        f"possible aliasing between {a.root} and {b.root}"
                    )
                if cross_iteration_dependence(a, b, tested, steps):
                    return False, (
                        f"loop-carried dependence between {a.site} and {b.site}"
                    )
        return True, "affine SCoP with no loop-carried dependences"
