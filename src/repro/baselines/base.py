"""Common infrastructure for the five baseline parallelism detectors.

Every detector consumes a shared :class:`DetectionContext` (static analyses
plus, for the dynamic tools, one profiled execution) and returns a verdict
per source loop.  This mirrors the paper's setup where all tools are
configured for *maximum detection capability* (§V-A Configuration).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import repro.obs as obs
from repro.analysis.alias import PointsTo
from repro.analysis.dynamic_deps import DynamicDepProfiler
from repro.analysis.loops import Loop, LoopForest, build_loop_forest
from repro.analysis.purity import EffectAnalysis
from repro.analysis.reductions import LoopIdioms, classify_loop
from repro.interp.interpreter import Interpreter
from repro.ir.function import Function, Module


@dataclass
class DetectionResult:
    """One detector's verdict for one loop."""

    label: str
    parallel: bool
    reason: str = ""
    detector: str = ""


@dataclass
class DetectionContext:
    """Shared analysis state for all detectors on one program + workload."""

    module: Module
    effects: EffectAnalysis
    points_to: PointsTo
    forests: Dict[str, LoopForest]
    idioms: Dict[str, LoopIdioms]
    #: label -> owning function name
    loop_functions: Dict[str, str]
    #: Dynamic profile; None when the profiled run was skipped.
    profile: Optional[DynamicDepProfiler] = None
    profiled_steps: int = 0
    #: Per-component cost records ("profile" plus one entry per detector
    #: that ran), comparable with DCA's report metrics: loops classified,
    #: wall ms, and for dynamic components instructions/executions.
    costs: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def loop(self, label: str) -> Loop:
        func = self.loop_functions[label]
        return self.forests[func].loops[label]

    def function_of(self, label: str) -> Function:
        return self.module.functions[self.loop_functions[label]]

    def all_labels(self) -> List[str]:
        return sorted(self.loop_functions)


def build_context(
    module: Module,
    entry: str = "main",
    args: Optional[Sequence[object]] = None,
    run_profile: bool = True,
    max_steps: Optional[int] = None,
) -> DetectionContext:
    """Run the static analyses (and one profiled execution) for detection."""
    forests: Dict[str, LoopForest] = {}
    idioms: Dict[str, LoopIdioms] = {}
    loop_functions: Dict[str, str] = {}
    for func in module.functions.values():
        forest = build_loop_forest(func)
        forests[func.name] = forest
        for label in func.loops:
            if label not in forest.loops:
                continue
            loop_functions[label] = func.name
            idioms[label] = classify_loop(func, forest.loops[label])

    profile = None
    profiled_steps = 0
    costs: Dict[str, Dict[str, float]] = {}
    if run_profile:
        profile = DynamicDepProfiler(module)
        interp = Interpreter(module, observers=[profile], max_steps=max_steps)
        start = time.perf_counter()
        with obs.current().span("baseline.profile", entry=entry):
            interp.run(entry, list(args or []))
        profiled_steps = interp.steps
        costs["profile"] = {
            "executions": 1,
            "instructions": profiled_steps,
            "wall_ms": (time.perf_counter() - start) * 1000.0,
        }

    ctx = DetectionContext(
        module=module,
        effects=EffectAnalysis(module),
        points_to=PointsTo(module),
        forests=forests,
        idioms=idioms,
        loop_functions=loop_functions,
        profile=profile,
        profiled_steps=profiled_steps,
    )
    ctx.costs.update(costs)
    return ctx


class Detector:
    """Base class: one parallelism-detection technique."""

    name = "abstract"

    def detect(self, ctx: DetectionContext) -> Dict[str, DetectionResult]:
        active = obs.current()
        results = {}
        start = time.perf_counter()
        with active.span("baseline.detect", detector=self.name):
            for label in ctx.all_labels():
                parallel, reason = self.classify_loop(ctx, label)
                results[label] = DetectionResult(
                    label=label, parallel=parallel, reason=reason,
                    detector=self.name,
                )
        ctx.costs[self.name] = {
            "loops": len(results),
            "parallel": sum(1 for r in results.values() if r.parallel),
            "wall_ms": (time.perf_counter() - start) * 1000.0,
        }
        if active.enabled:
            active.metrics.counter(
                f"baseline.{self.name}.loops_classified"
            ).inc(len(results))
        return results

    def classify_loop(self, ctx: DetectionContext, label: str):
        raise NotImplementedError

    def parallel_labels(self, ctx: DetectionContext) -> List[str]:
        return [l for l, r in self.detect(ctx).items() if r.parallel]


def combine_static(
    results: Sequence[Dict[str, DetectionResult]]
) -> Dict[str, DetectionResult]:
    """Union of detector verdicts — the paper's "Combined Static" column."""
    combined: Dict[str, DetectionResult] = {}
    for per_tool in results:
        for label, res in per_tool.items():
            cur = combined.get(label)
            if cur is None or (res.parallel and not cur.parallel):
                combined[label] = DetectionResult(
                    label=label,
                    parallel=res.parallel,
                    reason=res.reason,
                    detector="combined",
                )
    return combined
