"""The five baseline parallelism detectors evaluated against DCA (§V-A).

Dynamic (profile-driven): dependence profiling [8], DiscoPoP [9].
Static: IDIOMS [51], Polly [52], ICC [53].
"""

from repro.baselines.base import (
    DetectionContext,
    DetectionResult,
    Detector,
    build_context,
    combine_static,
)
from repro.baselines.dep_profiling import DependenceProfilingDetector
from repro.baselines.discopop import DiscoPopDetector
from repro.baselines.icc import IccDetector
from repro.baselines.idioms import IdiomsDetector
from repro.baselines.polly import PollyDetector

STATIC_DETECTORS = (IdiomsDetector, PollyDetector, IccDetector)
DYNAMIC_DETECTORS = (DependenceProfilingDetector, DiscoPopDetector)
ALL_DETECTORS = DYNAMIC_DETECTORS + STATIC_DETECTORS

__all__ = [
    "ALL_DETECTORS",
    "DYNAMIC_DETECTORS",
    "DependenceProfilingDetector",
    "DetectionContext",
    "DetectionResult",
    "Detector",
    "DiscoPopDetector",
    "IccDetector",
    "IdiomsDetector",
    "PollyDetector",
    "STATIC_DETECTORS",
    "build_context",
    "combine_static",
]
