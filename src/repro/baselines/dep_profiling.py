"""DEPENDENCE PROFILING baseline (Tournavitis et al., PLDI 2009 [8]).

A profile-driven dependence-based detector: a loop is reported
parallelizable when the profiled execution exhibits

* no cross-iteration flow (RAW) dependence through memory,
* no cross-iteration anti/output (WAR/WAW) dependence on a location that
  is not privatizable (written before read in every iteration touching it),

and the loop's statically visible carried scalars are all induction
variables or *simple* reductions (``+``, ``*``, ``min``/``max``) — the
classes [8]'s code generator can privatize or reduce.

Pointer-chasing inductions (``p = p->next``) are loop-carried flow
dependences this technique cannot break — exactly the paper's Fig. 1(b)
argument — so PLDS traversals are rejected.  Memory accesses inside called
functions are followed (attributed to their call site), matching the
whole-program profiling of [8].
"""

from __future__ import annotations

from typing import Tuple

from repro.analysis.reductions import INDUCTION, SIMPLE_REDUCTIONS
from repro.baselines.base import DetectionContext, Detector


class DependenceProfilingDetector(Detector):
    name = "dep-profiling"

    #: Scalar classes this tool's codegen can handle.
    _OK_SCALARS = frozenset({INDUCTION}) | SIMPLE_REDUCTIONS

    def classify_loop(self, ctx: DetectionContext, label: str) -> Tuple[bool, str]:
        if ctx.profile is None:
            return False, "no profile available"
        if label not in ctx.profile.executed:
            return False, "loop not exercised by the workload"
        from repro.core.instrument import loop_does_io

        if loop_does_io(ctx.function_of(label), ctx.loop(label).blocks, ctx.effects):
            return False, "I/O ordering constraint in the loop"
        deps = ctx.profile.deps_for(label)

        idioms = ctx.idioms[label]
        for reg, klass in idioms.scalars.items():
            if klass not in self._OK_SCALARS:
                return False, f"loop-carried scalar {reg} is {klass}"

        for edge in deps.cross_iteration_edges("raw"):
            return False, (
                f"cross-iteration flow dependence {edge.writer} -> {edge.reader}"
            )
        for kind in ("war", "waw"):
            for edge in deps.cross_iteration_edges(kind):
                if not ctx.profile.is_privatizable(label, edge.loc):
                    return False, (
                        f"cross-iteration {kind} on non-privatizable location"
                    )
        return True, "no blocking cross-iteration dependences observed"
