"""ICC-style baseline (Intel C++ Compiler auto-parallelization [53]).

A mature static dependence-based auto-parallelizer.  Compared with the
Polly-style SCoP model it is more robust (paper §V-C1):

* calls to *pure* functions are tolerated — modelling ICC's aggressive
  inlining of side-effect-free functions;
* simple scalar reductions (``+``, ``*``, ``min``/``max`` builtins) are
  recognized and parallelized with a reduction clause;
* loads through loop-invariant struct pointers are allowed (they behave
  like invariant scalars for the dependence test).

It shares ICC's blind spots: complex/conditional reductions and histogram
updates are not recognized (IDIOMS' territory), writes through pointers
defeat it, and the detection-phase profitability heuristic is disabled
(``par-threshold`` at maximum detection, §V-A).
"""

from __future__ import annotations

from typing import Tuple

from repro.analysis.affine import AffineContext, cross_iteration_dependence
from repro.analysis.reductions import INDUCTION, SIMPLE_REDUCTIONS
from repro.baselines.base import DetectionContext, Detector
from repro.ir.instructions import (
    Call,
    CallBuiltin,
    GetField,
    NewArray,
    NewStruct,
    Reg,
    SetField,
    StoreGlobal,
)
from repro.lang.builtins import builtin_is_pure


class IccDetector(Detector):
    name = "icc"

    _OK_SCALARS = frozenset({INDUCTION}) | SIMPLE_REDUCTIONS

    def classify_loop(self, ctx: DetectionContext, label: str) -> Tuple[bool, str]:
        func = ctx.function_of(label)
        loop = ctx.loop(label)

        defs_in_loop = set()
        for name in loop.blocks:
            for instr in func.blocks[name].instrs:
                defs_in_loop.update(instr.defs())

        for name in loop.blocks:
            for instr in func.blocks[name].instrs:
                if isinstance(instr, Call):
                    if instr.func not in ctx.effects.effects:
                        return False, f"unknown callee {instr.func}"
                    callee = ctx.effects.of(instr.func)
                    if not callee.is_pure or callee.reads_heap or callee.globals_read:
                        return False, (
                            f"call to impure function {instr.func} defeats analysis"
                        )
                elif isinstance(instr, CallBuiltin):
                    if not builtin_is_pure(instr.func):
                        return False, "side-effecting builtin in loop"
                elif isinstance(instr, (SetField, NewStruct, NewArray, StoreGlobal)):
                    return False, f"unanalyzable memory write: {instr}"
                elif isinstance(instr, GetField):
                    base = instr.obj
                    if isinstance(base, Reg) and base in defs_in_loop:
                        return False, (
                            f"load through loop-varying pointer {base}"
                        )

        idioms = ctx.idioms[label]
        for reg, klass in idioms.scalars.items():
            if klass not in self._OK_SCALARS:
                return False, f"loop-carried scalar {reg} is {klass}"

        actx = AffineContext(func, loop, ctx.forests[func.name])
        accesses = actx.collect_accesses()
        if accesses is None:
            return False, "unresolvable array base"
        for acc in accesses:
            if any(sub is None for sub in acc.subscripts):
                return False, f"non-affine subscript at {acc.site}"

        tested = actx.tested_ivs()
        steps = {reg: step for reg, (_l, step) in actx.ivs.items()}
        for i, a in enumerate(accesses):
            for b in accesses[i:]:
                if not (a.is_write or b.is_write):
                    continue
                if not ctx.points_to.may_alias(func.name, a.root, b.root):
                    continue
                if a.root != b.root:
                    return False, (
                        f"possible aliasing between {a.root} and {b.root}"
                    )
                if cross_iteration_dependence(a, b, tested, steps):
                    return False, (
                        f"loop-carried dependence between {a.site} and {b.site}"
                    )
        return True, "static dependence test passed (with pure-call inlining)"
