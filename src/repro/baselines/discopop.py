"""DISCOPOP-style baseline (Li et al., JSS 2016 [9]).

Also profile-driven, but with a different capability envelope than
dependence profiling, reflecting the published tool's computational-unit
(CU) model:

* **stronger reduction handling** — dynamic recognition covers histogram
  updates (``a[f(i)] += e``) and conditional min/max reductions in
  addition to simple scalar reductions, so cross-iteration flow
  dependences fully contained in a recognized reduction group do not block
  parallelization;
* **weaker interprocedural coverage** — CU construction is limited around
  calls with side effects: a loop whose payload calls a function that
  (transitively) writes the heap or globals is rejected as unanalyzable.

As in the paper (§V-A), results for DiscoPoP are a faithful *policy*
reimplementation rather than the original tool, which is not available.
"""

from __future__ import annotations

from typing import Set, Tuple

from repro.analysis.reductions import COMPLEX_REDUCTIONS, INDUCTION
from repro.baselines.base import DetectionContext, Detector
from repro.ir.instructions import Call


class DiscoPopDetector(Detector):
    name = "discopop"

    _OK_SCALARS = frozenset({INDUCTION}) | COMPLEX_REDUCTIONS

    def classify_loop(self, ctx: DetectionContext, label: str) -> Tuple[bool, str]:
        if ctx.profile is None:
            return False, "no profile available"
        if label not in ctx.profile.executed:
            return False, "loop not exercised by the workload"
        from repro.core.instrument import loop_does_io

        if loop_does_io(ctx.function_of(label), ctx.loop(label).blocks, ctx.effects):
            return False, "I/O ordering constraint in the loop"
        deps = ctx.profile.deps_for(label)

        func = ctx.function_of(label)
        loop = ctx.loop(label)
        for name in loop.blocks:
            for instr in func.blocks[name].instrs:
                if isinstance(instr, Call) and instr.func in ctx.effects.effects:
                    callee = ctx.effects.of(instr.func)
                    if callee.writes_heap or callee.globals_written or callee.does_io:
                        return False, (
                            f"CU barrier: call to {instr.func} with side effects"
                        )

        idioms = ctx.idioms[label]
        for reg, klass in idioms.scalars.items():
            if klass not in self._OK_SCALARS:
                return False, f"loop-carried scalar {reg} is {klass}"

        reduction_sites: Set[Tuple[str, int]] = set(idioms.histogram_sites)
        for edge in deps.cross_iteration_edges("raw"):
            w = (edge.writer[1], edge.writer[2])
            r = (edge.reader[1], edge.reader[2])
            if edge.writer[0] == func.name and w in reduction_sites and (
                edge.reader[0] == func.name and r in reduction_sites
            ):
                continue  # dynamic reduction group
            return False, (
                f"cross-iteration flow dependence {edge.writer} -> {edge.reader}"
            )
        for kind in ("war", "waw"):
            for edge in deps.cross_iteration_edges(kind):
                w = (edge.writer[1], edge.writer[2])
                r = (edge.reader[1], edge.reader[2])
                if w in reduction_sites and r in reduction_sites:
                    continue
                if not ctx.profile.is_privatizable(label, edge.loc):
                    return False, (
                        f"cross-iteration {kind} on non-privatizable location"
                    )
        return True, "doall after dynamic reduction/privatization analysis"
