"""IDIOMS baseline (Ginsbach & O'Boyle, CGO 2017 [51]).

A constraint-based detector specialized in **complex reduction and
histogram operations**.  A loop is reported exactly when it *is* such an
idiom:

* it contains at least one reduction (simple or conditional min/max) or
  histogram update;
* every other carried scalar is an induction variable;
* every memory write in the loop belongs to a recognized histogram group
  (struct/global writes disqualify the match);
* no calls (the constraint matcher works on a single loop body); pure
  math builtins are permitted.

This gives IDIOMS its characteristic envelope from the paper's Table III:
few loops overall, but including reduction/histogram loops that both ICC
and Polly miss.
"""

from __future__ import annotations

from typing import Tuple

from repro.analysis.reductions import COMPLEX_REDUCTIONS, INDUCTION
from repro.baselines.base import DetectionContext, Detector
from repro.ir.instructions import Call, CallBuiltin, SetField, SetIndex, StoreGlobal
from repro.lang.builtins import builtin_is_pure


class IdiomsDetector(Detector):
    name = "idioms"

    def classify_loop(self, ctx: DetectionContext, label: str) -> Tuple[bool, str]:
        func = ctx.function_of(label)
        loop = ctx.loop(label)
        idioms = ctx.idioms[label]

        has_reduction = bool(idioms.histograms) or any(
            klass in COMPLEX_REDUCTIONS for klass in idioms.scalars.values()
        )
        if not has_reduction:
            return False, "no reduction or histogram idiom in the loop"

        for reg, klass in idioms.scalars.items():
            if klass != INDUCTION and klass not in COMPLEX_REDUCTIONS:
                return False, f"loop-carried scalar {reg} is {klass}"

        for name in loop.blocks:
            for idx, instr in enumerate(func.blocks[name].instrs):
                if isinstance(instr, Call):
                    return False, f"call to {instr.func} breaks the constraint match"
                if isinstance(instr, CallBuiltin) and not builtin_is_pure(instr.func):
                    return False, "side-effecting builtin in loop"
                if isinstance(instr, (SetField, StoreGlobal)):
                    return False, f"write outside the idiom: {instr}"
                if isinstance(instr, SetIndex):
                    if (name, idx) not in idioms.histogram_sites:
                        return False, f"array write outside the idiom at {name}:{idx}"
        return True, "reduction/histogram idiom matched"
