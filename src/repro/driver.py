"""End-to-end convenience drivers: source text → IR module → execution."""

from __future__ import annotations

from typing import List, Optional, Tuple

import repro.obs as obs

from repro.lang.checker import check
from repro.lang.parser import parse
from repro.ir.function import Module
from repro.ir.lowering import lower
from repro.ir.verify import verify_module


def compile_program(source: str, verify: bool = True, optimize: bool = True) -> Module:
    """Compile MiniC source text to a verified IR module.

    ``optimize`` runs the standard cleanup pipeline (copy fusion), which
    also canonicalizes induction/reduction shapes for the analyses.
    """
    from repro.ir.passes import run_cleanups

    program = parse(source)
    checked = check(program)
    module = lower(checked)
    if optimize:
        run_cleanups(module)
    if verify:
        verify_module(module)
    return module


def run_program(
    source_or_module,
    entry: str = "main",
    args: Optional[List[object]] = None,
    max_steps: Optional[int] = None,
    exec_backend: Optional[str] = None,
) -> Tuple[object, str]:
    """Compile (if needed) and execute a program.

    Returns ``(return_value, captured_stdout)``.  ``exec_backend``
    selects tree-walking interpretation (``interp``, the default) or the
    closure-compiled backend (``compiled``); falls back to the
    ``REPRO_EXEC_BACKEND`` environment variable.
    """
    from repro.interp.compiler import create_executor

    if isinstance(source_or_module, Module):
        module = source_or_module
    else:
        module = compile_program(source_or_module)
    interp = create_executor(
        module, max_steps=max_steps, exec_backend=exec_backend
    )
    result = interp.run(entry, args or [])
    return result, interp.output_text()


def profile_program(
    source_or_module,
    entry: str = "main",
    args: Optional[List[object]] = None,
    rtol: float = 1e-9,
    liveout_policy: str = "strict",
    static_filter: bool = True,
    max_steps: Optional[int] = None,
    backend: Optional[str] = None,
    jobs: Optional[int] = None,
    exec_backend: Optional[str] = None,
):
    """Run the full DCA pipeline with observability enabled.

    Returns ``(report, obs_context)``: the :class:`~repro.core.report.DcaReport`
    with per-loop cost breakdowns, and the enabled
    :class:`~repro.obs.ObsContext` holding the span trace (exportable as
    Chrome trace JSON), the metrics registry, and the event log.

    If the process-local observability context is not already enabled, a
    fresh enabled context is installed; the caller owns disabling it.
    """
    from repro.core import DcaAnalyzer

    ctx = obs.current()
    if not ctx.enabled:
        ctx = obs.enable()
    if isinstance(source_or_module, Module):
        module = source_or_module
    else:
        with ctx.span("repro.compile"):
            module = compile_program(source_or_module)
    analyzer = DcaAnalyzer(
        module,
        entry=entry,
        args=args,
        rtol=rtol,
        liveout_policy=liveout_policy,
        static_filter=static_filter,
        max_steps=max_steps,
        backend=backend,
        jobs=jobs,
        exec_backend=exec_backend,
    )
    report = analyzer.analyze()
    return report, ctx
