"""End-to-end convenience drivers: source text → IR module → execution."""

from __future__ import annotations

from typing import List, Optional, Tuple

import repro.obs as obs

from repro.lang.checker import check
from repro.lang.parser import parse
from repro.ir.function import Module
from repro.ir.lowering import lower
from repro.ir.verify import verify_module


def compile_program(source: str, verify: bool = True, optimize: bool = True) -> Module:
    """Compile MiniC source text to a verified IR module.

    ``optimize`` runs the standard cleanup pipeline (copy fusion), which
    also canonicalizes induction/reduction shapes for the analyses.
    """
    from repro.ir.passes import run_cleanups

    program = parse(source)
    checked = check(program)
    module = lower(checked)
    if optimize:
        run_cleanups(module)
    if verify:
        verify_module(module)
    return module


def run_program(
    source_or_module,
    entry: str = "main",
    args: Optional[List[object]] = None,
    max_steps: Optional[int] = None,
    exec_backend: Optional[str] = None,
) -> Tuple[object, str]:
    """Compile (if needed) and execute a program.

    Returns ``(return_value, captured_stdout)``.  ``exec_backend``
    selects tree-walking interpretation (``interp``, the default), the
    closure-compiled backend (``compiled``) or the Python-source codegen
    backend (``codegen``); falls back to the ``REPRO_EXEC_BACKEND``
    environment variable.
    """
    from repro.interp.compiler import create_executor

    if isinstance(source_or_module, Module):
        module = source_or_module
    else:
        module = compile_program(source_or_module)
    interp = create_executor(
        module, max_steps=max_steps, exec_backend=exec_backend
    )
    result = interp.run(entry, args or [])
    return result, interp.output_text()


def analyze_program(
    source_or_module,
    entry: str = "main",
    args: Optional[List[object]] = None,
    rtol: float = 1e-9,
    liveout_policy: str = "strict",
    static_filter: bool = True,
    max_steps: Optional[int] = None,
    backend: Optional[str] = None,
    jobs: Optional[int] = None,
    exec_backend: Optional[str] = None,
):
    """Deprecated shim: use :class:`repro.api.AnalysisSession.analyze`.

    Kept so pre-``repro.api`` embeddings keep working; new code should
    construct an :class:`~repro.api.AnalysisConfig` instead of threading
    kwargs.
    """
    import warnings

    from repro.api import AnalysisConfig, AnalysisSession

    warnings.warn(
        "repro.driver.analyze_program is deprecated; use "
        "repro.api.AnalysisSession.analyze",
        DeprecationWarning,
        stacklevel=2,
    )
    config = AnalysisConfig(
        entry=entry,
        args=tuple(args or ()),
        rtol=rtol,
        liveout_policy=liveout_policy,
        static_filter=static_filter,
        max_steps=max_steps,
        backend=backend,
        jobs=jobs,
        exec_backend=exec_backend,
        cache_mode="off",
    )
    with AnalysisSession(config) as session:
        return session.analyze(source_or_module)


def profile_program(
    source_or_module,
    entry: str = "main",
    args: Optional[List[object]] = None,
    rtol: float = 1e-9,
    liveout_policy: str = "strict",
    static_filter: bool = True,
    max_steps: Optional[int] = None,
    backend: Optional[str] = None,
    jobs: Optional[int] = None,
    exec_backend: Optional[str] = None,
):
    """Deprecated shim: use :class:`repro.api.AnalysisSession.profile`.

    Returns ``(report, obs_context)`` exactly as the session method
    does; if the process-local observability context is not already
    enabled, a fresh enabled context is installed and the caller owns
    disabling it.
    """
    import warnings

    from repro.api import AnalysisConfig, AnalysisSession

    warnings.warn(
        "repro.driver.profile_program is deprecated; use "
        "repro.api.AnalysisSession.profile",
        DeprecationWarning,
        stacklevel=2,
    )
    config = AnalysisConfig(
        entry=entry,
        args=tuple(args or ()),
        rtol=rtol,
        liveout_policy=liveout_policy,
        static_filter=static_filter,
        max_steps=max_steps,
        backend=backend,
        jobs=jobs,
        exec_backend=exec_backend,
        obs=True,
        cache_mode="off",
    )
    with AnalysisSession(config) as session:
        return session.profile(source_or_module)
