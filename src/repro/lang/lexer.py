"""Hand-written lexer for MiniC.

The lexer performs a single pass over the source text, producing a list of
:class:`~repro.lang.tokens.Token`.  It supports ``//`` line comments and
``/* ... */`` block comments, decimal integer and floating-point literals
(with optional exponent), string literals (for ``print``), and the full
operator set of the language.
"""

from __future__ import annotations

from typing import List

from repro.lang.errors import LexError
from repro.lang.tokens import KEYWORDS, TokKind, Token

_TWO_CHAR_OPS = {
    "->": TokKind.ARROW,
    "==": TokKind.EQ,
    "!=": TokKind.NE,
    "<=": TokKind.LE,
    ">=": TokKind.GE,
    "&&": TokKind.AND,
    "||": TokKind.OR,
    "+=": TokKind.PLUS_ASSIGN,
    "-=": TokKind.MINUS_ASSIGN,
    "*=": TokKind.STAR_ASSIGN,
    "/=": TokKind.SLASH_ASSIGN,
}

_ONE_CHAR_OPS = {
    "(": TokKind.LPAREN,
    ")": TokKind.RPAREN,
    "{": TokKind.LBRACE,
    "}": TokKind.RBRACE,
    "[": TokKind.LBRACKET,
    "]": TokKind.RBRACKET,
    ",": TokKind.COMMA,
    ";": TokKind.SEMI,
    ".": TokKind.DOT,
    "*": TokKind.STAR,
    "+": TokKind.PLUS,
    "-": TokKind.MINUS,
    "/": TokKind.SLASH,
    "%": TokKind.PERCENT,
    "=": TokKind.ASSIGN,
    "<": TokKind.LT,
    ">": TokKind.GT,
    "!": TokKind.NOT,
}


class Lexer:
    """Tokenizes MiniC source text."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.col = 1

    def tokenize(self) -> List[Token]:
        """Lex the whole input, returning tokens terminated by EOF."""
        tokens: List[Token] = []
        while True:
            self._skip_trivia()
            if self.pos >= len(self.source):
                tokens.append(Token(TokKind.EOF, "", self.line, self.col))
                return tokens
            tokens.append(self._next_token())

    # -- internals ---------------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        if idx < len(self.source):
            return self.source[idx]
        return ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.source):
                if self.source[self.pos] == "\n":
                    self.line += 1
                    self.col = 1
                else:
                    self.col += 1
                self.pos += 1

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start_line, start_col = self.line, self.col
                self._advance(2)
                while self.pos < len(self.source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise LexError("unterminated block comment", start_line, start_col)
            else:
                return

    def _next_token(self) -> Token:
        line, col = self.line, self.col
        ch = self._peek()

        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._lex_number(line, col)
        if ch.isalpha() or ch == "_":
            return self._lex_ident(line, col)
        if ch == '"':
            return self._lex_string(line, col)

        two = ch + self._peek(1)
        if two in _TWO_CHAR_OPS:
            self._advance(2)
            return Token(_TWO_CHAR_OPS[two], two, line, col)
        if ch in _ONE_CHAR_OPS:
            self._advance()
            return Token(_ONE_CHAR_OPS[ch], ch, line, col)

        raise LexError(f"unexpected character {ch!r}", line, col)

    def _lex_number(self, line: int, col: int) -> Token:
        start = self.pos
        is_float = False
        while self._peek().isdigit():
            self._advance()
        if self._peek() == "." and self._peek(1) != ".":
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in ("e", "E") and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self.source[start : self.pos]
        kind = TokKind.FLOAT if is_float else TokKind.INT
        return Token(kind, text, line, col)

    def _lex_ident(self, line: int, col: int) -> Token:
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start : self.pos]
        kind = KEYWORDS.get(text, TokKind.IDENT)
        return Token(kind, text, line, col)

    def _lex_string(self, line: int, col: int) -> Token:
        self._advance()  # opening quote
        chars: List[str] = []
        while True:
            ch = self._peek()
            if ch == "":
                raise LexError("unterminated string literal", line, col)
            if ch == '"':
                self._advance()
                return Token(TokKind.STRING, "".join(chars), line, col)
            if ch == "\\":
                self._advance()
                esc = self._peek()
                mapping = {"n": "\n", "t": "\t", '"': '"', "\\": "\\"}
                if esc not in mapping:
                    raise LexError(f"bad escape \\{esc}", self.line, self.col)
                chars.append(mapping[esc])
                self._advance()
            else:
                chars.append(ch)
                self._advance()


def tokenize(source: str) -> List[Token]:
    """Convenience wrapper around :class:`Lexer`."""
    return Lexer(source).tokenize()
