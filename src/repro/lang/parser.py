"""Recursive-descent parser for MiniC.

Grammar summary (braces are required around all statement bodies)::

    program    := (struct | func | global)*
    struct     := 'struct' IDENT '{' (type IDENT ';')* '}'
    func       := 'func' type IDENT '(' [type IDENT {',' type IDENT}] ')' block
    global     := type IDENT ['=' expr] ';'
    type       := ('int'|'float'|'bool'|'void'|IDENT '*') {'[' ']'}
    stmt       := vardecl ';' | assign ';' | exprstmt ';' | if | while | for
                | 'return' [expr] ';' | 'break' ';' | 'continue' ';'
    assign     := lvalue ('='|'+='|'-='|'*='|'/=') expr

The ``IDENT '*' IDENT`` sequence is resolved as a declaration (``Node* p``)
rather than a multiplication statement, matching C's usual bias.
"""

from __future__ import annotations

from typing import List, Optional

from repro.lang import ast_nodes as ast
from repro.lang.errors import ParseError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokKind, Token
from repro.lang.types import (
    BOOL,
    FLOAT,
    INT,
    VOID,
    ArrayType,
    PointerType,
    Type,
)

_BASE_TYPE_KINDS = (
    TokKind.KW_INT,
    TokKind.KW_FLOAT,
    TokKind.KW_BOOL,
    TokKind.KW_VOID,
)

_COMPOUND_ASSIGN = {
    TokKind.PLUS_ASSIGN: "+",
    TokKind.MINUS_ASSIGN: "-",
    TokKind.STAR_ASSIGN: "*",
    TokKind.SLASH_ASSIGN: "/",
}


class Parser:
    """Parses a token stream into a :class:`repro.lang.ast_nodes.Program`."""

    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers -----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def _at(self, kind: TokKind, offset: int = 0) -> bool:
        return self._peek(offset).kind == kind

    def _advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not TokKind.EOF:
            self.pos += 1
        return tok

    def _expect(self, kind: TokKind, what: str = "") -> Token:
        tok = self._peek()
        if tok.kind is not kind:
            expected = what or kind.name
            raise ParseError(
                f"expected {expected}, found {tok.text!r}", tok.line, tok.col
            )
        return self._advance()

    def _accept(self, kind: TokKind) -> Optional[Token]:
        if self._at(kind):
            return self._advance()
        return None

    # -- entry point -------------------------------------------------------

    def parse_program(self) -> ast.Program:
        program = ast.Program(line=1)
        while not self._at(TokKind.EOF):
            if self._at(TokKind.KW_STRUCT):
                program.structs.append(self._parse_struct())
            elif self._at(TokKind.KW_FUNC):
                program.functions.append(self._parse_func())
            elif self._at(TokKind.KW_COMMUTATIVE):
                self._advance()
                program.functions.append(self._parse_func(commutative=True))
            else:
                program.globals.append(self._parse_global())
        return program

    # -- declarations ------------------------------------------------------

    def _parse_struct(self) -> ast.StructDecl:
        start = self._expect(TokKind.KW_STRUCT)
        name = self._expect(TokKind.IDENT, "struct name").text
        decl = ast.StructDecl(line=start.line, name=name)
        self._expect(TokKind.LBRACE)
        while not self._accept(TokKind.RBRACE):
            ftype = self._parse_type()
            fname = self._expect(TokKind.IDENT, "field name").text
            self._expect(TokKind.SEMI)
            decl.field_names.append(fname)
            decl.field_types.append(ftype)
        return decl

    def _parse_func(self, commutative: bool = False) -> ast.FuncDecl:
        start = self._expect(TokKind.KW_FUNC)
        ret = self._parse_type()
        name = self._expect(TokKind.IDENT, "function name").text
        func = ast.FuncDecl(
            line=start.line, name=name, return_type=ret, commutative=commutative
        )
        self._expect(TokKind.LPAREN)
        if not self._at(TokKind.RPAREN):
            while True:
                ptype = self._parse_type()
                pname = self._expect(TokKind.IDENT, "parameter name").text
                func.params.append(
                    ast.Param(line=self._peek().line, param_type=ptype, name=pname)
                )
                if not self._accept(TokKind.COMMA):
                    break
        self._expect(TokKind.RPAREN)
        func.body = self._parse_block()
        return func

    def _parse_global(self) -> ast.GlobalDecl:
        start = self._peek()
        gtype = self._parse_type()
        name = self._expect(TokKind.IDENT, "global name").text
        init = None
        if self._accept(TokKind.ASSIGN):
            init = self._parse_expr()
        self._expect(TokKind.SEMI)
        return ast.GlobalDecl(line=start.line, var_type=gtype, name=name, init=init)

    # -- types -------------------------------------------------------------

    def _looks_like_type(self) -> bool:
        """Whether the upcoming tokens start a declaration."""
        kind = self._peek().kind
        if kind in _BASE_TYPE_KINDS:
            return True
        if kind is TokKind.IDENT and self._at(TokKind.STAR, 1):
            # 'Node* x' declaration vs 'a * b' expression: declarations are
            # followed by an identifier or an array suffix.
            nxt = self._peek(2).kind
            return nxt in (TokKind.IDENT, TokKind.LBRACKET)
        return False

    def _parse_type(self) -> Type:
        tok = self._peek()
        base: Type
        if tok.kind is TokKind.KW_INT:
            self._advance()
            base = INT
        elif tok.kind is TokKind.KW_FLOAT:
            self._advance()
            base = FLOAT
        elif tok.kind is TokKind.KW_BOOL:
            self._advance()
            base = BOOL
        elif tok.kind is TokKind.KW_VOID:
            self._advance()
            base = VOID
        elif tok.kind is TokKind.IDENT:
            self._advance()
            self._expect(TokKind.STAR, "'*' after struct type name")
            base = PointerType(tok.text)
        else:
            raise ParseError(f"expected a type, found {tok.text!r}", tok.line, tok.col)
        while self._at(TokKind.LBRACKET) and self._at(TokKind.RBRACKET, 1):
            self._advance()
            self._advance()
            base = ArrayType(base)
        return base

    # -- statements --------------------------------------------------------

    def _parse_block(self) -> List[ast.Stmt]:
        self._expect(TokKind.LBRACE)
        stmts: List[ast.Stmt] = []
        while not self._accept(TokKind.RBRACE):
            stmts.append(self._parse_stmt())
        return stmts

    def _parse_stmt(self) -> ast.Stmt:
        tok = self._peek()
        if tok.kind is TokKind.KW_IF:
            return self._parse_if()
        if tok.kind is TokKind.KW_WHILE:
            return self._parse_while()
        if tok.kind is TokKind.KW_FOR:
            return self._parse_for()
        if tok.kind is TokKind.KW_RETURN:
            self._advance()
            value = None if self._at(TokKind.SEMI) else self._parse_expr()
            self._expect(TokKind.SEMI)
            return ast.Return(line=tok.line, value=value)
        if tok.kind is TokKind.KW_BREAK:
            self._advance()
            self._expect(TokKind.SEMI)
            return ast.Break(line=tok.line)
        if tok.kind is TokKind.KW_CONTINUE:
            self._advance()
            self._expect(TokKind.SEMI)
            return ast.Continue(line=tok.line)
        stmt = self._parse_simple_stmt()
        self._expect(TokKind.SEMI)
        return stmt

    def _parse_simple_stmt(self) -> ast.Stmt:
        """A declaration, assignment or expression statement (no semicolon)."""
        tok = self._peek()
        if self._looks_like_type():
            vtype = self._parse_type()
            name = self._expect(TokKind.IDENT, "variable name").text
            init = None
            if self._accept(TokKind.ASSIGN):
                init = self._parse_expr()
            return ast.VarDecl(line=tok.line, var_type=vtype, name=name, init=init)
        expr = self._parse_expr()
        if self._at(TokKind.ASSIGN):
            self._advance()
            value = self._parse_expr()
            return ast.Assign(line=tok.line, target=expr, value=value)
        for kind, op in _COMPOUND_ASSIGN.items():
            if self._at(kind):
                self._advance()
                rhs = self._parse_expr()
                return ast.Assign(
                    line=tok.line, target=expr, value=rhs, compound_op=op
                )
        return ast.ExprStmt(line=tok.line, expr=expr)

    def _parse_if(self) -> ast.If:
        start = self._expect(TokKind.KW_IF)
        self._expect(TokKind.LPAREN)
        cond = self._parse_expr()
        self._expect(TokKind.RPAREN)
        then_body = self._parse_block()
        else_body: List[ast.Stmt] = []
        if self._accept(TokKind.KW_ELSE):
            if self._at(TokKind.KW_IF):
                else_body = [self._parse_if()]
            else:
                else_body = self._parse_block()
        return ast.If(line=start.line, cond=cond, then_body=then_body, else_body=else_body)

    def _parse_while(self) -> ast.While:
        start = self._expect(TokKind.KW_WHILE)
        self._expect(TokKind.LPAREN)
        cond = self._parse_expr()
        self._expect(TokKind.RPAREN)
        body = self._parse_block()
        return ast.While(line=start.line, cond=cond, body=body)

    def _parse_for(self) -> ast.For:
        start = self._expect(TokKind.KW_FOR)
        self._expect(TokKind.LPAREN)
        init = None if self._at(TokKind.SEMI) else self._parse_simple_stmt()
        self._expect(TokKind.SEMI)
        cond = None if self._at(TokKind.SEMI) else self._parse_expr()
        self._expect(TokKind.SEMI)
        step = None if self._at(TokKind.RPAREN) else self._parse_simple_stmt()
        self._expect(TokKind.RPAREN)
        body = self._parse_block()
        return ast.For(line=start.line, init=init, cond=cond, step=step, body=body)

    # -- expressions (precedence climbing) ----------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        lhs = self._parse_and()
        while self._at(TokKind.OR):
            tok = self._advance()
            rhs = self._parse_and()
            lhs = ast.BinOp(line=tok.line, op="||", lhs=lhs, rhs=rhs)
        return lhs

    def _parse_and(self) -> ast.Expr:
        lhs = self._parse_equality()
        while self._at(TokKind.AND):
            tok = self._advance()
            rhs = self._parse_equality()
            lhs = ast.BinOp(line=tok.line, op="&&", lhs=lhs, rhs=rhs)
        return lhs

    def _parse_equality(self) -> ast.Expr:
        lhs = self._parse_relational()
        while self._peek().kind in (TokKind.EQ, TokKind.NE):
            tok = self._advance()
            rhs = self._parse_relational()
            lhs = ast.BinOp(line=tok.line, op=tok.text, lhs=lhs, rhs=rhs)
        return lhs

    def _parse_relational(self) -> ast.Expr:
        lhs = self._parse_additive()
        while self._peek().kind in (TokKind.LT, TokKind.LE, TokKind.GT, TokKind.GE):
            tok = self._advance()
            rhs = self._parse_additive()
            lhs = ast.BinOp(line=tok.line, op=tok.text, lhs=lhs, rhs=rhs)
        return lhs

    def _parse_additive(self) -> ast.Expr:
        lhs = self._parse_multiplicative()
        while self._peek().kind in (TokKind.PLUS, TokKind.MINUS):
            tok = self._advance()
            rhs = self._parse_multiplicative()
            lhs = ast.BinOp(line=tok.line, op=tok.text, lhs=lhs, rhs=rhs)
        return lhs

    def _parse_multiplicative(self) -> ast.Expr:
        lhs = self._parse_unary()
        while self._peek().kind in (TokKind.STAR, TokKind.SLASH, TokKind.PERCENT):
            tok = self._advance()
            rhs = self._parse_unary()
            lhs = ast.BinOp(line=tok.line, op=tok.text, lhs=lhs, rhs=rhs)
        return lhs

    def _parse_unary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is TokKind.MINUS:
            self._advance()
            operand = self._parse_unary()
            return ast.UnOp(line=tok.line, op="-", operand=operand)
        if tok.kind is TokKind.NOT:
            self._advance()
            operand = self._parse_unary()
            return ast.UnOp(line=tok.line, op="!", operand=operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            tok = self._peek()
            if tok.kind in (TokKind.ARROW, TokKind.DOT):
                self._advance()
                fname = self._expect(TokKind.IDENT, "field name").text
                expr = ast.FieldAccess(line=tok.line, base=expr, field_name=fname)
            elif tok.kind is TokKind.LBRACKET:
                self._advance()
                index = self._parse_expr()
                self._expect(TokKind.RBRACKET)
                expr = ast.IndexAccess(line=tok.line, base=expr, index=index)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is TokKind.INT:
            self._advance()
            return ast.IntLit(line=tok.line, value=int(tok.text))
        if tok.kind is TokKind.FLOAT:
            self._advance()
            return ast.FloatLit(line=tok.line, value=float(tok.text))
        if tok.kind is TokKind.STRING:
            self._advance()
            return ast.StringLit(line=tok.line, value=tok.text)
        if tok.kind is TokKind.KW_TRUE:
            self._advance()
            return ast.BoolLit(line=tok.line, value=True)
        if tok.kind is TokKind.KW_FALSE:
            self._advance()
            return ast.BoolLit(line=tok.line, value=False)
        if tok.kind is TokKind.KW_NULL:
            self._advance()
            return ast.NullLit(line=tok.line)
        if tok.kind is TokKind.KW_NEW:
            return self._parse_new()
        if tok.kind is TokKind.LPAREN:
            self._advance()
            expr = self._parse_expr()
            self._expect(TokKind.RPAREN)
            return expr
        if tok.kind is TokKind.IDENT:
            self._advance()
            if self._at(TokKind.LPAREN):
                self._advance()
                args: List[ast.Expr] = []
                if not self._at(TokKind.RPAREN):
                    while True:
                        args.append(self._parse_expr())
                        if not self._accept(TokKind.COMMA):
                            break
                self._expect(TokKind.RPAREN)
                return ast.Call(line=tok.line, func=tok.text, args=args)
            return ast.Name(line=tok.line, ident=tok.text)
        raise ParseError(f"unexpected token {tok.text!r}", tok.line, tok.col)

    def _parse_new(self) -> ast.Expr:
        start = self._expect(TokKind.KW_NEW)
        # `new T[expr]` allocates an array; `new Name` allocates a struct.
        tok = self._peek()
        base: Type
        if tok.kind in _BASE_TYPE_KINDS:
            base = self._parse_scalar_base()
        elif tok.kind is TokKind.IDENT:
            # Either `new Node` (struct) or `new Node*[n]` (array of ptrs).
            if self._at(TokKind.STAR, 1):
                self._advance()
                self._advance()
                base = PointerType(tok.text)
            else:
                self._advance()
                return ast.NewStruct(line=start.line, struct_name=tok.text)
        else:
            raise ParseError(
                f"expected type after 'new', found {tok.text!r}", tok.line, tok.col
            )
        # Nested array element suffixes: `new int[][n]` gives int[] elements.
        while self._at(TokKind.LBRACKET) and self._at(TokKind.RBRACKET, 1):
            self._advance()
            self._advance()
            base = ArrayType(base)
        self._expect(TokKind.LBRACKET, "'[' in array allocation")
        length = self._parse_expr()
        self._expect(TokKind.RBRACKET)
        return ast.NewArray(line=start.line, elem_type=base, length=length)

    def _parse_scalar_base(self) -> Type:
        tok = self._advance()
        if tok.kind is TokKind.KW_INT:
            return INT
        if tok.kind is TokKind.KW_FLOAT:
            return FLOAT
        if tok.kind is TokKind.KW_BOOL:
            return BOOL
        raise ParseError(f"bad allocation type {tok.text!r}", tok.line, tok.col)


def parse(source: str) -> ast.Program:
    """Parse MiniC source text into an AST."""
    return Parser(tokenize(source)).parse_program()
