"""AST node definitions for MiniC.

Every node carries a source line for diagnostics.  Expression nodes gain a
``type`` attribute during type checking (set by
:mod:`repro.lang.checker`), which the lowering phase relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.lang.types import Type


@dataclass
class Node:
    line: int = 0


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass
class Expr(Node):
    type: Optional[Type] = None


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class FloatLit(Expr):
    value: float = 0.0


@dataclass
class BoolLit(Expr):
    value: bool = False


@dataclass
class NullLit(Expr):
    pass


@dataclass
class StringLit(Expr):
    value: str = ""


@dataclass
class Name(Expr):
    ident: str = ""


@dataclass
class BinOp(Expr):
    op: str = ""
    lhs: Optional[Expr] = None
    rhs: Optional[Expr] = None


@dataclass
class UnOp(Expr):
    op: str = ""
    operand: Optional[Expr] = None


@dataclass
class Call(Expr):
    func: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class NewStruct(Expr):
    struct_name: str = ""


@dataclass
class NewArray(Expr):
    elem_type: Optional[Type] = None
    length: Optional[Expr] = None


@dataclass
class FieldAccess(Expr):
    base: Optional[Expr] = None
    field_name: str = ""


@dataclass
class IndexAccess(Expr):
    base: Optional[Expr] = None
    index: Optional[Expr] = None


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    pass


@dataclass
class VarDecl(Stmt):
    var_type: Optional[Type] = None
    name: str = ""
    init: Optional[Expr] = None


@dataclass
class Assign(Stmt):
    """``target = value`` where target is a Name, FieldAccess or IndexAccess.

    ``compound_op`` marks ``target op= value`` forms; the lvalue is then
    evaluated once (C semantics), and lowering emits the canonical
    read-modify-write shape the idiom matchers recognize.
    """

    target: Optional[Expr] = None
    value: Optional[Expr] = None
    compound_op: Optional[str] = None


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclass
class If(Stmt):
    cond: Optional[Expr] = None
    then_body: List[Stmt] = field(default_factory=list)
    else_body: List[Stmt] = field(default_factory=list)


@dataclass
class While(Stmt):
    cond: Optional[Expr] = None
    body: List[Stmt] = field(default_factory=list)
    label: str = ""


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Stmt] = None
    body: List[Stmt] = field(default_factory=list)
    label: str = ""


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# --------------------------------------------------------------------------
# Declarations
# --------------------------------------------------------------------------


@dataclass
class Param(Node):
    param_type: Optional[Type] = None
    name: str = ""


@dataclass
class FuncDecl(Node):
    name: str = ""
    return_type: Optional[Type] = None
    params: List[Param] = field(default_factory=list)
    body: List[Stmt] = field(default_factory=list)
    #: Declared commutative via the ``commutative func`` annotation.
    commutative: bool = False


@dataclass
class StructDecl(Node):
    name: str = ""
    field_names: List[str] = field(default_factory=list)
    field_types: List[Type] = field(default_factory=list)


@dataclass
class GlobalDecl(Node):
    var_type: Optional[Type] = None
    name: str = ""
    init: Optional[Expr] = None


@dataclass
class Program(Node):
    structs: List[StructDecl] = field(default_factory=list)
    globals: List[GlobalDecl] = field(default_factory=list)
    functions: List[FuncDecl] = field(default_factory=list)
