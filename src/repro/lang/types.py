"""MiniC type system.

Types are immutable value objects:

* scalars — ``int``, ``float``, ``bool``
* ``void`` (function returns only)
* pointers to named struct types — ``Node*``
* dynamic arrays of any element type — ``int[]``, ``Node*[]``, ``int[][]``

Structs are heap-only and always manipulated through pointers, which keeps
the memory model simple (no address-of operator is needed) while still
supporting every pointer-linked data-structure idiom in the paper's
benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple


class Type:
    """Base class for MiniC types."""

    def is_scalar(self) -> bool:
        return isinstance(self, (IntType, FloatType, BoolType))

    def is_reference(self) -> bool:
        return isinstance(self, (PointerType, ArrayType))

    def is_numeric(self) -> bool:
        return isinstance(self, (IntType, FloatType))


@dataclass(frozen=True)
class IntType(Type):
    def __str__(self) -> str:
        return "int"


@dataclass(frozen=True)
class FloatType(Type):
    def __str__(self) -> str:
        return "float"


@dataclass(frozen=True)
class BoolType(Type):
    def __str__(self) -> str:
        return "bool"


@dataclass(frozen=True)
class VoidType(Type):
    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class PointerType(Type):
    """Pointer to a named struct."""

    struct_name: str

    def __str__(self) -> str:
        return f"{self.struct_name}*"


@dataclass(frozen=True)
class ArrayType(Type):
    """Dynamically sized array of ``elem``."""

    elem: Type

    def __str__(self) -> str:
        return f"{self.elem}[]"


@dataclass(frozen=True)
class StringType(Type):
    """Only used for ``print`` format arguments."""

    def __str__(self) -> str:
        return "string"


INT = IntType()
FLOAT = FloatType()
BOOL = BoolType()
VOID = VoidType()
STRING = StringType()


@dataclass
class StructDef:
    """A named struct with ordered fields."""

    name: str
    fields: Dict[str, Type] = field(default_factory=dict)

    def field_type(self, name: str) -> Type:
        return self.fields[name]

    def has_field(self, name: str) -> bool:
        return name in self.fields

    def field_names(self) -> Tuple[str, ...]:
        return tuple(self.fields)


def assignable(target: Type, source: Type) -> bool:
    """Whether a value of ``source`` type may be assigned to ``target``.

    The only implicit conversion is ``int -> float``.  ``null`` is modelled
    by the checker as being assignable to any reference type before calling
    this predicate.
    """
    if target == source:
        return True
    if isinstance(target, FloatType) and isinstance(source, IntType):
        return True
    return False


def unify_numeric(a: Type, b: Type) -> Type:
    """Result type of an arithmetic operation on ``a`` and ``b``."""
    if isinstance(a, FloatType) or isinstance(b, FloatType):
        return FLOAT
    return INT


def is_condition_type(t: Type) -> bool:
    """MiniC accepts bool, int and references in condition position.

    This mirrors C truthiness and keeps ported loops such as
    ``while (ptr)`` and ``while (frontier->size)`` natural.
    """
    return isinstance(t, (BoolType, IntType)) or t.is_reference()
