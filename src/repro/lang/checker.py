"""Semantic analysis (type checking) for MiniC.

The checker validates declarations, resolves names, and annotates every
expression node with its :class:`~repro.lang.types.Type`.  Lowering relies
on these annotations and must only be run on a checked program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.lang import ast_nodes as ast
from repro.lang.builtins import BUILTINS, is_builtin
from repro.lang.errors import TypeError_
from repro.lang.types import (
    BOOL,
    FLOAT,
    INT,
    STRING,
    VOID,
    ArrayType,
    BoolType,
    FloatType,
    IntType,
    PointerType,
    StringType,
    StructDef,
    Type,
    VoidType,
    assignable,
    is_condition_type,
    unify_numeric,
)


@dataclass
class FuncSig:
    """Resolved function signature."""

    name: str
    param_types: List[Type]
    return_type: Type


@dataclass
class CheckedProgram:
    """A type-checked AST plus resolved symbol tables."""

    program: ast.Program
    structs: Dict[str, StructDef] = field(default_factory=dict)
    functions: Dict[str, FuncSig] = field(default_factory=dict)
    globals: Dict[str, Type] = field(default_factory=dict)


class _Scope:
    """A lexical scope of local variable types."""

    def __init__(self, parent: Optional["_Scope"] = None):
        self.parent = parent
        self.vars: Dict[str, Type] = {}

    def declare(self, name: str, t: Type, line: int) -> None:
        if name in self.vars:
            raise TypeError_(f"redeclaration of '{name}'", line)
        self.vars[name] = t

    def lookup(self, name: str) -> Optional[Type]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.vars:
                return scope.vars[name]
            scope = scope.parent
        return None


class Checker:
    """Type-checks a parsed program."""

    def __init__(self, program: ast.Program):
        self.program = program
        self.structs: Dict[str, StructDef] = {}
        self.functions: Dict[str, FuncSig] = {}
        self.globals: Dict[str, Type] = {}
        self._current_return: Type = VOID
        self._loop_depth = 0

    def check(self) -> CheckedProgram:
        self._collect_structs()
        self._collect_globals()
        self._collect_functions()
        for func in self.program.functions:
            self._check_func(func)
        return CheckedProgram(
            program=self.program,
            structs=self.structs,
            functions=self.functions,
            globals=self.globals,
        )

    # -- declaration collection ---------------------------------------------

    def _collect_structs(self) -> None:
        for decl in self.program.structs:
            if decl.name in self.structs:
                raise TypeError_(f"duplicate struct '{decl.name}'", decl.line)
            self.structs[decl.name] = StructDef(decl.name)
        for decl in self.program.structs:
            sdef = self.structs[decl.name]
            for fname, ftype in zip(decl.field_names, decl.field_types):
                self._validate_type(ftype, decl.line)
                if sdef.has_field(fname):
                    raise TypeError_(
                        f"duplicate field '{fname}' in struct '{decl.name}'", decl.line
                    )
                sdef.fields[fname] = ftype

    def _collect_globals(self) -> None:
        for decl in self.program.globals:
            self._validate_type(decl.var_type, decl.line)
            if isinstance(decl.var_type, VoidType):
                raise TypeError_("global cannot have void type", decl.line)
            if decl.name in self.globals:
                raise TypeError_(f"duplicate global '{decl.name}'", decl.line)
            self.globals[decl.name] = decl.var_type
            if decl.init is not None:
                t = self._check_expr(decl.init, _Scope())
                self._require_assignable(decl.var_type, t, decl.init, decl.line)

    def _collect_functions(self) -> None:
        for func in self.program.functions:
            if func.name in self.functions or is_builtin(func.name):
                raise TypeError_(f"duplicate function '{func.name}'", func.line)
            self._validate_type(func.return_type, func.line)
            ptypes: List[Type] = []
            for param in func.params:
                self._validate_type(param.param_type, param.line)
                if isinstance(param.param_type, VoidType):
                    raise TypeError_("parameter cannot be void", param.line)
                ptypes.append(param.param_type)
            self.functions[func.name] = FuncSig(func.name, ptypes, func.return_type)

    def _validate_type(self, t: Optional[Type], line: int) -> None:
        if t is None:
            raise TypeError_("missing type", line)
        if isinstance(t, PointerType):
            if t.struct_name not in self.structs:
                raise TypeError_(f"unknown struct '{t.struct_name}'", line)
        elif isinstance(t, ArrayType):
            self._validate_type(t.elem, line)

    # -- functions -----------------------------------------------------------

    def _check_func(self, func: ast.FuncDecl) -> None:
        scope = _Scope()
        seen = set()
        for param in func.params:
            if param.name in seen:
                raise TypeError_(f"duplicate parameter '{param.name}'", param.line)
            seen.add(param.name)
            scope.declare(param.name, param.param_type, param.line)
        self._current_return = func.return_type
        self._check_block(func.body, scope)

    def _check_block(self, stmts: List[ast.Stmt], scope: _Scope) -> None:
        inner = _Scope(scope)
        for stmt in stmts:
            self._check_stmt(stmt, inner)

    # -- statements -----------------------------------------------------------

    def _check_stmt(self, stmt: ast.Stmt, scope: _Scope) -> None:
        if isinstance(stmt, ast.VarDecl):
            self._validate_type(stmt.var_type, stmt.line)
            if isinstance(stmt.var_type, VoidType):
                raise TypeError_("variable cannot be void", stmt.line)
            if stmt.init is not None:
                t = self._check_expr(stmt.init, scope)
                self._require_assignable(stmt.var_type, t, stmt.init, stmt.line)
            scope.declare(stmt.name, stmt.var_type, stmt.line)
        elif isinstance(stmt, ast.Assign):
            ttype = self._check_lvalue(stmt.target, scope)
            vtype = self._check_expr(stmt.value, scope)
            if stmt.compound_op is not None:
                if not (ttype.is_numeric() and vtype.is_numeric()):
                    raise TypeError_(
                        f"'{stmt.compound_op}=' needs numeric operands, got "
                        f"{ttype} and {vtype}",
                        stmt.line,
                    )
                result = unify_numeric(ttype, vtype)
                self._require_assignable(ttype, result, stmt.value, stmt.line)
            else:
                self._require_assignable(ttype, vtype, stmt.value, stmt.line)
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr, scope)
        elif isinstance(stmt, ast.If):
            cond = self._check_expr(stmt.cond, scope)
            self._require_condition(cond, stmt.line)
            self._check_block(stmt.then_body, scope)
            self._check_block(stmt.else_body, scope)
        elif isinstance(stmt, ast.While):
            cond = self._check_expr(stmt.cond, scope)
            self._require_condition(cond, stmt.line)
            self._loop_depth += 1
            self._check_block(stmt.body, scope)
            self._loop_depth -= 1
        elif isinstance(stmt, ast.For):
            inner = _Scope(scope)
            if stmt.init is not None:
                self._check_stmt(stmt.init, inner)
            if stmt.cond is not None:
                cond = self._check_expr(stmt.cond, inner)
                self._require_condition(cond, stmt.line)
            if stmt.step is not None:
                self._check_stmt(stmt.step, inner)
            self._loop_depth += 1
            self._check_block(stmt.body, inner)
            self._loop_depth -= 1
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                if not isinstance(self._current_return, VoidType):
                    raise TypeError_("missing return value", stmt.line)
            else:
                if isinstance(self._current_return, VoidType):
                    raise TypeError_("void function returns a value", stmt.line)
                t = self._check_expr(stmt.value, scope)
                self._require_assignable(self._current_return, t, stmt.value, stmt.line)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            if self._loop_depth == 0:
                raise TypeError_("break/continue outside a loop", stmt.line)
        else:  # pragma: no cover - parser produces no other nodes
            raise TypeError_(f"unknown statement {type(stmt).__name__}", stmt.line)

    def _check_lvalue(self, expr: ast.Expr, scope: _Scope) -> Type:
        if not isinstance(expr, (ast.Name, ast.FieldAccess, ast.IndexAccess)):
            raise TypeError_("expression is not assignable", expr.line)
        return self._check_expr(expr, scope)

    # -- expressions ------------------------------------------------------------

    def _check_expr(self, expr: ast.Expr, scope: _Scope) -> Type:
        t = self._infer(expr, scope)
        expr.type = t
        return t

    def _infer(self, expr: ast.Expr, scope: _Scope) -> Type:
        if isinstance(expr, ast.IntLit):
            return INT
        if isinstance(expr, ast.FloatLit):
            return FLOAT
        if isinstance(expr, ast.BoolLit):
            return BOOL
        if isinstance(expr, ast.StringLit):
            return STRING
        if isinstance(expr, ast.NullLit):
            # The null literal is polymorphic; the parent context refines it
            # through `assignable`/comparison handling below.
            return PointerType("$null")
        if isinstance(expr, ast.Name):
            local = scope.lookup(expr.ident)
            if local is not None:
                return local
            if expr.ident in self.globals:
                return self.globals[expr.ident]
            raise TypeError_(f"undefined variable '{expr.ident}'", expr.line)
        if isinstance(expr, ast.FieldAccess):
            base = self._check_expr(expr.base, scope)
            if not isinstance(base, PointerType):
                raise TypeError_(
                    f"field access on non-pointer type {base}", expr.line
                )
            sdef = self.structs.get(base.struct_name)
            if sdef is None or not sdef.has_field(expr.field_name):
                raise TypeError_(
                    f"struct '{base.struct_name}' has no field '{expr.field_name}'",
                    expr.line,
                )
            return sdef.field_type(expr.field_name)
        if isinstance(expr, ast.IndexAccess):
            base = self._check_expr(expr.base, scope)
            if not isinstance(base, ArrayType):
                raise TypeError_(f"indexing non-array type {base}", expr.line)
            idx = self._check_expr(expr.index, scope)
            if not isinstance(idx, IntType):
                raise TypeError_(f"array index must be int, got {idx}", expr.line)
            return base.elem
        if isinstance(expr, ast.NewStruct):
            if expr.struct_name not in self.structs:
                raise TypeError_(f"unknown struct '{expr.struct_name}'", expr.line)
            return PointerType(expr.struct_name)
        if isinstance(expr, ast.NewArray):
            self._validate_type(expr.elem_type, expr.line)
            n = self._check_expr(expr.length, scope)
            if not isinstance(n, IntType):
                raise TypeError_("array length must be int", expr.line)
            return ArrayType(expr.elem_type)
        if isinstance(expr, ast.UnOp):
            operand = self._check_expr(expr.operand, scope)
            if expr.op == "-":
                if not operand.is_numeric():
                    raise TypeError_(f"unary '-' on {operand}", expr.line)
                return operand
            if expr.op == "!":
                if not is_condition_type(operand):
                    raise TypeError_(f"'!' on {operand}", expr.line)
                return BOOL
            raise TypeError_(f"unknown unary op {expr.op}", expr.line)
        if isinstance(expr, ast.BinOp):
            return self._infer_binop(expr, scope)
        if isinstance(expr, ast.Call):
            return self._infer_call(expr, scope)
        raise TypeError_(f"unknown expression {type(expr).__name__}", expr.line)

    def _infer_binop(self, expr: ast.BinOp, scope: _Scope) -> Type:
        lhs = self._check_expr(expr.lhs, scope)
        rhs = self._check_expr(expr.rhs, scope)
        op = expr.op
        if op in ("&&", "||"):
            for t, side in ((lhs, expr.lhs), (rhs, expr.rhs)):
                if not is_condition_type(t):
                    raise TypeError_(f"'{op}' on {t}", side.line)
            return BOOL
        if op in ("==", "!="):
            if self._comparable(lhs, rhs):
                return BOOL
            raise TypeError_(f"cannot compare {lhs} with {rhs}", expr.line)
        if op in ("<", "<=", ">", ">="):
            if lhs.is_numeric() and rhs.is_numeric():
                return BOOL
            raise TypeError_(f"ordering on {lhs} and {rhs}", expr.line)
        if op in ("+", "-", "*", "/"):
            if lhs.is_numeric() and rhs.is_numeric():
                return unify_numeric(lhs, rhs)
            raise TypeError_(f"arithmetic on {lhs} and {rhs}", expr.line)
        if op == "%":
            if isinstance(lhs, IntType) and isinstance(rhs, IntType):
                return INT
            raise TypeError_("'%' requires int operands", expr.line)
        raise TypeError_(f"unknown operator {op}", expr.line)

    def _comparable(self, lhs: Type, rhs: Type) -> bool:
        if lhs.is_numeric() and rhs.is_numeric():
            return True
        if isinstance(lhs, BoolType) and isinstance(rhs, BoolType):
            return True
        if lhs.is_reference() or rhs.is_reference():
            return self._null_compatible(lhs, rhs)
        return False

    @staticmethod
    def _null_compatible(lhs: Type, rhs: Type) -> bool:
        def is_null(t: Type) -> bool:
            return isinstance(t, PointerType) and t.struct_name == "$null"

        if is_null(lhs) or is_null(rhs):
            return lhs.is_reference() and rhs.is_reference()
        return lhs == rhs

    def _infer_call(self, expr: ast.Call, scope: _Scope) -> Type:
        arg_types = [self._check_expr(a, scope) for a in expr.args]
        if is_builtin(expr.func):
            return self._infer_builtin(expr, arg_types)
        sig = self.functions.get(expr.func)
        if sig is None:
            raise TypeError_(f"undefined function '{expr.func}'", expr.line)
        if len(arg_types) != len(sig.param_types):
            raise TypeError_(
                f"'{expr.func}' expects {len(sig.param_types)} args, got "
                f"{len(arg_types)}",
                expr.line,
            )
        for arg, ptype, atype in zip(expr.args, sig.param_types, arg_types):
            self._require_assignable(ptype, atype, arg, arg.line)
        return sig.return_type

    def _infer_builtin(self, expr: ast.Call, arg_types: List[Type]) -> Type:
        name = expr.func
        builtin = BUILTINS[name]
        if name == "print":
            return VOID
        if name == "len":
            if len(arg_types) != 1 or not isinstance(arg_types[0], ArrayType):
                raise TypeError_("len() takes one array argument", expr.line)
            return INT
        if name in ("to_int", "to_float"):
            if len(arg_types) != 1 or not arg_types[0].is_numeric():
                raise TypeError_(f"{name}() takes one numeric argument", expr.line)
            return INT if name == "to_int" else FLOAT
        if name == "abs":
            if len(arg_types) != 1 or not arg_types[0].is_numeric():
                raise TypeError_("abs() takes one numeric argument", expr.line)
            return arg_types[0]
        if name in ("min", "max"):
            if len(arg_types) != 2 or not all(t.is_numeric() for t in arg_types):
                raise TypeError_(f"{name}() takes two numeric arguments", expr.line)
            return unify_numeric(arg_types[0], arg_types[1])
        # Fixed-signature math builtins; ints are implicitly widened.
        params = builtin.param_types or ()
        if len(arg_types) != len(params):
            raise TypeError_(
                f"{name}() expects {len(params)} args, got {len(arg_types)}",
                expr.line,
            )
        for arg, ptype, atype in zip(expr.args, params, arg_types):
            self._require_assignable(ptype, atype, arg, arg.line)
        assert builtin.return_type is not None
        return builtin.return_type

    # -- helpers ---------------------------------------------------------------

    def _require_assignable(
        self, target: Type, source: Type, expr: ast.Expr, line: int
    ) -> None:
        if isinstance(source, PointerType) and source.struct_name == "$null":
            if target.is_reference():
                # Refine the null literal's type to the context type so that
                # lowering knows what it produces.
                expr.type = target
                return
            raise TypeError_(f"cannot assign null to {target}", line)
        if not assignable(target, source):
            raise TypeError_(f"cannot assign {source} to {target}", line)

    @staticmethod
    def _require_condition(t: Type, line: int) -> None:
        if not is_condition_type(t):
            raise TypeError_(f"type {t} is not usable as a condition", line)


def check(program: ast.Program) -> CheckedProgram:
    """Type-check ``program`` and return the annotated result."""
    return Checker(program).check()
