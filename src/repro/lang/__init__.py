"""MiniC front end: lexer, parser, AST and type checker."""

from repro.lang.checker import CheckedProgram, check
from repro.lang.errors import LexError, MiniCError, ParseError, TypeError_
from repro.lang.lexer import tokenize
from repro.lang.parser import parse

__all__ = [
    "CheckedProgram",
    "LexError",
    "MiniCError",
    "ParseError",
    "TypeError_",
    "check",
    "parse",
    "tokenize",
]
