"""Builtin functions shared by the checker, lowering and interpreter.

Builtins fall into three groups:

* ``print`` — the only I/O primitive.  Loops containing it are excluded from
  DCA candidate selection (paper §IV-E).
* pure math — side-effect free, safe inside payloads.
* ``len`` — array length query, pure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

from repro.lang.types import FLOAT, INT, Type


@dataclass(frozen=True)
class Builtin:
    """Description of one builtin function."""

    name: str
    #: None means polymorphic/variadic, handled specially by the checker.
    param_types: Optional[Sequence[Type]]
    return_type: Optional[Type]
    pure: bool
    #: Host implementation taking already-evaluated operand values.
    impl: Optional[Callable]


def _trunc_div_safe(x: float) -> int:
    return int(x)


BUILTINS: Dict[str, Builtin] = {
    # I/O.
    "print": Builtin("print", None, None, pure=False, impl=None),
    # Array length.
    "len": Builtin("len", None, INT, pure=True, impl=None),
    # Math (pure).
    "sqrt": Builtin("sqrt", (FLOAT,), FLOAT, True, lambda x: math.sqrt(x)),
    "sin": Builtin("sin", (FLOAT,), FLOAT, True, lambda x: math.sin(x)),
    "cos": Builtin("cos", (FLOAT,), FLOAT, True, lambda x: math.cos(x)),
    "exp": Builtin("exp", (FLOAT,), FLOAT, True, lambda x: math.exp(x)),
    "log": Builtin("log", (FLOAT,), FLOAT, True, lambda x: math.log(x)),
    "pow": Builtin("pow", (FLOAT, FLOAT), FLOAT, True, lambda x, y: math.pow(x, y)),
    "floor": Builtin("floor", (FLOAT,), FLOAT, True, lambda x: math.floor(x) * 1.0),
    "to_int": Builtin("to_int", None, INT, True, _trunc_div_safe),
    "to_float": Builtin("to_float", None, FLOAT, True, lambda x: float(x)),
    # Polymorphic numeric helpers (checker resolves result types).
    "abs": Builtin("abs", None, None, True, lambda x: abs(x)),
    "min": Builtin("min", None, None, True, lambda a, b: min(a, b)),
    "max": Builtin("max", None, None, True, lambda a, b: max(a, b)),
}


def is_builtin(name: str) -> bool:
    return name in BUILTINS


def builtin_is_pure(name: str) -> bool:
    return BUILTINS[name].pure
