"""Diagnostics for the MiniC front end."""

from __future__ import annotations


class MiniCError(Exception):
    """Base class for all front-end diagnostics.

    Carries an optional source location so error messages can point at the
    offending token, mirroring a conventional compiler diagnostic.
    """

    def __init__(self, message: str, line: int = 0, col: int = 0):
        self.message = message
        self.line = line
        self.col = col
        super().__init__(self._format())

    def _format(self) -> str:
        if self.line:
            return f"{self.line}:{self.col}: {self.message}"
        return self.message


class LexError(MiniCError):
    """Raised on malformed input at the character level."""


class ParseError(MiniCError):
    """Raised on a syntax error."""


class TypeError_(MiniCError):
    """Raised on a semantic/type error.

    Named with a trailing underscore to avoid shadowing the builtin.
    """
