"""Token definitions for the MiniC lexer."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto


class TokKind(Enum):
    """Kinds of lexical tokens."""

    # Literals and identifiers.
    INT = auto()
    FLOAT = auto()
    STRING = auto()
    IDENT = auto()

    # Keywords.
    KW_STRUCT = auto()
    KW_FUNC = auto()
    KW_COMMUTATIVE = auto()
    KW_IF = auto()
    KW_ELSE = auto()
    KW_WHILE = auto()
    KW_FOR = auto()
    KW_RETURN = auto()
    KW_BREAK = auto()
    KW_CONTINUE = auto()
    KW_NEW = auto()
    KW_NULL = auto()
    KW_TRUE = auto()
    KW_FALSE = auto()
    KW_INT = auto()
    KW_FLOAT = auto()
    KW_BOOL = auto()
    KW_VOID = auto()

    # Punctuation and operators.
    LPAREN = auto()
    RPAREN = auto()
    LBRACE = auto()
    RBRACE = auto()
    LBRACKET = auto()
    RBRACKET = auto()
    COMMA = auto()
    SEMI = auto()
    DOT = auto()
    ARROW = auto()
    STAR = auto()
    PLUS = auto()
    MINUS = auto()
    SLASH = auto()
    PERCENT = auto()
    ASSIGN = auto()
    PLUS_ASSIGN = auto()
    MINUS_ASSIGN = auto()
    STAR_ASSIGN = auto()
    SLASH_ASSIGN = auto()
    EQ = auto()
    NE = auto()
    LT = auto()
    LE = auto()
    GT = auto()
    GE = auto()
    AND = auto()
    OR = auto()
    NOT = auto()

    EOF = auto()


KEYWORDS = {
    "struct": TokKind.KW_STRUCT,
    "func": TokKind.KW_FUNC,
    "commutative": TokKind.KW_COMMUTATIVE,
    "if": TokKind.KW_IF,
    "else": TokKind.KW_ELSE,
    "while": TokKind.KW_WHILE,
    "for": TokKind.KW_FOR,
    "return": TokKind.KW_RETURN,
    "break": TokKind.KW_BREAK,
    "continue": TokKind.KW_CONTINUE,
    "new": TokKind.KW_NEW,
    "null": TokKind.KW_NULL,
    "true": TokKind.KW_TRUE,
    "false": TokKind.KW_FALSE,
    "int": TokKind.KW_INT,
    "float": TokKind.KW_FLOAT,
    "bool": TokKind.KW_BOOL,
    "void": TokKind.KW_VOID,
}


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position."""

    kind: TokKind
    text: str
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.col})"
