"""Nested-span tracer with Chrome trace-event export.

A :class:`Tracer` records well-nested wall-time spans::

    with tracer.span("dynamic.schedule", loop="main.L0", schedule="reverse"):
        ...

Spans nest lexically (the ``with`` statement guarantees LIFO open/close),
so the completed records form a forest that exports directly as Chrome
``chrome://tracing`` / Perfetto *complete* events (``ph: "X"``) and as an
indented text flame summary.

Time comes from an injectable monotonic clock (seconds as a float,
default :func:`time.perf_counter`), which keeps every test deterministic:
inject a fake clock and spans get exact, reproducible durations.

Stdlib-only by design — enforced by ``tools/check_obs_stdlib.py`` in CI.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["NULL_SPAN", "SpanRecord", "Tracer"]


class SpanRecord:
    """One completed span."""

    __slots__ = ("sid", "parent", "name", "args", "path", "start_us", "dur_us", "depth")

    def __init__(
        self,
        sid: int,
        parent: Optional[int],
        name: str,
        args: Dict[str, object],
        path: Tuple[str, ...],
        start_us: float,
        dur_us: float,
        depth: int,
    ):
        self.sid = sid
        self.parent = parent
        self.name = name
        self.args = args
        #: Names of the enclosing spans plus this one, root first.
        self.path = path
        self.start_us = start_us
        self.dur_us = dur_us
        self.depth = depth

    @property
    def end_us(self) -> float:
        return self.start_us + self.dur_us

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<span {self.name!r} {self.dur_us:.1f}us depth={self.depth}>"


class _NullSpan:
    """Shared no-op span handed out by disabled observability contexts."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **args) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class _SpanHandle:
    """Context manager for one active span."""

    __slots__ = ("_tracer", "name", "args", "_sid", "_parent", "_path", "_start")

    def __init__(self, tracer: "Tracer", name: str, args: Dict[str, object]):
        self._tracer = tracer
        self.name = name
        self.args = args

    def set(self, **args) -> "_SpanHandle":
        """Attach extra attributes while the span is open."""
        self.args.update(args)
        return self

    def __enter__(self) -> "_SpanHandle":
        tracer = self._tracer
        self._sid = tracer._next_id
        tracer._next_id += 1
        stack = tracer._stack
        self._parent = stack[-1][0] if stack else None
        self._path = (stack[-1][1] if stack else ()) + (self.name,)
        stack.append((self._sid, self._path))
        self._start = tracer._clock()
        return self

    def __exit__(self, *exc) -> bool:
        tracer = self._tracer
        end = tracer._clock()
        tracer._stack.pop()
        tracer.spans.append(
            SpanRecord(
                sid=self._sid,
                parent=self._parent,
                name=self.name,
                args=self.args,
                path=self._path,
                start_us=(self._start - tracer._epoch) * 1e6,
                dur_us=(end - self._start) * 1e6,
                depth=len(self._path) - 1,
            )
        )
        return False


class Tracer:
    """Records nested spans against a monotonic clock."""

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._clock = clock or time.perf_counter
        self._epoch = self._clock()
        #: Completed spans in completion order (children before parents).
        self.spans: List[SpanRecord] = []
        self._stack: List[Tuple[int, Tuple[str, ...]]] = []
        self._next_id = 0

    def span(self, name: str, **args) -> _SpanHandle:
        """A context manager recording one nested span."""
        return _SpanHandle(self, name, args)

    def reset(self) -> None:
        self.spans = []
        self._stack = []
        self._next_id = 0
        self._epoch = self._clock()

    # -- aggregation -----------------------------------------------------------

    def aggregate(self) -> Dict[str, Dict[str, float]]:
        """Per-name totals: ``{name: {"count": n, "total_ms": ms}}``."""
        out: Dict[str, Dict[str, float]] = {}
        for rec in self.spans:
            agg = out.setdefault(rec.name, {"count": 0, "total_ms": 0.0})
            agg["count"] += 1
            agg["total_ms"] += rec.dur_us / 1000.0
        return out

    def total_ms(self, name: str) -> float:
        return sum(r.dur_us for r in self.spans if r.name == name) / 1000.0

    # -- export ----------------------------------------------------------------

    def to_chrome_trace(self, pid: int = 1, tid: int = 1) -> Dict[str, object]:
        """The trace as Chrome trace-event JSON (``chrome://tracing``).

        Every span becomes a *complete* event (``ph: "X"``) with ``ts`` and
        ``dur`` in microseconds; nesting is conveyed by time containment on
        the single thread lane, which both Chrome and Perfetto render as a
        flame graph.
        """
        events = []
        for rec in sorted(self.spans, key=lambda r: (r.start_us, -r.dur_us)):
            events.append(
                {
                    "name": rec.name,
                    "cat": "repro",
                    "ph": "X",
                    "ts": rec.start_us,
                    "dur": rec.dur_us,
                    "pid": pid,
                    "tid": tid,
                    "args": dict(rec.args),
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def flame_summary(self) -> str:
        """Indented text flame view aggregated by span path."""
        if not self.spans:
            return "(no spans recorded)"
        totals: Dict[Tuple[str, ...], List[float]] = {}
        for rec in self.spans:
            agg = totals.setdefault(rec.path, [0.0, 0])
            agg[0] += rec.dur_us
            agg[1] += 1
        root_total = sum(us for path, (us, _) in totals.items() if len(path) == 1)
        lines = []
        for path in sorted(totals):
            us, count = totals[path]
            pct = (us / root_total * 100.0) if root_total else 0.0
            indent = "  " * (len(path) - 1)
            label = f"{indent}{path[-1]}"
            lines.append(
                f"{label:<40s} {us / 1000.0:10.3f} ms {int(count):7d}x {pct:6.1f}%"
            )
        return "\n".join(lines)
