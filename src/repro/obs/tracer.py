"""Nested-span tracer with Chrome trace-event export.

A :class:`Tracer` records well-nested wall-time spans::

    with tracer.span("dynamic.schedule", loop="main.L0", schedule="reverse"):
        ...

Spans nest lexically (the ``with`` statement guarantees LIFO open/close),
so the completed records form a forest that exports directly as Chrome
``chrome://tracing`` / Perfetto *complete* events (``ph: "X"``) and as an
indented text flame summary.

Time comes from an injectable monotonic clock (seconds as a float,
default :func:`time.perf_counter`), which keeps every test deterministic:
inject a fake clock and spans get exact, reproducible durations.

Stdlib-only by design — enforced by ``tools/check_obs_stdlib.py`` in CI.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["NULL_SPAN", "SpanRecord", "Tracer"]


class SpanRecord:
    """One completed span."""

    __slots__ = (
        "sid",
        "parent",
        "name",
        "args",
        "path",
        "start_us",
        "dur_us",
        "depth",
        "lane",
    )

    def __init__(
        self,
        sid: int,
        parent: Optional[int],
        name: str,
        args: Dict[str, object],
        path: Tuple[str, ...],
        start_us: float,
        dur_us: float,
        depth: int,
        lane: int = 0,
    ):
        self.sid = sid
        self.parent = parent
        self.name = name
        self.args = args
        #: Names of the enclosing spans plus this one, root first.
        self.path = path
        self.start_us = start_us
        self.dur_us = dur_us
        self.depth = depth
        #: Thread lane for export: 0 is the coordinator; spans absorbed
        #: from worker processes keep their worker's lane number, so a
        #: Chrome trace renders each worker as its own row.
        self.lane = lane

    @property
    def end_us(self) -> float:
        return self.start_us + self.dur_us

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<span {self.name!r} {self.dur_us:.1f}us depth={self.depth}>"


class _NullSpan:
    """Shared no-op span handed out by disabled observability contexts."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **args) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class _SpanHandle:
    """Context manager for one active span."""

    __slots__ = ("_tracer", "name", "args", "_sid", "_parent", "_path", "_start")

    def __init__(self, tracer: "Tracer", name: str, args: Dict[str, object]):
        self._tracer = tracer
        self.name = name
        self.args = args

    def set(self, **args) -> "_SpanHandle":
        """Attach extra attributes while the span is open."""
        self.args.update(args)
        return self

    def __enter__(self) -> "_SpanHandle":
        tracer = self._tracer
        self._sid = tracer._next_id
        tracer._next_id += 1
        stack = tracer._stack
        self._parent = stack[-1][0] if stack else None
        self._path = (stack[-1][1] if stack else ()) + (self.name,)
        stack.append((self._sid, self._path))
        self._start = tracer._clock()
        return self

    def __exit__(self, *exc) -> bool:
        tracer = self._tracer
        end = tracer._clock()
        tracer._stack.pop()
        tracer.spans.append(
            SpanRecord(
                sid=self._sid,
                parent=self._parent,
                name=self.name,
                args=self.args,
                path=self._path,
                start_us=(self._start - tracer._epoch) * 1e6,
                dur_us=(end - self._start) * 1e6,
                depth=len(self._path) - 1,
            )
        )
        return False


class Tracer:
    """Records nested spans against a monotonic clock."""

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._clock = clock or time.perf_counter
        self._epoch = self._clock()
        #: Completed spans in completion order (children before parents).
        self.spans: List[SpanRecord] = []
        self._stack: List[Tuple[int, Tuple[str, ...]]] = []
        self._next_id = 0

    def span(self, name: str, **args) -> _SpanHandle:
        """A context manager recording one nested span."""
        return _SpanHandle(self, name, args)

    def absorb(self, span_dicts: List[Dict[str, object]], lane: int = 1) -> None:
        """Merge spans recorded by another tracer (a worker process).

        ``span_dicts`` is the worker's serialized span list (one dict per
        :class:`SpanRecord`).  Span ids are remapped past this tracer's
        counter (parent links preserved within the batch), timestamps are
        re-based onto this tracer's current offset so the batch lands
        "now" on its own ``lane``, and relative timing within the batch
        survives intact.
        """
        if not span_dicts:
            return
        base = (self._clock() - self._epoch) * 1e6
        batch_start = min(float(d["start_us"]) for d in span_dicts)
        sid_map: Dict[int, int] = {}
        for d in span_dicts:
            sid_map[int(d["sid"])] = self._next_id
            self._next_id += 1
        for d in span_dicts:
            parent = d.get("parent")
            self.spans.append(
                SpanRecord(
                    sid=sid_map[int(d["sid"])],
                    parent=sid_map.get(parent) if parent is not None else None,
                    name=str(d["name"]),
                    args=dict(d.get("args") or {}),
                    path=tuple(d.get("path") or (str(d["name"]),)),
                    start_us=base + float(d["start_us"]) - batch_start,
                    dur_us=float(d["dur_us"]),
                    depth=int(d.get("depth", 0)),
                    lane=lane,
                )
            )

    def reset(self) -> None:
        self.spans = []
        self._stack = []
        self._next_id = 0
        self._epoch = self._clock()

    # -- aggregation -----------------------------------------------------------

    def aggregate(self) -> Dict[str, Dict[str, float]]:
        """Per-name totals: ``{name: {"count": n, "total_ms": ms}}``."""
        out: Dict[str, Dict[str, float]] = {}
        for rec in self.spans:
            agg = out.setdefault(rec.name, {"count": 0, "total_ms": 0.0})
            agg["count"] += 1
            agg["total_ms"] += rec.dur_us / 1000.0
        return out

    def total_ms(self, name: str) -> float:
        return sum(r.dur_us for r in self.spans if r.name == name) / 1000.0

    # -- export ----------------------------------------------------------------

    def to_chrome_trace(self, pid: int = 1, tid: int = 1) -> Dict[str, object]:
        """The trace as Chrome trace-event JSON (``chrome://tracing``).

        Every span becomes a *complete* event (``ph: "X"``) with ``ts`` and
        ``dur`` in microseconds; nesting is conveyed by time containment on
        the single thread lane, which both Chrome and Perfetto render as a
        flame graph.
        """
        events = []
        for rec in sorted(self.spans, key=lambda r: (r.start_us, -r.dur_us)):
            events.append(
                {
                    "name": rec.name,
                    "cat": "repro",
                    "ph": "X",
                    "ts": rec.start_us,
                    "dur": rec.dur_us,
                    "pid": pid,
                    # Absorbed worker spans render on their own rows.
                    "tid": tid + rec.lane,
                    "args": dict(rec.args),
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def flame_summary(self) -> str:
        """Indented text flame view aggregated by span path."""
        if not self.spans:
            return "(no spans recorded)"
        totals: Dict[Tuple[str, ...], List[float]] = {}
        for rec in self.spans:
            agg = totals.setdefault(rec.path, [0.0, 0])
            agg[0] += rec.dur_us
            agg[1] += 1
        root_total = sum(us for path, (us, _) in totals.items() if len(path) == 1)
        lines = []
        for path in sorted(totals):
            us, count = totals[path]
            pct = (us / root_total * 100.0) if root_total else 0.0
            indent = "  " * (len(path) - 1)
            label = f"{indent}{path[-1]}"
            lines.append(
                f"{label:<40s} {us / 1000.0:10.3f} ms {int(count):7d}x {pct:6.1f}%"
            )
        return "\n".join(lines)
