"""Append-only sqlite run ledger with cross-run trend + regression checks.

Where spans/metrics/events describe *one* run, the ledger persists the
per-run headline numbers across runs — config fingerprint, verdict
counts, stage times, schedule executions saved, cache hit rate — so
``repro stats`` can render the perf trajectory (the paper's Fig. 5/6
style comparisons) and CI can fail on a regression without re-running
old analyses.

The store follows the analysis cache's sqlite conventions: WAL when the
filesystem allows it, a generous busy timeout, short transactions, a
``meta`` key/value table carrying the schema version.  Rows are only
ever appended; series identity is ``(kind, program, fingerprint)``, so
a config change starts a fresh series instead of polluting an old one.

Regression policy (:meth:`RunLedger.check_regressions`): within each
series, the latest run is compared against the rolling median of up to
``window`` prior runs — wall time must not rise more than
``threshold_pct`` percent, and schedule executions saved must not drop
more than ``threshold_pct`` percent (when the median was nonzero).

Stdlib-only by design — enforced by ``tools/check_obs_stdlib.py`` in CI.
"""

from __future__ import annotations

import json
import os
import sqlite3
import statistics
import time
from typing import Callable, Dict, List, Optional

__all__ = [
    "LEDGER_DB_NAME",
    "LEDGER_DIR_ENV",
    "RunLedger",
    "resolve_ledger_dir",
]

LEDGER_DB_NAME = "run-ledger.sqlite"

#: Environment fallback for the ledger directory (CLI flag wins).
LEDGER_DIR_ENV = "REPRO_LEDGER_DIR"

#: v2: per-tier verdict counts (``tiers`` column) — pre-existing
#: databases are migrated in place via ``ALTER TABLE ADD COLUMN``.
_SCHEMA_VERSION = 2

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    run_id INTEGER PRIMARY KEY AUTOINCREMENT,
    recorded_at REAL NOT NULL,
    kind TEXT NOT NULL,
    program TEXT NOT NULL,
    fingerprint TEXT NOT NULL,
    wall_ms REAL NOT NULL,
    schedule_executions INTEGER NOT NULL DEFAULT 0,
    executions_saved INTEGER NOT NULL DEFAULT 0,
    cache_hits INTEGER NOT NULL DEFAULT 0,
    cache_misses INTEGER NOT NULL DEFAULT 0,
    verdicts TEXT NOT NULL DEFAULT '{}',
    tiers TEXT NOT NULL DEFAULT '{}',
    stage_times TEXT NOT NULL DEFAULT '{}',
    extra TEXT
);
CREATE INDEX IF NOT EXISTS runs_series
    ON runs (kind, program, fingerprint, run_id);
"""

_ROW_FIELDS = (
    "run_id", "recorded_at", "kind", "program", "fingerprint", "wall_ms",
    "schedule_executions", "executions_saved", "cache_hits", "cache_misses",
    "verdicts", "tiers", "stage_times", "extra",
)


def resolve_ledger_dir(explicit: Optional[str] = None) -> Optional[str]:
    """The ledger directory to use: explicit setting, else environment."""
    if explicit:
        return explicit
    env = os.environ.get(LEDGER_DIR_ENV, "").strip()
    return env or None


class RunLedger:
    """One open handle on a persistent run-ledger directory."""

    def __init__(
        self,
        directory: str,
        clock: Optional[Callable[[], float]] = None,
    ):
        self.directory = str(directory)
        self._clock = clock or time.time
        os.makedirs(self.directory, exist_ok=True)
        self.path = os.path.join(self.directory, LEDGER_DB_NAME)
        self._conn = sqlite3.connect(self.path, timeout=30.0)
        self._conn.executescript(_SCHEMA)
        # v1 -> v2 in-place migration: the CREATE above is a no-op on an
        # existing database, so add any column it is missing.
        columns = {
            row[1]
            for row in self._conn.execute("PRAGMA table_info(runs)")
        }
        if "tiers" not in columns:
            with self._conn:
                self._conn.execute(
                    "ALTER TABLE runs "
                    "ADD COLUMN tiers TEXT NOT NULL DEFAULT '{}'"
                )
        try:  # WAL keeps concurrent recorders off each other's locks
            self._conn.execute("PRAGMA journal_mode=WAL")
        except sqlite3.DatabaseError:  # pragma: no cover - fs-dependent
            pass
        self._conn.execute("PRAGMA busy_timeout=30000")
        with self._conn:
            self._conn.execute(
                "INSERT INTO meta (key, value) VALUES (?, ?) "
                "ON CONFLICT(key) DO UPDATE SET value=excluded.value",
                ("schema_version", str(_SCHEMA_VERSION)),
            )

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- recording ---------------------------------------------------------

    def record(
        self,
        kind: str,
        program: str,
        fingerprint: str,
        wall_ms: float,
        schedule_executions: int = 0,
        executions_saved: int = 0,
        cache_hits: int = 0,
        cache_misses: int = 0,
        verdicts: Optional[Dict[str, int]] = None,
        tiers: Optional[Dict[str, int]] = None,
        stage_times: Optional[Dict[str, float]] = None,
        extra: Optional[Dict[str, object]] = None,
    ) -> int:
        """Append one run row; returns its ledger id."""
        with self._conn:
            cursor = self._conn.execute(
                "INSERT INTO runs (recorded_at, kind, program, fingerprint, "
                "wall_ms, schedule_executions, executions_saved, cache_hits, "
                "cache_misses, verdicts, tiers, stage_times, extra) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    self._clock(),
                    kind,
                    program,
                    fingerprint,
                    float(wall_ms),
                    int(schedule_executions),
                    int(executions_saved),
                    int(cache_hits),
                    int(cache_misses),
                    json.dumps(verdicts or {}, sort_keys=True),
                    json.dumps(tiers or {}, sort_keys=True),
                    json.dumps(stage_times or {}, sort_keys=True),
                    json.dumps(extra, sort_keys=True)
                    if extra is not None
                    else None,
                ),
            )
        return int(cursor.lastrowid)

    # -- reading -----------------------------------------------------------

    @staticmethod
    def _row_to_dict(row) -> Dict[str, object]:
        out = dict(zip(_ROW_FIELDS, row))
        out["verdicts"] = json.loads(out["verdicts"] or "{}")
        out["tiers"] = json.loads(out["tiers"] or "{}")
        out["stage_times"] = json.loads(out["stage_times"] or "{}")
        out["extra"] = json.loads(out["extra"]) if out["extra"] else None
        attempts = out["cache_hits"] + out["cache_misses"]
        out["cache_hit_rate"] = (
            out["cache_hits"] / attempts if attempts else None
        )
        return out

    def runs(
        self,
        kind: Optional[str] = None,
        program: Optional[str] = None,
        fingerprint: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[Dict[str, object]]:
        """Recorded runs, oldest first, optionally filtered."""
        clauses, params = [], []
        for column, value in (
            ("kind", kind), ("program", program), ("fingerprint", fingerprint)
        ):
            if value is not None:
                clauses.append(f"{column}=?")
                params.append(value)
        sql = f"SELECT {', '.join(_ROW_FIELDS)} FROM runs"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY run_id ASC"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(int(limit))
        return [
            self._row_to_dict(row)
            for row in self._conn.execute(sql, params).fetchall()
        ]

    def series(self) -> List[Dict[str, object]]:
        """Distinct ``(kind, program, fingerprint)`` series with run counts."""
        rows = self._conn.execute(
            "SELECT kind, program, fingerprint, COUNT(*), MIN(recorded_at), "
            "MAX(recorded_at) FROM runs GROUP BY kind, program, fingerprint "
            "ORDER BY kind, program, fingerprint"
        ).fetchall()
        return [
            {
                "kind": kind,
                "program": program,
                "fingerprint": fingerprint,
                "runs": count,
                "first_recorded_at": first,
                "last_recorded_at": last,
            }
            for kind, program, fingerprint, count, first, last in rows
        ]

    # -- trends and regressions -------------------------------------------

    def trends(self, window: int = 10) -> List[Dict[str, object]]:
        """Per-series trend summary: the latest run against the rolling
        median of up to ``window`` prior runs in the same series."""
        out: List[Dict[str, object]] = []
        for series in self.series():
            runs = self.runs(
                kind=series["kind"],
                program=series["program"],
                fingerprint=series["fingerprint"],
            )
            latest, prior = runs[-1], runs[:-1][-window:]
            entry: Dict[str, object] = {
                "kind": series["kind"],
                "program": series["program"],
                "fingerprint": series["fingerprint"],
                "runs": len(runs),
                "latest_run_id": latest["run_id"],
                "latest_wall_ms": latest["wall_ms"],
                "latest_executions_saved": latest["executions_saved"],
                "latest_cache_hit_rate": latest["cache_hit_rate"],
                "latest_tiers": latest["tiers"],
                "median_wall_ms": None,
                "median_executions_saved": None,
                "wall_ms_delta_pct": None,
                "executions_saved_delta_pct": None,
            }
            if prior:
                median_wall = statistics.median(r["wall_ms"] for r in prior)
                median_saved = statistics.median(
                    r["executions_saved"] for r in prior
                )
                entry["median_wall_ms"] = median_wall
                entry["median_executions_saved"] = median_saved
                if median_wall > 0:
                    entry["wall_ms_delta_pct"] = (
                        (latest["wall_ms"] - median_wall) / median_wall * 100.0
                    )
                if median_saved > 0:
                    entry["executions_saved_delta_pct"] = (
                        (latest["executions_saved"] - median_saved)
                        / median_saved
                        * 100.0
                    )
            out.append(entry)
        return out

    def check_regressions(
        self, threshold_pct: float = 20.0, window: int = 10
    ) -> List[Dict[str, object]]:
        """Series whose latest run regressed beyond the threshold.

        Flags a series when the latest run's wall time rose more than
        ``threshold_pct`` percent over the rolling median of prior runs,
        or when its schedule executions saved dropped more than
        ``threshold_pct`` percent below a nonzero prior median.  Series
        with no prior runs cannot regress.
        """
        regressions: List[Dict[str, object]] = []
        for trend in self.trends(window=window):
            reasons: List[str] = []
            wall_delta = trend["wall_ms_delta_pct"]
            saved_delta = trend["executions_saved_delta_pct"]
            if wall_delta is not None and wall_delta > threshold_pct:
                reasons.append(
                    f"wall time rose {wall_delta:.1f}% over the rolling "
                    f"median ({trend['latest_wall_ms']:.1f} ms vs "
                    f"{trend['median_wall_ms']:.1f} ms)"
                )
            if saved_delta is not None and saved_delta < -threshold_pct:
                reasons.append(
                    "schedule executions saved dropped "
                    f"{-saved_delta:.1f}% below the rolling median "
                    f"({trend['latest_executions_saved']} vs "
                    f"{trend['median_executions_saved']:.0f})"
                )
            if reasons:
                regressions.append({**trend, "reasons": reasons})
        return regressions
