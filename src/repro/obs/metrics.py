"""Process-local metrics registry: counters, gauges, histograms.

One :class:`MetricsRegistry` accompanies one observability context and is
reset between pipeline runs.  Instruments are created on first use::

    registry.counter("dca.schedule_executions").inc()
    registry.histogram("dca.snapshot.bytes").observe(snap.approx_bytes())

All three instrument kinds share one namespace; asking for an existing
name as a different kind is a programming error and raises ``ValueError``.

Stdlib-only by design — enforced by ``tools/check_obs_stdlib.py`` in CI.
"""

from __future__ import annotations

from typing import Dict, List, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: Union[int, float] = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name}: negative increment {n}")
        self.value += n


class Gauge:
    """Last-set value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: Union[int, float]) -> None:
        self.value = value


class Histogram:
    """Streaming summary: count / sum / min / max / mean."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def observe(self, value: Union[int, float]) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


_Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Create-on-first-use instrument registry."""

    def __init__(self):
        self._instruments: Dict[str, _Instrument] = {}

    def _get(self, name: str, kind: type) -> _Instrument:
        inst = self._instruments.get(name)
        if inst is None:
            inst = kind(name)
            self._instruments[name] = inst
        elif type(inst) is not kind:
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{type(inst).__name__}, not {kind.__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    # -- convenience -----------------------------------------------------------

    def inc(self, name: str, n: Union[int, float] = 1) -> None:
        self.counter(name).inc(n)

    def set_gauge(self, name: str, value: Union[int, float]) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: Union[int, float]) -> None:
        self.histogram(name).observe(value)

    def value(self, name: str, default=0):
        """Current value of a counter/gauge, or a histogram's count."""
        inst = self._instruments.get(name)
        if inst is None:
            return default
        if isinstance(inst, Histogram):
            return inst.count
        return inst.value

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def merge(self, payload: Dict[str, Dict[str, object]]) -> None:
        """Fold another registry's ``to_dict()`` payload into this one.

        Counters add, gauges take the incoming value, histograms combine
        their streaming summaries.  Used to merge metrics recorded by
        worker processes back into the coordinator's registry.
        """
        for name, value in (payload.get("counters") or {}).items():
            self.counter(name).inc(value)
        for name, value in (payload.get("gauges") or {}).items():
            self.gauge(name).set(value)
        for name, summary in (payload.get("histograms") or {}).items():
            hist = self.histogram(name)
            count = int(summary.get("count") or 0)
            if not count:
                continue
            hist.count += count
            hist.total += float(summary.get("sum") or 0.0)
            for bound, better in (("min", min), ("max", max)):
                incoming = summary.get(bound)
                if incoming is None:
                    continue
                current = getattr(hist, bound)
                setattr(
                    hist,
                    bound,
                    incoming if current is None else better(current, incoming),
                )

    def reset(self) -> None:
        """Drop every instrument — isolation between runs."""
        self._instruments = {}

    def to_dict(self) -> Dict[str, Dict[str, object]]:
        out: Dict[str, Dict[str, object]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            if isinstance(inst, Counter):
                out["counters"][name] = inst.value
            elif isinstance(inst, Gauge):
                out["gauges"][name] = inst.value
            else:
                out["histograms"][name] = inst.to_dict()
        return out
