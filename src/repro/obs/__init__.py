"""``repro.obs`` — pipeline-wide tracing, metrics, and event logging.

The observability subsystem has three pillars, all dependency-free
(stdlib only, CI-enforced by ``tools/check_obs_stdlib.py``):

* :mod:`repro.obs.tracer` — nested wall-time spans with Chrome
  trace-event export and a text flame summary;
* :mod:`repro.obs.metrics` — a process-local registry of counters,
  gauges and histograms;
* :mod:`repro.obs.events` — a structured JSONL event log whose severity
  scale is shared with ``repro.analysis.diagnostics``.

One :class:`ObsContext` bundles all three behind a single ``enabled``
flag.  The module keeps a process-local current context, **disabled by
default**: every instrumentation site in the pipeline guards on
``ctx.enabled`` (or receives the shared no-op span), so a disabled
context costs one attribute check — verified by
``benchmarks/test_obs_overhead.py``.

Typical use::

    import repro.obs as obs

    ctx = obs.enable()
    report = DcaAnalyzer(module).analyze()
    chrome_json = ctx.tracer.to_chrome_trace()
    metrics = ctx.metrics.to_dict()
    obs.disable()

or, scoped (restores the previous context on exit)::

    with obs.enabled() as ctx:
        ...
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, Optional

from repro.obs.events import SEVERITIES, Event, EventLog
from repro.obs.export import (
    EXPORT_FORMATS,
    parse_openmetrics,
    render_export,
    render_openmetrics,
)
from repro.obs.ledger import (
    LEDGER_DB_NAME,
    LEDGER_DIR_ENV,
    RunLedger,
    resolve_ledger_dir,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracer import NULL_SPAN, SpanRecord, Tracer

__all__ = [
    "Counter",
    "EXPORT_FORMATS",
    "Event",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "ObsContext",
    "RunLedger",
    "SEVERITIES",
    "SpanRecord",
    "Tracer",
    "current",
    "disable",
    "enable",
    "enabled",
    "is_enabled",
    "parse_openmetrics",
    "render_export",
    "render_openmetrics",
    "reset",
    "LEDGER_DB_NAME",
    "LEDGER_DIR_ENV",
    "resolve_ledger_dir",
]


class ObsContext:
    """Tracer + metrics + events behind one ``enabled`` flag."""

    __slots__ = ("enabled", "tracer", "metrics", "events")

    def __init__(
        self,
        enabled: bool = False,
        clock: Optional[Callable[[], float]] = None,
    ):
        self.enabled = enabled
        self.tracer = Tracer(clock=clock)
        self.metrics = MetricsRegistry()
        self.events = EventLog(clock=clock)

    # -- guarded fast-path API (no-ops when disabled) --------------------------

    def span(self, name: str, **args):
        """A nested span context manager; the shared no-op when disabled."""
        if not self.enabled:
            return NULL_SPAN
        return self.tracer.span(name, **args)

    def count(self, name: str, n=1) -> None:
        if self.enabled:
            self.metrics.counter(name).inc(n)

    def observe(self, name: str, value) -> None:
        if self.enabled:
            self.metrics.histogram(name).observe(value)

    def gauge(self, name: str, value) -> None:
        if self.enabled:
            self.metrics.gauge(name).set(value)

    def event(
        self, severity: str, kind: str, message: str, provenance: str = "", **fields
    ) -> None:
        if self.enabled:
            self.events.emit(severity, kind, message, provenance=provenance, **fields)

    def absorb(self, payload: Dict[str, object], lane: int = 1) -> None:
        """Merge a worker process's observability payload into this
        context: spans onto ``lane`` of the tracer, metrics into the
        registry, events re-sequenced into the log.  No-op when disabled.
        """
        if not self.enabled or not payload:
            return
        self.tracer.absorb(payload.get("spans") or [], lane=lane)
        self.metrics.merge(payload.get("metrics") or {})
        self.events.absorb(payload.get("events") or [])

    # -- lifecycle -------------------------------------------------------------

    def reset(self) -> None:
        """Clear all recorded data (isolation between runs)."""
        self.tracer.reset()
        self.metrics.reset()
        self.events.reset()

    def to_dict(self) -> Dict[str, object]:
        return {
            "enabled": self.enabled,
            "metrics": self.metrics.to_dict(),
            "spans": len(self.tracer.spans),
            "events": [e.to_dict() for e in self.events.events],
        }


#: The process-local current context; disabled by default.
_current = ObsContext(enabled=False)


def current() -> ObsContext:
    """The active observability context (disabled unless enabled)."""
    return _current


def is_enabled() -> bool:
    return _current.enabled


def enable(clock: Optional[Callable[[], float]] = None) -> ObsContext:
    """Install (and return) a fresh enabled context."""
    global _current
    _current = ObsContext(enabled=True, clock=clock)
    return _current


def disable() -> ObsContext:
    """Install (and return) a fresh disabled context."""
    global _current
    _current = ObsContext(enabled=False)
    return _current


def reset() -> None:
    """Clear the current context's recorded data."""
    _current.reset()


@contextmanager
def enabled(clock: Optional[Callable[[], float]] = None):
    """Temporarily install a fresh enabled context; restores the previous
    context on exit (for tests and scoped profiling)."""
    global _current
    previous = _current
    _current = ObsContext(enabled=True, clock=clock)
    try:
        yield _current
    finally:
        _current = previous
