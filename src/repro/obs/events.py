"""Structured JSONL event log with severity and provenance.

Complements spans (where did the time go) and metrics (how much work)
with *what happened*: one :class:`Event` per noteworthy occurrence —
a loop verdict, a mismatch, a stage decision — tagged with a severity
from the shared scale and a provenance string naming the pipeline stage
that produced it (``selection`` / ``static`` / ``dynamic`` / ...).

The severity scale is the single source of truth for the whole system:
``repro.analysis.diagnostics`` derives its compiler-diagnostic severities
(warning/info/note) from this tuple, so lint diagnostics and runtime
events sort and count consistently.

Stdlib-only by design — enforced by ``tools/check_obs_stdlib.py`` in CI.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

__all__ = ["SEVERITIES", "Event", "EventLog"]

#: Shared severity scale, most to least severe.
SEVERITIES = ("error", "warning", "info", "note", "debug")
_SEVERITY_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}


@dataclass
class Event:
    """One structured log record."""

    seq: int
    t_ms: float
    severity: str
    kind: str
    message: str
    provenance: str = ""
    fields: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "seq": self.seq,
            "t_ms": round(self.t_ms, 3),
            "severity": self.severity,
            "kind": self.kind,
            "message": self.message,
        }
        if self.provenance:
            out["provenance"] = self.provenance
        if self.fields:
            out["fields"] = self.fields
        return out


class EventLog:
    """Append-only structured log, exportable as JSON Lines."""

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._clock = clock or time.perf_counter
        self._epoch = self._clock()
        self.events: List[Event] = []

    def emit(
        self,
        severity: str,
        kind: str,
        message: str,
        provenance: str = "",
        **fields,
    ) -> Event:
        if severity not in _SEVERITY_RANK:
            raise ValueError(
                f"unknown severity {severity!r}; expected one of {SEVERITIES}"
            )
        event = Event(
            seq=len(self.events),
            t_ms=(self._clock() - self._epoch) * 1000.0,
            severity=severity,
            kind=kind,
            message=message,
            provenance=provenance,
            fields=fields,
        )
        self.events.append(event)
        return event

    def filter(
        self,
        severity: Optional[str] = None,
        kind: Optional[str] = None,
        provenance: Optional[str] = None,
    ) -> List[Event]:
        out = []
        for event in self.events:
            if severity is not None and event.severity != severity:
                continue
            if kind is not None and event.kind != kind:
                continue
            if provenance is not None and event.provenance != provenance:
                continue
            out.append(event)
        return out

    def counts(self) -> Dict[str, int]:
        out = {name: 0 for name in SEVERITIES}
        for event in self.events:
            out[event.severity] += 1
        return out

    def absorb(self, event_dicts: List[Dict[str, object]]) -> None:
        """Append events recorded by another log (a worker process).

        Events are re-sequenced onto this log's counter; their recorded
        timestamps (worker-relative) are preserved.
        """
        for d in event_dicts:
            fields = d.get("fields") or {}
            self.events.append(
                Event(
                    seq=len(self.events),
                    t_ms=float(d.get("t_ms") or 0.0),
                    severity=str(d["severity"]),
                    kind=str(d["kind"]),
                    message=str(d["message"]),
                    provenance=str(d.get("provenance") or ""),
                    fields=dict(fields),
                )
            )

    def to_jsonl(self) -> str:
        return "\n".join(json.dumps(e.to_dict()) for e in self.events)

    def reset(self) -> None:
        self.events = []
        self._epoch = self._clock()
