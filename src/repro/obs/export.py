"""Exporters for observability data: OpenMetrics text, Chrome trace, JSONL.

The renderer half turns a :class:`~repro.obs.metrics.MetricsRegistry`
into OpenMetrics / Prometheus exposition text; the ``repro serve``
``GET /metrics`` endpoint is exactly the promised ten-line adapter over
:func:`render_openmetrics` (see :meth:`repro.serve.AnalysisServer`).  The parser half
(:func:`parse_openmetrics`) exists for round-trip validation in tests
and for downstream tooling that wants the samples back without a
Prometheus client library.

Dotted internal metric names are mangled deterministically
(``dca.schedule_executions`` → ``repro_dca_schedule_executions``), and
dimensional name families — counters whose last dotted segment is an
open-ended label such as ``interp.intrinsic.<name>`` — collapse into a
single family with a label (``repro_interp_intrinsic_total{name="..."}``)
per the :data:`LABEL_RULES` table, which keeps the exposition's
family count stable as programs exercise new intrinsics or verdicts.

Stdlib-only by design — enforced by ``tools/check_obs_stdlib.py`` in CI.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Optional, Tuple

__all__ = [
    "LABEL_RULES",
    "mangle_metric_name",
    "parse_openmetrics",
    "render_export",
    "render_openmetrics",
]

#: Prefix stamped onto every exported family.
METRIC_PREFIX = "repro_"

#: Dimensional name families: ``(dotted prefix, label key)``.  A metric
#: whose dotted name starts with the prefix exports as one family named
#: after the prefix, with the remainder of the name as the label value.
LABEL_RULES: Tuple[Tuple[str, str], ...] = (
    ("interp.intrinsic.", "name"),
    ("static.verdict.", "verdict"),
    ("batch.outcome.", "status"),
    ("exec.fallback.", "reason"),
    ("exec.backend.", "backend"),
    ("liveout.canonicalize.", "result"),
    ("serve.requests.", "endpoint"),
    ("serve.responses.", "code"),
)

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_HELP_TEXT = {
    "counter": "Monotonic counter recorded by the repro pipeline.",
    "gauge": "Last-set gauge recorded by the repro pipeline.",
    "summary": "Streaming summary recorded by the repro pipeline.",
}


def mangle_metric_name(name: str) -> str:
    """Deterministic internal-name → exposition-name mangling."""
    mangled = _INVALID_CHARS.sub("_", name)
    if not mangled.startswith(METRIC_PREFIX):
        mangled = METRIC_PREFIX + mangled
    return mangled


def _split_labels(name: str) -> Tuple[str, Dict[str, str]]:
    """Resolve a dotted metric name to ``(family, labels)``."""
    for prefix, label in LABEL_RULES:
        if name.startswith(prefix) and len(name) > len(prefix):
            return mangle_metric_name(prefix.rstrip(".")), {label: name[len(prefix):]}
    return mangle_metric_name(name), {}


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(str(value))}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_value(value) -> str:
    if isinstance(value, bool):  # bools are ints; be explicit
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


class _Family:
    """One metric family being assembled: TYPE + samples."""

    __slots__ = ("name", "kind", "samples")

    def __init__(self, name: str, kind: str):
        self.name = name
        self.kind = kind
        #: ``(sample_name, labels, value)`` in insertion order.
        self.samples: List[Tuple[str, Dict[str, str], object]] = []


def render_openmetrics(registry) -> str:
    """Render a :class:`MetricsRegistry` as OpenMetrics exposition text.

    Counters export with the ``_total`` sample suffix, gauges export
    verbatim, histograms export as ``summary`` families (``_count`` +
    ``_sum`` samples) with companion ``_min`` / ``_max`` gauge families
    when observed.  Output ends with the mandatory ``# EOF`` marker.
    """
    payload = registry.to_dict()
    families: Dict[str, _Family] = {}

    def family(name: str, kind: str) -> _Family:
        fam = families.get(name)
        if fam is None:
            fam = families[name] = _Family(name, kind)
        elif fam.kind != kind:
            raise ValueError(
                f"metric family {name!r} rendered as both "
                f"{fam.kind} and {kind}"
            )
        return fam

    for name, value in payload.get("counters", {}).items():
        fam_name, labels = _split_labels(name)
        if fam_name.endswith("_total"):
            fam_name = fam_name[: -len("_total")]
        family(fam_name, "counter").samples.append(
            (fam_name + "_total", labels, value)
        )
    for name, value in payload.get("gauges", {}).items():
        fam_name, labels = _split_labels(name)
        family(fam_name, "gauge").samples.append((fam_name, labels, value))
    for name, summary in payload.get("histograms", {}).items():
        fam_name, labels = _split_labels(name)
        fam = family(fam_name, "summary")
        fam.samples.append((fam_name + "_count", labels, summary.get("count", 0)))
        fam.samples.append((fam_name + "_sum", labels, summary.get("sum", 0.0)))
        for bound in ("min", "max"):
            if summary.get(bound) is None:
                continue
            family(f"{fam_name}_{bound}", "gauge").samples.append(
                (f"{fam_name}_{bound}", labels, summary[bound])
            )

    lines: List[str] = []
    for fam_name in sorted(families):
        fam = families[fam_name]
        lines.append(f"# HELP {fam_name} {_HELP_TEXT[fam.kind]}")
        lines.append(f"# TYPE {fam_name} {fam.kind}")
        for sample_name, labels, value in sorted(
            fam.samples, key=lambda s: (s[0], sorted(s[1].items()))
        ):
            lines.append(
                f"{sample_name}{_format_labels(labels)} {_format_value(value)}"
            )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


# -- parsing (round-trip validation and downstream tooling) -------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


_ESCAPE_RE = re.compile(r"\\(.)")
_UNESCAPES = {"n": "\n", '"': '"', "\\": "\\"}


def _unescape_label_value(value: str) -> str:
    # Single pass: sequential str.replace would corrupt an escaped
    # backslash followed by a literal ``n`` into a newline.
    return _ESCAPE_RE.sub(
        lambda m: _UNESCAPES.get(m.group(1), "\\" + m.group(1)), value
    )


def parse_openmetrics(text: str) -> Dict[str, Dict[str, object]]:
    """Parse exposition text back into families.

    Returns ``{family: {"type": kind, "help": str, "samples":
    [(sample_name, labels, value), ...]}}`` and raises :class:`ValueError`
    on malformed lines, an out-of-family sample, or a missing ``# EOF``
    terminator — strict enough that tests can use it to validate
    :func:`render_openmetrics` output.
    """
    families: Dict[str, Dict[str, object]] = {}
    saw_eof = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if saw_eof:
            raise ValueError(f"line {lineno}: content after # EOF")
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            try:
                _, keyword, name, rest = line.split(" ", 3)
            except ValueError as exc:
                raise ValueError(f"line {lineno}: malformed {line!r}") from exc
            fam = families.setdefault(
                name, {"type": None, "help": "", "samples": []}
            )
            if keyword == "HELP":
                fam["help"] = rest
            else:
                if rest not in ("counter", "gauge", "summary", "histogram"):
                    raise ValueError(f"line {lineno}: unknown type {rest!r}")
                fam["type"] = rest
            continue
        if line.startswith("#"):
            raise ValueError(f"line {lineno}: unexpected comment {line!r}")
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        sample_name = match.group("name")
        fam_name = _owning_family(sample_name, families)
        if fam_name is None:
            raise ValueError(
                f"line {lineno}: sample {sample_name!r} precedes its "
                "family's # TYPE line"
            )
        labels: Dict[str, str] = {}
        raw_labels = match.group("labels")
        if raw_labels:
            consumed = 0
            for lm in _LABEL_RE.finditer(raw_labels):
                labels[lm.group(1)] = _unescape_label_value(lm.group(2))
                consumed = lm.end()
            leftovers = raw_labels[consumed:].strip(", ")
            if leftovers:
                raise ValueError(
                    f"line {lineno}: malformed labels {raw_labels!r}"
                )
        try:
            value = float(match.group("value"))
        except ValueError as exc:
            raise ValueError(
                f"line {lineno}: malformed value {match.group('value')!r}"
            ) from exc
        families[fam_name]["samples"].append((sample_name, labels, value))
    if not saw_eof:
        raise ValueError("missing # EOF terminator")
    return families


def _owning_family(sample_name: str, families: Dict) -> Optional[str]:
    """Longest declared family that the sample name belongs to."""
    if sample_name in families:
        return sample_name
    for suffix in ("_total", "_count", "_sum", "_bucket"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if base in families:
                return base
    return None


# -- unified export dispatch --------------------------------------------------

EXPORT_FORMATS = ("openmetrics", "chrome-trace", "jsonl")


def render_export(ctx, fmt: str) -> str:
    """Render one observability context in the named export format.

    ``openmetrics`` exposes the metrics registry; ``chrome-trace`` the
    span forest as Chrome trace-event JSON; ``jsonl`` the full context —
    one typed JSON object per line (``span`` / ``counter`` / ``gauge`` /
    ``histogram`` / ``event``) — for log shippers.  ``ctx`` is
    duck-typed (anything with ``tracer`` / ``metrics`` / ``events``), so
    this module keeps its dependency arrow pointing into ``repro.obs``.
    """
    if fmt == "openmetrics":
        return render_openmetrics(ctx.metrics)
    if fmt == "chrome-trace":
        return json.dumps(ctx.tracer.to_chrome_trace(), indent=2, sort_keys=True)
    if fmt == "jsonl":
        lines: List[str] = []
        for rec in ctx.tracer.spans:
            lines.append(
                json.dumps(
                    {
                        "type": "span",
                        "name": rec.name,
                        "path": list(rec.path),
                        "start_us": round(rec.start_us, 3),
                        "dur_us": round(rec.dur_us, 3),
                        "lane": rec.lane,
                        "args": dict(rec.args),
                    },
                    sort_keys=True,
                )
            )
        payload = ctx.metrics.to_dict()
        for kind in ("counters", "gauges"):
            for name, value in payload.get(kind, {}).items():
                lines.append(
                    json.dumps(
                        {"type": kind[:-1], "name": name, "value": value},
                        sort_keys=True,
                    )
                )
        for name, summary in payload.get("histograms", {}).items():
            lines.append(
                json.dumps(
                    {"type": "histogram", "name": name, **summary},
                    sort_keys=True,
                )
            )
        for event in ctx.events.events:
            lines.append(json.dumps({"type": "event", **event.to_dict()}))
        return "\n".join(lines) + ("\n" if lines else "")
    raise ValueError(
        f"unknown export format {fmt!r}; expected one of {EXPORT_FORMATS}"
    )
