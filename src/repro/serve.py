"""``repro serve`` — a long-lived analysis daemon over :mod:`repro.api`.

The CLI pays the full cold-start bill on every invocation: interpreter
boot, schedule-engine process-pool fork, sqlite cache open.  For a
sustained request stream that cost dominates (§VI of the paper measures
analyses in the tens-to-hundreds of milliseconds once warm).  This
module keeps one process alive that fronts :class:`repro.api.AnalysisSession`
with three serving-side mechanisms:

**Shared warm state.**  One schedule-engine process pool (the
module-global pool in :mod:`repro.core.schedule_engine`, pre-forked via
:func:`~repro.core.schedule_engine.warm_shared_pool` at startup) and one
read-write :class:`~repro.cache.store.AnalysisCache` handle stay alive
across all requests.  Worker threads construct a fresh, cheap
``AnalysisSession`` per request and *borrow* the shared cache through the
session's ``cache=`` injection parameter — sessions never open or close
per-request sqlite handles.

**Request coalescing.**  In-flight duplicates are folded by the exact
persistent-cache key: module/workload digest × config fingerprint (the
per-loop component of the cache key is derived from the module, which
the digest already fixes).  N concurrent identical submissions block on
one analysis and all receive *byte-identical* response bodies — the
leader serialises the report JSON once and every follower is handed the
same bytes.  Followers are marked with an ``X-Repro-Coalesced: 1``
response header (a header, not a body field, so the body stays
identical).  A duplicate is reserved synchronously on the event loop
under a source-text key before the compile round-trip, then re-keyed by
module digest once compiled, so the check-then-reserve window is zero.

**Admission control.**  A bounded priority queue (lower value = sooner;
ties FIFO) sits in front of the worker threads.  When the pending count
reaches the configured depth, single-shot requests are rejected
immediately with ``429 Too Many Requests`` plus a ``Retry-After`` hint
estimated from the rolling mean request duration; streaming batch
requests instead *wait* for capacity — the open connection is its own
back-pressure.

Endpoints (HTTP/1.1, one request per connection)::

    POST /v1/analyze   {"source": ..., "config": {...}, "priority": n}
    POST /v1/detect    same body; adds baseline-detector verdicts
    POST /v1/batch     {"programs": [...], "fail_fast": bool} -> JSONL
    GET  /healthz      liveness + queue/pool introspection
    GET  /metrics      OpenMetrics exposition of the server registry

``GET /metrics`` is the ten-line adapter promised by
:mod:`repro.obs.export`: the server owns a private, lock-guarded
:class:`~repro.obs.metrics.MetricsRegistry` (the *global* obs context
stays disabled — enabling it would force the interp exec-backend
fallback) and the endpoint is literally ``render_openmetrics(registry)``
behind a gauge refresh.

Every served request lands one run-ledger row (kind ``serve-analyze`` /
``serve-detect``) so ``repro stats`` tracks server-side trends; inner
sessions run with ``ledger_dir="off"`` so rows are never double-counted.

Stdlib-only by design, like the rest of the tree.
"""

from __future__ import annotations

import asyncio
import contextlib
import hashlib
import json
import math
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.api import AnalysisConfig, AnalysisSession
from repro.cache import open_cache
from repro.cache.keys import module_workload_digest
from repro.core.schedule_engine import (
    engine_queue_depth,
    shared_pool_jobs,
    warm_shared_pool,
)
from repro.lang.errors import MiniCError
from repro.obs.export import render_openmetrics
from repro.obs.ledger import RunLedger
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "DEFAULT_PRIORITY",
    "DEFAULT_QUEUE_DEPTH",
    "DEFAULT_WORKERS",
    "REQUEST_CONFIG_FIELDS",
    "SERVE_HOST_ENV",
    "SERVE_PORT_ENV",
    "SERVE_PRIORITY_ENV",
    "SERVE_QUEUE_DEPTH_ENV",
    "SERVE_WORKERS_ENV",
    "AnalysisServer",
    "ServeConfig",
    "ServeClient",
    "resolve_serve_config",
    "serving",
]

# -- configuration ------------------------------------------------------------

SERVE_HOST_ENV = "REPRO_SERVE_HOST"
SERVE_PORT_ENV = "REPRO_SERVE_PORT"
SERVE_QUEUE_DEPTH_ENV = "REPRO_SERVE_QUEUE_DEPTH"
SERVE_WORKERS_ENV = "REPRO_SERVE_WORKERS"
SERVE_PRIORITY_ENV = "REPRO_SERVE_PRIORITY"

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8421
DEFAULT_QUEUE_DEPTH = 64
DEFAULT_WORKERS = 4
DEFAULT_PRIORITY = 10

#: :class:`AnalysisConfig` fields a request body's ``config`` object may
#: override.  Everything else — backend, jobs, exec backend, cache and
#: ledger wiring — is server policy, fixed at startup.
REQUEST_CONFIG_FIELDS = (
    "entry",
    "args",
    "rtol",
    "liveout_policy",
    "static_filter",
    "max_steps",
    "schedules",
    "n_random_schedules",
    "schedule_seed",
    "candidate_labels",
    "specs",
    "tiering",
    "max_pipeline_stages",
)

#: Request bodies past this size are refused with 413.
MAX_BODY_BYTES = 32 * 1024 * 1024


@dataclass(frozen=True)
class ServeConfig:
    """Resolved daemon knobs (see :func:`resolve_serve_config`)."""

    host: str = DEFAULT_HOST
    port: int = DEFAULT_PORT
    queue_depth: int = DEFAULT_QUEUE_DEPTH
    workers: int = DEFAULT_WORKERS
    default_priority: int = DEFAULT_PRIORITY

    def __post_init__(self) -> None:
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if not 0 <= self.port <= 65535:
            raise ValueError(f"port out of range: {self.port}")


def _env_int(environ, name: str) -> Optional[int]:
    raw = environ.get(name)
    if raw is None or not raw.strip():
        return None
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from None


def resolve_serve_config(
    host: Optional[str] = None,
    port: Optional[int] = None,
    queue_depth: Optional[int] = None,
    workers: Optional[int] = None,
    default_priority: Optional[int] = None,
    environ: Optional[Dict[str, str]] = None,
) -> ServeConfig:
    """Resolve serve knobs with the repo-wide precedence convention.

    Mirrors :func:`repro.core.schedule_engine.resolve_schedule_backend`
    and :func:`repro.interp.compiler.resolve_exec_backend`: an explicit
    argument (CLI flag) beats the environment variable, which beats the
    built-in default.  Environment knobs: ``REPRO_SERVE_HOST``,
    ``REPRO_SERVE_PORT``, ``REPRO_SERVE_QUEUE_DEPTH``,
    ``REPRO_SERVE_WORKERS``, ``REPRO_SERVE_PRIORITY``.
    """
    import os

    environ = os.environ if environ is None else environ
    env_host = environ.get(SERVE_HOST_ENV)
    if host is None:
        host = env_host if env_host else DEFAULT_HOST
    if port is None:
        port = _env_int(environ, SERVE_PORT_ENV)
        port = DEFAULT_PORT if port is None else port
    if queue_depth is None:
        queue_depth = _env_int(environ, SERVE_QUEUE_DEPTH_ENV)
        queue_depth = DEFAULT_QUEUE_DEPTH if queue_depth is None else queue_depth
    if workers is None:
        workers = _env_int(environ, SERVE_WORKERS_ENV)
        workers = DEFAULT_WORKERS if workers is None else workers
    if default_priority is None:
        default_priority = _env_int(environ, SERVE_PRIORITY_ENV)
        default_priority = (
            DEFAULT_PRIORITY if default_priority is None else default_priority
        )
    return ServeConfig(
        host=host,
        port=int(port),
        queue_depth=int(queue_depth),
        workers=int(workers),
        default_priority=int(default_priority),
    )


# -- request plumbing ---------------------------------------------------------

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
}

_JSON = "application/json"
_NDJSON = "application/x-ndjson"
_OPENMETRICS = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)


def _json_bytes(payload: Dict[str, object]) -> bytes:
    """Canonical response serialisation — deterministic bytes, so a
    coalesced follower's body is bit-for-bit the leader's."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )


class _Flight:
    """One in-flight analysis that duplicates can join."""

    __slots__ = ("future", "joiners", "keys")

    def __init__(self, future: "asyncio.Future") -> None:
        self.future = future
        self.joiners = 0
        #: every coalescing-map key pointing at this flight.
        self.keys: List[Tuple] = []


@dataclass
class _Job:
    """Admitted unit of work handed to a worker thread."""

    kind: str
    name: str
    source: str
    module: object
    digest: str
    fingerprint: str
    config: AnalysisConfig
    flight: _Flight = field(repr=False, default=None)


class AnalysisServer:
    """The daemon: asyncio front end, worker-thread analysis back end.

    ``base`` is the server-wide :class:`AnalysisConfig` (backend, jobs,
    exec backend, cache and ledger wiring); request bodies may override
    only :data:`REQUEST_CONFIG_FIELDS`.  Construct, then either call
    :meth:`run` (blocking; the CLI path) or wrap in :func:`serving` to
    host it on a background thread (the test/benchmark path).
    """

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        base: Optional[AnalysisConfig] = None,
    ) -> None:
        self.config = config or resolve_serve_config()
        self.base = base or AnalysisConfig()
        self.port: Optional[int] = None  # actual bound port (for port 0)
        self.ready = threading.Event()

        self.metrics = MetricsRegistry()
        self._metrics_lock = threading.Lock()
        self._avg_ms = 0.0  # EWMA of request wall time, feeds Retry-After

        # Shared warm state: one rw cache handle for the process.  The
        # store is multi-thread safe (see cache/store.py); sessions
        # borrow it and never close it.
        if self.base.cache_mode == "off":
            self._cache = None
        else:
            self._cache = open_cache(
                self.base.resolved_cache_dir(), mode=self.base.cache_mode
            )
        self._ledger_dir = self.base.resolved_ledger_dir()
        # Per-request session config: ledger rows are recorded by the
        # server itself (kind="serve-*"), never by inner sessions; a
        # disabled server cache disables per-request opens too.
        self._job_base = self.base.replace(
            ledger_dir="off",
            cache_mode=self.base.cache_mode if self._cache else "off",
        )

        # +2 so compile/digest round-trips are not starved by the
        # `workers` long-running analysis slots.
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers + 2,
            thread_name_prefix="repro-serve",
        )

        # Event-loop state, created in _serve() on the serving thread.
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._queue: Optional[asyncio.PriorityQueue] = None
        self._slots: Optional[asyncio.Condition] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._flights: Dict[Tuple, _Flight] = {}
        self._pending = 0
        self._seq = 0
        self._started_at = time.time()
        self._error: Optional[BaseException] = None

    # -- lifecycle ---------------------------------------------------------

    def run(self) -> None:
        """Serve until :meth:`stop` (or loop cancellation).  Blocking."""
        try:
            asyncio.run(self._serve())
        except BaseException as exc:
            self._error = exc
            raise
        finally:
            self.ready.set()  # unblock serving() even on startup failure

    def stop(self) -> None:
        """Thread-safe shutdown request."""
        loop, shutdown = self._loop, self._shutdown
        if loop is not None and shutdown is not None:
            loop.call_soon_threadsafe(shutdown.set)

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.PriorityQueue()
        self._slots = asyncio.Condition()
        self._shutdown = asyncio.Event()
        self._started_at = time.time()

        backend, jobs = self.base.resolved_backend()
        if backend == "process":
            # Pre-fork the shared engine pool so the first request does
            # not pay the fork+import bill.
            await self._loop.run_in_executor(None, warm_shared_pool, jobs)

        workers = [
            asyncio.create_task(self._worker())
            for _ in range(self.config.workers)
        ]
        server = await asyncio.start_server(
            self._handle_conn, self.config.host, self.config.port
        )
        self.port = server.sockets[0].getsockname()[1]
        self.ready.set()
        try:
            async with server:
                await self._shutdown.wait()
        finally:
            for task in workers:
                task.cancel()
            self._executor.shutdown(wait=False, cancel_futures=True)
            if self._cache is not None:
                self._cache.close()

    # -- metrics helpers (server-owned registry; global obs stays off) ----

    def _count(self, name: str, n: int = 1) -> None:
        with self._metrics_lock:
            self.metrics.counter(name).inc(n)

    def _observe(self, name: str, value: float) -> None:
        with self._metrics_lock:
            self.metrics.histogram(name).observe(value)

    def render_metrics(self) -> str:
        """The ``GET /metrics`` adapter over ``render_openmetrics``."""
        with self._metrics_lock:
            gauges = self.metrics
            gauges.gauge("serve.queue_depth").set(self._pending)
            gauges.gauge("serve.queue_limit").set(self.config.queue_depth)
            gauges.gauge("serve.engine_queue_depth").set(engine_queue_depth())
            gauges.gauge("serve.uptime_seconds").set(
                time.time() - self._started_at
            )
            return render_openmetrics(gauges)

    def _retry_after(self) -> int:
        """Seconds a 429'd client should wait: queue drain estimate from
        the rolling mean request duration."""
        with self._metrics_lock:
            avg_ms = self._avg_ms
        per_slot = max(avg_ms, 50.0) / 1000.0
        waves = (self._pending + 1) / max(1, self.config.workers)
        return max(1, int(math.ceil(per_slot * waves)))

    def _note_duration(self, wall_ms: float) -> None:
        with self._metrics_lock:
            if self._avg_ms <= 0.0:
                self._avg_ms = wall_ms
            else:
                self._avg_ms = 0.8 * self._avg_ms + 0.2 * wall_ms
            self.metrics.histogram("serve.request_wall_ms").observe(wall_ms)

    def healthz(self) -> Dict[str, object]:
        with self._metrics_lock:
            served = self.metrics.value("serve.analyses", 0)
            coalesced = self.metrics.value("serve.coalesced", 0)
            rejected = self.metrics.value("serve.rejected", 0)
        return {
            "status": "ok",
            "uptime_seconds": round(time.time() - self._started_at, 3),
            "queue_depth": self._pending,
            "queue_limit": self.config.queue_depth,
            "workers": self.config.workers,
            "inflight_keys": len(self._flights),
            "engine_queue_depth": engine_queue_depth(),
            "pool_jobs": shared_pool_jobs(),
            "analyses": served,
            "coalesced": coalesced,
            "rejected": rejected,
            "cache": bool(self._cache),
        }

    # -- admission ---------------------------------------------------------

    async def _admit(self, wait: bool) -> bool:
        async with self._slots:
            if not wait and self._pending >= self.config.queue_depth:
                return False
            while self._pending >= self.config.queue_depth:
                await self._slots.wait()
            self._pending += 1
            return True

    async def _release_slot(self) -> None:
        async with self._slots:
            self._pending -= 1
            self._slots.notify_all()

    # -- the worker loop ---------------------------------------------------

    async def _worker(self) -> None:
        while True:
            _priority, _seq, job = await self._queue.get()
            try:
                status, body = await self._loop.run_in_executor(
                    self._executor, self._execute_job, job
                )
            except Exception as exc:  # executor torn down, etc.
                status = 500
                body = _json_bytes({"status": "error", "error": repr(exc)})
            for key in job.flight.keys:
                self._flights.pop(key, None)
            await self._release_slot()
            if not job.flight.future.done():
                job.flight.future.set_result((status, body))

    def _execute_job(self, job: _Job) -> Tuple[int, bytes]:
        """Worker-thread body: run the analysis, serialise once."""
        start = time.perf_counter()
        report = None
        try:
            with AnalysisSession(job.config, cache=self._cache) as session:
                if job.kind == "detect":
                    outcome = session.detect(job.source, source_path=job.name)
                    report = outcome.report
                    payload = {
                        "kind": "detect",
                        "module_digest": job.digest,
                        "fingerprint": job.fingerprint,
                        "report": report.to_dict(),
                        "baselines": outcome.baseline_verdicts(),
                        "detectors": list(outcome.detector_names),
                    }
                else:
                    report = session.analyzer(
                        job.module,
                        source_text=job.source,
                        source_path=job.name,
                    ).analyze()
                    payload = {
                        "kind": "analyze",
                        "module_digest": job.digest,
                        "fingerprint": job.fingerprint,
                        "report": report.to_dict(),
                    }
            status = 200
            self._count("serve.analyses")
        except MiniCError as exc:
            status = 400
            payload = {"status": "parse-error", "error": str(exc)}
        except Exception as exc:
            status = 422
            payload = {"status": "fault", "error": repr(exc)}
            self._count("serve.faults")
        wall_ms = (time.perf_counter() - start) * 1000.0
        self._note_duration(wall_ms)
        if report is not None:
            self._record_ledger(job, report, wall_ms)
        return status, _json_bytes(payload)

    def _record_ledger(self, job: _Job, report, wall_ms: float) -> None:
        """One server-side ledger row per served analysis.

        Opened per record so each worker thread gets its own sqlite
        handle (WAL keeps concurrent recorders off each other's locks).
        Best-effort: ledger trouble must never fail a request.
        """
        if self._ledger_dir is None:
            return
        try:
            with RunLedger(self._ledger_dir) as ledger:
                ledger.record(
                    kind=f"serve-{job.kind}",
                    program=job.name,
                    fingerprint=job.fingerprint,
                    wall_ms=wall_ms,
                    schedule_executions=report.schedule_executions,
                    executions_saved=report.static_schedules_saved
                    + report.cache.schedule_executions_avoided,
                    cache_hits=report.cache.hits,
                    cache_misses=report.cache.misses,
                    verdicts=report.verdict_counts(),
                    stage_times=report.stage_times_ms,
                    extra={"module_digest": job.digest},
                )
        except Exception:
            pass

    # -- submission (coalescing + admission) -------------------------------

    def _effective_config(self, payload: Dict[str, object]) -> AnalysisConfig:
        overrides = dict(payload.get("config") or {})
        for key in ("entry", "args"):  # top-level convenience aliases
            if payload.get(key) is not None:
                overrides[key] = payload[key]
        unknown = sorted(set(overrides) - set(REQUEST_CONFIG_FIELDS))
        if unknown:
            raise ValueError(
                f"config fields not overridable per request: {unknown}"
            )
        return self._job_base.replace(**overrides)

    async def _join_flight(self, flight: _Flight) -> Tuple[int, bytes, List]:
        self._count("serve.coalesced")
        flight.joiners += 1
        status, body = await asyncio.shield(flight.future)
        return status, body, [("X-Repro-Coalesced", "1")]

    async def _submit(
        self, kind: str, payload: Dict[str, object], wait: bool
    ) -> Tuple[int, bytes, List[Tuple[str, str]]]:
        """Route one analysis request through coalescing and admission.

        Returns ``(status, body bytes, extra headers)``.
        """
        source = payload.get("source")
        if not isinstance(source, str) or not source.strip():
            return 400, _json_bytes({"error": "missing program source"}), []
        try:
            config = self._effective_config(payload)
            priority = int(
                payload.get("priority", self.config.default_priority)
            )
        except (TypeError, ValueError) as exc:
            return 400, _json_bytes({"error": str(exc)}), []

        fingerprint = config.fingerprint()
        # Synchronous reservation under the source-text key: no await
        # between lookup and insert, so concurrent duplicates can never
        # both become leaders.
        src_digest = hashlib.sha256(
            "\x00".join(
                [source, config.entry, repr(list(config.args))]
            ).encode("utf-8")
        ).hexdigest()
        skey = ("src", kind, src_digest, fingerprint)
        flight = self._flights.get(skey)
        if flight is not None:
            return await self._join_flight(flight)

        if not await self._admit(wait):
            self._count("serve.rejected")
            retry = self._retry_after()
            body = _json_bytes(
                {
                    "error": "admission queue full",
                    "queue_depth": self._pending,
                    "queue_limit": self.config.queue_depth,
                    "retry_after_seconds": retry,
                }
            )
            return 429, body, [("Retry-After", str(retry))]

        flight = _Flight(self._loop.create_future())
        flight.keys.append(skey)
        self._flights[skey] = flight
        try:
            from repro.driver import compile_program

            try:
                module = await self._loop.run_in_executor(
                    self._executor, compile_program, source
                )
            except MiniCError as exc:
                status = 400
                body = _json_bytes(
                    {"status": "parse-error", "error": str(exc)}
                )
                for key in flight.keys:
                    self._flights.pop(key, None)
                await self._release_slot()
                if not flight.future.done():
                    flight.future.set_result((status, body))
                return status, body, []

            digest = module_workload_digest(
                module, config.entry, list(config.args)
            )
            dkey = ("mod", kind, digest, fingerprint)
            existing = self._flights.get(dkey)
            if existing is not None and existing is not flight:
                # Same module via different source text: join the
                # earlier flight, dissolve ours.
                for key in flight.keys:
                    self._flights.pop(key, None)
                await self._release_slot()
                joined = await self._join_flight(existing)
                if not flight.future.done():
                    flight.future.set_result((joined[0], joined[1]))
                return joined
            flight.keys.append(dkey)
            self._flights[dkey] = flight

            job = _Job(
                kind=kind,
                name=str(payload.get("name") or digest[:12]),
                source=source,
                module=module,
                digest=digest,
                fingerprint=fingerprint,
                config=config,
                flight=flight,
            )
            self._seq += 1
            self._queue.put_nowait((priority, self._seq, job))
        except Exception as exc:
            for key in flight.keys:
                self._flights.pop(key, None)
            await self._release_slot()
            status = 500
            body = _json_bytes({"status": "error", "error": repr(exc)})
            if not flight.future.done():
                flight.future.set_result((status, body))
            return status, body, []

        status, body = await asyncio.shield(flight.future)
        return status, body, [("X-Repro-Module-Digest", job.digest)]

    # -- HTTP front end ----------------------------------------------------

    async def _read_request(self, reader):
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise ValueError(f"malformed request line: {line!r}")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length") or 0)
        if length > MAX_BODY_BYTES:
            return method, target, headers, None  # signal 413
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    async def _send(
        self,
        writer,
        status: int,
        body: bytes,
        content_type: str = _JSON,
        extra: Sequence[Tuple[str, str]] = (),
    ) -> None:
        head = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        head.extend(f"{name}: {value}" for name, value in extra)
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)
        await writer.drain()
        self._count(f"serve.responses.{status}")

    async def _handle_conn(self, reader, writer) -> None:
        try:
            try:
                request = await self._read_request(reader)
            except (ValueError, asyncio.IncompleteReadError) as exc:
                await self._send(
                    writer, 400, _json_bytes({"error": str(exc)})
                )
                return
            if request is None:
                return
            method, target, _headers, body = request
            if body is None:
                await self._send(
                    writer, 413, _json_bytes({"error": "body too large"})
                )
                return
            await self._route(method, target.split("?", 1)[0], body, writer)
        except (ConnectionError, asyncio.CancelledError):
            pass
        except Exception as exc:
            with contextlib.suppress(Exception):
                await self._send(
                    writer, 500, _json_bytes({"error": repr(exc)})
                )
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _route(self, method: str, path: str, body: bytes, writer):
        if path == "/healthz" and method == "GET":
            self._count("serve.requests.healthz")
            await self._send(writer, 200, _json_bytes(self.healthz()))
            return
        if path == "/metrics" and method == "GET":
            self._count("serve.requests.metrics")
            text = self.render_metrics().encode("utf-8")
            await self._send(writer, 200, text, content_type=_OPENMETRICS)
            return
        if path in ("/v1/analyze", "/v1/detect", "/v1/batch"):
            endpoint = path.rsplit("/", 1)[1]
            if method != "POST":
                await self._send(
                    writer, 405, _json_bytes({"error": "POST required"})
                )
                return
            self._count(f"serve.requests.{endpoint}")
            try:
                payload = json.loads(body.decode("utf-8")) if body else {}
                if not isinstance(payload, dict):
                    raise ValueError("request body must be a JSON object")
            except (ValueError, UnicodeDecodeError) as exc:
                await self._send(
                    writer,
                    400,
                    _json_bytes({"error": f"bad request body: {exc}"}),
                )
                return
            if endpoint == "batch":
                await self._respond_batch(payload, writer)
            else:
                status, resp, extra = await self._submit(
                    endpoint, payload, wait=False
                )
                await self._send(writer, status, resp, extra=extra)
            return
        await self._send(
            writer, 404, _json_bytes({"error": f"no such endpoint {path}"})
        )

    # -- batch streaming ---------------------------------------------------

    @staticmethod
    def _outcome_line(
        index: int,
        name: str,
        status: int,
        body: bytes,
        include_report: bool,
    ) -> Dict[str, object]:
        try:
            data = json.loads(body.decode("utf-8"))
        except ValueError:
            data = {}
        line: Dict[str, object] = {
            "type": "result",
            "index": index,
            "name": name,
        }
        if status == 200:
            report = data.get("report", {})
            counts = report.get("verdict_counts", {})
            line["status"] = "ok"
            line["loops"] = len(report.get("loops", []))
            line["commutative"] = int(counts.get("commutative", 0)) + int(
                counts.get("commutative-vacuous", 0)
            )
            line["schedule_executions"] = report.get("schedule_executions", 0)
            line["verdicts"] = counts
            line["module_digest"] = data.get("module_digest")
            if include_report:
                line["report"] = report
        else:
            line["status"] = data.get("status", "error")
            line["error"] = data.get("error", f"HTTP {status}")
        return line

    async def _respond_batch(self, payload: Dict[str, object], writer):
        programs = payload.get("programs")
        if not isinstance(programs, list) or not programs:
            await self._send(
                writer,
                400,
                _json_bytes({"error": "programs must be a non-empty list"}),
            )
            return
        fail_fast = bool(payload.get("fail_fast"))
        include_reports = bool(payload.get("reports"))
        base_config = dict(payload.get("config") or {})
        try:
            batch_priority = int(
                payload.get("priority", self.config.default_priority + 10)
            )
        except (TypeError, ValueError):
            await self._send(
                writer, 400, _json_bytes({"error": "priority must be int"})
            )
            return

        def sub_payload(program) -> Dict[str, object]:
            if not isinstance(program, dict):
                return {"source": None}
            merged = dict(base_config)
            if program.get("entry") is not None:
                merged["entry"] = program["entry"]
            if program.get("args") is not None:
                merged["args"] = program["args"]
            return {
                "source": program.get("source"),
                "name": program.get("name"),
                "priority": program.get("priority", batch_priority),
                "config": merged,
            }

        head = (
            "HTTP/1.1 200 OK\r\n"
            f"Content-Type: {_NDJSON}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1"))
        await writer.drain()
        self._count("serve.responses.200")

        started = time.perf_counter()
        status_counts: Dict[str, int] = {}

        async def emit(line: Dict[str, object]) -> None:
            status_counts[line["status"]] = (
                status_counts.get(line["status"], 0) + 1
            )
            writer.write(
                json.dumps(line, sort_keys=True).encode("utf-8") + b"\n"
            )
            await writer.drain()

        def name_of(index: int, program) -> str:
            if isinstance(program, dict) and program.get("name"):
                return str(program["name"])
            return f"<program {index}>"

        self._count("serve.batch.programs", len(programs))
        if fail_fast:
            failed_at = None
            for index, program in enumerate(programs):
                if failed_at is not None:
                    await emit(
                        {
                            "type": "result",
                            "index": index,
                            "name": name_of(index, program),
                            "status": "skipped",
                            "error": (
                                "skipped by fail-fast after "
                                f"{name_of(failed_at, programs[failed_at])}"
                            ),
                        }
                    )
                    continue
                status, body, _ = await self._submit(
                    "analyze", sub_payload(program), wait=True
                )
                await emit(
                    self._outcome_line(
                        index,
                        name_of(index, program),
                        status,
                        body,
                        include_reports,
                    )
                )
                if status != 200:
                    failed_at = index
        else:
            tasks = [
                asyncio.create_task(
                    self._submit("analyze", sub_payload(program), wait=True)
                )
                for program in programs
            ]
            for index, task in enumerate(tasks):
                status, body, _ = await task
                await emit(
                    self._outcome_line(
                        index,
                        name_of(index, programs[index]),
                        status,
                        body,
                        include_reports,
                    )
                )

        ok = status_counts.get("ok", 0)
        await emit_summary(
            writer,
            {
                "type": "summary",
                "programs": len(programs),
                "ok": ok,
                "failed": len(programs) - ok,
                "status_counts": status_counts,
                "fail_fast": fail_fast,
                "wall_ms": round((time.perf_counter() - started) * 1000.0, 3),
            },
        )


async def emit_summary(writer, summary: Dict[str, object]) -> None:
    writer.write(json.dumps(summary, sort_keys=True).encode("utf-8") + b"\n")
    await writer.drain()


# -- hosting helpers ----------------------------------------------------------


@contextlib.contextmanager
def serving(server: AnalysisServer, timeout: float = 60.0):
    """Host ``server`` on a daemon thread for the ``with`` body.

    Yields the server once it is accepting connections (``server.port``
    is the actual bound port, so ``port=0`` picks a free one).  Used by
    tests, benchmarks, and anything embedding the daemon.
    """
    thread = threading.Thread(
        target=server.run, name="repro-serve", daemon=True
    )
    thread.start()
    if not server.ready.wait(timeout):
        server.stop()
        raise RuntimeError("repro serve failed to start within timeout")
    if server._error is not None:
        raise RuntimeError("repro serve failed to start") from server._error
    try:
        yield server
    finally:
        server.stop()
        thread.join(timeout)


# -- client -------------------------------------------------------------------


class ServeClient:
    """Minimal stdlib client for the daemon (one connection per call).

    Powers ``repro batch --server`` and the test suite; also a usable
    example of the wire protocol.
    """

    def __init__(self, url: str, timeout: float = 600.0):
        from urllib.parse import urlsplit

        parts = urlsplit(url if "//" in url else f"http://{url}")
        if parts.scheme not in ("", "http"):
            raise ValueError(f"only http:// URLs are supported: {url!r}")
        self.host = parts.hostname or DEFAULT_HOST
        self.port = parts.port or DEFAULT_PORT
        self.timeout = timeout

    def _connection(self):
        import http.client

        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, object]] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        conn = self._connection()
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = _JSON
            conn.request(method, path, body=body, headers=headers)
            resp = conn.getresponse()
            data = resp.read()
            return resp.status, dict(resp.getheaders()), data
        finally:
            conn.close()

    def request_json(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, object]] = None,
    ) -> Tuple[int, Dict[str, str], Dict[str, object]]:
        status, headers, data = self.request(method, path, payload)
        return status, headers, json.loads(data.decode("utf-8"))

    # -- convenience wrappers ---------------------------------------------

    def healthz(self) -> Dict[str, object]:
        status, _, data = self.request_json("GET", "/healthz")
        if status != 200:
            raise RuntimeError(f"healthz returned {status}")
        return data

    def metrics(self) -> str:
        status, _, data = self.request("GET", "/metrics")
        if status != 200:
            raise RuntimeError(f"metrics returned {status}")
        return data.decode("utf-8")

    def analyze(
        self,
        source: str,
        config: Optional[Dict[str, object]] = None,
        name: Optional[str] = None,
        priority: Optional[int] = None,
        kind: str = "analyze",
    ) -> Tuple[int, Dict[str, str], Dict[str, object]]:
        payload: Dict[str, object] = {"source": source}
        if config:
            payload["config"] = config
        if name:
            payload["name"] = name
        if priority is not None:
            payload["priority"] = priority
        return self.request_json("POST", f"/v1/{kind}", payload)

    def batch(
        self,
        programs: Iterable[Dict[str, object]],
        config: Optional[Dict[str, object]] = None,
        fail_fast: bool = False,
        priority: Optional[int] = None,
        reports: bool = False,
    ) -> Iterator[Dict[str, object]]:
        """Stream JSONL result lines (dicts) from ``POST /v1/batch``."""
        payload: Dict[str, object] = {
            "programs": list(programs),
            "fail_fast": fail_fast,
            "reports": reports,
        }
        if config:
            payload["config"] = config
        if priority is not None:
            payload["priority"] = priority
        conn = self._connection()
        try:
            conn.request(
                "POST",
                "/v1/batch",
                body=json.dumps(payload).encode("utf-8"),
                headers={"Content-Type": _JSON},
            )
            resp = conn.getresponse()
            if resp.status != 200:
                raise RuntimeError(
                    f"batch returned {resp.status}: "
                    f"{resp.read().decode('utf-8', 'replace')}"
                )
            while True:
                raw = resp.readline()
                if not raw:
                    break
                raw = raw.strip()
                if raw:
                    yield json.loads(raw.decode("utf-8"))
        finally:
            conn.close()
