"""OpenMP clause synthesis: privatization and reduction variables.

DCA's parallelization stage (paper §IV-C) reuses the profile-driven
techniques of Tournavitis et al. [8]: variables written before they are
read in every iteration become ``private``; recognized accumulators become
``reduction`` variables (Pottenger-style idiom exploitation [35]).

The clause set feeds two consumers: the simulated executor charges the
reduction-merge cost per reduction variable, and reports/examples print
the synthesized pragma for inspection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.dynamic_deps import DynamicDepProfiler
from repro.analysis.loops import Loop
from repro.analysis.reductions import (
    COMPLEX_REDUCTIONS,
    INDUCTION,
    LoopIdioms,
    POINTER_CHASE,
)
from repro.ir.function import Function


@dataclass
class ParallelClauses:
    """Synthesized OpenMP-style clauses for one loop."""

    label: str
    private: List[str] = field(default_factory=list)
    reductions: List[str] = field(default_factory=list)
    #: Histogram arrays updated with atomics (or per-thread copies).
    atomics: List[str] = field(default_factory=list)
    #: Human-readable notes (e.g. why a variable needs no clause).
    notes: List[str] = field(default_factory=list)

    def pragma(self) -> str:
        parts = ["#pragma omp parallel for"]
        if self.private:
            parts.append(f"private({', '.join(self.private)})")
        for red in self.reductions:
            parts.append(f"reduction({red})")
        return " ".join(parts)


_REDUCTION_OPS = {
    "reduction-add": "+",
    "reduction-mul": "*",
    "reduction-minmax": "min/max",
    "reduction-minmax-cond": "min/max",
}


def synthesize_clauses(
    func: Function,
    loop: Loop,
    idioms: LoopIdioms,
    profile: Optional[DynamicDepProfiler] = None,
) -> ParallelClauses:
    """Derive the clause set for parallelizing ``loop``."""
    clauses = ParallelClauses(label=loop.label)

    for reg, klass in sorted(idioms.scalars.items(), key=lambda kv: kv[0].name):
        if klass == INDUCTION:
            clauses.private.append(reg.name)
            clauses.notes.append(f"{reg.name}: induction, becomes the loop index")
        elif klass in COMPLEX_REDUCTIONS:
            clauses.reductions.append(f"{_REDUCTION_OPS[klass]}:{reg.name}")
        elif klass == POINTER_CHASE:
            clauses.notes.append(
                f"{reg.name}: pointer-chasing iterator, linearized before dispatch"
            )
        else:
            clauses.notes.append(f"{reg.name}: carried scalar left to verification")

    # Registers defined and used only within one iteration are private by
    # construction in the outlined payload; heap locations proven
    # written-before-read by the profile are noted as privatizable.
    for update in idioms.histograms:
        clauses.atomics.append(update.array.name)

    return clauses
