"""Simulated multicore machine model.

The paper measures wall-clock speedups of OpenMP code on a 72-core Xeon.
Interpreting MiniC in Python cannot time-travel to that testbed, so the
executor *simulates* parallel execution: per-iteration instruction counts
(from :class:`repro.interp.profiler.Profiler`) are scheduled onto ``cores``
workers under a cost model with explicit fork/join, per-task dispatch and
reduction-merge overheads.  All costs are in interpreted-instruction units.

The model reproduces the *shape* of the paper's results (who scales, where
Amdahl bites, why I/O-bound kernels stay at 1×), not absolute numbers.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class MachineModel:
    """Cost model for the simulated shared-memory machine."""

    cores: int = 72
    #: One-off cost of forking/joining a parallel region (per invocation).
    fork_join_cost: int = 400
    #: Dispatch cost charged per scheduled task (chunk).
    task_cost: int = 12
    #: Per-variable cost of merging one worker's private reduction copy.
    reduction_merge_cost: int = 20
    #: "static" (contiguous chunks) or "dynamic" (greedy self-scheduling).
    schedule: str = "dynamic"
    #: Iterations per task under dynamic scheduling.
    chunk: int = 1

    def with_cores(self, cores: int) -> "MachineModel":
        return MachineModel(
            cores=cores,
            fork_join_cost=self.fork_join_cost,
            task_cost=self.task_cost,
            reduction_merge_cost=self.reduction_merge_cost,
            schedule=self.schedule,
            chunk=self.chunk,
        )


def _chunked(costs: Sequence[int], chunk: int) -> List[int]:
    if chunk <= 1:
        return list(costs)
    return [sum(costs[i : i + chunk]) for i in range(0, len(costs), chunk)]


def static_makespan(costs: Sequence[int], workers: int, task_cost: int) -> int:
    """Contiguous block partition (OpenMP ``schedule(static)``)."""
    n = len(costs)
    if n == 0:
        return 0
    workers = min(workers, n)
    base, extra = divmod(n, workers)
    makespan = 0
    start = 0
    for w in range(workers):
        size = base + (1 if w < extra else 0)
        load = sum(costs[start : start + size]) + task_cost
        start += size
        makespan = max(makespan, load)
    return makespan


def dynamic_makespan(
    costs: Sequence[int], workers: int, task_cost: int, chunk: int = 1
) -> int:
    """Greedy self-scheduling (OpenMP ``schedule(dynamic, chunk)``).

    Tasks are handed out in order to whichever worker frees up first,
    charging ``task_cost`` per dispatched task.
    """
    tasks = _chunked(costs, chunk)
    if not tasks:
        return 0
    workers = min(workers, len(tasks))
    heap = [0] * workers
    heapq.heapify(heap)
    for cost in tasks:
        busy_until = heapq.heappop(heap)
        heapq.heappush(heap, busy_until + cost + task_cost)
    return max(heap)


def parallel_invocation_time(
    costs: Sequence[int],
    model: MachineModel,
    reduction_vars: int = 0,
) -> int:
    """Simulated time of one parallel loop invocation."""
    if model.schedule == "static":
        span = static_makespan(costs, model.cores, model.task_cost)
    else:
        span = dynamic_makespan(costs, model.cores, model.task_cost, model.chunk)
    # Reduction copies merge in a tree: ceil(log2(P)) rounds.
    merge = 0
    if reduction_vars:
        rounds = max(1, (min(model.cores, max(len(costs), 1)) - 1).bit_length())
        merge = reduction_vars * model.reduction_merge_cost * rounds
    return span + model.fork_join_cost + merge


def _split_cost(cost: int, cum_before: int, cum_after: int, total: int) -> int:
    """Integer share of ``cost`` for one stage's weight slice.

    Cumulative splitting (``c*end//total - c*start//total``) partitions
    ``cost`` exactly across the stages — no rounding drift.
    """
    if total <= 0:
        return 0
    return cost * cum_after // total - cost * cum_before // total


def pipeline_invocation_time(
    costs: Sequence[int],
    stages: Sequence[Tuple[int, bool]],
    model: MachineModel,
) -> int:
    """Simulated time of one DSWP invocation.

    ``stages`` lists ``(weight, replicable)`` per pipeline stage; each
    iteration's cost is split across stages proportionally to stage
    weight.  Every stage gets one dedicated core; leftover cores are
    dealt round-robin (heaviest first) to replicable stages.  Iterations
    stream through the stages in order: a stage starts iteration *i*
    when both the previous stage has finished it and one of the stage's
    replicas is free.  Non-replicable stages keep iteration order, which
    is what lets non-commutative loops run here at all.
    """
    if not costs:
        return 0
    shapes = [(int(w), bool(p)) for w, p in stages if int(w) > 0]
    if len(shapes) < 2 or model.cores < len(shapes):
        return sum(costs) + model.fork_join_cost
    total = sum(w for w, _ in shapes)
    replicas = [1] * len(shapes)
    spare = model.cores - len(shapes)
    order = sorted(
        (i for i, (_, par) in enumerate(shapes) if par),
        key=lambda i: -shapes[i][0],
    )
    while spare > 0 and order:
        for i in order:
            if spare == 0:
                break
            replicas[i] += 1
            spare -= 1
    # Replica pools: min-heap of free times per stage.
    pools = [[0] * replicas[i] for i in range(len(shapes))]
    for pool in pools:
        heapq.heapify(pool)
    finish = 0
    for cost in costs:
        prev_done = 0
        cum = 0
        for idx, (weight, parallel) in enumerate(shapes):
            share = _split_cost(cost, cum, cum + weight, total)
            cum += weight
            free = heapq.heappop(pools[idx])
            start = max(free, prev_done)
            done = start + share + model.task_cost
            heapq.heappush(pools[idx], done)
            prev_done = done
        finish = max(finish, prev_done)
    return finish + model.fork_join_cost
