"""Parallelization stage: clause synthesis, selection, simulated executor."""

from repro.parallel.executor import LoopSpeedup, ParallelSimulator, SpeedupReport
from repro.parallel.machine import (
    MachineModel,
    dynamic_makespan,
    parallel_invocation_time,
    pipeline_invocation_time,
    static_makespan,
)
from repro.parallel.privatization import ParallelClauses, synthesize_clauses
from repro.parallel.selection import NestingObserver, Selection, select_outermost

__all__ = [
    "LoopSpeedup",
    "MachineModel",
    "NestingObserver",
    "ParallelClauses",
    "ParallelSimulator",
    "Selection",
    "SpeedupReport",
    "dynamic_makespan",
    "parallel_invocation_time",
    "pipeline_invocation_time",
    "select_outermost",
    "static_makespan",
    "synthesize_clauses",
]
