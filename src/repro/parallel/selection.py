"""Parallel-loop selection: profitability and outermost-only filtering.

Profitability analysis is out of DCA's scope (paper §V-C2) — the paper
parallelizes the commutative loops deemed profitable by the expert NPB
implementation, falling back to the hottest loops.  This module implements
that selection:

* loops must have been executed and carry a minimum coverage share;
* of any dynamically nested pair of chosen loops, only the outermost is
  parallelized (OpenMP non-nested default) — nesting is observed
  dynamically, so loops in called functions nest correctly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.interp.events import Observer


class NestingObserver(Observer):
    """Records the dynamic loop-nesting relation (parent -> child labels)."""

    wants_loops = True

    def __init__(self):
        self.parents: Dict[str, Set[str]] = {}

    def on_loop_enter(self, label: str, invocation: int) -> None:
        stack = self.interp.loop_stack
        if len(stack) >= 2:
            parent = stack[-2].label
            self.parents.setdefault(label, set()).add(parent)

    def ancestors(self, label: str) -> Set[str]:
        """Transitive dynamic ancestors of ``label``."""
        seen: Set[str] = set()
        work = list(self.parents.get(label, ()))
        while work:
            cur = work.pop()
            if cur in seen:
                continue
            seen.add(cur)
            work.extend(self.parents.get(cur, ()))
        return seen


@dataclass
class Selection:
    """The loops chosen for parallelization, with bookkeeping."""

    chosen: List[str] = field(default_factory=list)
    skipped: Dict[str, str] = field(default_factory=dict)

    def explain(self) -> str:
        lines = [f"parallelized: {', '.join(self.chosen) or '(none)'}"]
        for label, why in sorted(self.skipped.items()):
            lines.append(f"  skipped {label}: {why}")
        return "\n".join(lines)


def select_outermost(
    candidates: Sequence[str],
    coverage: Dict[str, float],
    nesting: NestingObserver,
    min_coverage: float = 0.001,
    forced: Optional[Iterable[str]] = None,
) -> Selection:
    """Greedy outermost-first selection by coverage."""
    selection = Selection()
    forced_set = set(forced or ())
    ordered = sorted(
        candidates, key=lambda l: (-(coverage.get(l, 0.0)), l)
    )
    chosen: Set[str] = set()
    for label in ordered:
        cov = coverage.get(label, 0.0)
        if label not in forced_set and cov < min_coverage:
            selection.skipped[label] = (
                f"coverage {cov:.2%} below threshold" if cov else "never executed"
            )
            continue
        ancestors = nesting.ancestors(label)
        if ancestors & chosen:
            inside = sorted(ancestors & chosen)[0]
            selection.skipped[label] = f"nested inside parallelized {inside}"
            continue
        # Never select an ancestor of an already-chosen loop either; the
        # coverage ordering makes this rare (outer loops have inclusive
        # coverage ≥ inner), but forced labels can invert it.
        if any(label in nesting.ancestors(c) for c in chosen):
            selection.skipped[label] = "contains an already-parallelized loop"
            continue
        chosen.add(label)
        selection.chosen.append(label)
    return selection
