"""The simulated multicore executor.

Given a program, a set of parallelizable loop labels and a
:class:`~repro.parallel.machine.MachineModel`, the executor:

1. profiles one sequential run, collecting per-iteration costs for every
   candidate loop plus the dynamic nesting relation;
2. selects the outermost profitable loops (``selection.select_outermost``);
3. synthesizes OpenMP-style clauses per selected loop
   (``privatization.synthesize_clauses``);
4. replaces each selected invocation's sequential cost with its simulated
   parallel makespan and derives the whole-program speedup
   (``T_seq / T_par`` — the paper's *overall* speedup metric).

``expert_extra_fraction`` models whole-program expert restructuring beyond
loop-level parallelism (paper Fig. 7's "Expert Manual"): that fraction of
the remaining serial time is treated as perfectly parallelizable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import repro.obs as obs
from repro.analysis.loops import build_loop_forest
from repro.analysis.reductions import classify_loop
from repro.interp.interpreter import Interpreter
from repro.interp.profiler import Profiler
from repro.ir.function import Module
from repro.analysis.sccdag import stage_shapes
from repro.parallel.machine import (
    MachineModel,
    parallel_invocation_time,
    pipeline_invocation_time,
)
from repro.parallel.privatization import ParallelClauses, synthesize_clauses
from repro.parallel.selection import NestingObserver, Selection, select_outermost


@dataclass
class LoopSpeedup:
    """Per-loop simulation detail."""

    label: str
    coverage: float
    invocations: int
    seq_cost: int
    par_cost: int
    clauses: Optional[ParallelClauses] = None
    #: "doall" (default) or "pipeline" (DSWP stage plan supplied).
    mode: str = "doall"

    @property
    def local_speedup(self) -> float:
        if self.par_cost == 0:
            return 1.0
        return self.seq_cost / self.par_cost


@dataclass
class SpeedupReport:
    """Whole-program simulation result."""

    t_seq: int
    t_par: int
    cores: int
    selection: Selection
    loops: Dict[str, LoopSpeedup] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        if self.t_par <= 0:
            return 1.0
        return self.t_seq / self.t_par

    def summary(self) -> str:
        lines = [
            f"T_seq={self.t_seq} T_par={self.t_par} cores={self.cores} "
            f"speedup={self.speedup:.2f}x"
        ]
        for label, det in sorted(self.loops.items()):
            tag = " [pipeline]" if det.mode == "pipeline" else ""
            lines.append(
                f"  {label}: cov={det.coverage:.1%} inv={det.invocations} "
                f"local={det.local_speedup:.1f}x{tag}"
            )
        return "\n".join(lines)


class ParallelSimulator:
    """Simulates OpenMP-style parallelization of chosen loops."""

    def __init__(
        self,
        module: Module,
        entry: str = "main",
        args: Optional[Sequence[object]] = None,
        model: Optional[MachineModel] = None,
        max_steps: Optional[int] = None,
    ):
        self.module = module
        self.entry = entry
        self.args = list(args or [])
        self.model = model or MachineModel()
        self.max_steps = max_steps
        self._profiler: Optional[Profiler] = None
        self._nesting: Optional[NestingObserver] = None

    # -- profiling ------------------------------------------------------------

    def profile(self, detail_labels: Sequence[str]) -> Profiler:
        profiler = Profiler(iteration_detail_for=set(detail_labels))
        nesting = NestingObserver()
        interp = Interpreter(
            self.module,
            observers=[nesting],
            profiler=profiler,
            max_steps=self.max_steps,
        )
        active = obs.current()
        with active.span("parallel.profile", entry=self.entry):
            interp.run(self.entry, self.args)
        if active.enabled:
            active.metrics.counter("parallel.profile_runs").inc()
            active.metrics.gauge("parallel.t_seq").set(profiler.total_cost)
        self._profiler = profiler
        self._nesting = nesting
        return profiler

    # -- simulation ---------------------------------------------------------------

    def simulate(
        self,
        candidate_labels: Sequence[str],
        min_coverage: float = 0.001,
        drop_unprofitable: bool = True,
        forced_labels: Optional[Sequence[str]] = None,
        expert_extra_fraction: float = 0.0,
        serial_fractions: Optional[Dict[str, float]] = None,
        pipeline_plans: Optional[Dict[str, Dict]] = None,
    ) -> SpeedupReport:
        """Simulate parallelizing (a profitable subset of) the candidates.

        ``pipeline_plans`` maps loop labels to serialized
        :class:`~repro.analysis.sccdag.PipelinePlan` dicts; a planned
        loop is simulated as a DSWP pipeline instead of DOALL.
        """
        active = obs.current()
        with active.span(
            "parallel.simulate", cores=self.model.cores,
            candidates=len(candidate_labels),
        ):
            report = self._simulate(
                candidate_labels,
                min_coverage,
                drop_unprofitable,
                forced_labels,
                expert_extra_fraction,
                serial_fractions,
                pipeline_plans,
            )
        if active.enabled:
            active.metrics.counter("parallel.loops_simulated").inc(
                len(report.loops)
            )
            active.metrics.gauge("parallel.speedup").set(report.speedup)
        return report

    def _simulate(
        self,
        candidate_labels: Sequence[str],
        min_coverage: float,
        drop_unprofitable: bool,
        forced_labels: Optional[Sequence[str]],
        expert_extra_fraction: float,
        serial_fractions: Optional[Dict[str, float]],
        pipeline_plans: Optional[Dict[str, Dict]] = None,
    ) -> SpeedupReport:
        profiler = self.profile(candidate_labels)
        nesting = self._nesting
        assert nesting is not None

        coverage = {
            label: profiler.coverage(label) for label in candidate_labels
        }
        selection = select_outermost(
            candidate_labels,
            coverage,
            nesting,
            min_coverage=min_coverage,
            forced=forced_labels,
        )

        t_seq = profiler.total_cost
        t_par = t_seq
        report = SpeedupReport(
            t_seq=t_seq, t_par=t_seq, cores=self.model.cores, selection=selection
        )

        clause_cache = self._clauses_for(selection.chosen)
        kept: List[str] = []
        for label in selection.chosen:
            clauses = clause_cache.get(label)
            n_red = len(clauses.reductions) if clauses else 0
            plan = (pipeline_plans or {}).get(label)
            shapes = stage_shapes(plan) if plan else []
            mode = "pipeline" if len(shapes) >= 2 else "doall"
            # DCA's linearize-then-dispatch codegen leaves the iterator
            # sequential; only the payload share of each iteration spreads
            # over the workers (relevant for PLDS traversals).
            frac = (serial_fractions or {}).get(label, 0.0)
            seq_cost = 0
            par_cost = 0
            invocations = profiler.invocations(label)
            for inv in invocations:
                costs = profiler.iteration_costs(label, inv)
                inv_seq = sum(costs)
                seq_cost += inv_seq
                if mode == "pipeline":
                    # DSWP forwards every value stage-to-stage in
                    # iteration order; the iterator rides in stage 0, so
                    # no extra serial fraction applies.
                    par_cost += pipeline_invocation_time(
                        costs, shapes, self.model
                    )
                    continue
                if frac > 0.0:
                    serial_part = int(inv_seq * frac)
                    payload = [max(int(c * (1.0 - frac)), 0) for c in costs]
                else:
                    serial_part = 0
                    payload = costs
                par_cost += serial_part + parallel_invocation_time(
                    payload, self.model, reduction_vars=n_red
                )
            if drop_unprofitable and par_cost >= seq_cost:
                selection.skipped[label] = (
                    f"unprofitable under the cost model "
                    f"({par_cost} >= {seq_cost} units)"
                )
                continue
            kept.append(label)
            t_par = t_par - seq_cost + par_cost
            report.loops[label] = LoopSpeedup(
                label=label,
                coverage=coverage.get(label, 0.0),
                invocations=len(invocations),
                seq_cost=seq_cost,
                par_cost=par_cost,
                clauses=clauses,
                mode=mode,
            )
        selection.chosen = kept

        if expert_extra_fraction > 0.0:
            serial_left = max(t_par - sum(
                d.par_cost for d in report.loops.values()
            ), 0)
            moved = int(serial_left * expert_extra_fraction)
            t_par = t_par - moved + moved // self.model.cores + (
                self.model.fork_join_cost if moved else 0
            )

        report.t_par = max(t_par, 1)
        return report

    # -- clause synthesis -----------------------------------------------------------

    def _clauses_for(self, labels: Sequence[str]) -> Dict[str, ParallelClauses]:
        out: Dict[str, ParallelClauses] = {}
        for func in self.module.functions.values():
            forest = build_loop_forest(func)
            for label in labels:
                if label in forest.loops:
                    loop = forest.loops[label]
                    idioms = classify_loop(func, loop)
                    out[label] = synthesize_clauses(func, loop, idioms)
        return out
