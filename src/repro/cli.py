"""Command-line interface.

Usage::

    python -m repro run program.mc            # compile + execute
    python -m repro analyze program.mc        # DCA verdict per loop
    python -m repro detect program.mc         # DCA vs all five baselines
    python -m repro profile program.mc        # pipeline cost breakdown
    python -m repro batch DIR ...             # analyze a program corpus
    python -m repro cache stats               # persistent-cache admin
    python -m repro stats                     # cross-run ledger trends
    python -m repro lint program.mc           # static diagnostics only
    python -m repro ir program.mc             # dump the IR

Options: ``--entry NAME`` (default main), ``--rtol X``, ``--policy
strict|eventual``, ``--cores N`` (adds a simulated speedup to analyze),
``--json`` (machine-readable reports), ``--no-static-filter`` (disable
the static pre-screen and run every loop dynamically), ``--backend
serial|process`` / ``--jobs N`` (fan schedule executions out to worker
processes; ``--jobs N`` alone implies the process backend),
``--exec-backend interp|compiled|codegen`` (closure-compile or
Python-source-compile observer-free executions instead of tree-walking
them; env ``REPRO_EXEC_BACKEND``).

Flags always beat the matching ``REPRO_*`` environment variables (see
``repro.api`` for the full precedence order).

Caching: ``analyze``/``detect``/``profile``/``batch`` accept ``--cache
DIR`` (persistent verdict cache; env ``REPRO_CACHE_DIR``), ``--no-cache``
and ``--cache-mode rw|ro|refresh|off``; ``repro cache
stats|clear|gc|verify`` administers a cache directory.

Observability: ``profile`` runs with full tracing and accepts ``--trace
out.json`` (Chrome trace-event JSON for ``chrome://tracing``),
``--metrics out.json`` and ``--events out.jsonl``; ``analyze``,
``detect`` and ``batch`` accept ``--trace out.json`` (enables tracing
for the run; ``batch`` merges per-program worker traces into one file,
one lane per program) and ``analyze``/``detect`` accept ``--profile``
(per-loop cost breakdown in text output).  ``profile --export
openmetrics|chrome-trace|jsonl`` emits the run's telemetry in a
machine-readable exposition instead of the human-readable tables
(``--export-out FILE`` redirects it to a file).

Trend tracking: ``analyze``/``detect``/``profile``/``batch`` accept
``--ledger DIR`` (append one summary row per run to a sqlite ledger;
env ``REPRO_LEDGER_DIR``; ``--no-ledger`` disables) and ``repro stats``
renders per-series trends against the rolling median, exiting 1 when a
series regressed beyond ``--threshold`` percent — wired for CI.

This module is a thin adapter over :mod:`repro.api`: every command
builds one :class:`~repro.api.AnalysisConfig` and drives an
:class:`~repro.api.AnalysisSession`.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.driver import compile_program, run_program
from repro.interp.compiler import EXEC_BACKENDS


def _read(path: str) -> str:
    with open(path) as handle:
        return handle.read()


def cmd_run(args: argparse.Namespace) -> int:
    result, out = run_program(
        _read(args.program), entry=args.entry, exec_backend=args.exec_backend
    )
    sys.stdout.write(out)
    if result is not None:
        print(f"[exit value: {result}]")
    return 0


def cmd_ir(args: argparse.Namespace) -> int:
    from repro.ir.printer import format_module

    print(format_module(compile_program(_read(args.program))))
    return 0


def _hit_rate_line(report) -> str:
    hits, tested = report.static_hit_rate()
    if not report.static_filter:
        return "static pre-screen: disabled"
    if tested == 0:
        return "static pre-screen: no loops reached the testing stage"
    return (
        f"static pre-screen: decided {hits}/{tested} tested loops "
        f"({hits / tested:.0%}); {report.schedule_executions} schedule "
        "executions performed"
    )


def _obs_session(args: argparse.Namespace):
    """Enable observability when the command asked for a trace; returns
    the enabled context, or None when tracing was not requested."""
    if not getattr(args, "trace", None):
        return None
    import repro.obs as obs

    return obs.enable()


def _obs_finish(args: argparse.Namespace, ctx) -> None:
    """Write the requested trace file and restore the disabled context."""
    if ctx is None:
        return
    import repro.obs as obs

    _write_json(args.trace, ctx.tracer.to_chrome_trace())
    print(f"trace written to {args.trace}", file=sys.stderr)
    obs.disable()


def _write_json(path: str, payload) -> None:
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1)


def _config_from_args(args: argparse.Namespace):
    """Build the session config from parsed flags — the only place the
    CLI surface maps onto :class:`repro.api.AnalysisConfig`."""
    from repro.api import AnalysisConfig

    return AnalysisConfig(
        entry=args.entry,
        rtol=getattr(args, "rtol", 1e-9),
        liveout_policy=getattr(args, "policy", "strict"),
        static_filter=not getattr(args, "no_static_filter", False),
        specs=getattr(args, "specs", None),
        backend=getattr(args, "backend", None),
        jobs=getattr(args, "jobs", None),
        exec_backend=getattr(args, "exec_backend", None),
        cache_dir=getattr(args, "cache", None),
        cache_mode=getattr(args, "cache_mode", "rw"),
        ledger_dir=getattr(args, "ledger", None),
        tiering=getattr(args, "tiering", None),
        max_pipeline_stages=getattr(args, "max_pipeline_stages", 4),
    )


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.api import AnalysisSession

    ctx = _obs_session(args)
    try:
        with AnalysisSession(_config_from_args(args)) as session:
            report = session.analyze(
                _read(args.program), source_path=args.program
            )
    finally:
        _obs_finish(args, ctx)
    if args.json:
        print(report.to_json())
        return 0
    print(report.summary())
    commutative = report.commutative_labels()
    print(f"\n{len(commutative)}/{len(report.results)} loops commutative")
    if report.tiering:
        tiers = report.tier_counts()
        rendered = " ".join(
            f"{tier}={tiers[tier]}" for tier in sorted(tiers)
        )
        print(f"tiers: {rendered or '-'}")
    print(_hit_rate_line(report))
    print(report.cost_summary())
    if args.profile:
        print()
        print(report.cost_table())

    pipeline_plans = {
        label: result.pipeline_plan
        for label, result in report.results.items()
        if result.pipeline_plan is not None
    }
    candidates = commutative + sorted(pipeline_plans)
    if args.cores and candidates:
        from repro.parallel import MachineModel, ParallelSimulator

        sim = ParallelSimulator(
            compile_program(_read(args.program)),
            entry=args.entry,
            model=MachineModel(cores=args.cores),
        )
        speedup = sim.simulate(
            candidates, pipeline_plans=pipeline_plans or None
        )
        print(f"\nSimulated on {args.cores} cores:")
        print(speedup.summary())
    return 0


def cmd_detect(args: argparse.Namespace) -> int:
    from repro.api import AnalysisSession

    obs_ctx = _obs_session(args)
    try:
        with AnalysisSession(_config_from_args(args)) as session:
            outcome = session.detect(
                _read(args.program), source_path=args.program
            )
    finally:
        _obs_finish(args, obs_ctx)
    report = outcome.report
    names = outcome.detector_names

    if args.json:
        print(
            json.dumps(
                {
                    "dca": report.to_dict(),
                    "baselines": outcome.baseline_verdicts(),
                    "costs": outcome.costs,
                },
                indent=2,
            )
        )
        return 0

    header = f"{'loop':14s}" + "".join(f"{name[:8]:>10s}" for name in names)
    header += f"{'DCA':>20s}"
    print(header)
    print("-" * len(header))
    for label in sorted(report.results):
        row = f"{label:14s}"
        for name in names:
            res = outcome.baselines[name].get(label)
            row += f"{'yes' if res and res.parallel else '-':>10s}"
        row += f"{report.results[label].verdict:>20s}"
        print(row)
    print(_hit_rate_line(report))
    profile_cost = outcome.costs.get("profile", {})
    print(
        f"cost: DCA {report.executions} executions / "
        f"{report.interp_instructions} instrs; profiled baselines "
        f"{int(profile_cost.get('executions', 0))} execution / "
        f"{int(profile_cost.get('instructions', 0))} instrs"
    )
    if args.profile:
        for name in sorted(outcome.costs):
            if name == "profile":
                continue
            cost = outcome.costs[name]
            print(
                f"  {name:14s} {cost['wall_ms']:8.2f} ms  "
                f"{int(cost['parallel'])}/{int(cost['loops'])} loops parallel"
            )
        print()
        print(report.cost_table())
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    import repro.obs as obs
    from repro.api import AnalysisSession

    try:
        with AnalysisSession(_config_from_args(args)) as session:
            report, ctx = session.profile(
                _read(args.program), source_path=args.program
            )
        if args.export:
            text = obs.render_export(ctx, args.export)
            if args.export_out:
                with open(args.export_out, "w") as handle:
                    handle.write(text)
                print(
                    f"{args.export} export written to {args.export_out}",
                    file=sys.stderr,
                )
            else:
                sys.stdout.write(text)
        else:
            print(f"== pipeline profile: {args.program} ==")
            print(report.cost_summary())
            print(_hit_rate_line(report))
            print()
            print(report.cost_table())
            print()
            print("== flame (wall time by span path) ==")
            print(ctx.tracer.flame_summary())
        if args.trace:
            _write_json(args.trace, ctx.tracer.to_chrome_trace())
            print(f"\ntrace written to {args.trace} (load in chrome://tracing)")
        if args.metrics:
            _write_json(
                args.metrics,
                {
                    "program": args.program,
                    "registry": ctx.metrics.to_dict(),
                    "report": report.metrics_dict(),
                },
            )
            print(f"metrics written to {args.metrics}")
        if args.events:
            with open(args.events, "w") as handle:
                jsonl = ctx.events.to_jsonl()
                handle.write(jsonl + "\n" if jsonl else "")
            print(f"events written to {args.events}")
    finally:
        obs.disable()
    return 0


def cmd_batch(args: argparse.Namespace) -> int:
    import repro.obs as obs
    from repro.api import AnalysisSession
    from repro.batch import STATUS_OK

    if not args.paths and not args.manifest:
        print("batch: no programs (pass paths and/or --manifest)",
              file=sys.stderr)
        return 2
    if args.server:
        if args.trace:
            print("batch: --trace is not supported with --server",
                  file=sys.stderr)
            return 2
        return _batch_via_server(args)
    config = _config_from_args(args)
    ctx = None
    if args.trace:
        ctx = obs.enable()
        config = config.replace(obs=True)
    jsonl_handle = open(args.jsonl, "w") if args.jsonl else None

    def stream(outcome) -> None:
        if jsonl_handle is not None:
            jsonl_handle.write(json.dumps(outcome.to_dict()) + "\n")
            jsonl_handle.flush()
        if not args.json:
            if outcome.status == STATUS_OK:
                print(
                    f"  ok           {outcome.path} ({outcome.loops} loops, "
                    f"{outcome.commutative} commutative)"
                )
            else:
                print(f"  {outcome.status:12s} {outcome.path}: {outcome.error}")

    try:
        with AnalysisSession(config) as session:
            result = session.batch(
                paths=args.paths,
                manifest=args.manifest,
                on_result=stream,
                fail_fast=args.fail_fast,
            )
    finally:
        if jsonl_handle is not None:
            jsonl_handle.close()
        if ctx is not None:
            _write_json(args.trace, ctx.tracer.to_chrome_trace())
            print(f"trace written to {args.trace}", file=sys.stderr)
            obs.disable()
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(result.summary())
        if jsonl_handle is not None:
            print(f"per-program results written to {args.jsonl}")
    ok = result.status_counts().get(STATUS_OK, 0)
    return 0 if ok == result.programs else 1


def _batch_via_server(args: argparse.Namespace) -> int:
    """``repro batch --server URL``: thin client over a running daemon.

    The server owns backend/cache/ledger policy; the client ships only
    program sources plus the per-request config fields.  Exit codes
    match the local path: 0 all ok, 1 any failure/skip, 2 usage error.
    """
    from repro.batch import discover_programs, load_manifest
    from repro.serve import ServeClient

    specs = discover_programs(args.paths)
    if args.manifest:
        specs.extend(load_manifest(args.manifest))
    if not specs:
        print("batch: empty corpus: no programs found", file=sys.stderr)
        return 2
    programs = []
    for spec in specs:
        with open(spec.path, "r", encoding="utf-8") as fh:
            entry = {"name": spec.path, "source": fh.read()}
        if spec.entry is not None:
            entry["entry"] = spec.entry
        if spec.args is not None:
            entry["args"] = list(spec.args)
        programs.append(entry)
    config = {
        "entry": args.entry,
        "rtol": args.rtol,
        "liveout_policy": args.policy,
        "static_filter": not args.no_static_filter,
    }
    if args.specs is not None:
        config["specs"] = args.specs

    client = ServeClient(args.server)
    jsonl_handle = open(args.jsonl, "w") if args.jsonl else None
    summary = None
    try:
        for line in client.batch(
            programs, config=config, fail_fast=args.fail_fast
        ):
            if line.get("type") == "summary":
                summary = line
                continue
            if jsonl_handle is not None:
                jsonl_handle.write(json.dumps(line) + "\n")
                jsonl_handle.flush()
            if not args.json:
                if line.get("status") == "ok":
                    print(
                        f"  ok           {line.get('name')} "
                        f"({line.get('loops')} loops, "
                        f"{line.get('commutative')} commutative)"
                    )
                else:
                    print(
                        f"  {line.get('status', 'error'):12s} "
                        f"{line.get('name')}: {line.get('error', '')}"
                    )
    finally:
        if jsonl_handle is not None:
            jsonl_handle.close()
    if summary is None:
        print("batch: server stream ended without a summary",
              file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        print(
            f"Batch {summary.get('programs', len(programs))} programs via "
            f"{args.server}: {summary.get('ok', 0)} ok, "
            f"{summary.get('failed', 0)} failed"
        )
        if args.jsonl:
            print(f"per-program results written to {args.jsonl}")
    return 0 if summary.get("failed", 0) == 0 else 1


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import AnalysisServer, resolve_serve_config

    serve_config = resolve_serve_config(
        host=args.host,
        port=args.port,
        queue_depth=args.queue_depth,
        workers=args.workers,
        default_priority=args.priority,
    )
    server = AnalysisServer(serve_config, base=_config_from_args(args))
    print(
        f"repro serve on http://{serve_config.host}:{serve_config.port} "
        f"({serve_config.workers} workers, "
        f"queue depth {serve_config.queue_depth})",
        file=sys.stderr,
    )
    try:
        server.run()
    except KeyboardInterrupt:
        pass
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    from repro.cache import AnalysisCache, CACHE_DIR_ENV, resolve_cache_dir

    directory = resolve_cache_dir(getattr(args, "cache", None))
    if directory is None:
        print(
            f"cache: no directory (pass --cache DIR or set {CACHE_DIR_ENV})",
            file=sys.stderr,
        )
        return 2
    with AnalysisCache(directory, mode="ro" if args.cache_command == "stats"
                       else "rw") as cache:
        if args.cache_command == "stats":
            stats = cache.stats()
            if args.json:
                print(json.dumps(stats, indent=2))
                return 0
            print(f"cache at {stats['path']}")
            print(
                f"  {stats['entries']} entries over {stats['modules']} "
                f"modules / {stats['fingerprints']} configs "
                f"({stats['size_bytes']} bytes)"
            )
            print(
                f"  {stats['total_hits']} lifetime hits; "
                f"{stats['verifiable_modules']} modules verifiable; "
                f"semantics v{stats['semantics_version']} "
                f"({stats['semantics_purges']} purges)"
            )
            rate = stats.get("lifetime_hit_rate")
            print(
                f"  traffic: {stats['lifetime_lookups']} lookups "
                f"({stats['lifetime_hits']} hits / "
                f"{stats['lifetime_misses']} misses"
                + (f", {rate:.0%} hit rate" if rate is not None else "")
                + f"); {stats['lifetime_invalidations']} invalidations, "
                f"{stats['lifetime_stores']} stores"
            )
            return 0
        if args.cache_command == "clear":
            removed = cache.clear()
            print(f"cleared {removed} entries")
            return 0
        if args.cache_command == "gc":
            result = cache.gc(
                max_age_days=args.max_age_days, max_entries=args.max_entries
            )
            if args.json:
                print(json.dumps(result, indent=2))
            else:
                print(
                    f"gc: removed {result['removed_age']} by age, "
                    f"{result['removed_lru']} by LRU cap; "
                    f"{result['remaining']} entries remain"
                )
            return 0
        # verify: re-execute a sample of cached loops and cross-check.
        result = cache.verify(sample=args.sample, seed=args.seed)
        if args.json:
            print(json.dumps(result, indent=2))
        else:
            print(
                f"verify: {result['ok']}/{result['checked']} sampled "
                f"entries match ({len(result['unverifiable'])} unverifiable)"
            )
            for mismatch in result["mismatches"]:
                print(
                    f"  MISMATCH {mismatch['loop']} "
                    f"(module {mismatch['module'][:12]}...): "
                    f"{sorted(mismatch['diffs'])}"
                )
        return 1 if result["mismatches"] else 0


def cmd_stats(args: argparse.Namespace) -> int:
    import repro.obs as obs

    directory = obs.resolve_ledger_dir(getattr(args, "ledger", None))
    if directory is None:
        print(
            f"stats: no ledger (pass --ledger DIR or set {obs.LEDGER_DIR_ENV})",
            file=sys.stderr,
        )
        return 2
    with obs.RunLedger(directory) as ledger:
        trends = ledger.trends(window=args.window)
        regressions = ledger.check_regressions(
            threshold_pct=args.threshold, window=args.window
        )
    if args.json:
        print(json.dumps(
            {"trends": trends, "regressions": regressions}, indent=2
        ))
        return 1 if regressions else 0
    if not trends:
        print(f"ledger at {directory}: no runs recorded yet")
        return 0
    print(f"ledger at {directory}: {len(trends)} series")
    header = (
        f"  {'kind':8s} {'program':32s} {'runs':>5s} {'wall ms':>9s} "
        f"{'vs median':>10s} {'saved':>6s} {'hit rate':>9s} tiers"
    )
    print(header)
    print("  " + "-" * (len(header) - 2))
    for trend in trends:
        program = trend["program"]
        if len(program) > 32:
            program = "..." + program[-29:]
        wall_delta = trend["wall_ms_delta_pct"]
        delta = f"{wall_delta:+.1f}%" if wall_delta is not None else "-"
        rate = trend["latest_cache_hit_rate"]
        rate_col = f"{rate:>9.0%}" if rate is not None else f"{'-':>9s}"
        tiers = trend.get("latest_tiers") or {}
        tier_col = (
            " ".join(f"{t}={tiers[t]}" for t in sorted(tiers))
            if tiers
            else "-"
        )
        print(
            f"  {trend['kind']:8s} {program:32s} {trend['runs']:>5d} "
            f"{trend['latest_wall_ms']:>9.2f} {delta:>10s} "
            f"{trend['latest_executions_saved']:>6d} {rate_col} {tier_col}"
        )
    if regressions:
        print()
        for reg in regressions:
            for reason in reg["reasons"]:
                print(f"  REGRESSION {reg['kind']} {reg['program']}: {reason}")
        print(f"\n{len(regressions)} regression(s) vs rolling median "
              f"(threshold {args.threshold:.0f}%, window {args.window})")
        return 1
    print(f"\nno regressions vs rolling median "
          f"(threshold {args.threshold:.0f}%, window {args.window})")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.commutativity import (
        PROVEN_COMMUTATIVE,
        StaticCommutativityAnalysis,
    )
    from repro.analysis.diagnostics import Diagnostic, DiagnosticEngine
    from repro.analysis.specs import (
        check_annotations,
        default_registry,
        registry_from_env,
    )

    module = compile_program(_read(args.program))
    specs = getattr(args, "specs", None)
    if specs is None:
        registry = registry_from_env()
    elif specs is True:
        registry = default_registry()
    else:
        registry = specs or None
    verdicts = StaticCommutativityAnalysis(module, specs=registry).analyze()
    engine = DiagnosticEngine(program=args.program)
    engine.ingest_static(verdicts.values())

    # `commutative` annotations are linted unconditionally: an unsound
    # declaration is an error even when specs are not active, because the
    # next run with REPRO_SPECS=1 would trust it.
    unsound = 0
    for name, report in sorted(check_annotations(module).items()):
        if report.ok:
            engine.add(Diagnostic(
                severity="info", code="DCA-SPEC",
                function=name, loop="-", line=0,
                message=(f"commutative annotation validated as "
                         f"{report.kind}: {report.reason}"),
            ))
        else:
            unsound += 1
            engine.add(Diagnostic(
                severity="warning", code="DCA-SPEC-UNSOUND",
                function=name, loop="-", line=0,
                message=f"unsound commutative annotation: {report.reason}",
            ))

    # Suggestions: re-prove with every self-linked struct in the module
    # declared order-insensitive; loops that flip to proven-commutative
    # only need a declaration, not a rewrite.
    base = registry if registry is not None else default_registry()
    widened = base.extended_with_module_chains(module)
    if widened.digest() != base.digest():
        wide_verdicts = StaticCommutativityAnalysis(
            module, specs=widened
        ).analyze()
        for label, verdict in verdicts.items():
            wide = wide_verdicts.get(label)
            if (verdict.verdict != PROVEN_COMMUTATIVE
                    and wide is not None
                    and wide.verdict == PROVEN_COMMUTATIVE
                    and wide.used_specs):
                engine.add(Diagnostic(
                    severity="note", code="DCA-SPEC-SUGGEST",
                    function=verdict.function, loop=label,
                    line=verdict.line,
                    message=("would be provably commutative if its "
                             "container were declared order-insensitive"),
                    evidence=[e for e in wide.evidence
                              if e.kind.startswith("spec-")],
                ))

    if args.json:
        print(engine.render_json())
    else:
        print(engine.render_text())
    return 1 if unsound else 0


def build_parser() -> argparse.ArgumentParser:
    from repro.obs import EXPORT_FORMATS

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dynamic Commutativity Analysis (CGO 2021) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("program", help="MiniC source file")
        p.add_argument("--entry", default="main")

    def exec_backend_flag(p: argparse.ArgumentParser) -> None:
        # Choices derive from the backend registry so a new backend is
        # reachable from the flag the moment it exists — the explicit
        # flag must never accept less than REPRO_EXEC_BACKEND does.
        p.add_argument("--exec-backend", choices=EXEC_BACKENDS,
                       default=None, dest="exec_backend",
                       help="execution backend for observer-free runs: "
                            "tree-walking interpreter, closure-compiled, "
                            "or Python-source codegen "
                            "(default: interp, or REPRO_EXEC_BACKEND)")

    def engine_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--backend", choices=("serial", "process"), default=None,
                       help="schedule-execution backend (default: serial, or "
                            "REPRO_SCHEDULE_BACKEND; --jobs N implies process)")
        p.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="worker processes for the process backend "
                            "(default: all cores, or REPRO_SCHEDULE_JOBS)")
        exec_backend_flag(p)

    def specs_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--specs", action="store_const", const=True,
                       dest="specs", default=None,
                       help="verify modulo declared commutativity specs "
                            "(order-insensitive containers, monoid "
                            "accumulators; default: off, or REPRO_SPECS)")
        p.add_argument("--no-specs", action="store_const", const=False,
                       dest="specs",
                       help="force byte-exact verification even when "
                            "REPRO_SPECS is set")

    def tiering_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--tiering", action="store_const", const=True,
                       dest="tiering", default=None,
                       help="classify every loop into a parallelization "
                            "tier (DOALL/REDUCTION/PIPELINE/SEQUENTIAL) "
                            "and emit schema-2 reports (default: off, or "
                            "REPRO_TIERING)")
        p.add_argument("--no-tiering", action="store_const", const=False,
                       dest="tiering",
                       help="force tiering off even when REPRO_TIERING "
                            "is set")
        p.add_argument("--max-pipeline-stages", type=int, default=4,
                       dest="max_pipeline_stages", metavar="K",
                       help="upper bound on DSWP pipeline stages per "
                            "loop (default: 4)")

    def cache_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--cache", metavar="DIR", default=None,
                       help="persistent verdict cache directory "
                            "(default: REPRO_CACHE_DIR, else disabled)")
        p.add_argument("--cache-mode", choices=("rw", "ro", "refresh", "off"),
                       default="rw", dest="cache_mode",
                       help="rw reads+writes, ro never writes, refresh "
                            "recomputes and overwrites, off disables")
        p.add_argument("--no-cache", action="store_const", const="off",
                       dest="cache_mode",
                       help="shorthand for --cache-mode off")

    def ledger_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--ledger", metavar="DIR", default=None,
                       help="run-ledger directory for cross-run trend "
                            "tracking (default: REPRO_LEDGER_DIR, else "
                            "disabled)")
        p.add_argument("--no-ledger", action="store_const", const="off",
                       dest="ledger",
                       help="disable run recording even when "
                            "REPRO_LEDGER_DIR is set")

    p_run = sub.add_parser("run", help="compile and execute a program")
    common(p_run)
    exec_backend_flag(p_run)
    p_run.set_defaults(func=cmd_run)

    p_ir = sub.add_parser("ir", help="dump the compiled IR")
    common(p_ir)
    p_ir.set_defaults(func=cmd_ir)

    p_an = sub.add_parser("analyze", help="run DCA on every loop")
    common(p_an)
    p_an.add_argument("--rtol", type=float, default=1e-9)
    p_an.add_argument("--policy", choices=("strict", "eventual"), default="strict")
    p_an.add_argument("--cores", type=int, default=0,
                      help="also simulate parallel speedup on N cores")
    p_an.add_argument("--json", action="store_true",
                      help="emit the report as JSON")
    p_an.add_argument("--no-static-filter", action="store_true",
                      help="disable the static pre-screen")
    p_an.add_argument("--profile", action="store_true",
                      help="include the per-loop cost breakdown table")
    p_an.add_argument("--trace", metavar="FILE",
                      help="enable tracing; write Chrome trace-event JSON")
    engine_flags(p_an)
    specs_flags(p_an)
    tiering_flags(p_an)
    cache_flags(p_an)
    ledger_flags(p_an)
    p_an.set_defaults(func=cmd_analyze)

    p_det = sub.add_parser("detect", help="DCA vs the five baseline detectors")
    common(p_det)
    p_det.add_argument("--rtol", type=float, default=1e-9)
    p_det.add_argument("--json", action="store_true",
                       help="emit DCA + baseline verdicts as JSON")
    p_det.add_argument("--no-static-filter", action="store_true",
                       help="disable the static pre-screen")
    p_det.add_argument("--profile", action="store_true",
                       help="include per-detector and per-loop cost detail")
    p_det.add_argument("--trace", metavar="FILE",
                       help="enable tracing; write Chrome trace-event JSON")
    engine_flags(p_det)
    specs_flags(p_det)
    tiering_flags(p_det)
    cache_flags(p_det)
    ledger_flags(p_det)
    p_det.set_defaults(func=cmd_detect)

    p_prof = sub.add_parser(
        "profile",
        help="run DCA with full observability and report pipeline cost",
    )
    common(p_prof)
    p_prof.add_argument("--rtol", type=float, default=1e-9)
    p_prof.add_argument("--policy", choices=("strict", "eventual"),
                        default="strict")
    p_prof.add_argument("--no-static-filter", action="store_true",
                        help="disable the static pre-screen")
    p_prof.add_argument("--trace", metavar="FILE",
                        help="write Chrome trace-event JSON "
                             "(load in chrome://tracing)")
    p_prof.add_argument("--metrics", metavar="FILE",
                        help="write the metrics registry as JSON")
    p_prof.add_argument("--events", metavar="FILE",
                        help="write the structured event log as JSONL")
    p_prof.add_argument("--export", choices=EXPORT_FORMATS, default=None,
                        help="emit the run's telemetry in the given format "
                             "instead of the human-readable profile "
                             "(openmetrics: Prometheus text exposition; "
                             "chrome-trace: trace-event JSON; jsonl: one "
                             "typed record per line)")
    p_prof.add_argument("--export-out", metavar="FILE", default=None,
                        dest="export_out",
                        help="write the --export payload to FILE instead "
                             "of stdout")
    engine_flags(p_prof)
    specs_flags(p_prof)
    tiering_flags(p_prof)
    cache_flags(p_prof)
    ledger_flags(p_prof)
    p_prof.set_defaults(func=cmd_profile)

    p_batch = sub.add_parser(
        "batch",
        help="analyze a corpus of programs (files, directories, manifest)",
        epilog="exit codes: 0 every program analyzed ok; 1 any program "
               "failed (parse-error, fault, worker-lost) or was skipped "
               "by --fail-fast; 2 usage error (no programs, or flags "
               "that cannot be combined).",
    )
    p_batch.add_argument("paths", nargs="*",
                         help="program files and/or directories of *.mc")
    p_batch.add_argument("--manifest", metavar="FILE",
                         help="JSON/JSONL corpus manifest (path strings or "
                              "{path, entry, args} objects)")
    p_batch.add_argument("--entry", default="main")
    p_batch.add_argument("--rtol", type=float, default=1e-9)
    p_batch.add_argument("--policy", choices=("strict", "eventual"),
                         default="strict")
    p_batch.add_argument("--no-static-filter", action="store_true",
                         help="disable the static pre-screen")
    p_batch.add_argument("--json", action="store_true",
                         help="emit the aggregate corpus report as JSON")
    p_batch.add_argument("--jsonl", metavar="FILE",
                         help="stream one JSON line per program as each "
                              "completes")
    p_batch.add_argument("--trace", metavar="FILE",
                         help="enable tracing; merge per-program worker "
                              "traces into one Chrome trace (one lane per "
                              "program)")
    p_batch.add_argument("--fail-fast", action="store_true", dest="fail_fast",
                         help="stop submitting after the first failed "
                              "program; remaining programs are recorded "
                              "as skipped (exit code 1)")
    p_batch.add_argument("--server", metavar="URL", default=None,
                         help="submit the corpus to a running `repro serve` "
                              "daemon instead of analyzing locally "
                              "(e.g. http://127.0.0.1:8421)")
    engine_flags(p_batch)
    specs_flags(p_batch)
    tiering_flags(p_batch)
    cache_flags(p_batch)
    ledger_flags(p_batch)
    p_batch.set_defaults(func=cmd_batch)

    p_serve = sub.add_parser(
        "serve",
        help="long-lived analysis daemon: HTTP/JSON over a warm engine "
             "pool and shared cache",
    )
    p_serve.add_argument("--host", default=None,
                         help="bind address (default: 127.0.0.1, or "
                              "REPRO_SERVE_HOST)")
    p_serve.add_argument("--port", type=int, default=None,
                         help="TCP port; 0 picks a free one (default: "
                              "8421, or REPRO_SERVE_PORT)")
    p_serve.add_argument("--queue-depth", type=int, default=None,
                         dest="queue_depth",
                         help="admission bound: max queued+running "
                              "requests before 429 (default: 64, or "
                              "REPRO_SERVE_QUEUE_DEPTH)")
    p_serve.add_argument("--workers", type=int, default=None,
                         help="concurrent analysis worker threads "
                              "(default: 4, or REPRO_SERVE_WORKERS)")
    p_serve.add_argument("--priority", type=int, default=None,
                         help="default request priority; lower runs "
                              "sooner (default: 10, or "
                              "REPRO_SERVE_PRIORITY)")
    p_serve.add_argument("--entry", default="main")
    p_serve.add_argument("--rtol", type=float, default=1e-9)
    p_serve.add_argument("--policy", choices=("strict", "eventual"),
                         default="strict")
    p_serve.add_argument("--no-static-filter", action="store_true",
                         help="disable the static pre-screen")
    engine_flags(p_serve)
    specs_flags(p_serve)
    tiering_flags(p_serve)
    cache_flags(p_serve)
    ledger_flags(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    p_cache = sub.add_parser(
        "cache", help="administer the persistent analysis cache"
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)

    def cache_dir_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument("--cache", metavar="DIR", default=None,
                       help="cache directory (default: REPRO_CACHE_DIR)")
        p.add_argument("--json", action="store_true",
                       help="machine-readable output")

    p_cstats = cache_sub.add_parser("stats", help="show cache contents")
    cache_dir_flag(p_cstats)
    p_cclear = cache_sub.add_parser("clear", help="drop every cached verdict")
    cache_dir_flag(p_cclear)
    p_cgc = cache_sub.add_parser(
        "gc", help="expire old entries and cap the store size"
    )
    cache_dir_flag(p_cgc)
    p_cgc.add_argument("--max-age-days", type=float, default=None, metavar="D",
                       help="drop entries unused for more than D days")
    p_cgc.add_argument("--max-entries", type=int, default=None, metavar="N",
                       help="keep at most N entries (LRU eviction)")
    p_cverify = cache_sub.add_parser(
        "verify",
        help="re-execute a sample of cached loops and cross-check digests",
    )
    cache_dir_flag(p_cverify)
    p_cverify.add_argument("--sample", type=int, default=10, metavar="N",
                           help="number of cached entries to re-execute")
    p_cverify.add_argument("--seed", type=int, default=0, metavar="S",
                           help="sampling seed")
    p_cache.set_defaults(func=cmd_cache)

    p_stats = sub.add_parser(
        "stats",
        help="cross-run trends and regression checks from the run ledger",
    )
    p_stats.add_argument("--ledger", metavar="DIR", default=None,
                         help="run-ledger directory "
                              "(default: REPRO_LEDGER_DIR)")
    p_stats.add_argument("--json", action="store_true",
                         help="emit trends and regressions as JSON")
    p_stats.add_argument("--threshold", type=float, default=20.0,
                         metavar="PCT",
                         help="regression threshold as a percentage vs the "
                              "rolling median (default: 20)")
    p_stats.add_argument("--window", type=int, default=10, metavar="N",
                         help="rolling-median window of prior runs per "
                              "series (default: 10)")
    p_stats.set_defaults(func=cmd_stats)

    p_lint = sub.add_parser(
        "lint", help="static commutativity diagnostics (no execution)"
    )
    common(p_lint)
    p_lint.add_argument("--json", action="store_true",
                        help="emit diagnostics as JSON")
    specs_flags(p_lint)
    p_lint.set_defaults(func=cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
