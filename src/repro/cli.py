"""Command-line interface.

Usage::

    python -m repro run program.mc            # compile + execute
    python -m repro analyze program.mc        # DCA verdict per loop
    python -m repro detect program.mc         # DCA vs all five baselines
    python -m repro profile program.mc        # pipeline cost breakdown
    python -m repro lint program.mc           # static diagnostics only
    python -m repro ir program.mc             # dump the IR

Options: ``--entry NAME`` (default main), ``--rtol X``, ``--policy
strict|eventual``, ``--cores N`` (adds a simulated speedup to analyze),
``--json`` (machine-readable reports), ``--no-static-filter`` (disable
the static pre-screen and run every loop dynamically), ``--backend
serial|process`` / ``--jobs N`` (fan schedule executions out to worker
processes; ``--jobs N`` alone implies the process backend),
``--exec-backend interp|compiled`` (closure-compile observer-free
executions instead of tree-walking them; env ``REPRO_EXEC_BACKEND``).

Observability: ``profile`` runs with full tracing and accepts ``--trace
out.json`` (Chrome trace-event JSON for ``chrome://tracing``),
``--metrics out.json`` and ``--events out.jsonl``; ``analyze`` and
``detect`` accept ``--profile`` (per-loop cost breakdown in text output)
and ``--trace out.json`` (enables tracing for the run).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.driver import compile_program, run_program


def _read(path: str) -> str:
    with open(path) as handle:
        return handle.read()


def cmd_run(args: argparse.Namespace) -> int:
    result, out = run_program(
        _read(args.program), entry=args.entry, exec_backend=args.exec_backend
    )
    sys.stdout.write(out)
    if result is not None:
        print(f"[exit value: {result}]")
    return 0


def cmd_ir(args: argparse.Namespace) -> int:
    from repro.ir.printer import format_module

    print(format_module(compile_program(_read(args.program))))
    return 0


def _hit_rate_line(report) -> str:
    hits, tested = report.static_hit_rate()
    if not report.static_filter:
        return "static pre-screen: disabled"
    if tested == 0:
        return "static pre-screen: no loops reached the testing stage"
    return (
        f"static pre-screen: decided {hits}/{tested} tested loops "
        f"({hits / tested:.0%}); {report.schedule_executions} schedule "
        "executions performed"
    )


def _obs_session(args: argparse.Namespace):
    """Enable observability when the command asked for a trace; returns
    the enabled context, or None when tracing was not requested."""
    if not getattr(args, "trace", None):
        return None
    import repro.obs as obs

    return obs.enable()


def _obs_finish(args: argparse.Namespace, ctx) -> None:
    """Write the requested trace file and restore the disabled context."""
    if ctx is None:
        return
    import repro.obs as obs

    _write_json(args.trace, ctx.tracer.to_chrome_trace())
    print(f"trace written to {args.trace}", file=sys.stderr)
    obs.disable()


def _write_json(path: str, payload) -> None:
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1)


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.core import DcaAnalyzer

    ctx = _obs_session(args)
    try:
        module = compile_program(_read(args.program))
        analyzer = DcaAnalyzer(
            module,
            entry=args.entry,
            rtol=args.rtol,
            liveout_policy=args.policy,
            static_filter=not args.no_static_filter,
            backend=args.backend,
            jobs=args.jobs,
            exec_backend=args.exec_backend,
        )
        report = analyzer.analyze()
    finally:
        _obs_finish(args, ctx)
    if args.json:
        print(report.to_json())
        return 0
    print(report.summary())
    commutative = report.commutative_labels()
    print(f"\n{len(commutative)}/{len(report.results)} loops commutative")
    print(_hit_rate_line(report))
    print(report.cost_summary())
    if args.profile:
        print()
        print(report.cost_table())

    if args.cores and commutative:
        from repro.parallel import MachineModel, ParallelSimulator

        sim = ParallelSimulator(
            compile_program(_read(args.program)),
            entry=args.entry,
            model=MachineModel(cores=args.cores),
        )
        speedup = sim.simulate(commutative)
        print(f"\nSimulated on {args.cores} cores:")
        print(speedup.summary())
    return 0


def cmd_detect(args: argparse.Namespace) -> int:
    from repro.baselines import (
        DependenceProfilingDetector,
        DiscoPopDetector,
        IccDetector,
        IdiomsDetector,
        PollyDetector,
        build_context,
    )
    from repro.core import DcaAnalyzer

    obs_ctx = _obs_session(args)
    try:
        source = _read(args.program)
        report = DcaAnalyzer(
            compile_program(source),
            entry=args.entry,
            rtol=args.rtol,
            static_filter=not args.no_static_filter,
            backend=args.backend,
            jobs=args.jobs,
            exec_backend=args.exec_backend,
        ).analyze()
        ctx = build_context(compile_program(source), entry=args.entry)
        detectors = [
            DependenceProfilingDetector(),
            DiscoPopDetector(),
            IdiomsDetector(),
            PollyDetector(),
            IccDetector(),
        ]
        results = {d.name: d.detect(ctx) for d in detectors}
    finally:
        _obs_finish(args, obs_ctx)

    if args.json:
        print(
            json.dumps(
                {
                    "dca": report.to_dict(),
                    "baselines": {
                        d.name: {
                            label: bool(res and res.parallel)
                            for label, res in results[d.name].items()
                        }
                        for d in detectors
                    },
                    "costs": ctx.costs,
                },
                indent=2,
            )
        )
        return 0

    header = f"{'loop':14s}" + "".join(f"{d.name[:8]:>10s}" for d in detectors)
    header += f"{'DCA':>20s}"
    print(header)
    print("-" * len(header))
    for label in sorted(report.results):
        row = f"{label:14s}"
        for det in detectors:
            res = results[det.name].get(label)
            row += f"{'yes' if res and res.parallel else '-':>10s}"
        row += f"{report.results[label].verdict:>20s}"
        print(row)
    print(_hit_rate_line(report))
    profile_cost = ctx.costs.get("profile", {})
    print(
        f"cost: DCA {report.executions} executions / "
        f"{report.interp_instructions} instrs; profiled baselines "
        f"{int(profile_cost.get('executions', 0))} execution / "
        f"{int(profile_cost.get('instructions', 0))} instrs"
    )
    if args.profile:
        for name in sorted(ctx.costs):
            if name == "profile":
                continue
            cost = ctx.costs[name]
            print(
                f"  {name:14s} {cost['wall_ms']:8.2f} ms  "
                f"{int(cost['parallel'])}/{int(cost['loops'])} loops parallel"
            )
        print()
        print(report.cost_table())
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    import repro.obs as obs
    from repro.driver import profile_program

    try:
        report, ctx = profile_program(
            _read(args.program),
            entry=args.entry,
            rtol=args.rtol,
            liveout_policy=args.policy,
            static_filter=not args.no_static_filter,
            backend=args.backend,
            jobs=args.jobs,
            exec_backend=args.exec_backend,
        )
        print(f"== pipeline profile: {args.program} ==")
        print(report.cost_summary())
        print(_hit_rate_line(report))
        print()
        print(report.cost_table())
        print()
        print("== flame (wall time by span path) ==")
        print(ctx.tracer.flame_summary())
        if args.trace:
            _write_json(args.trace, ctx.tracer.to_chrome_trace())
            print(f"\ntrace written to {args.trace} (load in chrome://tracing)")
        if args.metrics:
            _write_json(
                args.metrics,
                {
                    "program": args.program,
                    "registry": ctx.metrics.to_dict(),
                    "report": report.metrics_dict(),
                },
            )
            print(f"metrics written to {args.metrics}")
        if args.events:
            with open(args.events, "w") as handle:
                jsonl = ctx.events.to_jsonl()
                handle.write(jsonl + "\n" if jsonl else "")
            print(f"events written to {args.events}")
    finally:
        obs.disable()
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.commutativity import StaticCommutativityAnalysis
    from repro.analysis.diagnostics import DiagnosticEngine

    module = compile_program(_read(args.program))
    verdicts = StaticCommutativityAnalysis(module).analyze()
    engine = DiagnosticEngine(program=args.program)
    engine.ingest_static(verdicts.values())
    if args.json:
        print(engine.render_json())
    else:
        print(engine.render_text())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dynamic Commutativity Analysis (CGO 2021) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("program", help="MiniC source file")
        p.add_argument("--entry", default="main")

    def exec_backend_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument("--exec-backend", choices=("interp", "compiled"),
                       default=None, dest="exec_backend",
                       help="execution backend for observer-free runs: "
                            "tree-walking interpreter or closure-compiled "
                            "(default: interp, or REPRO_EXEC_BACKEND)")

    def engine_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--backend", choices=("serial", "process"), default=None,
                       help="schedule-execution backend (default: serial, or "
                            "REPRO_SCHEDULE_BACKEND; --jobs N implies process)")
        p.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="worker processes for the process backend "
                            "(default: all cores, or REPRO_SCHEDULE_JOBS)")
        exec_backend_flag(p)

    p_run = sub.add_parser("run", help="compile and execute a program")
    common(p_run)
    exec_backend_flag(p_run)
    p_run.set_defaults(func=cmd_run)

    p_ir = sub.add_parser("ir", help="dump the compiled IR")
    common(p_ir)
    p_ir.set_defaults(func=cmd_ir)

    p_an = sub.add_parser("analyze", help="run DCA on every loop")
    common(p_an)
    p_an.add_argument("--rtol", type=float, default=1e-9)
    p_an.add_argument("--policy", choices=("strict", "eventual"), default="strict")
    p_an.add_argument("--cores", type=int, default=0,
                      help="also simulate parallel speedup on N cores")
    p_an.add_argument("--json", action="store_true",
                      help="emit the report as JSON")
    p_an.add_argument("--no-static-filter", action="store_true",
                      help="disable the static pre-screen")
    p_an.add_argument("--profile", action="store_true",
                      help="include the per-loop cost breakdown table")
    p_an.add_argument("--trace", metavar="FILE",
                      help="enable tracing; write Chrome trace-event JSON")
    engine_flags(p_an)
    p_an.set_defaults(func=cmd_analyze)

    p_det = sub.add_parser("detect", help="DCA vs the five baseline detectors")
    common(p_det)
    p_det.add_argument("--rtol", type=float, default=1e-9)
    p_det.add_argument("--json", action="store_true",
                       help="emit DCA + baseline verdicts as JSON")
    p_det.add_argument("--no-static-filter", action="store_true",
                       help="disable the static pre-screen")
    p_det.add_argument("--profile", action="store_true",
                       help="include per-detector and per-loop cost detail")
    p_det.add_argument("--trace", metavar="FILE",
                       help="enable tracing; write Chrome trace-event JSON")
    engine_flags(p_det)
    p_det.set_defaults(func=cmd_detect)

    p_prof = sub.add_parser(
        "profile",
        help="run DCA with full observability and report pipeline cost",
    )
    common(p_prof)
    p_prof.add_argument("--rtol", type=float, default=1e-9)
    p_prof.add_argument("--policy", choices=("strict", "eventual"),
                        default="strict")
    p_prof.add_argument("--no-static-filter", action="store_true",
                        help="disable the static pre-screen")
    p_prof.add_argument("--trace", metavar="FILE",
                        help="write Chrome trace-event JSON "
                             "(load in chrome://tracing)")
    p_prof.add_argument("--metrics", metavar="FILE",
                        help="write the metrics registry as JSON")
    p_prof.add_argument("--events", metavar="FILE",
                        help="write the structured event log as JSONL")
    engine_flags(p_prof)
    p_prof.set_defaults(func=cmd_profile)

    p_lint = sub.add_parser(
        "lint", help="static commutativity diagnostics (no execution)"
    )
    common(p_lint)
    p_lint.add_argument("--json", action="store_true",
                        help="emit diagnostics as JSON")
    p_lint.set_defaults(func=cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
