"""Command-line interface.

Usage::

    python -m repro run program.mc            # compile + execute
    python -m repro analyze program.mc        # DCA verdict per loop
    python -m repro detect program.mc         # DCA vs all five baselines
    python -m repro ir program.mc             # dump the IR

Options: ``--entry NAME`` (default main), ``--rtol X``, ``--policy
strict|eventual``, ``--cores N`` (adds a simulated speedup to analyze).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.driver import compile_program, run_program


def _read(path: str) -> str:
    with open(path) as handle:
        return handle.read()


def cmd_run(args: argparse.Namespace) -> int:
    result, out = run_program(_read(args.program), entry=args.entry)
    sys.stdout.write(out)
    if result is not None:
        print(f"[exit value: {result}]")
    return 0


def cmd_ir(args: argparse.Namespace) -> int:
    from repro.ir.printer import format_module

    print(format_module(compile_program(_read(args.program))))
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.core import DcaAnalyzer

    module = compile_program(_read(args.program))
    analyzer = DcaAnalyzer(
        module, entry=args.entry, rtol=args.rtol, liveout_policy=args.policy
    )
    report = analyzer.analyze()
    print(report.summary())
    commutative = report.commutative_labels()
    print(f"\n{len(commutative)}/{len(report.results)} loops commutative")

    if args.cores and commutative:
        from repro.parallel import MachineModel, ParallelSimulator

        sim = ParallelSimulator(
            compile_program(_read(args.program)),
            entry=args.entry,
            model=MachineModel(cores=args.cores),
        )
        speedup = sim.simulate(commutative)
        print(f"\nSimulated on {args.cores} cores:")
        print(speedup.summary())
    return 0


def cmd_detect(args: argparse.Namespace) -> int:
    from repro.baselines import (
        DependenceProfilingDetector,
        DiscoPopDetector,
        IccDetector,
        IdiomsDetector,
        PollyDetector,
        build_context,
    )
    from repro.core import DcaAnalyzer

    source = _read(args.program)
    report = DcaAnalyzer(
        compile_program(source), entry=args.entry, rtol=args.rtol
    ).analyze()
    ctx = build_context(compile_program(source), entry=args.entry)
    detectors = [
        DependenceProfilingDetector(),
        DiscoPopDetector(),
        IdiomsDetector(),
        PollyDetector(),
        IccDetector(),
    ]
    results = {d.name: d.detect(ctx) for d in detectors}

    header = f"{'loop':14s}" + "".join(f"{d.name[:8]:>10s}" for d in detectors)
    header += f"{'DCA':>20s}"
    print(header)
    print("-" * len(header))
    for label in sorted(report.results):
        row = f"{label:14s}"
        for det in detectors:
            res = results[det.name].get(label)
            row += f"{'yes' if res and res.parallel else '-':>10s}"
        row += f"{report.results[label].verdict:>20s}"
        print(row)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dynamic Commutativity Analysis (CGO 2021) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("program", help="MiniC source file")
        p.add_argument("--entry", default="main")

    p_run = sub.add_parser("run", help="compile and execute a program")
    common(p_run)
    p_run.set_defaults(func=cmd_run)

    p_ir = sub.add_parser("ir", help="dump the compiled IR")
    common(p_ir)
    p_ir.set_defaults(func=cmd_ir)

    p_an = sub.add_parser("analyze", help="run DCA on every loop")
    common(p_an)
    p_an.add_argument("--rtol", type=float, default=1e-9)
    p_an.add_argument("--policy", choices=("strict", "eventual"), default="strict")
    p_an.add_argument("--cores", type=int, default=0,
                      help="also simulate parallel speedup on N cores")
    p_an.set_defaults(func=cmd_analyze)

    p_det = sub.add_parser("detect", help="DCA vs the five baseline detectors")
    common(p_det)
    p_det.add_argument("--rtol", type=float, default=1e-9)
    p_det.set_defaults(func=cmd_detect)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
