"""Corpus batch driver: analyze many programs in one run.

``run_batch`` (exposed as :meth:`repro.api.AnalysisSession.batch` and the
``repro batch`` CLI subcommand) takes a corpus — program files,
directories scanned for ``*.mc``, and/or a JSON/JSONL manifest — and
runs the full DCA pipeline over every program:

* **Fan-out** rides the same shared ``ProcessPoolExecutor`` pool the
  schedule engine uses (:func:`repro.core.schedule_engine._shared_pool`),
  one worker task per *program*; inside a worker the analysis itself
  runs on the serial schedule backend, so corpus-level parallelism never
  nests pools.  A serial-backend config runs programs in-process,
  in order.
* **Failure containment**: a program that fails to parse, faults at
  runtime, or kills its worker becomes a recorded
  :class:`ProgramOutcome` (status ``parse-error`` / ``fault`` /
  ``worker-lost``) instead of aborting the corpus.  With
  ``fail_fast=True`` the driver stops *submitting* after the first
  failure; unsubmitted programs are recorded ``skipped`` (in-flight
  pool work still drains and records its real outcome).
* **Streaming**: ``on_result`` is invoked with each
  :class:`ProgramOutcome` as it completes (completion order); the final
  :class:`CorpusResult` lists outcomes in corpus order regardless.
* **Observability**: with ``config.obs`` set and an enabled context on
  the coordinator, worker span/metric/event payloads are absorbed into
  the coordinator's trace, one lane per program, yielding a single
  merged Chrome trace for the whole corpus.
* **Caching**: each worker opens the configured persistent cache
  itself (sqlite in WAL mode tolerates the concurrent writers), so a
  re-run of the same corpus is served from cache across the pool.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import repro.obs as obs
from repro.lang.errors import MiniCError

__all__ = [
    "CorpusResult",
    "ProgramOutcome",
    "ProgramSpec",
    "discover_programs",
    "load_manifest",
    "run_batch",
]

#: Program outcome statuses.
STATUS_OK = "ok"
STATUS_PARSE_ERROR = "parse-error"
STATUS_FAULT = "fault"
STATUS_WORKER_LOST = "worker-lost"
STATUS_SKIPPED = "skipped"  # fail-fast stopped the corpus before this one


@dataclass
class ProgramSpec:
    """One corpus entry: a program plus optional per-program overrides."""

    path: str
    entry: Optional[str] = None
    args: Optional[Tuple[object, ...]] = None


@dataclass
class ProgramOutcome:
    """Recorded result of analyzing one corpus program."""

    path: str
    index: int
    status: str = STATUS_OK
    error: str = ""
    #: Full serialized report (``DcaReport.to_dict()``) when analysis ran.
    report: Optional[Dict[str, object]] = None
    #: Small headline numbers, also present on failures (zeros).
    loops: int = 0
    commutative: int = 0
    schedule_executions: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    wall_ms: float = 0.0
    #: Worker observability payload (absorbed by the coordinator, then
    #: dropped so outcomes stay lean).
    obs: Optional[Dict[str, object]] = None

    def to_dict(self, include_report: bool = False) -> Dict[str, object]:
        """JSONL line for this program (lean by default)."""
        record: Dict[str, object] = {
            "path": self.path,
            "index": self.index,
            "status": self.status,
            "loops": self.loops,
            "commutative": self.commutative,
            "schedule_executions": self.schedule_executions,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "wall_ms": round(self.wall_ms, 3),
        }
        if self.error:
            record["error"] = self.error
        if include_report and self.report is not None:
            record["report"] = self.report
        return record


@dataclass
class CorpusResult:
    """Aggregate result of one batch run, outcomes in corpus order."""

    outcomes: List[ProgramOutcome] = field(default_factory=list)
    wall_ms: float = 0.0

    @property
    def programs(self) -> int:
        return len(self.outcomes)

    def status_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for outcome in self.outcomes:
            counts[outcome.status] = counts.get(outcome.status, 0) + 1
        return counts

    def verdict_counts(self) -> Dict[str, int]:
        """Loop verdict histogram summed over every analyzed program."""
        counts: Dict[str, int] = {}
        for outcome in self.outcomes:
            if not outcome.report:
                continue
            for verdict, n in outcome.report.get("verdict_counts", {}).items():
                counts[verdict] = counts.get(verdict, 0) + n
        return counts

    def to_dict(self) -> Dict[str, object]:
        return {
            "programs": self.programs,
            "status_counts": self.status_counts(),
            "loops": sum(o.loops for o in self.outcomes),
            "commutative_loops": sum(o.commutative for o in self.outcomes),
            "verdict_counts": self.verdict_counts(),
            "schedule_executions": sum(
                o.schedule_executions for o in self.outcomes
            ),
            "cache_hits": sum(o.cache_hits for o in self.outcomes),
            "cache_misses": sum(o.cache_misses for o in self.outcomes),
            "wall_ms": round(self.wall_ms, 3),
            "outcomes": [o.to_dict() for o in self.outcomes],
        }

    def summary(self) -> str:
        counts = self.status_counts()
        ok = counts.get(STATUS_OK, 0)
        parts = [f"{self.programs} programs: {ok} ok"]
        for status in (
            STATUS_PARSE_ERROR,
            STATUS_FAULT,
            STATUS_WORKER_LOST,
            STATUS_SKIPPED,
        ):
            if counts.get(status):
                parts.append(f"{counts[status]} {status}")
        lines = [
            "Batch " + ", ".join(parts),
            f"  loops: {sum(o.loops for o in self.outcomes)} total, "
            f"{sum(o.commutative for o in self.outcomes)} commutative",
            f"  schedule executions: "
            f"{sum(o.schedule_executions for o in self.outcomes)}",
        ]
        hits = sum(o.cache_hits for o in self.outcomes)
        misses = sum(o.cache_misses for o in self.outcomes)
        if hits or misses:
            lines.append(f"  cache: {hits} hits / {misses} misses")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Corpus discovery
# ---------------------------------------------------------------------------


def discover_programs(paths: Sequence[str]) -> List[ProgramSpec]:
    """Expand files and directories (scanned for ``*.mc``, sorted) into
    program specs.  Missing paths raise ``FileNotFoundError`` up front —
    a typo should fail the batch before any work starts."""
    specs: List[ProgramSpec] = []
    for path in paths:
        if os.path.isdir(path):
            names = sorted(
                name
                for name in os.listdir(path)
                if name.endswith(".mc")
                and os.path.isfile(os.path.join(path, name))
            )
            specs.extend(
                ProgramSpec(path=os.path.join(path, name)) for name in names
            )
        elif os.path.isfile(path):
            specs.append(ProgramSpec(path=path))
        else:
            raise FileNotFoundError(f"no such program or directory: {path}")
    return specs


def load_manifest(manifest_path: str) -> List[ProgramSpec]:
    """Parse a corpus manifest into program specs.

    Accepts a JSON array, a ``{"programs": [...]}`` object, or JSONL
    (one entry per line).  Each entry is either a path string or an
    object ``{"path": ..., "entry": ..., "args": [...]}``; ``entry`` and
    ``args`` override the batch config for that program.  Relative paths
    resolve against the manifest's directory.
    """
    with open(manifest_path, "r", encoding="utf-8") as fh:
        text = fh.read()
    try:
        data = json.loads(text)
    except json.JSONDecodeError:
        data = [
            json.loads(line)
            for line in text.splitlines()
            if line.strip() and not line.lstrip().startswith("#")
        ]
    if isinstance(data, dict):
        data = data.get("programs", [])
    if not isinstance(data, list):
        raise ValueError(
            f"manifest {manifest_path}: expected a list of programs"
        )
    base = os.path.dirname(os.path.abspath(manifest_path))
    specs: List[ProgramSpec] = []
    for item in data:
        if isinstance(item, str):
            item = {"path": item}
        if not isinstance(item, dict) or "path" not in item:
            raise ValueError(
                f"manifest {manifest_path}: entry {item!r} has no path"
            )
        path = item["path"]
        if not os.path.isabs(path):
            path = os.path.join(base, path)
        args = item.get("args")
        specs.append(
            ProgramSpec(
                path=path,
                entry=item.get("entry"),
                args=tuple(args) if args is not None else None,
            )
        )
    return specs


# ---------------------------------------------------------------------------
# Per-program analysis (runs in-process or inside a pool worker)
# ---------------------------------------------------------------------------


def _program_config(config, spec: ProgramSpec):
    """The effective config for one program (manifest overrides applied)."""
    changes: Dict[str, object] = {}
    if spec.entry is not None:
        changes["entry"] = spec.entry
    if spec.args is not None:
        changes["args"] = spec.args
    return config.replace(**changes) if changes else config


def analyze_program_spec(
    config, spec: ProgramSpec, index: int, ship_obs: bool = False
) -> ProgramOutcome:
    """Analyze one corpus program, converting failures into outcomes.

    ``ship_obs=True`` (pool workers) records the analysis into a private
    observability context and ships its serialized payload back for the
    coordinator to absorb; in-process callers record straight into the
    ambient context instead.
    """
    from repro.api import AnalysisSession

    outcome = ProgramOutcome(path=spec.path, index=index)
    start = time.perf_counter()
    ctx = None
    if ship_obs:
        if obs.is_enabled():
            # A forked worker inherits the coordinator's enabled context;
            # recording into it would silently accumulate cross-process.
            obs.disable()
        ctx = obs.enable()
    try:
        with open(spec.path, "r", encoding="utf-8") as fh:
            source = fh.read()
        # The batch records one aggregate ledger row itself; per-program
        # sessions must not each append an "analyze" row on top.
        program_config = _program_config(config, spec).replace(
            ledger_dir="off"
        )
        with AnalysisSession(program_config) as session:
            with obs.current().span("batch.program", path=spec.path):
                report = session.analyze(source, source_path=spec.path)
        outcome.report = report.to_dict()
        outcome.loops = len(report.results)
        outcome.commutative = len(report.commutative_loops())
        outcome.schedule_executions = report.schedule_executions
        outcome.cache_hits = report.cache.hits
        outcome.cache_misses = report.cache.misses
    except MiniCError as exc:
        outcome.status = STATUS_PARSE_ERROR
        outcome.error = str(exc)
    except OSError as exc:
        outcome.status = STATUS_PARSE_ERROR
        outcome.error = str(exc)
    except Exception as exc:  # runtime fault, step-budget blowout, ...
        outcome.status = STATUS_FAULT
        outcome.error = repr(exc)
    finally:
        outcome.wall_ms = (time.perf_counter() - start) * 1000.0
        if ctx is not None:
            outcome.obs = {
                "pid": os.getpid(),
                "spans": [
                    {
                        "name": rec.name,
                        "args": dict(rec.args),
                        "path": list(rec.path),
                        "start_us": rec.start_us,
                        "dur_us": rec.dur_us,
                        "depth": rec.depth,
                        "parent": rec.parent,
                        "sid": rec.sid,
                    }
                    for rec in ctx.tracer.spans
                ],
                "metrics": ctx.metrics.to_dict(),
                "events": [e.to_dict() for e in ctx.events.events],
            }
            obs.disable()
    return outcome


def _run_in_worker(config, spec: ProgramSpec, index: int) -> ProgramOutcome:
    """Pool-worker entry point: serial analysis, no nested pools."""
    worker_config = config.replace(backend="serial", jobs=None)
    return analyze_program_spec(
        worker_config, spec, index, ship_obs=config.obs
    )


def _lost_outcome(spec: ProgramSpec, index: int, error: str) -> ProgramOutcome:
    return ProgramOutcome(
        path=spec.path,
        index=index,
        status=STATUS_WORKER_LOST,
        error=error,
    )


# ---------------------------------------------------------------------------
# Observability plumbing
# ---------------------------------------------------------------------------


def _note_outcome(ctx, outcome: ProgramOutcome) -> None:
    """Per-program outcome metrics (status counter + wall-time histogram)."""
    if ctx.enabled:
        ctx.count(f"batch.outcome.{outcome.status}")
        ctx.observe("batch.program.wall_ms", outcome.wall_ms)


def _absorb_or_flush(ctx, outcome: ProgramOutcome, lane: int) -> None:
    """Merge a worker's obs payload onto the program's trace lane.

    A program whose worker died (or whose submission failed) never
    shipped a payload; synthesize a span + error event on its lane so
    the failure still appears in the merged trace instead of silently
    dropping its telemetry.
    """
    if not ctx.enabled:
        outcome.obs = None
        return
    if outcome.obs is not None:
        ctx.absorb(outcome.obs, lane=lane)
        outcome.obs = None
        return
    if outcome.status == STATUS_OK:
        return
    ctx.tracer.absorb(
        [
            {
                "sid": 0,
                "parent": None,
                "name": "batch.program",
                "args": {
                    "path": outcome.path,
                    "status": outcome.status,
                    "synthetic": True,
                },
                "path": ["batch.program"],
                "start_us": 0.0,
                "dur_us": max(outcome.wall_ms * 1000.0, 1.0),
                "depth": 0,
            }
        ],
        lane=lane,
    )
    ctx.event(
        "error",
        "batch.telemetry-lost",
        f"{outcome.path}: worker shipped no telemetry ({outcome.status})",
        provenance="batch",
        path=outcome.path,
        status=outcome.status,
        error=outcome.error,
    )


# ---------------------------------------------------------------------------
# The driver
# ---------------------------------------------------------------------------


def run_batch(
    config,
    paths: Sequence[str] = (),
    manifest: Optional[str] = None,
    on_result: Optional[Callable[[ProgramOutcome], None]] = None,
    fail_fast: bool = False,
) -> CorpusResult:
    """Analyze a corpus of programs under one :class:`AnalysisConfig`.

    ``paths`` mixes program files and directories; ``manifest`` appends
    entries from a JSON/JSONL manifest.  ``on_result`` streams each
    :class:`ProgramOutcome` as it completes.  Per-program failures are
    recorded, never raised; the returned :class:`CorpusResult` lists
    outcomes in corpus order.  ``fail_fast=True`` stops submitting new
    programs after the first failure: unsubmitted programs are recorded
    with status ``skipped`` (already-running pool workers drain and
    record their real outcomes).
    """
    specs = discover_programs(paths)
    if manifest is not None:
        specs.extend(load_manifest(manifest))
    if not specs:
        raise ValueError("empty corpus: no programs found")

    backend, jobs = config.resolved_backend()
    start = time.perf_counter()
    if backend == "process" and len(specs) > 1:
        outcomes = _run_pooled(config, specs, jobs, on_result, fail_fast)
    else:
        outcomes = _run_serial(config, specs, on_result, fail_fast)
    return CorpusResult(
        outcomes=outcomes, wall_ms=(time.perf_counter() - start) * 1000.0
    )


def _emit(outcome: ProgramOutcome, on_result) -> None:
    if on_result is not None:
        on_result(outcome)


def _skipped_outcome(
    spec: ProgramSpec, index: int, culprit: str
) -> ProgramOutcome:
    return ProgramOutcome(
        path=spec.path,
        index=index,
        status=STATUS_SKIPPED,
        error=f"skipped by fail-fast after {culprit}",
    )


def _run_serial(
    config, specs: List[ProgramSpec], on_result, fail_fast: bool = False
) -> List[ProgramOutcome]:
    ctx = obs.current()
    outcomes: List[ProgramOutcome] = []
    for index, spec in enumerate(specs):
        outcome = analyze_program_spec(config, spec, index)
        _note_outcome(ctx, outcome)
        outcomes.append(outcome)
        _emit(outcome, on_result)
        if fail_fast and outcome.status != STATUS_OK:
            for rest in range(index + 1, len(specs)):
                skipped = _skipped_outcome(specs[rest], rest, spec.path)
                _note_outcome(ctx, skipped)
                outcomes.append(skipped)
                _emit(skipped, on_result)
            break
    return outcomes


def _run_pooled(
    config,
    specs: List[ProgramSpec],
    jobs: Optional[int],
    on_result,
    fail_fast: bool = False,
) -> List[ProgramOutcome]:
    """Fan programs out over the shared schedule-engine worker pool."""
    from concurrent.futures.process import ProcessPoolExecutor

    from repro.core.schedule_engine import (
        _discard_pool,
        _mp_context,
        _shared_pool,
    )

    jobs = max(1, jobs or os.cpu_count() or 1)
    ctx = obs.current()
    outcomes: List[Optional[ProgramOutcome]] = [None] * len(specs)
    future_map: Dict[object, int] = {}
    pool_broken = False

    def submit(index: int) -> None:
        try:
            fut = _shared_pool(jobs).submit(
                _run_in_worker, config, specs[index], index
            )
        except BrokenProcessPool:
            _discard_pool(jobs)
            ctx.count("batch.pool_rebuilds")
            fut = _shared_pool(jobs).submit(
                _run_in_worker, config, specs[index], index
            )
        future_map[fut] = index

    def retry_isolated(index: int) -> ProgramOutcome:
        # A broken pool cannot attribute the death to a program, so each
        # in-flight program is retried alone; one that kills its private
        # worker again is the culprit and is recorded worker-lost.
        pool = ProcessPoolExecutor(max_workers=1, mp_context=_mp_context())
        try:
            return pool.submit(
                _run_in_worker, config, specs[index], index
            ).result()
        except BrokenProcessPool:
            return _lost_outcome(
                specs[index], index, "worker process died during analysis"
            )
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    def collect(fut, index: int) -> ProgramOutcome:
        nonlocal pool_broken
        try:
            return fut.result()
        except BrokenProcessPool:
            pool_broken = True
            return retry_isolated(index)
        except Exception as exc:  # submission/pickling failure
            outcome = _lost_outcome(specs[index], index, repr(exc))
            outcome.status = STATUS_FAULT
            return outcome

    def handle(index: int, outcome: ProgramOutcome) -> None:
        # One trace lane per program keeps the merged Chrome trace
        # readable: lanes are stable corpus indices.
        _absorb_or_flush(ctx, outcome, lane=index + 1)
        _note_outcome(ctx, outcome)
        outcomes[index] = outcome
        _emit(outcome, on_result)

    # With fail-fast, submissions go out in a sliding window of `jobs`
    # so "stop submitting after the first failure" has something left
    # to stop; otherwise everything is submitted up front as before.
    next_index = 0
    window = min(len(specs), jobs) if fail_fast else len(specs)
    failed_path: Optional[str] = None
    for _ in range(window):
        submit(next_index)
        next_index += 1
    while future_map:
        done, _ = wait(set(future_map), return_when=FIRST_COMPLETED)
        for fut in done:
            index = future_map.pop(fut)
            outcome = collect(fut, index)
            handle(index, outcome)
            if (
                fail_fast
                and failed_path is None
                and outcome.status != STATUS_OK
            ):
                failed_path = specs[index].path
            if failed_path is None and next_index < len(specs):
                submit(next_index)
                next_index += 1
        if pool_broken:
            # The broken pool poisons every outstanding future; drain
            # them via isolated retries, then discard it so any later
            # analysis starts a fresh pool.
            for fut in list(future_map):
                index = future_map.pop(fut)
                handle(index, collect(fut, index))
            _discard_pool(jobs)
            ctx.count("batch.pool_rebuilds")
            pool_broken = False
    if failed_path is not None:
        for index in range(next_index, len(specs)):
            skipped = _skipped_outcome(specs[index], index, failed_path)
            _note_outcome(ctx, skipped)
            outcomes[index] = skipped
            _emit(skipped, on_result)
    return [o for o in outcomes if o is not None]
