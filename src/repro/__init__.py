"""Reproduction of *Loop Parallelization using Dynamic Commutativity Analysis*
(Vasiladiotis, Castañeda Lozano, Cole, Franke — CGO 2021).

The package is organised as a full compiler pipeline plus the paper's
analysis and evaluation infrastructure:

``repro.lang``
    MiniC front end (lexer, parser, type checker).
``repro.ir``
    Three-address CFG intermediate representation and AST lowering.
``repro.analysis``
    Classic compiler analyses: dominators, loops, liveness, def-use, alias,
    affine dependence testing, idiom recognition.
``repro.interp``
    Instrumentable IR interpreter with memory-event tracing and profiling.
``repro.core``
    Dynamic Commutativity Analysis — the paper's contribution.
``repro.api``
    The embedding facade: frozen ``AnalysisConfig`` + ``AnalysisSession``
    driving analyze/detect/profile/batch (the CLI is an adapter over it).
``repro.cache``
    Persistent content-addressed cache of per-loop dynamic verdicts.
``repro.batch``
    Corpus batch driver: many programs, one pool, recorded failures.
``repro.baselines``
    The five baseline parallelism detectors evaluated against DCA.
``repro.parallel``
    Parallel code generation and the simulated multicore executor.
``repro.benchsuite``
    MiniC ports of the NPB-style and PLDS benchmark programs.
``repro.obs``
    Pipeline-wide observability: spans (Chrome-trace export), metrics,
    structured events — stdlib-only, disabled by default.

Typical use::

    from repro import compile_program
    from repro.core import DcaAnalyzer

    module = compile_program(source_code)
    report = DcaAnalyzer(module).analyze()
    for loop in report.commutative_loops():
        print(loop.qualified_name)
"""

from repro.driver import compile_program, run_program

__all__ = ["compile_program", "run_program"]

__version__ = "1.0.0"
