"""``repro.api`` — the embedding API for the DCA pipeline.

This module is the **single construction point** for analyses: one
frozen :class:`AnalysisConfig` value object captures every knob the
pipeline accepts (schedules, seeds, tolerance, live-out policy, static
filter, schedule/exec backends, jobs, observability, cache policy), and
one :class:`AnalysisSession` facade drives the four entry points —
``analyze``, ``detect``, ``profile``, ``batch`` — over it.  The CLI and
``repro.driver`` are thin adapters on top of this module; scattered
kwargs and ad-hoc ``REPRO_*`` reads are considered legacy.

**Precedence.**  Explicit config always beats the environment; the
environment beats defaults.  Concretely (unit-tested in
``tests/test_api.py``):

* ``backend``/``jobs`` — resolved by
  :func:`repro.core.schedule_engine.resolve_schedule_backend`: explicit
  backend, then process implied by explicit ``jobs > 1``, then
  ``REPRO_SCHEDULE_BACKEND``, then process implied by
  ``REPRO_SCHEDULE_JOBS > 1``, then serial.
* ``exec_backend`` — explicit value, then ``REPRO_EXEC_BACKEND``, then
  the interpreter.
* ``cache_dir`` — explicit value, then ``REPRO_CACHE_DIR``, then
  disabled.

**Caching.**  :meth:`AnalysisConfig.fingerprint` is the exact
config-fingerprint component of the persistent cache key (see
:mod:`repro.cache.keys`); it covers only verdict-relevant settings, so
cache entries are shared across schedule backends, job counts, exec
backends and observability — the same axes report serialization is
byte-identical across.

Quickstart::

    from repro.api import AnalysisConfig, AnalysisSession

    config = AnalysisConfig(liveout_policy="strict", jobs=4,
                            cache_dir="~/.cache/repro-dca")
    with AnalysisSession(config) as session:
        report = session.analyze(source_text)
        for loop in report.commutative_loops():
            print(loop.qualified_name)
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import repro.obs as obs
from repro.cache import open_cache, resolve_cache_dir
from repro.cache.keys import config_fingerprint
from repro.core.dca import DcaAnalyzer
from repro.core.report import DcaReport
from repro.core.schedule_engine import resolve_schedule_backend
from repro.core.schedules import ScheduleConfig
from repro.interp.compiler import EXEC_BACKENDS, resolve_exec_backend
from repro.ir.function import Module

__all__ = [
    "AnalysisConfig",
    "AnalysisSession",
    "DetectOutcome",
    "legacy_report_dict",
]


def legacy_report_dict(data: Dict[str, object]) -> Dict[str, object]:
    """Flatten a schema-2 report dict back to the schema-1 shape.

    Deprecated compatibility shim for ``--json`` consumers that still
    expect the flat per-loop ``verdict`` string: strips
    ``report_schema_version``/``tier_counts`` and replaces each loop's
    structured verdict object with its ``value``.  Schema-1 input passes
    through unchanged (minus the warning).  Migrate to the structured
    ``verdict`` object — this shim is scheduled for removal one release
    after tiering ships.
    """
    import warnings

    warnings.warn(
        "legacy_report_dict() is a one-release compatibility shim; "
        "read the structured per-loop 'verdict' object instead",
        DeprecationWarning,
        stacklevel=2,
    )
    out = {
        key: value
        for key, value in data.items()
        if key not in ("report_schema_version", "tier_counts")
    }
    loops = out.get("loops")
    if isinstance(loops, dict):
        flat_loops = {}
        for label, loop in loops.items():
            loop = dict(loop)
            verdict = loop.get("verdict")
            if isinstance(verdict, dict):
                loop["verdict"] = verdict.get("value")
            flat_loops[label] = loop
        out["loops"] = flat_loops
    return out


@dataclass(frozen=True)
class AnalysisConfig:
    """Immutable description of one analysis configuration.

    Build variants with :meth:`replace`; equality and hashing follow
    value semantics, so configs can key dictionaries and memo tables.
    """

    #: Entry function and its arguments (the workload).
    entry: str = "main"
    args: Tuple[object, ...] = ()
    #: Float tolerance for live-out comparison.
    rtol: float = 1e-9
    #: "strict" compares live-outs at every loop exit; "eventual" only
    #: the final observable outcome.
    liveout_policy: str = "strict"
    #: Pre-screen loops with the static commutativity prover.
    static_filter: bool = True
    #: Interpreter step budget (None derives one from the golden run).
    max_steps: Optional[int] = None
    #: Schedule preset: either an explicit :class:`ScheduleConfig`, or
    #: the paper's default preset parameterized by these two knobs.
    schedules: Optional[ScheduleConfig] = None
    n_random_schedules: int = 2
    schedule_seed: int = 0xDCA
    #: Restrict analysis to these loop labels (None analyzes all).
    candidate_labels: Optional[Tuple[str, ...]] = None
    #: Schedule-execution backend ("serial"/"process") and worker count;
    #: None defers to the environment, then the defaults.
    backend: Optional[str] = None
    jobs: Optional[int] = None
    #: Execution backend for observer-free runs (one of
    #: :data:`repro.interp.compiler.EXEC_BACKENDS`).
    exec_backend: Optional[str] = None
    #: Record spans/metrics/events during session operations.
    obs: bool = False
    #: Persistent cache directory (None defers to ``REPRO_CACHE_DIR``,
    #: then disabled) and mode ("rw", "ro", "refresh", or "off").
    cache_dir: Optional[str] = None
    cache_mode: str = "rw"
    #: Commutativity specs (verification modulo declared equivalence;
    #: see :mod:`repro.analysis.specs`).  None defers to ``REPRO_SPECS``
    #: (default: off); True/False force the built-in registry on or off.
    specs: Optional[bool] = None
    #: Run-ledger directory (None defers to ``REPRO_LEDGER_DIR``, then
    #: disabled; the explicit value "off" disables even over the
    #: environment).  Session entry points append one headline row per
    #: run (see :mod:`repro.obs.ledger` and ``repro stats``).
    ledger_dir: Optional[str] = None
    #: Parallelization tiering (DOALL/REDUCTION/PIPELINE/SEQUENTIAL per
    #: loop; see :mod:`repro.analysis.sccdag`).  None defers to
    #: ``REPRO_TIERING`` (default: off); True/False force it.  When on,
    #: reports serialize under ``report_schema_version`` 2.
    tiering: Optional[bool] = None
    #: Upper bound on DSWP pipeline stages per loop (>= 2).
    max_pipeline_stages: int = 4

    def __post_init__(self) -> None:
        if self.liveout_policy not in ("strict", "eventual"):
            raise ValueError(
                f"unknown liveout policy {self.liveout_policy!r}"
            )
        if self.cache_mode not in ("rw", "ro", "refresh", "off"):
            raise ValueError(f"unknown cache mode {self.cache_mode!r}")
        if self.backend not in (None, "serial", "process"):
            raise ValueError(f"unknown schedule backend {self.backend!r}")
        # Validate against the backend registry, not a local copy: the
        # explicit field must accept exactly what REPRO_EXEC_BACKEND
        # accepts, or the documented explicit-beats-env precedence
        # silently inverts for backends missing from the copy.
        if self.exec_backend is not None and self.exec_backend not in EXEC_BACKENDS:
            raise ValueError(f"unknown exec backend {self.exec_backend!r}")
        if self.max_pipeline_stages < 2:
            raise ValueError("max_pipeline_stages must be >= 2")
        # Frozen dataclasses hash by field tuple; normalize silently
        # mutable aliases so value semantics hold.
        if isinstance(self.args, list):
            object.__setattr__(self, "args", tuple(self.args))
        if isinstance(self.candidate_labels, list):
            object.__setattr__(
                self, "candidate_labels", tuple(self.candidate_labels)
            )

    def replace(self, **changes) -> "AnalysisConfig":
        """A copy of this config with the given fields changed."""
        return dataclasses.replace(self, **changes)

    # -- resolution (explicit > environment > default) --------------------

    def schedule_config(self) -> ScheduleConfig:
        if self.schedules is not None:
            return self.schedules
        return ScheduleConfig.default(
            n_random=self.n_random_schedules, seed=self.schedule_seed
        )

    def schedule_names(self) -> List[str]:
        """Canonical schedule names: identity plus the testing set."""
        return ["identity"] + [
            s.name for s in self.schedule_config().testing_schedules()
        ]

    def resolved_backend(self) -> Tuple[str, Optional[int]]:
        return resolve_schedule_backend(self.backend, self.jobs)

    def resolved_exec_backend(self) -> str:
        return resolve_exec_backend(self.exec_backend)

    def resolved_cache_dir(self) -> Optional[str]:
        if self.cache_mode == "off":
            return None
        return resolve_cache_dir(self.cache_dir)

    def resolved_ledger_dir(self) -> Optional[str]:
        if self.ledger_dir == "off":
            return None
        return obs.resolve_ledger_dir(self.ledger_dir)

    def resolved_specs(self):
        """The effective :class:`~repro.analysis.specs.SpecRegistry`:
        explicit ``specs`` beats ``REPRO_SPECS`` beats off."""
        from repro.analysis.specs import default_registry, registry_from_env

        if self.specs is None:
            return registry_from_env()
        return default_registry() if self.specs else None

    def resolved_tiering(self) -> bool:
        """Effective tiering switch: explicit ``tiering`` beats
        ``REPRO_TIERING`` beats off."""
        from repro.analysis.sccdag import resolve_tiering

        return resolve_tiering(self.tiering)

    def fingerprint(self) -> str:
        """The exact config-fingerprint component of the persistent
        cache key.  Covers only verdict-relevant settings — backends,
        jobs, observability and cache policy are excluded, matching the
        report byte-identity contract across those axes."""
        registry = self.resolved_specs()
        return config_fingerprint(
            self.schedule_names(),
            rtol=self.rtol,
            liveout_policy=self.liveout_policy,
            static_filter=self.static_filter,
            max_steps=self.max_steps,
            candidate_labels=self.candidate_labels,
            specs=registry.digest() if registry is not None else None,
            tiering=(
                {"max_pipeline_stages": self.max_pipeline_stages}
                if self.resolved_tiering()
                else None
            ),
        )


@dataclass
class DetectOutcome:
    """Result of :meth:`AnalysisSession.detect`: DCA versus baselines."""

    report: DcaReport
    #: detector name -> {loop label -> detection result object}.
    baselines: Dict[str, Dict[str, object]]
    #: detector name -> cost counters (plus the shared "profile" entry).
    costs: Dict[str, Dict[str, float]]
    #: Detector evaluation order (stable for table rendering).
    detector_names: List[str]

    def baseline_verdicts(self) -> Dict[str, Dict[str, bool]]:
        return {
            name: {
                label: bool(res and res.parallel)
                for label, res in results.items()
            }
            for name, results in self.baselines.items()
        }


class AnalysisSession:
    """Facade over the whole pipeline for one configuration.

    Owns the persistent cache handle (one connection reused across
    calls) and constructs every :class:`DcaAnalyzer` the same way —
    adapters (CLI, driver, batch) should never assemble analyzer kwargs
    themselves.

    **Concurrency contract.**  A session is single-threaded: entry
    points must not be invoked concurrently on one session.  Concurrent
    callers (the ``repro serve`` daemon) run one session per in-flight
    request and share the expensive state underneath instead — the
    schedule-engine worker pool is process-global already, and one open
    :class:`~repro.cache.AnalysisCache` handle may be passed as
    ``cache=`` to any number of sessions (the handle serializes its own
    statements; see :mod:`repro.cache.store`).  An injected cache is
    *borrowed*: :meth:`close` leaves it open, its owner closes it.
    """

    def __init__(
        self,
        config: Optional[AnalysisConfig] = None,
        cache=None,
    ):
        self.config = config or AnalysisConfig()
        self._cache = cache
        self._cache_opened = cache is not None
        self._cache_owned = cache is None
        self._ledger = None
        self._ledger_opened = False

    # -- plumbing ----------------------------------------------------------

    @property
    def cache(self):
        """The open :class:`~repro.cache.AnalysisCache`, or None."""
        if not self._cache_opened:
            self._cache_opened = True
            mode = self.config.cache_mode
            if mode != "off":
                self._cache = open_cache(
                    self.config.resolved_cache_dir(), mode=mode
                )
        return self._cache

    @property
    def ledger(self):
        """The open :class:`~repro.obs.RunLedger`, or None."""
        if not self._ledger_opened:
            self._ledger_opened = True
            directory = self.config.resolved_ledger_dir()
            if directory is not None:
                self._ledger = obs.RunLedger(directory)
        return self._ledger

    def close(self) -> None:
        if self._cache is not None:
            if self._cache_owned:
                self._cache.close()
            self._cache = None
            self._cache_opened = False
            self._cache_owned = True
        if self._ledger is not None:
            self._ledger.close()
            self._ledger = None
            self._ledger_opened = False

    def _record_run(
        self, kind: str, report: DcaReport, source_path: Optional[str]
    ) -> None:
        """Append one headline row to the run ledger (when configured)."""
        ledger = self.ledger
        if ledger is None:
            return
        ledger.record(
            kind=kind,
            program=source_path or "<inline>",
            fingerprint=self.config.fingerprint(),
            wall_ms=sum(report.stage_times_ms.values()),
            schedule_executions=report.schedule_executions,
            executions_saved=(
                report.static_schedules_saved
                + report.cache.schedule_executions_avoided
            ),
            cache_hits=report.cache.hits,
            cache_misses=report.cache.misses,
            verdicts=report.verdict_counts(),
            tiers=report.tier_counts() if report.tiering else {},
            stage_times=report.stage_times_ms,
        )

    def __enter__(self) -> "AnalysisSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def compile(self, source: str) -> Module:
        from repro.driver import compile_program

        return compile_program(source)

    def _prepare(self, program) -> Tuple[Module, Optional[str]]:
        """(module, source text) for a source-or-module argument."""
        if isinstance(program, Module):
            return program, None
        return self.compile(program), program

    def analyzer(
        self,
        module: Module,
        source_text: Optional[str] = None,
        source_path: Optional[str] = None,
    ) -> DcaAnalyzer:
        """Construct the configured analyzer — the one true assembly of
        ``DcaAnalyzer`` kwargs from an :class:`AnalysisConfig`."""
        config = self.config
        backend, jobs = config.resolved_backend()
        return DcaAnalyzer(
            module,
            entry=config.entry,
            args=list(config.args),
            schedules=config.schedule_config(),
            rtol=config.rtol,
            max_steps=config.max_steps,
            candidate_labels=config.candidate_labels,
            liveout_policy=config.liveout_policy,
            static_filter=config.static_filter,
            specs=config.resolved_specs() or False,
            backend=backend,
            jobs=jobs,
            exec_backend=config.resolved_exec_backend(),
            cache=self.cache,
            source_text=source_text,
            source_path=source_path,
            tiering=config.resolved_tiering(),
            max_pipeline_stages=config.max_pipeline_stages,
        )

    # -- entry points ------------------------------------------------------

    def analyze(self, program, source_path: Optional[str] = None) -> DcaReport:
        """Run DCA over a program (source text or compiled module)."""
        module, source_text = self._prepare(program)
        report = self.analyzer(
            module, source_text=source_text, source_path=source_path
        ).analyze()
        self._record_run("analyze", report, source_path)
        return report

    def detect(self, program, source_path: Optional[str] = None) -> DetectOutcome:
        """Run DCA plus the five baseline detectors."""
        from repro.baselines import (
            DependenceProfilingDetector,
            DiscoPopDetector,
            IccDetector,
            IdiomsDetector,
            PollyDetector,
            build_context,
        )

        module, source_text = self._prepare(program)
        report = self.analyzer(
            module, source_text=source_text, source_path=source_path
        ).analyze()
        # Baselines profile the pristine program; give them a private
        # compile so DCA instrumentation cannot leak into their context.
        pristine, _ = self._prepare(
            program if source_text is None else source_text
        )
        ctx = build_context(pristine, entry=self.config.entry)
        detectors = [
            DependenceProfilingDetector(),
            DiscoPopDetector(),
            IdiomsDetector(),
            PollyDetector(),
            IccDetector(),
        ]
        results = {d.name: d.detect(ctx) for d in detectors}
        self._record_run("detect", report, source_path)
        return DetectOutcome(
            report=report,
            baselines=results,
            costs=ctx.costs,
            detector_names=[d.name for d in detectors],
        )

    def profile(self, program, source_path: Optional[str] = None):
        """Run DCA with full observability enabled.

        Returns ``(report, obs_context)``.  If the process-local
        observability context is not already enabled, a fresh enabled
        context is installed; the caller owns disabling it.
        """
        ctx = obs.current()
        if not ctx.enabled:
            ctx = obs.enable()
        if isinstance(program, Module):
            module, source_text = program, None
        else:
            with ctx.span("repro.compile"):
                module = self.compile(program)
            source_text = program
        report = self.analyzer(
            module, source_text=source_text, source_path=source_path
        ).analyze()
        self._record_run("profile", report, source_path)
        return report, ctx

    def batch(
        self,
        paths: Sequence[str] = (),
        manifest: Optional[str] = None,
        on_result=None,
        fail_fast: bool = False,
    ):
        """Analyze a corpus of programs (see :mod:`repro.batch`).

        ``paths`` mixes program files and directories (scanned for
        ``*.mc``); ``manifest`` points at a JSON/JSONL program list.
        ``on_result`` streams per-program outcomes as they complete.
        ``fail_fast`` stops submitting after the first failed program.
        Returns a :class:`repro.batch.CorpusResult`.
        """
        from repro.batch import run_batch

        result = run_batch(
            self.config,
            paths=paths,
            manifest=manifest,
            on_result=on_result,
            fail_fast=fail_fast,
        )
        ledger = self.ledger
        if ledger is not None:
            summary = result.to_dict()
            saved = 0
            for outcome in result.outcomes:
                if outcome.report:
                    metrics = outcome.report.get("metrics", {})
                    saved += int(
                        metrics.get("schedule_executions_saved_static", 0)
                    )
            corpus = ";".join(
                list(paths) + ([manifest] if manifest else [])
            )
            ledger.record(
                kind="batch",
                program=corpus or "<corpus>",
                fingerprint=self.config.fingerprint(),
                wall_ms=result.wall_ms,
                schedule_executions=summary["schedule_executions"],
                executions_saved=saved,
                cache_hits=summary["cache_hits"],
                cache_misses=summary["cache_misses"],
                verdicts=result.verdict_counts(),
                extra={
                    "programs": summary["programs"],
                    "status_counts": summary["status_counts"],
                },
            )
        return result
