"""Dynamic Commutativity Analysis — the paper's contribution."""

from repro.core.dca import DcaAnalyzer
from repro.core.instrument import (
    TestInstrumentation,
    VerifySpec,
    build_observe_module,
    build_test_module,
    compute_verify_spec,
)
from repro.core.iterator_recognition import (
    IteratorSeparation,
    iterator_fraction,
    separate,
)
from repro.core.liveout import Snapshot, capture, snapshots_equal
from repro.core.payload import OutlineError, OutlineResult, outline_payload
from repro.core.report import (
    COMMUTATIVE,
    COMMUTATIVE_VACUOUS,
    DECIDED_DYNAMIC,
    DECIDED_SELECTION,
    DECIDED_STATIC,
    EXCLUDED_IO,
    ITERATOR_ONLY,
    NON_COMMUTATIVE,
    NOT_EXERCISED,
    RUNTIME_FAULT,
    SPLIT_MISMATCH,
    UNTESTABLE,
    DcaReport,
    LoopCost,
    LoopResult,
)
from repro.core.runtime import CommutativityMismatch, DcaRuntime
from repro.core.schedules import (
    EvenOddSchedule,
    IdentitySchedule,
    RandomSchedule,
    ReverseSchedule,
    RotationSchedule,
    Schedule,
    ScheduleConfig,
    is_valid_permutation,
)

__all__ = [
    "COMMUTATIVE",
    "COMMUTATIVE_VACUOUS",
    "CommutativityMismatch",
    "DECIDED_DYNAMIC",
    "DECIDED_SELECTION",
    "DECIDED_STATIC",
    "DcaAnalyzer",
    "DcaReport",
    "DcaRuntime",
    "EXCLUDED_IO",
    "EvenOddSchedule",
    "ITERATOR_ONLY",
    "IdentitySchedule",
    "IteratorSeparation",
    "LoopCost",
    "LoopResult",
    "NON_COMMUTATIVE",
    "NOT_EXERCISED",
    "OutlineError",
    "OutlineResult",
    "RUNTIME_FAULT",
    "RandomSchedule",
    "ReverseSchedule",
    "RotationSchedule",
    "SPLIT_MISMATCH",
    "Schedule",
    "ScheduleConfig",
    "Snapshot",
    "TestInstrumentation",
    "UNTESTABLE",
    "VerifySpec",
    "build_observe_module",
    "build_test_module",
    "capture",
    "compute_verify_spec",
    "is_valid_permutation",
    "iterator_fraction",
    "outline_payload",
    "separate",
    "snapshots_equal",
]
