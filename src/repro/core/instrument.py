"""Instrumentation passes (paper §IV-A3/§IV-A4).

Two program variants are produced from the pristine module:

* the **observe variant** — every candidate loop keeps its original code
  but gains an ``rt_verify`` call on each exit edge.  Executed once with
  the workload, it yields the *golden* live-out snapshots in original
  program order.
* a **test variant** per candidate loop — the loop's payload is outlined,
  the loop is replaced by a *recording clone* (iterator only, payload call
  replaced by ``rt_iterator_record``), followed by ``rt_iterator_permute``
  and a *dispatch loop* that replays the payload in the schedule's order
  (``rt_iterator_next``/``rt_iterator_get``), and finally ``rt_verify``.

The intrinsic names follow Fig. 4 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.liveness import Liveness, LoopLiveness
from repro.analysis.loops import build_loop_forest, invalidate_loops
from repro.analysis.purity import EffectAnalysis
from repro.core.payload import OutlineResult, outline_payload, sanitize
from repro.ir.clone import clone_module
from repro.ir.function import Function, Module
from repro.ir.instructions import (
    Branch,
    Call,
    CallBuiltin,
    Const,
    GetField,
    Intrinsic,
    Jump,
    LoadGlobal,
    Mov,
    Reg,
    StoreGlobal,
)
from repro.lang.types import BOOL

RT_RECORD = "rt_iterator_record"
RT_PERMUTE = "rt_iterator_permute"
RT_NEXT = "rt_iterator_next"
RT_GET = "rt_iterator_get"
RT_VERIFY = "rt_verify"


@dataclass
class VerifySpec:
    """What ``rt_verify`` snapshots for one loop.

    The verify call passes ``scalar_regs + ref_regs`` as arguments (in this
    order); the runtime additionally reads the named globals directly from
    the interpreter.
    """

    label: str
    function: str
    scalar_regs: List[Reg] = field(default_factory=list)
    ref_regs: List[Reg] = field(default_factory=list)
    ref_globals: List[str] = field(default_factory=list)
    scalar_globals: List[str] = field(default_factory=list)
    #: Declared-container equivalence for snapshot comparison: a sorted
    #: tuple of (struct name, link slot index) pairs, or None for the
    #: default byte-exact comparison.  Set by the analyzer from the spec
    #: registry (see repro.analysis.specs) and applied by
    #: DcaRuntime._verify via liveout.canonicalize_snapshot.
    equivalence: Optional[Tuple[Tuple[str, int], ...]] = None

    def verify_args(self) -> List[Reg]:
        return list(self.scalar_regs) + list(self.ref_regs)


def loop_global_effects(
    module: Module, func: Function, loop_blocks: Set[str], effects: EffectAnalysis
) -> Tuple[Set[str], Set[str]]:
    """Globals (read, written) by the loop body, including callees."""
    gread: Set[str] = set()
    gwritten: Set[str] = set()
    for name in loop_blocks:
        for instr in func.blocks[name].instrs:
            if isinstance(instr, LoadGlobal):
                gread.add(instr.name)
            elif isinstance(instr, StoreGlobal):
                gwritten.add(instr.name)
            elif isinstance(instr, Call) and instr.func in effects.effects:
                callee = effects.of(instr.func)
                gread |= callee.globals_read
                gwritten |= callee.globals_written
    return gread, gwritten


def compute_verify_spec(
    module: Module,
    func: Function,
    label: str,
    effects: EffectAnalysis,
) -> VerifySpec:
    """Derive the live-out specification of a loop on the pristine module."""
    forest = build_loop_forest(func)
    loop = forest.loops[label]
    ll = LoopLiveness(func, forest)
    spec = VerifySpec(label=label, function=func.name)
    spec.scalar_regs = ll.live_out_scalars(loop)
    spec.ref_regs = ll.live_out_refs(loop)
    gread, gwritten = loop_global_effects(module, func, loop.blocks, effects)
    touched = gread | gwritten
    spec.ref_globals = sorted(
        name
        for name in touched
        if name in module.globals and module.globals[name].type.is_reference()
    )
    spec.scalar_globals = sorted(
        name
        for name in gwritten
        if name in module.globals and not module.globals[name].type.is_reference()
    )
    return spec


def loop_does_io(
    func: Function, loop_blocks: Set[str], effects: EffectAnalysis
) -> bool:
    for name in loop_blocks:
        for instr in func.blocks[name].instrs:
            if isinstance(instr, CallBuiltin) and instr.func == "print":
                return True
            if isinstance(instr, Call) and instr.func in effects.effects:
                if effects.of(instr.func).does_io:
                    return True
    return False


# ---------------------------------------------------------------------------
# Observe variant
# ---------------------------------------------------------------------------


def insert_verify_on_exits(func: Function, label: str, spec: VerifySpec) -> int:
    """Split every exit edge of ``label`` with an ``rt_verify`` block.

    Returns the number of verify blocks inserted.
    """
    invalidate_loops(func)
    forest = build_loop_forest(func)
    if label not in forest.loops:
        return 0
    loop = forest.loops[label]
    edges = loop.exit_edges(func)
    count = 0
    for src, dst in edges:
        vname = f"{sanitize(label)}.verify{count}"
        vblock = func.new_block(vname)
        vblock.append(
            Intrinsic(None, RT_VERIFY, [Const(label)] + list(spec.verify_args()))
        )
        vblock.append(Jump(dst))
        term = func.blocks[src].instrs[-1]
        if isinstance(term, Jump):
            term.target = vname
        elif isinstance(term, Branch):
            if term.true_target == dst:
                term.true_target = vname
            if term.false_target == dst:
                term.false_target = vname
        count += 1
    invalidate_loops(func)
    return count


def build_observe_module(
    module: Module, specs: Dict[str, VerifySpec]
) -> Module:
    """Clone ``module`` and insert verify hooks for every spec'd loop."""
    observed = clone_module(module)
    for label, spec in specs.items():
        func = observed.functions[spec.function]
        insert_verify_on_exits(func, label, spec)
    return observed


# ---------------------------------------------------------------------------
# Test variant
# ---------------------------------------------------------------------------


@dataclass
class TestInstrumentation:
    """A module instrumented to commutativity-test one loop."""

    label: str
    module: Module
    outline: OutlineResult
    spec: VerifySpec


def build_test_module(
    module: Module, label: str, spec: VerifySpec, memory_flow=None
) -> TestInstrumentation:
    """Build the split (record → permute → dispatch → verify) variant."""
    test = clone_module(module)
    func = test.functions[spec.function]
    outline = outline_payload(test, func, label, memory_flow=memory_flow)

    forest = build_loop_forest(func)
    loop = forest.loops[label]
    loop_blocks = set(loop.blocks)
    exit_edges = loop.exit_edges(func)
    header = loop.header
    san = sanitize(label)

    # --- recording clone ------------------------------------------------------
    suffix = "$rec"
    mapping = {name: name + suffix for name in loop_blocks}
    for name in [n for n in func.block_order if n in loop_blocks]:
        src = func.blocks[name]
        rec = func.new_block(mapping[name])
        for instr in src.instrs:
            rec.append(instr.clone())
        term = rec.instrs[-1]
        if isinstance(term, Jump):
            term.target = mapping.get(term.target, term.target)
        elif isinstance(term, Branch):
            term.true_target = mapping.get(term.true_target, term.true_target)
            term.false_target = mapping.get(term.false_target, term.false_target)

    # Replace the payload call in the recording clone with rt_iterator_record.
    rec_call_block = func.blocks[mapping[outline.call_block]]
    for i, instr in enumerate(rec_call_block.instrs):
        if isinstance(instr, Call) and instr.func == outline.payload_func:
            rec_call_block.instrs[i] = Intrinsic(
                None,
                RT_RECORD,
                [Const(label)] + list(outline.input_regs),
                line=instr.line,
            )
            break
    else:  # pragma: no cover - outline guarantees the call exists
        raise AssertionError("payload call not found in recording clone")

    # Entry edges now lead to the recording clone.
    for block in func.ordered_blocks():
        if block.name in loop_blocks or block.name.endswith(suffix):
            continue
        term = block.instrs[-1]
        if isinstance(term, Jump) and term.target == header:
            term.target = mapping[header]
        elif isinstance(term, Branch):
            if term.true_target == header:
                term.true_target = mapping[header]
            if term.false_target == header:
                term.false_target = mapping[header]

    # --- dispatch chain per exit edge -------------------------------------------
    save_regs = {reg: Reg(f"__save_{san}_{reg.name}") for reg in outline.input_regs}
    for reg, save in save_regs.items():
        func.reg_types[save] = func.reg_types.get(reg, BOOL)

    for i, (src, dst) in enumerate(exit_edges):
        d0 = func.new_block(f"{san}.d{i}.permute")
        d1 = func.new_block(f"{san}.d{i}.head")
        d2 = func.new_block(f"{san}.d{i}.body")
        d3 = func.new_block(f"{san}.d{i}.verify")

        # D0: save clobberable registers, pick the permutation.
        for reg, save in save_regs.items():
            d0.append(Mov(save, reg))
        d0.append(Intrinsic(None, RT_PERMUTE, [Const(label)]))
        d0.append(Jump(d1.name))

        # D1: more iterations to dispatch?
        cond = Reg(f"__more_{san}_{i}")
        func.reg_types[cond] = BOOL
        d1.append(Intrinsic(cond, RT_NEXT, [Const(label)]))
        d1.append(Branch(cond, d2.name, d3.name))

        # D2: fetch the recorded payload arguments, run the payload.
        for j, reg in enumerate(outline.input_regs):
            d2.append(Intrinsic(reg, RT_GET, [Const(label), Const(j)]))
        d2.append(
            Call(None, outline.payload_func, [outline.env_reg] + outline.input_regs)
        )
        d2.append(Jump(d1.name))

        # D3: restore registers, copy payload outputs back, verify.
        for reg, save in save_regs.items():
            d3.append(Mov(reg, save))
        for reg in outline.output_regs:
            d3.append(GetField(reg, outline.env_reg, outline.env_fields[reg]))
        d3.append(
            Intrinsic(None, RT_VERIFY, [Const(label)] + list(spec.verify_args()))
        )
        d3.append(Jump(dst))

        # Redirect the recording clone's exit edge into the dispatch chain.
        term = func.blocks[mapping[src]].instrs[-1]
        if isinstance(term, Jump) and term.target == dst:
            term.target = d0.name
        elif isinstance(term, Branch):
            if term.true_target == dst:
                term.true_target = d0.name
            if term.false_target == dst:
                term.false_target = d0.name

    invalidate_loops(func)
    func.remove_unreachable_blocks()
    return TestInstrumentation(label=label, module=test, outline=outline, spec=spec)
