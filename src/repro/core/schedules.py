"""Permutation schedules (paper §IV-B2).

Exhaustively testing all ``n!`` iteration orders is infeasible, so DCA
ships *reduced permutation presets*: the identity order (which doubles as
the transformation-sanity check), the reverse order, and a configurable
number of seeded random shuffles.  The schedule-adequacy ablation bench
(`benchmarks/test_schedule_ablation.py`) quantifies the residual risk of
this trade-off.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence


class Schedule:
    """A family of permutations, one per trip count."""

    name = "abstract"

    def permutation(self, n: int) -> List[int]:
        """A permutation of ``range(n)``."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<schedule {self.name}>"


class IdentitySchedule(Schedule):
    """Original program order; used as the transformation sanity check."""

    name = "identity"

    def permutation(self, n: int) -> List[int]:
        return list(range(n))


class ReverseSchedule(Schedule):
    name = "reverse"

    def permutation(self, n: int) -> List[int]:
        return list(range(n - 1, -1, -1))


class RandomSchedule(Schedule):
    """A seeded Fisher-Yates shuffle; deterministic per (seed, n)."""

    def __init__(self, seed: int):
        self.seed = seed
        self.name = f"random{seed}"

    def permutation(self, n: int) -> List[int]:
        order = list(range(n))
        random.Random(f"{self.seed}:{n}").shuffle(order)
        return order


class EvenOddSchedule(Schedule):
    """Even iterations first, then odd — a deterministic interleave killer.

    Not part of the paper's presets; used by the schedule ablation to show
    the effect of adding structured permutations.
    """

    name = "evenodd"

    def permutation(self, n: int) -> List[int]:
        return list(range(0, n, 2)) + list(range(1, n, 2))


class RotationSchedule(Schedule):
    """Cyclic rotation by ``k`` — the weakest non-identity disturbance."""

    def __init__(self, k: int = 1):
        self.k = k
        self.name = f"rotate{k}"

    def permutation(self, n: int) -> List[int]:
        if n == 0:
            return []
        k = self.k % n
        return list(range(k, n)) + list(range(0, k))


@dataclass
class ScheduleConfig:
    """The preset used by a DCA run."""

    schedules: Sequence[Schedule]

    @staticmethod
    def default(n_random: int = 2, seed: int = 0xDCA) -> "ScheduleConfig":
        """The paper's preset: identity + reverse + random shuffles."""
        schedules: List[Schedule] = [IdentitySchedule(), ReverseSchedule()]
        for i in range(n_random):
            schedules.append(RandomSchedule(seed + i))
        return ScheduleConfig(schedules)

    @staticmethod
    def identity_only() -> "ScheduleConfig":
        return ScheduleConfig([IdentitySchedule()])

    def testing_schedules(self) -> List[Schedule]:
        """Schedules other than identity (identity runs first, always)."""
        return [s for s in self.schedules if not isinstance(s, IdentitySchedule)]


def schedule_from_name(name: str) -> Schedule:
    """Rebuild a schedule from its recorded name.

    Schedule names are self-describing (``random<seed>`` / ``rotate<k>``
    carry their parameters), which makes a preset reconstructible from
    the name list alone — the property the persistent analysis cache
    relies on to re-execute cached loops during ``repro cache verify``.
    """
    if name == "identity":
        return IdentitySchedule()
    if name == "reverse":
        return ReverseSchedule()
    if name == "evenodd":
        return EvenOddSchedule()
    if name.startswith("random") and name[len("random"):].isdigit():
        return RandomSchedule(int(name[len("random"):]))
    if name.startswith("rotate") and name[len("rotate"):].isdigit():
        return RotationSchedule(int(name[len("rotate"):]))
    raise ValueError(f"unknown schedule name {name!r}")


def is_valid_permutation(order: Sequence[int], n: int) -> bool:
    """Invariant checked by property tests: ``order`` permutes ``range(n)``."""
    return len(order) == n and sorted(order) == list(range(n))
