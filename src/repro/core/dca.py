"""DCA orchestration (paper Fig. 3).

``DcaAnalyzer`` drives the whole analysis for one program + workload:

1. **Selection** — every source loop is a candidate unless it (or a callee)
   performs I/O (§IV-E).
2. **Static pre-screen** — the static commutativity prover
   (:mod:`repro.analysis.commutativity`) resolves loops whose verdict
   follows from the IR alone; proven loops skip permutation testing
   entirely (disable with ``static_filter=False`` / ``--no-static-filter``).
3. **Golden run** — the observe variant executes once, collecting per-loop,
   per-invocation live-out snapshots in original program order.
4. **Testing** — per remaining candidate loop, a test variant (outlined +
   split) runs once per schedule.  The identity schedule runs first as a
   transformation sanity check; perturbing schedules (reverse, random) only
   run when the loop actually iterates (≥2 trips somewhere), since
   permuting fewer than two iterations cannot change anything.
5. **Verdicts** — any divergence or fault under a perturbing schedule marks
   the loop non-commutative; identity divergence marks the transformation
   unsound for that loop (reported separately as ``split-mismatch``).
   Every :class:`~repro.core.report.LoopResult` records which stage decided
   it (``decided_by``: selection / static / dynamic / cache).

When a persistent :class:`~repro.cache.AnalysisCache` is attached, each
loop that would enter stage 4 is first looked up by ``(workload digest,
loop label, config fingerprint)``; a hit replays the memoized verdict,
cost record and accounting instead of executing any schedule, and a miss
stores the freshly decided loop for the next run.  Warm reports
serialize byte-identically to cold ones (cache provenance and hit/miss
accounting are deliberately excluded from serialization).
"""

from __future__ import annotations

import pickle
import time
from contextlib import contextmanager, nullcontext
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import repro.obs as obs
from repro.analysis.commutativity import (
    PROVEN_COMMUTATIVE,
    StaticCommutativityAnalysis,
)
from repro.analysis.dynamic_deps import DynamicDepProfiler
from repro.analysis.loops import build_loop_forest
from repro.analysis.purity import EffectAnalysis
from repro.analysis.reductions import COMPLEX_REDUCTIONS, classify_loop
from repro.analysis.sccdag import (
    DEFAULT_MAX_PIPELINE_STAGES,
    TIER_DOALL,
    TIER_PIPELINE,
    TIER_REDUCTION,
    TIER_SEQUENTIAL,
    build_sccdag,
    partition_stages,
    resolve_tiering,
)
from repro.analysis.specs import (
    SpecRegistry,
    default_registry,
    registry_from_env,
)
from repro.core.liveout import canonicalize_snapshot, capture, snapshot_digest
from repro.core.instrument import (
    VerifySpec,
    build_observe_module,
    build_test_module,
    compute_verify_spec,
    loop_does_io,
)
from repro.core.payload import OutlineError
from repro.cache.keys import (
    config_fingerprint,
    fingerprint_description,
    module_workload_digest,
)
from repro.core.report import (
    COMMUTATIVE,
    COMMUTATIVE_VACUOUS,
    DECIDED_CACHE,
    DECIDED_DYNAMIC,
    DECIDED_SELECTION,
    DECIDED_STATIC,
    DECIDED_STATIC_SPECS,
    EXCLUDED_IO,
    ITERATOR_ONLY,
    NON_COMMUTATIVE,
    NOT_EXERCISED,
    RUNTIME_FAULT,
    SPLIT_MISMATCH,
    UNTESTABLE,
    DcaReport,
    LoopResult,
)
from repro.core.runtime import DcaRuntime
from repro.core.schedule_engine import (
    CANCELLED,
    WORKER_LOST,
    LoopPlan,
    ScheduleEngine,
    ScheduleOutcome,
    ScheduleTask,
    create_engine,
    outcome_fails,
)
from repro.core.schedules import IdentitySchedule, ScheduleConfig
from repro.interp.compiler import create_executor, resolve_exec_backend
from repro.interp.interpreter import Interpreter
from repro.ir.function import Module


class DcaAnalyzer:
    """Runs Dynamic Commutativity Analysis on a compiled module."""

    def __init__(
        self,
        module: Module,
        entry: str = "main",
        args: Optional[Sequence[object]] = None,
        schedules: Optional[ScheduleConfig] = None,
        rtol: float = 1e-9,
        max_steps: Optional[int] = None,
        candidate_labels: Optional[Sequence[str]] = None,
        liveout_policy: str = "strict",
        static_filter: bool = True,
        specs=None,
        clock: Optional[Callable[[], float]] = None,
        backend: Optional[str] = None,
        jobs: Optional[int] = None,
        engine: Optional[ScheduleEngine] = None,
        fault_injection: Optional[Dict[Tuple[str, str], str]] = None,
        exec_backend: Optional[str] = None,
        cache=None,
        source_text: Optional[str] = None,
        source_path: Optional[str] = None,
        tiering: Optional[bool] = None,
        max_pipeline_stages: int = DEFAULT_MAX_PIPELINE_STAGES,
    ):
        self.module = module
        self.entry = entry
        self.args = list(args or [])
        self.schedules = schedules or ScheduleConfig.default()
        self.rtol = rtol
        self.max_steps = max_steps
        self.candidate_labels = (
            set(candidate_labels) if candidate_labels is not None else None
        )
        if liveout_policy not in ("strict", "eventual"):
            raise ValueError(f"unknown liveout policy {liveout_policy!r}")
        #: "strict" compares loop live-outs at every loop exit; "eventual"
        #: compares only the program's final observable outcome (printed
        #: output, return value, final global state) — the relaxation that
        #: lets transient worklist ordering violations pass (paper §I/§III).
        self.liveout_policy = liveout_policy
        #: Pre-screen loops with the static commutativity prover: loops
        #: with a proven static verdict skip permutation testing.
        self.static_filter = static_filter
        #: Commutativity-spec registry (verification modulo declared
        #: equivalence; see :mod:`repro.analysis.specs`).  ``None``
        #: resolves from the ``REPRO_SPECS`` environment (default: off);
        #: ``True`` selects the built-in registry, ``False`` disables
        #: specs, a :class:`SpecRegistry` is used as-is.
        if specs is None:
            self.specs: Optional[SpecRegistry] = registry_from_env()
        elif specs is True:
            self.specs = default_registry()
        elif specs is False:
            self.specs = None
        else:
            self.specs = specs
        #: Declared container struct -> link-field slot, restricted to
        #: structs this module actually defines with the exact declared
        #: signature.  Empty whenever specs are off or nothing matches —
        #: then every downstream path is byte-identical to specs-off.
        self._chain_slots: Dict[str, int] = (
            self.specs.chain_slots(module) if self.specs is not None else {}
        )
        #: label -> StaticLoopVerdict, filled when the pre-screen runs.
        self.static_verdicts = {}
        #: Same-invocation dynamic flow edges, filled by the profiling run.
        self.memory_flow = None
        #: label -> highest trip count seen in the profiling run.
        self._profiled_trips: Dict[str, int] = {}
        #: Injectable monotonic clock (seconds) for stage/schedule timing.
        #: Injecting a clock also zeroes worker-side timing, making the
        #: full report byte-identical across schedule backends.
        self._clock = clock or time.perf_counter
        self._measure_time = clock is None
        #: Schedule-execution backend (serial in-process by default; see
        #: :mod:`repro.core.schedule_engine` for the process backend and
        #: the ``REPRO_SCHEDULE_BACKEND`` / ``REPRO_SCHEDULE_JOBS``
        #: environment fallbacks).
        self._engine = engine or create_engine(backend, jobs, clock=clock)
        #: Execution backend for observer-free runs (golden run, schedule
        #: replays): ``interp`` or ``compiled`` (closure compilation; see
        #: :mod:`repro.interp.compiler` and the ``REPRO_EXEC_BACKEND``
        #: environment fallback).  Observer-bearing executions — the
        #: dynamic-dependence profiling run, and everything when the
        #: observability context is enabled — always use the interpreter.
        self.exec_backend = resolve_exec_backend(exec_backend)
        #: Testing hook: ``{(loop label, schedule name): fault style}``
        #: fires the named fault inside that schedule's execution.
        self.fault_injection = dict(fault_injection or {})
        #: Persistent analysis cache (:class:`repro.cache.AnalysisCache`
        #: or any object with the same ``lookup``/``store`` surface).
        #: Consulted per loop before schedules are planned; fault
        #: injection disables it — injected outcomes must never persist.
        self.cache = cache if not self.fault_injection else None
        #: Source provenance registered with the cache so ``repro cache
        #: verify`` can recompile and re-execute cached loops.
        self.source_text = source_text
        self.source_path = source_path
        #: Parallelization tiering (DOALL/REDUCTION/PIPELINE/SEQUENTIAL
        #: per loop; see :mod:`repro.analysis.sccdag`).  ``None`` resolves
        #: from the ``REPRO_TIERING`` environment (default: off).  When
        #: off, reports and cache keys are byte-identical to tiering-free
        #: releases.
        self.tiering = resolve_tiering(tiering)
        if max_pipeline_stages < 2:
            raise ValueError("max_pipeline_stages must be >= 2")
        self.max_pipeline_stages = max_pipeline_stages
        #: Dependence profiler retained from the profiling run; the
        #: tiering stage reuses its per-loop edges and privatization facts.
        self._dep_profiler: Optional[DynamicDepProfiler] = None
        self._workload_digest: Optional[str] = None
        #: Chrome-trace lane per worker pid (assigned in merge order).
        self._lane_by_pid: Dict[int, int] = {}
        #: Observability context; re-resolved at the start of ``analyze``.
        self._obs = obs.current()

    # -- observability ---------------------------------------------------------

    @contextmanager
    def _stage(self, report: DcaReport, name: str):
        """Measure one pipeline stage: wall time into the report, a span
        into the observability context (when enabled)."""
        start = self._clock()
        try:
            with self._obs.span(f"dca.{name}"):
                yield
        finally:
            elapsed_ms = (self._clock() - start) * 1000.0
            report.stage_times_ms[name] = (
                report.stage_times_ms.get(name, 0.0) + elapsed_ms
            )

    @staticmethod
    def _absorb_runtime(report: DcaReport, runtime: DcaRuntime) -> None:
        """Fold one execution's runtime cost counters into report totals."""
        report.snapshots_taken += runtime.snapshots_taken
        report.snapshot_nodes += runtime.snapshot_nodes
        report.snapshot_bytes += runtime.snapshot_bytes
        report.verify_comparisons += runtime.verify_comparisons
        report.mismatches += runtime.mismatches

    def _emit_verdict_events(self, report: DcaReport) -> None:
        if not self._obs.enabled:
            return
        for label in sorted(report.results):
            result = report.results[label]
            if result.is_commutative:
                severity = "info"
            elif result.verdict in (NON_COMMUTATIVE, SPLIT_MISMATCH, RUNTIME_FAULT):
                severity = "warning"
            else:
                severity = "note"
            self._obs.event(
                severity,
                "verdict",
                f"{label}: {result.verdict}",
                provenance=result.decided_by,
                loop=label,
                verdict=result.verdict,
                function=result.function,
            )

    # -- selection -----------------------------------------------------------

    def select_candidates(self) -> Dict[str, LoopResult]:
        """Classify every source loop; pre-assign verdicts for exclusions."""
        effects = EffectAnalysis(self.module)
        results: Dict[str, LoopResult] = {}
        for func in self.module.functions.values():
            forest = build_loop_forest(func)
            for label, meta in func.loops.items():
                if self.candidate_labels is not None and (
                    label not in self.candidate_labels
                ):
                    continue
                if label not in forest.loops:
                    continue
                loop = forest.loops[label]
                result = LoopResult(
                    label=label,
                    function=func.name,
                    line=meta.line,
                    kind=meta.kind,
                    verdict=NOT_EXERCISED,
                )
                if loop_does_io(func, loop.blocks, effects):
                    result.verdict = EXCLUDED_IO
                    result.reason = "loop or callee performs I/O"
                    result.decided_by = DECIDED_SELECTION
                results[label] = result
        return results

    # -- dynamic stage ---------------------------------------------------------

    def _profile_memory_flow(self, report: DcaReport) -> None:
        """One profiled run of the pristine program (iterator recognition)."""
        profiler = DynamicDepProfiler(self.module)
        interp = Interpreter(
            self.module, observers=[profiler], max_steps=self.max_steps
        )
        interp.run(self.entry, self.args)
        report.executions += 1
        report.interp_instructions += interp.steps
        #: label -> same-invocation flow edges, kept per loop: an edge
        #: discovered in an enclosing loop's scope must not leak into an
        #: inner loop's slice.
        self.memory_flow = profiler.memory_flow_edges()
        self._profiled_trips = dict(profiler.max_trips)
        self._dep_profiler = profiler

    def _program_outcome(self, interp: Interpreter, result: object):
        """The eventual observable outcome of a finished execution.

        With specs enabled the final-globals snapshot canonicalizes
        declared containers exactly like ``rt_verify`` does (the worker
        side applies the same rewrite via ``task.spec.equivalence``), so
        the eventual policy also compares modulo declared equivalence.
        """
        global_names = sorted(self.module.globals)
        roots = [interp.globals[name] for name in global_names]
        final = capture(roots)
        if self._chain_slots:
            final = canonicalize_snapshot(final, self._chain_slots)
        return (interp.output_text(), result, final)

    # -- persistent cache ------------------------------------------------------

    def workload_digest(self) -> str:
        """Content address of this analyzer's workload (module+entry+args)."""
        if self._workload_digest is None:
            self._workload_digest = module_workload_digest(
                self.module, self.entry, self.args
            )
        return self._workload_digest

    def _schedule_names(self) -> List[str]:
        """Canonical schedule name list: identity (always run first)
        plus the testing schedules, normalizing presets that do or do
        not list identity explicitly."""
        return ["identity"] + [
            s.name for s in self.schedules.testing_schedules()
        ]

    def _tiering_fingerprint(self) -> Optional[Dict[str, object]]:
        """Tiering's fingerprint contribution — ``None`` (key omitted,
        same as the specs pattern) whenever tiering is off, so
        tiering-off cache keys match tiering-free releases exactly."""
        if not self.tiering:
            return None
        return {"max_pipeline_stages": self.max_pipeline_stages}

    def _fingerprint_description(self) -> Dict[str, object]:
        return fingerprint_description(
            self._schedule_names(),
            rtol=self.rtol,
            liveout_policy=self.liveout_policy,
            static_filter=self.static_filter,
            max_steps=self.max_steps,
            candidate_labels=(
                sorted(self.candidate_labels)
                if self.candidate_labels is not None
                else None
            ),
            specs=self.specs.digest() if self.specs is not None else None,
            tiering=self._tiering_fingerprint(),
        )

    def config_fingerprint(self) -> str:
        """The verdict-relevant configuration digest — one third of the
        cache key (see :mod:`repro.cache.keys` for what it covers)."""
        return config_fingerprint(
            self._schedule_names(),
            rtol=self.rtol,
            liveout_policy=self.liveout_policy,
            static_filter=self.static_filter,
            max_steps=self.max_steps,
            candidate_labels=(
                sorted(self.candidate_labels)
                if self.candidate_labels is not None
                else None
            ),
            specs=self.specs.digest() if self.specs is not None else None,
            tiering=self._tiering_fingerprint(),
        )

    def _apply_cached(
        self,
        payload: Dict[str, object],
        result: LoopResult,
        report: DcaReport,
    ) -> None:
        """Replay one cached loop verdict into the report.

        Reconstructs the loop's result and its exact contribution to the
        report-level counters, so a warm report serializes to the same
        bytes as its cold twin while executing zero schedules.
        """
        result.apply_payload(payload["result"])
        cost = result.cost
        report.executions += cost.schedule_executions
        report.schedule_executions += cost.schedule_executions
        report.interp_instructions += cost.interp_instructions
        report.snapshots_taken += cost.snapshots_taken
        report.snapshot_nodes += cost.snapshot_nodes
        report.snapshot_bytes += cost.snapshot_bytes
        report.verify_comparisons += cost.verify_comparisons
        report.mismatches += cost.mismatches
        for reason, n in payload.get("skipped", {}).items():
            self._skip_schedules(report, reason, n)
        report.cache.hits += 1
        report.cache.schedule_executions_avoided += cost.schedule_executions
        self._obs.count("dca.cache_hits")

    def _store_cached(
        self,
        label: str,
        result: LoopResult,
        report: DcaReport,
        skipped_before: Dict[str, int],
        outcomes: Optional[List[ScheduleOutcome]] = None,
    ) -> None:
        """Memoize one freshly decided loop.

        Loops whose verdict involved a lost worker are not cached: the
        death is an environment event, and replaying it would make a
        transient infrastructure failure sticky.
        """
        if any(o.status == WORKER_LOST for o in outcomes or []):
            return
        skipped_delta = {
            reason: count - skipped_before.get(reason, 0)
            for reason, count in report.schedules_skipped.items()
            if count > skipped_before.get(reason, 0)
        }
        stored = self.cache.store(
            self.workload_digest(),
            label,
            self.config_fingerprint(),
            {"result": result.to_payload(), "skipped": skipped_delta},
            fingerprint_description=self._fingerprint_description(),
        )
        if stored:
            report.cache.stores += 1

    def analyze(self) -> DcaReport:
        self._obs = obs.current()
        report = DcaReport(entry=self.entry)
        with self._obs.span("dca.analyze", entry=self.entry):
            self._analyze(report)
        self._emit_verdict_events(report)
        return report

    def _analyze(self, report: DcaReport) -> None:
        report.tiering = self.tiering
        with self._stage(report, "selection"):
            report.results = self.select_candidates()
        report.static_filter = self.static_filter

        with self._stage(report, "profile"):
            self._profile_memory_flow(report)
        if self.static_filter:
            with self._stage(report, "static"):
                self.static_verdicts = StaticCommutativityAnalysis(
                    self.module, specs=self.specs
                ).analyze()
                for label, result in report.results.items():
                    verdict = self.static_verdicts.get(label)
                    if verdict is not None:
                        result.static_verdict = verdict.verdict
                        result.static_evidence = [
                            str(e) for e in verdict.evidence
                        ]
                if self._obs.enabled:
                    for verdict in self.static_verdicts.values():
                        self._obs.count(f"static.verdict.{verdict.verdict}")
        effects = EffectAnalysis(self.module)
        testable = [
            label
            for label, res in report.results.items()
            if res.verdict is NOT_EXERCISED
        ]
        specs: Dict[str, VerifySpec] = {}
        #: One module-wide equivalence annotation shared by every loop's
        #: VerifySpec: canonicalization keys on struct *types*, and a
        #: declared type means declared everywhere.
        equivalence = (
            tuple(sorted(self._chain_slots.items()))
            if self._chain_slots
            else None
        )
        for label in testable:
            func = self.module.functions[report.results[label].function]
            spec = compute_verify_spec(self.module, func, label, effects)
            spec.equivalence = equivalence
            specs[label] = spec

        # Golden (observe) run: all candidate loops at once.
        with self._stage(report, "golden"):
            observe = build_observe_module(self.module, specs)
            golden_rt = DcaRuntime(
                specs, capture_snapshots=(self.liveout_policy == "strict")
            )
            interp = create_executor(
                observe,
                runtime=golden_rt,
                max_steps=self.max_steps,
                exec_backend=self.exec_backend,
                obs_enabled=self._obs.enabled,
            )
            entry_result = interp.run(self.entry, self.args)
            report.executions += 1
            report.interp_instructions += interp.steps
            self._absorb_runtime(report, golden_rt)
        golden = golden_rt.snapshots
        # Prepay golden digests: every test execution digests its own
        # snapshots anyway (snapshot_content_digest), so rt_verify can
        # compare content digests first and fall back to the
        # rtol-tolerant structural comparison only when they differ.
        for snaps in golden.values():
            for snap in snaps:
                snapshot_digest(snap)
        self._golden_outcome = self._program_outcome(interp, entry_result)
        self._golden_counts = {
            label: golden_rt.invocation_count(label) for label in testable
        }
        # A permuted execution of a non-commutative loop may diverge (e.g. a
        # worklist that never drains).  Budget every test run relative to the
        # golden run so divergence is detected as a runtime fault (§IV-E)
        # instead of spinning forever.
        if self.max_steps is None:
            self._test_step_budget = interp.steps * 20 + 200_000
        else:
            self._test_step_budget = self.max_steps

        with self._stage(report, "dynamic"):
            report.backend = self._engine.name
            report.jobs = self._engine.jobs
            report.exec_backend = self.exec_backend
            cache = self.cache
            if cache is not None:
                report.cache.enabled = True
                digest = self.workload_digest()
                fingerprint = self.config_fingerprint()
                cache.register_module(
                    digest,
                    source_text=self.source_text,
                    source_path=self.source_path,
                    entry=self.entry,
                    args=self.args,
                )
            n_schedules = 1 + len(self.schedules.testing_schedules())
            plans: List[LoopPlan] = []
            for label in testable:
                result = report.results[label]
                result.invocations = self._golden_counts[label]
                if result.invocations == 0:
                    result.verdict = NOT_EXERCISED
                    result.decided_by = DECIDED_SELECTION
                    continue
                if self._apply_static_verdict(label, result):
                    report.static_schedules_saved += n_schedules
                    continue
                result.decided_by = DECIDED_DYNAMIC
                if cache is not None:
                    payload = cache.lookup(digest, label, fingerprint)
                    if payload is not None:
                        self._apply_cached(payload, result, report)
                        continue
                    report.cache.misses += 1
                    if cache.has_stale_sibling(digest, label, fingerprint):
                        report.cache.invalidations += 1
                skipped_before = dict(report.schedules_skipped)
                plan = self._plan_loop(label, specs[label], golden, result, report)
                if plan is not None:
                    plans.append(plan)
                elif cache is not None:
                    # Untestable/iterator-only: decided during planning.
                    self._store_cached(label, result, report, skipped_before)
            outcomes = self._engine.run(plans)
            for plan in plans:
                skipped_before = dict(report.schedules_skipped)
                self._merge_loop(
                    plan,
                    outcomes[plan.label],
                    report.results[plan.label],
                    report,
                )
                if cache is not None:
                    self._store_cached(
                        plan.label,
                        report.results[plan.label],
                        report,
                        skipped_before,
                        outcomes[plan.label],
                    )
        if self.tiering:
            with self._stage(report, "tiering"):
                self._assign_tiers(report)

    # -- tiering stage -------------------------------------------------------

    def _assign_tiers(self, report: DcaReport) -> None:
        """Assign a parallelization tier to every loop (see
        :mod:`repro.analysis.sccdag` for the tier vocabulary).

        Commutative loops are DOALL — or REDUCTION when their payoff
        depends on privatized accumulators (carried reduction scalars or
        histogram updates).  Non-commutative and runtime-faulting loops
        get a chance at DSWP: if the SCC-DAG of their dependence graph
        partitions into 2+ stages they are PIPELINE, else SEQUENTIAL.
        Every other verdict (untestable, not-exercised, I/O, …) is
        SEQUENTIAL.  Tiers are recomputed from the fresh dependence
        profile on every run — cache replays never carry them.
        """
        profiler = self._dep_profiler
        forests = {
            name: build_loop_forest(func)
            for name, func in self.module.functions.items()
        }
        for label in sorted(report.results):
            result = report.results[label]
            forest = forests.get(result.function)
            loop = forest.loops.get(label) if forest is not None else None
            if loop is None:
                result.tier = TIER_SEQUENTIAL
                continue
            func = self.module.functions[result.function]
            idioms = classify_loop(func, loop)
            if result.is_commutative:
                has_reduction = bool(idioms.histograms) or any(
                    klass in COMPLEX_REDUCTIONS
                    for klass in idioms.scalars.values()
                )
                result.tier = (
                    TIER_REDUCTION if has_reduction else TIER_DOALL
                )
                continue
            if result.verdict not in (NON_COMMUTATIVE, RUNTIME_FAULT):
                result.tier = TIER_SEQUENTIAL
                continue
            deps = (
                profiler.deps_for(label) if profiler is not None else None
            )
            if deps is None:
                result.tier = TIER_SEQUENTIAL
                continue
            dag = build_sccdag(
                func,
                loop,
                deps,
                idioms,
                lambda loc, lb=label: profiler.is_privatizable(lb, loc),
            )
            plan = partition_stages(dag, self.max_pipeline_stages)
            if len(plan.stages) >= 2:
                result.tier = TIER_PIPELINE
                result.pipeline_plan = plan.to_dict()
            else:
                result.tier = TIER_SEQUENTIAL
        if self._obs.enabled:
            for tier, n in sorted(report.tier_counts().items()):
                self._obs.count(f"dca.tier.{tier}", n)

    def _apply_static_verdict(self, label: str, result: LoopResult) -> bool:
        """Resolve a loop from its static proof, skipping permutation
        testing.  Applies only when the proof's preconditions hold for
        this workload: the loop must have a payload to permute (else the
        dynamic stage's ``iterator-only`` verdict is the truthful one)
        and must reach two iterations somewhere (else permutation is
        vacuous).  A non-commutativity proof additionally asserts a
        *per-exit* live-out difference, so it only stands in for the
        strict policy — under the eventual policy the difference may
        never become observable.
        """
        if not self.static_filter:
            return False
        verdict = self.static_verdicts.get(label)
        if verdict is None or not verdict.is_proven or verdict.payload_empty:
            return False
        if self._profiled_trips.get(label, 0) < 2:
            return False
        if verdict.verdict == PROVEN_COMMUTATIVE:
            result.verdict = COMMUTATIVE
        elif self.liveout_policy == "strict":
            result.verdict = NON_COMMUTATIVE
        else:
            return False
        if getattr(verdict, "used_specs", False):
            result.decided_by = DECIDED_STATIC_SPECS
            self._obs.count("dca.static_specs_decisions")
        else:
            result.decided_by = DECIDED_STATIC
        result.reason = verdict.headline()
        result.max_trip = self._profiled_trips.get(label, 0)
        return True

    # -- per-loop testing ----------------------------------------------------------

    def _skip_schedules(self, report: DcaReport, reason: str, n: int) -> None:
        if n > 0:
            report.schedules_skipped[reason] = (
                report.schedules_skipped.get(reason, 0) + n
            )

    def _plan_loop(
        self,
        label: str,
        spec: VerifySpec,
        golden: Dict[str, List],
        result: LoopResult,
        report: DcaReport,
    ) -> Optional[LoopPlan]:
        """Build the loop's schedule work units (identity first).

        Returns ``None`` when the loop cannot be outlined — the verdict
        is final and no executions are planned.
        """
        n_schedules = 1 + len(self.schedules.testing_schedules())
        try:
            instrumented = build_test_module(
                self.module,
                label,
                spec,
                memory_flow=(self.memory_flow or {}).get(label),
            )
        except OutlineError as exc:
            if exc.reason == "empty-payload":
                result.verdict = ITERATOR_ONLY
            else:
                result.verdict = UNTESTABLE
            result.reason = exc.reason
            self._skip_schedules(report, "untestable", n_schedules)
            return None

        strict = self.liveout_policy == "strict"
        #: One pickle shared by every task of this loop; each execution
        #: rehydrates a private module copy.
        module_blob = pickle.dumps(instrumented.module)
        global_names = sorted(self.module.globals)
        plan = LoopPlan(
            label=label, expected_invocations=self._golden_counts[label]
        )
        schedules = [IdentitySchedule()] + list(
            self.schedules.testing_schedules()
        )
        for index, schedule in enumerate(schedules):
            plan.tasks.append(
                ScheduleTask(
                    label=label,
                    index=index,
                    entry=self.entry,
                    args=list(self.args),
                    schedule=schedule,
                    spec=spec,
                    module_blob=module_blob,
                    global_names=global_names,
                    golden=list(golden.get(label, [])) if strict else None,
                    golden_outcome=None if strict else self._golden_outcome,
                    liveout_policy=self.liveout_policy,
                    rtol=self.rtol,
                    max_steps=getattr(
                        self, "_test_step_budget", self.max_steps
                    ),
                    measure_time=self._measure_time,
                    obs_enabled=self._obs.enabled,
                    inject_fault=self.fault_injection.get(
                        (label, schedule.name)
                    ),
                    exec_backend=self.exec_backend,
                )
            )
        return plan

    def _consume_outcome(
        self, outcome: ScheduleOutcome, result: LoopResult, report: DcaReport
    ) -> None:
        """Fold one consumed execution into the loop/report accounting.

        Only *consumed* outcomes count: the process backend may have
        speculatively executed schedules past a loop's first failure,
        and those must not perturb counters relative to the serial
        backend's short-circuit.
        """
        cost = result.cost
        report.executions += 1
        report.schedule_executions += 1
        cost.schedule_executions += 1
        self._obs.count("dca.schedule_executions")
        cost.schedule_times_ms[outcome.schedule_name] = outcome.wall_ms
        cost.schedule_cpu_times_ms[outcome.schedule_name] = outcome.cpu_ms
        cost.interp_instructions += outcome.steps
        cost.snapshots_taken += outcome.snapshots_taken
        cost.snapshot_nodes += outcome.snapshot_nodes
        cost.snapshot_bytes += outcome.snapshot_bytes
        cost.verify_comparisons += outcome.verify_comparisons
        cost.mismatches += outcome.mismatches
        report.interp_instructions += outcome.steps
        report.snapshots_taken += outcome.snapshots_taken
        report.snapshot_nodes += outcome.snapshot_nodes
        report.snapshot_bytes += outcome.snapshot_bytes
        report.verify_comparisons += outcome.verify_comparisons
        report.mismatches += outcome.mismatches
        if outcome.snapshot_digest:
            result.schedule_digests[outcome.schedule_name] = (
                outcome.snapshot_digest
            )
        if outcome.mismatch_report and result.mismatch_detail is None:
            result.mismatch_detail = dict(outcome.mismatch_report)
        if outcome.obs is not None:
            pid = outcome.obs.get("pid")
            lane = self._lane_by_pid.setdefault(pid, len(self._lane_by_pid) + 1)
            self._obs.absorb(outcome.obs, lane=lane)

    def _merge_loop(
        self,
        plan: LoopPlan,
        outcomes: List[ScheduleOutcome],
        result: LoopResult,
        report: DcaReport,
    ) -> None:
        """Derive the loop's verdict from its outcomes, in task order.

        Replicates the sequential decision procedure exactly — identity
        gate, vacuous check, first-failure short-circuit — regardless of
        how many schedules the backend actually executed.
        """
        label = plan.label
        expected = plan.expected_invocations
        n_testing = len(plan.tasks) - 1

        def loop_span():
            # The serial engine already nested live dca.schedule spans
            # inside its own dca.loop span; engines that execute
            # elsewhere get the loop span at merge time, with worker
            # spans absorbed inside it.
            if self._engine.emits_loop_spans:
                return nullcontext()
            return self._obs.span("dca.loop", loop=label)

        with loop_span():
            identity = outcomes[0]
            self._consume_outcome(identity, result, report)
            identity_faulted = identity.status not in ("ok", "mismatch")
            if identity_faulted or identity.violations or not identity.outcome_ok:
                result.verdict = SPLIT_MISMATCH
                result.reason = "identity replay diverged from golden reference"
                result.schedules_tested.append("identity")
                result.failed_schedule = "identity"
                self._skip_schedules(report, "short-circuit", n_testing)
                return
            if identity.invocation_count != expected:
                result.verdict = SPLIT_MISMATCH
                result.reason = "identity replay changed the invocation count"
                result.failed_schedule = "identity"
                self._skip_schedules(report, "short-circuit", n_testing)
                return
            result.schedules_tested.append("identity")
            result.max_trip = identity.max_trip

            if result.max_trip < 2:
                result.verdict = COMMUTATIVE_VACUOUS
                result.reason = "no invocation reached 2 iterations"
                self._skip_schedules(report, "vacuous", n_testing)
                return

            for i in range(1, len(plan.tasks)):
                outcome = outcomes[i]
                if outcome.status == CANCELLED:
                    # The engine violated its contract (every task up to
                    # the first failure must execute); treat as a fault
                    # rather than mislabel the loop commutative.
                    outcome.status = "fault"
                    outcome.error = "schedule was never executed"
                name = outcome.schedule_name
                self._consume_outcome(outcome, result, report)
                result.schedules_tested.append(name)
                if outcome.status not in ("ok", "mismatch"):
                    result.verdict = RUNTIME_FAULT
                    result.reason = f"fault under schedule {name}"
                    result.failed_schedule = name
                    self._skip_schedules(report, "short-circuit", n_testing - i)
                    return
                if outcome.violations or not outcome.outcome_ok:
                    result.verdict = NON_COMMUTATIVE
                    result.reason = f"live-outs changed under {name}"
                    result.failed_schedule = name
                    self._skip_schedules(report, "short-circuit", n_testing - i)
                    return
                if outcome.invocation_count != expected:
                    result.verdict = NON_COMMUTATIVE
                    result.reason = f"invocation count changed under {name}"
                    result.failed_schedule = name
                    self._skip_schedules(report, "short-circuit", n_testing - i)
                    return
            result.verdict = COMMUTATIVE
