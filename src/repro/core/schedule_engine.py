"""Pluggable schedule-execution backends (serial / multiprocess).

The dynamic stage of DCA is embarrassingly parallel: every permutation
schedule of a loop is an independent re-execution of the instrumented
program, compared against the golden snapshots.  This module factors the
"execute one schedule" step out of :class:`~repro.core.dca.DcaAnalyzer`
into picklable **work units** that a backend can run anywhere:

* :class:`ScheduleTask` — one schedule execution: the pickled
  instrumented test module, the schedule object, the loop's
  :class:`~repro.core.instrument.VerifySpec`, the golden snapshots for
  that loop (strict policy) or the golden program outcome (eventual
  policy), plus the step budget and timing/observability switches.
* :class:`ScheduleOutcome` — the compact result a backend ships back:
  verdict-relevant booleans, cost counters, a **content digest** of the
  captured live-out snapshots, and a compact mismatch report — never the
  full heap snapshots.
* :class:`LoopPlan` — the ordered task list for one loop (identity
  first, then the perturbing schedules).

Two backends implement :class:`ScheduleEngine`:

* :class:`SerialScheduleEngine` executes plans in order, in process,
  short-circuiting a loop's remaining schedules on the first failure —
  byte-for-byte the classic sequential behaviour.
* :class:`ProcessScheduleEngine` fans tasks out to a worker pool
  (``concurrent.futures.ProcessPoolExecutor``).  Identity schedules for
  every loop are submitted immediately; a loop's perturbing schedules
  are submitted once its identity replay passes the gate.  When any
  schedule of a loop fails, pending schedules *after* it (in task
  order) are cancelled — schedules *before* it still run to completion
  so the merged report stays deterministic.  A worker that dies
  (OOM-killed, ``os._exit``) breaks the pool; the engine rebuilds it,
  retries the affected tasks in isolation, and reports unrecoverable
  ones as ``worker-lost`` so the analyzer can fault the loop instead of
  hanging.

**Determinism contract.**  For a fixed program + workload + schedule
preset, both backends produce the same outcomes for every *consumed*
task (everything up to and including a loop's first failure).  The
process backend may speculatively execute schedules the serial backend
would have skipped; the analyzer discards those at merge time, so
reports, ``decided_by`` provenance and counters are identical.  Wall
and CPU times are the only nondeterministic fields; injecting a clock
into the analyzer zeroes them (workers then run with a zero clock),
which makes the full JSON report byte-identical across backends — the
invariant the differential fuzz harness and
``benchmarks/test_schedule_engine_speedup.py`` enforce.
"""

from __future__ import annotations

import atexit
import os
import pickle
import threading
import time
from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures.process import BrokenProcessPool, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import repro.obs as obs
from repro.core.instrument import VerifySpec
from repro.core.liveout import (
    Snapshot,
    canonicalize_snapshot,
    capture,
    snapshots_equal,
)
from repro.core.runtime import CommutativityMismatch, DcaRuntime
from repro.core.schedules import Schedule
from repro.interp.compiler import (
    CompiledExecutor,
    CompiledProgram,
    CompileError,
    compile_module,
)
from repro.interp.interpreter import Interpreter
from repro.interp.values import MiniCRuntimeError

__all__ = [
    "FAULT_STYLES",
    "LoopPlan",
    "ProcessScheduleEngine",
    "ScheduleEngine",
    "ScheduleOutcome",
    "ScheduleTask",
    "SerialScheduleEngine",
    "create_engine",
    "engine_queue_depth",
    "execute_task",
    "outcome_fails",
    "resolve_schedule_backend",
    "shared_pool_jobs",
    "should_test",
    "warm_shared_pool",
]

#: Environment knobs consulted when the analyzer is not given an explicit
#: backend/jobs (lets CI exercise the parallel path suite-wide).
BACKEND_ENV = "REPRO_SCHEDULE_BACKEND"
JOBS_ENV = "REPRO_SCHEDULE_JOBS"

#: Outcome statuses.
OK = "ok"
MISMATCH = "mismatch"  # live-out divergence (fail-fast abort)
FAULT = "fault"  # MiniCRuntimeError / injected or real OOM
WORKER_LOST = "worker-lost"  # worker process died mid-execution
CANCELLED = "cancelled"  # early-cancelled; never executed

#: Supported fault-injection styles (testing hook, threaded through
#: ``DcaAnalyzer(fault_injection=...)``): ``raise`` raises a MiniC
#: runtime error, ``oom`` raises :class:`MemoryError`, ``exit`` kills
#: the worker process outright (mapped to an in-process exception under
#: the serial backend, which must never kill the analyzer).
FAULT_STYLES = ("raise", "oom", "exit")


def _zero_clock() -> float:
    """Deterministic clock used when timing must not leak into reports."""
    return 0.0


class _InjectedWorkerDeath(Exception):
    """Serial-backend stand-in for a worker process dying."""


def _fire_fault(style: str, in_process: bool) -> None:
    if style == "raise":
        raise MiniCRuntimeError("injected fault: raise")
    if style == "oom":
        raise MemoryError("injected fault: oom")
    if style == "exit":
        if in_process:
            # Killing the analyzer process is never acceptable; the
            # serial backend degrades the injection to a plain fault.
            raise _InjectedWorkerDeath("injected fault: exit (serial)")
        os._exit(21)
    raise ValueError(f"unknown fault style {style!r}; expected {FAULT_STYLES}")


# ---------------------------------------------------------------------------
# Work units
# ---------------------------------------------------------------------------


@dataclass
class ScheduleTask:
    """One picklable schedule execution, rehydrated inside a worker."""

    label: str
    index: int  # position in the loop's task order (0 = identity)
    entry: str
    args: List[object]
    schedule: Schedule
    spec: VerifySpec
    #: Pickled instrumented test module (shared bytes across the loop's
    #: tasks — unpickling yields a private copy per execution).
    module_blob: bytes
    #: Sorted global names of the module (eventual-policy outcome roots).
    global_names: List[str]
    #: Golden live-out snapshots for this loop (strict policy only).
    golden: Optional[List[Snapshot]] = None
    #: Golden program outcome ``(stdout, return, globals snapshot)``
    #: (eventual policy only).
    golden_outcome: Optional[Tuple] = None
    liveout_policy: str = "strict"
    rtol: float = 1e-9
    max_steps: Optional[int] = None
    #: False → workers report 0.0 wall/cpu ms (deterministic reports).
    measure_time: bool = True
    #: Record worker-local spans/metrics/events and ship them back.
    obs_enabled: bool = False
    #: Testing hook: one of :data:`FAULT_STYLES`, fired before execution.
    inject_fault: Optional[str] = None
    #: Execution backend: ``interp`` (tree-walking), ``compiled``
    #: (closure-compiled) or ``codegen`` (Python-source codegen); the
    #: compiled tiers fall back to interp whenever observability is
    #: enabled — they record no per-run obs metrics.
    exec_backend: str = "interp"

    @property
    def schedule_name(self) -> str:
        return self.schedule.name


@dataclass
class ScheduleOutcome:
    """Compact, picklable result of one schedule execution.

    Ships a content digest of the captured snapshots plus a small
    mismatch report — never the snapshots themselves.
    """

    label: str
    schedule_name: str
    index: int
    status: str = OK
    #: Eventual-policy final-outcome comparison (True under strict).
    outcome_ok: bool = True
    violations: int = 0
    invocation_count: int = 0
    max_trip: int = 0
    steps: int = 0
    snapshots_taken: int = 0
    snapshot_nodes: int = 0
    snapshot_bytes: int = 0
    verify_comparisons: int = 0
    mismatches: int = 0
    wall_ms: float = 0.0
    cpu_ms: float = 0.0
    #: Content hash of every snapshot this execution captured.
    snapshot_digest: str = ""
    #: Compact description of the first live-out divergence, if any.
    mismatch_report: Optional[Dict[str, object]] = None
    error: str = ""
    #: Worker observability payload (spans/metrics/events), merged by the
    #: coordinator; None for in-process execution.
    obs: Optional[Dict[str, object]] = None

    @property
    def executed(self) -> bool:
        return self.status != CANCELLED


@dataclass
class LoopPlan:
    """The ordered schedule executions planned for one loop."""

    label: str
    #: Invocation count the golden run observed for this loop.
    expected_invocations: int
    tasks: List[ScheduleTask] = field(default_factory=list)


def outcome_fails(outcome: ScheduleOutcome, expected_invocations: int) -> bool:
    """Whether this outcome terminates the loop's schedule testing.

    Mirrors the serial analyzer's short-circuit conditions exactly; both
    backends and the merge step share this single definition.
    """
    if outcome.status != OK and outcome.status != MISMATCH:
        return True
    if outcome.violations or not outcome.outcome_ok:
        return True
    return outcome.invocation_count != expected_invocations


def should_test(plan: LoopPlan, identity: ScheduleOutcome) -> bool:
    """Gate: run perturbing schedules only when the identity replay is
    faithful and the loop actually iterates (≥2 trips somewhere)."""
    return not outcome_fails(identity, plan.expected_invocations) and (
        identity.max_trip >= 2
    )


def cancelled_outcome(task: ScheduleTask) -> ScheduleOutcome:
    return ScheduleOutcome(
        label=task.label,
        schedule_name=task.schedule_name,
        index=task.index,
        status=CANCELLED,
    )


# ---------------------------------------------------------------------------
# Task execution (shared by both backends)
# ---------------------------------------------------------------------------

#: Per-process cache of closure-compiled modules keyed by the pickled
#: module blob.  The same instrumented module executes once per schedule
#: (and, under ``--backend process``, once per worker × schedule), but
#: the blob bytes are shared/identical across all of a loop's tasks — so
#: each worker process compiles (and unpickles) a test module exactly
#: once and replays the compiled program across every ScheduleTask that
#: ships the same blob.  Insertion-ordered with FIFO eviction: analyses
#: sweep loop by loop, so the working set is tiny and recency tracking
#: would buy nothing.
_COMPILED_BLOB_CACHE: Dict[bytes, CompiledProgram] = {}
_COMPILED_BLOB_CACHE_MAX = 128


def _compiled_for_blob(module_blob: bytes) -> CompiledProgram:
    """Unpickle + closure-compile a module blob, cached per process."""
    program = _COMPILED_BLOB_CACHE.get(module_blob)
    if program is None:
        obs.current().count("schedule.blob_cache.misses")
        program = compile_module(pickle.loads(module_blob))
        while len(_COMPILED_BLOB_CACHE) >= _COMPILED_BLOB_CACHE_MAX:
            _COMPILED_BLOB_CACHE.pop(next(iter(_COMPILED_BLOB_CACHE)))
        _COMPILED_BLOB_CACHE[module_blob] = program
    else:
        obs.current().count("schedule.blob_cache.hits")
    return program


#: Same policy for codegen-compiled programs (see above): one codegen
#: compile (or disk-artifact load) per worker process per module blob.
_CODEGEN_BLOB_CACHE: Dict[bytes, object] = {}


def _codegen_for_blob(module_blob: bytes):
    """Unpickle + codegen-compile a module blob, cached per process."""
    from repro.interp.codegen import compile_module_codegen

    program = _CODEGEN_BLOB_CACHE.get(module_blob)
    if program is None:
        obs.current().count("schedule.codegen_blob_cache.misses")
        program = compile_module_codegen(pickle.loads(module_blob))
        while len(_CODEGEN_BLOB_CACHE) >= _COMPILED_BLOB_CACHE_MAX:
            _CODEGEN_BLOB_CACHE.pop(next(iter(_CODEGEN_BLOB_CACHE)))
        _CODEGEN_BLOB_CACHE[module_blob] = program
    else:
        obs.current().count("schedule.codegen_blob_cache.hits")
    return program


def execute_task(
    task: ScheduleTask,
    clock: Optional[Callable[[], float]] = None,
    cpu_clock: Optional[Callable[[], float]] = None,
    obs_ctx=None,
    in_process: bool = False,
) -> ScheduleOutcome:
    """Run one schedule execution and summarize it.

    Faults (MiniC runtime errors, injected OOMs, any unexpected
    exception) are converted into a ``fault`` outcome — a schedule that
    crashes must fault its loop, not the analyzer.
    """
    if clock is None:
        clock = time.perf_counter if task.measure_time else _zero_clock
    if cpu_clock is None:
        cpu_clock = time.process_time if task.measure_time else _zero_clock
    if obs_ctx is None:
        obs_ctx = obs.current()

    outcome = ScheduleOutcome(
        label=task.label, schedule_name=task.schedule_name, index=task.index
    )
    strict = task.liveout_policy == "strict"
    runtime = DcaRuntime(
        specs={task.label: task.spec},
        schedule=task.schedule,
        golden={task.label: list(task.golden or [])} if strict else None,
        rtol=task.rtol,
        fail_fast=True,
        capture_snapshots=strict,
    )
    interp = None
    if task.exec_backend == "compiled" and not obs_ctx.enabled:
        # Compiled replays reuse the per-process program cache; the
        # executor itself is fresh per task (own heap/globals/output).
        try:
            interp = CompiledExecutor(
                _compiled_for_blob(task.module_blob),
                runtime=runtime,
                max_steps=task.max_steps,
            )
        except CompileError:
            interp = None
    elif task.exec_backend == "codegen" and not obs_ctx.enabled:
        from repro.interp.codegen import CodegenExecutor

        try:
            interp = CodegenExecutor(
                _codegen_for_blob(task.module_blob),
                runtime=runtime,
                max_steps=task.max_steps,
            )
        except CompileError:
            interp = None
    if interp is None:
        module = pickle.loads(task.module_blob)
        interp = Interpreter(module, runtime=runtime, max_steps=task.max_steps)
    mismatch = False
    fault = False
    start = clock()
    cpu_start = cpu_clock()
    try:
        with obs_ctx.span(
            "dca.schedule", loop=task.label, schedule=task.schedule_name
        ) as sp:
            try:
                if task.inject_fault:
                    _fire_fault(task.inject_fault, in_process)
                entry_result = interp.run(task.entry, task.args)
            except CommutativityMismatch:
                mismatch = True  # recorded in runtime.violations
            except MiniCRuntimeError:
                fault = True
            except Exception as exc:  # OOM, injected death, anything else
                fault = True
                outcome.error = repr(exc)
            else:
                if not strict:
                    golden_out, golden_ret, golden_globals = task.golden_outcome
                    roots = [interp.globals[name] for name in task.global_names]
                    final = capture(roots)
                    if task.spec.equivalence:
                        # Mirror the analyzer's golden-outcome capture:
                        # declared containers compare as multisets under
                        # the eventual policy too.
                        final = canonicalize_snapshot(
                            final, dict(task.spec.equivalence)
                        )
                    outcome.outcome_ok = (
                        interp.output_text() == golden_out
                        and entry_result == golden_ret
                        and snapshots_equal(golden_globals, final, rtol=task.rtol)
                    )
            sp.set(instructions=interp.steps, mismatch=mismatch, fault=fault)
    finally:
        outcome.wall_ms = (clock() - start) * 1000.0
        outcome.cpu_ms = (cpu_clock() - cpu_start) * 1000.0
        outcome.steps = interp.steps
        outcome.invocation_count = runtime.invocation_count(task.label)
        outcome.max_trip = runtime.max_trip_count(task.label)
        outcome.violations = len(runtime.violations)
        outcome.snapshots_taken = runtime.snapshots_taken
        outcome.snapshot_nodes = runtime.snapshot_nodes
        outcome.snapshot_bytes = runtime.snapshot_bytes
        outcome.verify_comparisons = runtime.verify_comparisons
        outcome.mismatches = runtime.mismatches
        outcome.snapshot_digest = runtime.snapshot_content_digest()
        outcome.mismatch_report = runtime.first_mismatch_report()
    outcome.status = FAULT if fault else (MISMATCH if mismatch else OK)
    return outcome


def run_task_in_worker(task: ScheduleTask) -> ScheduleOutcome:
    """Worker-process entry point: rehydrate, execute, summarize.

    When the coordinator has observability enabled, the worker records
    spans/metrics/events into a private context and ships the serialized
    payload back inside the outcome for merging.
    """
    if not task.obs_enabled:
        if obs.is_enabled():
            # A forked worker can inherit the coordinator's enabled
            # context; recording into it would silently accumulate.
            obs.disable()
        return execute_task(task, in_process=False)
    ctx = obs.enable(clock=None if task.measure_time else _zero_clock)
    try:
        outcome = execute_task(task, obs_ctx=ctx, in_process=False)
    finally:
        payload = {
            "pid": os.getpid(),
            "spans": [
                {
                    "name": rec.name,
                    "args": dict(rec.args),
                    "path": list(rec.path),
                    "start_us": rec.start_us,
                    "dur_us": rec.dur_us,
                    "depth": rec.depth,
                    "parent": rec.parent,
                    "sid": rec.sid,
                }
                for rec in ctx.tracer.spans
            ],
            "metrics": ctx.metrics.to_dict(),
            "events": [e.to_dict() for e in ctx.events.events],
        }
        obs.disable()
    outcome.obs = payload
    return outcome


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------


class ScheduleEngine:
    """Executes the schedule plans of one analysis run."""

    name = "abstract"
    jobs = 1
    #: Whether the backend itself opens per-loop ``dca.loop`` spans (the
    #: serial backend nests schedule spans inside them live; the process
    #: backend leaves that to the analyzer's merge step).
    emits_loop_spans = False

    def run(self, plans: Sequence[LoopPlan]) -> Dict[str, List[ScheduleOutcome]]:
        """Execute every plan; returns outcomes per label, in task order.

        Contract: for each plan, every task up to and including the
        first failing one (in task order) has an executed outcome;
        later entries may be ``cancelled``.
        """
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial
        pass


class SerialScheduleEngine(ScheduleEngine):
    """In-process sequential execution — the classic behaviour."""

    name = "serial"
    emits_loop_spans = True

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._clock = clock or time.perf_counter
        #: A fake clock means a deterministic run: CPU time is zeroed so
        #: reports stay reproducible.
        self._cpu_clock = (
            time.process_time if self._clock is time.perf_counter else _zero_clock
        )

    def run(self, plans: Sequence[LoopPlan]) -> Dict[str, List[ScheduleOutcome]]:
        ctx = obs.current()
        results: Dict[str, List[ScheduleOutcome]] = {}
        for plan in plans:
            outcomes = [cancelled_outcome(task) for task in plan.tasks]
            with ctx.span("dca.loop", loop=plan.label):
                identity = execute_task(
                    plan.tasks[0],
                    clock=self._clock,
                    cpu_clock=self._cpu_clock,
                    obs_ctx=ctx,
                    in_process=True,
                )
                outcomes[0] = identity
                if should_test(plan, identity):
                    for i in range(1, len(plan.tasks)):
                        outcome = execute_task(
                            plan.tasks[i],
                            clock=self._clock,
                            cpu_clock=self._cpu_clock,
                            obs_ctx=ctx,
                            in_process=True,
                        )
                        outcomes[i] = outcome
                        if outcome_fails(outcome, plan.expected_invocations):
                            break  # short-circuit: rest stay cancelled
            results[plan.label] = outcomes
        return results


#: Shared worker pools keyed by job count — reused across engines (and
#: analyzer instances) so repeated small analyses don't pay pool startup
#: every time.  Rebuilt transparently when a worker death breaks a pool.
_SHARED_POOLS: Dict[int, ProcessPoolExecutor] = {}


def _mp_context():
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _shared_pool(jobs: int) -> ProcessPoolExecutor:
    pool = _SHARED_POOLS.get(jobs)
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=jobs, mp_context=_mp_context())
        _SHARED_POOLS[jobs] = pool
    return pool


def _discard_pool(jobs: int) -> None:
    pool = _SHARED_POOLS.pop(jobs, None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def shutdown_shared_pools() -> None:
    """Tear down every shared worker pool (tests, interpreter exit)."""
    for jobs in list(_SHARED_POOLS):
        _discard_pool(jobs)


atexit.register(shutdown_shared_pools)


def warm_shared_pool(jobs: Optional[int] = None) -> int:
    """Pre-fork the shared worker pool and block until every worker is
    alive.  ``ProcessPoolExecutor`` spawns workers lazily on first
    submit; a long-lived server calls this once at startup so no client
    request ever pays pool spin-up.  Returns the worker count."""
    jobs = max(1, jobs or os.cpu_count() or 1)
    pool = _shared_pool(jobs)
    # One no-op per worker forces every process to exist now; collecting
    # the results waits for them to finish booting.
    for fut in [pool.submit(os.getpid) for _ in range(jobs)]:
        fut.result()
    return jobs


def shared_pool_jobs() -> List[int]:
    """Job counts of the currently live shared pools (diagnostics)."""
    return sorted(_SHARED_POOLS)


#: Process-wide count of schedule tasks submitted to the shared pools
#: and not yet collected — the load signal the serving layer's admission
#: control and ``/healthz`` read.  Updated by every ProcessScheduleEngine
#: run in this process, across threads.
_INFLIGHT = 0
_INFLIGHT_LOCK = threading.Lock()


def _inflight_delta(n: int) -> None:
    global _INFLIGHT
    with _INFLIGHT_LOCK:
        _INFLIGHT += n


def engine_queue_depth() -> int:
    """Schedule tasks currently in flight on the shared pools."""
    return _INFLIGHT


class ProcessScheduleEngine(ScheduleEngine):
    """Multiprocess fan-out over a shared ``ProcessPoolExecutor``."""

    name = "process"
    emits_loop_spans = False

    def __init__(self, jobs: Optional[int] = None):
        self.jobs = max(1, jobs or os.cpu_count() or 1)

    def run(self, plans: Sequence[LoopPlan]) -> Dict[str, List[ScheduleOutcome]]:
        if not plans:
            return {}
        ctx = obs.current()
        results: Dict[str, List[ScheduleOutcome]] = {
            plan.label: [cancelled_outcome(task) for task in plan.tasks]
            for plan in plans
        }
        #: label -> index of the earliest known failure (or None).
        fail_at: Dict[str, Optional[int]] = {plan.label: None for plan in plans}
        future_map: Dict[object, Tuple[LoopPlan, int]] = {}
        pool_broken = False

        def note_queue_depth() -> None:
            # Gauge, not counter: the exported value is the high-water
            # view of the in-flight task window at the last transition.
            # The process-wide mirror (engine_queue_depth) feeds the
            # serving layer's admission control.
            ctx.gauge("schedule.queue_depth", len(future_map))

        def submit(plan: LoopPlan, index: int) -> None:
            try:
                fut = _shared_pool(self.jobs).submit(
                    run_task_in_worker, plan.tasks[index]
                )
            except BrokenProcessPool:
                # The shared pool died under an earlier batch; replace it
                # and resubmit on the fresh one.
                _discard_pool(self.jobs)
                ctx.count("schedule.pool_rebuilds")
                fut = _shared_pool(self.jobs).submit(
                    run_task_in_worker, plan.tasks[index]
                )
            future_map[fut] = (plan, index)
            _inflight_delta(1)
            ctx.count("schedule.tasks_submitted")
            note_queue_depth()

        def collect(fut, plan: LoopPlan, index: int) -> ScheduleOutcome:
            nonlocal pool_broken
            if fut.cancelled():
                return cancelled_outcome(plan.tasks[index])
            try:
                return fut.result()
            except BrokenProcessPool:
                pool_broken = True
                ctx.count("schedule.worker_retries")
                return self._retry_isolated(plan.tasks[index])
            except Exception as exc:  # submission/pickling failure
                outcome = cancelled_outcome(plan.tasks[index])
                outcome.status = FAULT
                outcome.error = repr(exc)
                return outcome

        def handle(plan: LoopPlan, index: int, outcome: ScheduleOutcome) -> None:
            results[plan.label][index] = outcome
            if index == 0:
                if should_test(plan, outcome):
                    for i in range(1, len(plan.tasks)):
                        submit(plan, i)
                return
            if not outcome_fails(outcome, plan.expected_invocations):
                return
            first = fail_at[plan.label]
            if first is None or index < first:
                fail_at[plan.label] = index
                # Early-cancel everything *after* the failure; earlier
                # schedules must still complete for deterministic merging.
                for fut, (p, i) in list(future_map.items()):
                    if p is plan and i > index and fut.cancel():
                        del future_map[fut]
                        _inflight_delta(-1)
                        results[plan.label][i] = cancelled_outcome(p.tasks[i])
                        ctx.count("schedule.tasks_cancelled")
                note_queue_depth()

        for plan in plans:
            submit(plan, 0)
        while future_map:
            done, _ = wait(set(future_map), return_when=FIRST_COMPLETED)
            for fut in done:
                plan, index = future_map.pop(fut)
                _inflight_delta(-1)
                note_queue_depth()
                handle(plan, index, collect(fut, plan, index))
            if pool_broken:
                # The broken pool poisons every outstanding future; drain
                # them via isolated retries, then start a fresh pool for
                # any follow-up submissions.
                for fut, (plan, index) in list(future_map.items()):
                    del future_map[fut]
                    _inflight_delta(-1)
                    handle(plan, index, collect(fut, plan, index))
                _discard_pool(self.jobs)
                ctx.count("schedule.pool_rebuilds")
                pool_broken = False
        return results

    @staticmethod
    def _retry_isolated(task: ScheduleTask) -> ScheduleOutcome:
        """Re-run one task in a throwaway single-worker pool.

        A broken pool cannot attribute the death to a task, so every
        in-flight task is retried alone; a task that kills its private
        worker again is the culprit and is reported ``worker-lost``.
        """
        pool = ProcessPoolExecutor(max_workers=1, mp_context=_mp_context())
        try:
            return pool.submit(run_task_in_worker, task).result()
        except BrokenProcessPool:
            outcome = cancelled_outcome(task)
            outcome.status = WORKER_LOST
            outcome.error = "worker process died during execution"
            return outcome
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        # Shared pools outlive individual engines on purpose; nothing to
        # tear down per run.  ``shutdown_shared_pools`` exists for tests.
        pass


def resolve_schedule_backend(
    backend: Optional[str] = None, jobs: Optional[int] = None
) -> Tuple[str, Optional[int]]:
    """Resolve the schedule backend and job count.

    Explicit arguments (CLI flags, API config) always beat the
    environment — in particular, an explicit ``jobs > 1`` implies the
    process backend even when ``REPRO_SCHEDULE_BACKEND=serial`` is set.
    The documented order:

    backend
        1. explicit ``backend`` argument;
        2. implied ``process`` by an explicit ``jobs > 1``;
        3. ``REPRO_SCHEDULE_BACKEND``;
        4. implied ``process`` by ``REPRO_SCHEDULE_JOBS > 1``;
        5. ``serial``.
    jobs
        1. explicit ``jobs`` argument;
        2. ``REPRO_SCHEDULE_JOBS``;
        3. backend default (all cores for ``process``).
    """
    env_jobs: Optional[int] = None
    env_jobs_text = os.environ.get(JOBS_ENV, "").strip()
    if env_jobs_text:
        env_jobs = int(env_jobs_text)
    resolved_jobs = jobs if jobs is not None else env_jobs
    if backend is None:
        if jobs is not None and jobs > 1:
            backend = "process"
        else:
            backend = os.environ.get(BACKEND_ENV, "").strip() or None
    if backend is None:
        backend = "process" if env_jobs and env_jobs > 1 else "serial"
    if backend not in ("serial", "process"):
        raise ValueError(
            f"unknown schedule backend {backend!r}; "
            "expected 'serial' or 'process'"
        )
    return backend, resolved_jobs


def create_engine(
    backend: Optional[str] = None,
    jobs: Optional[int] = None,
    clock: Optional[Callable[[], float]] = None,
) -> ScheduleEngine:
    """Build a schedule engine from explicit settings or the environment
    (see :func:`resolve_schedule_backend` for the resolution order)."""
    backend, jobs = resolve_schedule_backend(backend, jobs)
    if backend == "serial":
        return SerialScheduleEngine(clock=clock)
    return ProcessScheduleEngine(jobs=jobs)
