"""DCA result types."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Verdict values, roughly ordered from best to worst.
COMMUTATIVE = "commutative"
COMMUTATIVE_VACUOUS = "commutative-vacuous"  # never saw 2+ iterations
NON_COMMUTATIVE = "non-commutative"  # a permuted order changed live-outs
SPLIT_MISMATCH = "split-mismatch"  # identity replay diverged from golden
RUNTIME_FAULT = "runtime-fault"  # permuted execution crashed (§IV-E)
UNTESTABLE = "untestable"  # outlining impossible (shape)
ITERATOR_ONLY = "iterator-only"  # empty payload, nothing to permute
NOT_EXERCISED = "not-exercised"  # workload never entered the loop
EXCLUDED_IO = "excluded-io"  # I/O inside the loop (§IV-E)

#: Verdicts DCA reports as (potentially) parallelizable.
_COMMUTATIVE_VERDICTS = frozenset({COMMUTATIVE, COMMUTATIVE_VACUOUS})

#: Which pipeline stage produced a loop's verdict.
DECIDED_SELECTION = "selection"  # candidate selection (I/O, never ran)
DECIDED_STATIC = "static"  # static pre-screen proof
DECIDED_STATIC_SPECS = "static-specs"  # static proof modulo declared specs
DECIDED_DYNAMIC = "dynamic"  # permutation testing
DECIDED_CACHE = "cache"  # replayed from the persistent analysis cache

#: Provenances counted as "statically decided" in hit-rate accounting.
_STATIC_PROVENANCES = frozenset({DECIDED_STATIC, DECIDED_STATIC_SPECS})

#: Serialized report schema.  Version 1 is the flat per-loop dict every
#: pre-tiering consumer parses; version 2 (emitted only when tiering is
#: on) nests the verdict into a structured object with ``tier`` /
#: ``pipeline_plan`` and stamps ``report_schema_version`` at the top.
#: Version-1 output stays byte-identical to pre-tiering releases.
REPORT_SCHEMA_VERSION = 2


@dataclass
class LoopCost:
    """Measured cost of deciding one loop (dynamic stage only).

    Populated by :class:`~repro.core.dca.DcaAnalyzer` from always-on
    counters, so the breakdown is available even when ``repro.obs`` is
    disabled.  ``interp_instructions`` counts whole-program instructions
    retired by this loop's schedule executions (the test variant re-runs
    the entire program per schedule, which is exactly the cost the paper's
    dynamic stage pays).
    """

    schedule_executions: int = 0
    interp_instructions: int = 0
    snapshots_taken: int = 0
    snapshot_nodes: int = 0
    snapshot_bytes: int = 0
    verify_comparisons: int = 0
    mismatches: int = 0
    #: schedule name -> wall milliseconds for that execution.  Under the
    #: process backend this is the worker-measured wall time, so the
    #: per-loop totals stay meaningful while the coordinator overlaps
    #: executions.
    schedule_times_ms: Dict[str, float] = field(default_factory=dict)
    #: schedule name -> CPU milliseconds for that execution (process
    #: time of whichever process ran it).  Comparing the wall and CPU
    #: columns shows where parallel workers spent real compute versus
    #: waiting.
    schedule_cpu_times_ms: Dict[str, float] = field(default_factory=dict)

    @property
    def total_time_ms(self) -> float:
        return sum(self.schedule_times_ms.values())

    @property
    def total_cpu_time_ms(self) -> float:
        return sum(self.schedule_cpu_times_ms.values())

    def to_dict(self) -> Dict[str, object]:
        return {
            "schedule_executions": self.schedule_executions,
            "interp_instructions": self.interp_instructions,
            "snapshots_taken": self.snapshots_taken,
            "snapshot_nodes": self.snapshot_nodes,
            "snapshot_bytes": self.snapshot_bytes,
            "verify_comparisons": self.verify_comparisons,
            "mismatches": self.mismatches,
            "schedule_times_ms": {
                name: round(ms, 3)
                for name, ms in self.schedule_times_ms.items()
            },
            "schedule_cpu_times_ms": {
                name: round(ms, 3)
                for name, ms in self.schedule_cpu_times_ms.items()
            },
            "total_time_ms": round(self.total_time_ms, 3),
            "total_cpu_time_ms": round(self.total_cpu_time_ms, 3),
        }

    def to_payload(self) -> Dict[str, object]:
        """Cache representation: like :meth:`to_dict` but with *unrounded*
        times, so a warm replay re-rounds to exactly the cold bytes."""
        payload = self.to_dict()
        payload["schedule_times_ms"] = dict(self.schedule_times_ms)
        payload["schedule_cpu_times_ms"] = dict(self.schedule_cpu_times_ms)
        del payload["total_time_ms"]
        del payload["total_cpu_time_ms"]
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "LoopCost":
        return cls(
            schedule_executions=payload["schedule_executions"],
            interp_instructions=payload["interp_instructions"],
            snapshots_taken=payload["snapshots_taken"],
            snapshot_nodes=payload["snapshot_nodes"],
            snapshot_bytes=payload["snapshot_bytes"],
            verify_comparisons=payload["verify_comparisons"],
            mismatches=payload["mismatches"],
            schedule_times_ms=dict(payload["schedule_times_ms"]),
            schedule_cpu_times_ms=dict(payload["schedule_cpu_times_ms"]),
        )


@dataclass
class LoopResult:
    """DCA's verdict for one source loop."""

    label: str
    function: str
    line: int
    kind: str
    verdict: str
    reason: str = ""
    invocations: int = 0
    max_trip: int = 0
    schedules_tested: List[str] = field(default_factory=list)
    failed_schedule: Optional[str] = None
    #: Which stage decided the verdict (selection / static / dynamic /
    #: cache).  Text outputs show ``cache`` for replayed loops.
    decided_by: str = DECIDED_DYNAMIC
    #: For cache-replayed loops: the stage that *originally* decided the
    #: verdict.  Serialization emits this instead of ``cache`` so warm
    #: reports stay byte-identical to cold ones (same contract as the
    #: report's backend/jobs fields).
    cache_origin: Optional[str] = None
    #: Static pre-screen verdict for this loop, when the pass ran.
    static_verdict: Optional[str] = None
    #: Evidence chain backing the static verdict (rendered strings).
    static_evidence: List[str] = field(default_factory=list)
    #: schedule name -> content digest of the live-out snapshots that
    #: execution captured (strict policy; empty string under eventual).
    schedule_digests: Dict[str, str] = field(default_factory=dict)
    #: Compact description of the first live-out divergence (loop,
    #: invocation, expected/actual digests) when a schedule mismatched.
    mismatch_detail: Optional[Dict[str, object]] = None
    #: Dynamic-stage cost breakdown for this loop.
    cost: LoopCost = field(default_factory=LoopCost)
    #: Parallelization tier (DOALL/REDUCTION/PIPELINE/SEQUENTIAL) when
    #: tiering ran; ``None`` otherwise.  Never cached: tiers are
    #: recomputed from the fresh dependence profile on every run.
    tier: Optional[str] = None
    #: Serialized :class:`~repro.analysis.sccdag.PipelinePlan` for
    #: PIPELINE-tier loops.
    pipeline_plan: Optional[Dict[str, object]] = None

    @property
    def is_commutative(self) -> bool:
        return self.verdict in _COMMUTATIVE_VERDICTS

    @property
    def used_specs(self) -> bool:
        """Whether declared commutativity specs decided this loop."""
        return self.serialized_decided_by == DECIDED_STATIC_SPECS

    @property
    def qualified_name(self) -> str:
        return self.label

    @property
    def from_cache(self) -> bool:
        return self.decided_by == DECIDED_CACHE

    @property
    def serialized_decided_by(self) -> str:
        """The provenance serialization emits: cache replays report the
        stage that originally decided the loop."""
        return self.cache_origin or self.decided_by

    def verdict_object(self) -> Dict[str, object]:
        """Schema-2 structured verdict: the scattered top-level verdict
        fields gathered into one object."""
        return {
            "value": self.verdict,
            "tier": self.tier,
            "decided_by": self.serialized_decided_by,
            "used_specs": self.used_specs,
            "pipeline_plan": self.pipeline_plan,
        }

    def to_dict(self, schema: int = 1) -> Dict[str, object]:
        """Serialize this loop.  ``schema=1`` (the default, also the
        cache-payload shape) is byte-identical to pre-tiering releases;
        ``schema=2`` nests the verdict while keeping ``decided_by`` and
        ``is_commutative`` as deprecated flat aliases for one release."""
        verdict: object = (
            self.verdict_object() if schema >= 2 else self.verdict
        )
        return {
            "label": self.label,
            "function": self.function,
            "line": self.line,
            "kind": self.kind,
            "verdict": verdict,
            "reason": self.reason,
            "invocations": self.invocations,
            "max_trip": self.max_trip,
            "schedules_tested": list(self.schedules_tested),
            "failed_schedule": self.failed_schedule,
            "decided_by": self.serialized_decided_by,
            "static_verdict": self.static_verdict,
            "static_evidence": list(self.static_evidence),
            "schedule_digests": dict(self.schedule_digests),
            "mismatch_detail": self.mismatch_detail,
            "is_commutative": self.is_commutative,
            "cost": self.cost.to_dict(),
        }

    def to_payload(self) -> Dict[str, object]:
        """Cache representation of a decided loop: :meth:`to_dict` with
        unrounded cost times (see :meth:`LoopCost.to_payload`)."""
        payload = self.to_dict()
        del payload["is_commutative"]  # derived
        payload["cost"] = self.cost.to_payload()
        return payload

    def apply_payload(self, payload: Dict[str, object]) -> None:
        """Replay a cached payload into this (freshly selected) result.

        Label/function/line/kind stay as selection set them — they are
        derived from the module, which the cache key already fixes.
        ``decided_by`` becomes ``cache`` with the original stage kept in
        ``cache_origin`` for byte-identical serialization.
        """
        self.verdict = payload["verdict"]
        self.reason = payload["reason"]
        self.invocations = payload["invocations"]
        self.max_trip = payload["max_trip"]
        self.schedules_tested = list(payload["schedules_tested"])
        self.failed_schedule = payload["failed_schedule"]
        self.cache_origin = payload["decided_by"]
        self.decided_by = DECIDED_CACHE
        self.static_verdict = payload["static_verdict"]
        self.static_evidence = list(payload["static_evidence"])
        self.schedule_digests = dict(payload["schedule_digests"])
        self.mismatch_detail = payload["mismatch_detail"]
        self.cost = LoopCost.from_payload(payload["cost"])

    def __str__(self) -> str:
        extra = f" ({self.reason})" if self.reason else ""
        tag = ""
        if self.tier is not None:
            stages = (self.pipeline_plan or {}).get("stages", ())
            detail = f"(stages={len(stages)})" if stages else ""
            tag = f" [{self.tier}{detail}]"
        return f"{self.label}: {self.verdict}{extra}{tag}"


@dataclass
class CacheAccounting:
    """Per-run persistent-cache accounting.

    Deliberately *not* part of report serialization: a warm report must
    stay byte-identical to its cold twin (same contract as the report's
    backend/jobs/exec_backend fields).  Text outputs and
    ``repro cache stats`` surface these numbers instead.
    """

    #: Whether a persistent cache was consulted for this run.
    enabled: bool = False
    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Misses whose (module, loop) had entries under a different config
    #: fingerprint — the cache-invalidation effect of a config change.
    invalidations: int = 0
    #: Schedule executions replayed from the cache instead of executed.
    schedule_executions_avoided: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "enabled": self.enabled,
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalidations": self.invalidations,
            "schedule_executions_avoided": self.schedule_executions_avoided,
        }


@dataclass
class DcaReport:
    """Full result of one DCA analysis run."""

    entry: str
    results: Dict[str, LoopResult] = field(default_factory=dict)
    #: Total interpreted executions performed (golden + tests).
    executions: int = 0
    #: Permutation-schedule executions performed by the dynamic stage.
    schedule_executions: int = 0
    #: Whether the static pre-screen ran for this report.
    static_filter: bool = False
    #: Wall milliseconds per pipeline stage (selection/profile/static/
    #: golden/dynamic), measured by the analyzer's injectable clock.
    stage_times_ms: Dict[str, float] = field(default_factory=dict)
    #: Interpreter instructions retired across all executions.
    interp_instructions: int = 0
    #: Live-out snapshot totals across all executions.
    snapshots_taken: int = 0
    snapshot_nodes: int = 0
    snapshot_bytes: int = 0
    #: Online live-out comparisons performed / failed.
    verify_comparisons: int = 0
    mismatches: int = 0
    #: Schedule executions the static pre-screen avoided: each statically
    #: decided loop skips its full permutation budget (identity + every
    #: perturbing schedule) — an upper bound on the realized saving, since
    #: a non-commutative loop would have short-circuited on first failure.
    static_schedules_saved: int = 0
    #: Schedule executions the dynamic stage skipped, by reason:
    #: ``vacuous`` (loop never reached 2 iterations), ``short-circuit``
    #: (a schedule failed, the rest were skipped), ``untestable``
    #: (outlining impossible).  Together with ``schedule_executions`` and
    #: ``static_schedules_saved`` this accounts for every planned
    #: execution: executed + saved + skipped == eligible loops × (1 +
    #: testing schedules), where eligible loops are those decided
    #: statically or dynamically.
    schedules_skipped: Dict[str, int] = field(default_factory=dict)
    #: Which schedule engine produced this report and with how many
    #: workers.  Deliberately *not* serialized: reports are byte-identical
    #: across backends, and these fields would break that.
    backend: str = "serial"
    jobs: int = 1
    #: Which execution backend ran the observer-free executions
    #: (``interp`` or ``compiled``).  Same contract: never serialized —
    #: compiled and interpreted reports must stay byte-identical.
    exec_backend: str = "interp"
    #: Persistent-cache accounting for this run.  Same contract: never
    #: serialized, so warm reports match cold reports byte-for-byte.
    cache: CacheAccounting = field(default_factory=CacheAccounting)
    #: Whether the tiering stage ran.  When True, serialization emits
    #: schema 2 (``report_schema_version`` + structured verdicts); when
    #: False, output stays byte-identical to pre-tiering releases.
    tiering: bool = False

    def loop(self, label: str) -> LoopResult:
        return self.results[label]

    def commutative_loops(self) -> List[LoopResult]:
        return [r for r in self.results.values() if r.is_commutative]

    def commutative_labels(self) -> List[str]:
        return [r.label for r in self.results.values() if r.is_commutative]

    def verdict_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for result in self.results.values():
            counts[result.verdict] = counts.get(result.verdict, 0) + 1
        return counts

    def tier_counts(self) -> Dict[str, int]:
        """Histogram of parallelization tiers (tiered loops only)."""
        counts: Dict[str, int] = {}
        for result in self.results.values():
            if result.tier is not None:
                counts[result.tier] = counts.get(result.tier, 0) + 1
        return counts

    def decided_by_counts(self, serialized: bool = False) -> Dict[str, int]:
        """Verdict provenance histogram.  ``serialized=True`` folds cache
        replays into their original stage (the serialization view)."""
        counts: Dict[str, int] = {}
        for result in self.results.values():
            key = result.serialized_decided_by if serialized else (
                result.decided_by
            )
            counts[key] = counts.get(key, 0) + 1
        return counts

    def static_hit_rate(self) -> Tuple[int, int]:
        """(statically decided, loops that reached the testing stage)."""
        tested = [
            r
            for r in self.results.values()
            if r.serialized_decided_by in _STATIC_PROVENANCES
            or r.serialized_decided_by == DECIDED_DYNAMIC
        ]
        hits = sum(
            1 for r in tested if r.serialized_decided_by in _STATIC_PROVENANCES
        )
        return hits, len(tested)

    def metrics_dict(self) -> Dict[str, object]:
        """The report's cost/metrics section (machine-readable)."""
        return {
            "executions": self.executions,
            "schedule_executions": self.schedule_executions,
            "schedule_executions_saved_static": self.static_schedules_saved,
            "schedule_executions_skipped": {
                reason: self.schedules_skipped[reason]
                for reason in sorted(self.schedules_skipped)
            },
            "interp_instructions": self.interp_instructions,
            "snapshots_taken": self.snapshots_taken,
            "snapshot_nodes": self.snapshot_nodes,
            "snapshot_bytes": self.snapshot_bytes,
            "verify_comparisons": self.verify_comparisons,
            "mismatches": self.mismatches,
            "stage_times_ms": {
                name: round(ms, 3)
                for name, ms in self.stage_times_ms.items()
            },
        }

    def to_dict(self) -> Dict[str, object]:
        if not self.tiering:
            # Pre-tiering (schema 1) shape, byte-identical to PR 9.
            return {
                "entry": self.entry,
                "executions": self.executions,
                "schedule_executions": self.schedule_executions,
                "static_filter": self.static_filter,
                "verdict_counts": self.verdict_counts(),
                "decided_by": self.decided_by_counts(serialized=True),
                "metrics": self.metrics_dict(),
                "loops": {
                    label: self.results[label].to_dict()
                    for label in sorted(self.results)
                },
            }
        return {
            "report_schema_version": REPORT_SCHEMA_VERSION,
            "entry": self.entry,
            "executions": self.executions,
            "schedule_executions": self.schedule_executions,
            "static_filter": self.static_filter,
            "verdict_counts": self.verdict_counts(),
            "tier_counts": self.tier_counts(),
            "decided_by": self.decided_by_counts(serialized=True),
            "metrics": self.metrics_dict(),
            "loops": {
                label: self.results[label].to_dict(schema=2)
                for label in sorted(self.results)
            },
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def summary(self) -> str:
        lines = [f"DCA report (entry={self.entry}, {self.executions} executions)"]
        for label in sorted(self.results):
            lines.append(f"  {self.results[label]}")
        return "\n".join(lines)

    def cost_summary(self) -> str:
        """One-paragraph pipeline cost overview for text output."""
        stages = " | ".join(
            f"{name} {ms:.1f}ms" for name, ms in self.stage_times_ms.items()
        )
        lines = [
            f"pipeline cost: {self.executions} executions, "
            f"{self.interp_instructions} interpreted instructions, "
            f"{self.snapshots_taken} snapshots "
            f"({self.snapshot_bytes / 1024.0:.1f} KiB, "
            f"{self.snapshot_nodes} heap nodes), "
            f"{self.verify_comparisons} live-out comparisons"
        ]
        if stages:
            lines.append(f"stages: {stages}")
        if self.cache.enabled:
            lines.append(
                f"cache: {self.cache.hits} hits / {self.cache.misses} "
                f"misses ({self.cache.invalidations} invalidated), "
                f"{self.cache.schedule_executions_avoided} schedule "
                f"executions avoided"
            )
        return "\n".join(lines)

    def cost_table(self) -> str:
        """Per-loop cost breakdown table (dynamically tested loops)."""
        header = (
            f"{'loop':16s}{'decided':>10s}{'scheds':>8s}{'instrs':>12s}"
            f"{'snaps':>7s}{'bytes':>10s}{'wall_ms':>9s}{'cpu_ms':>9s}"
        )
        lines = [header, "-" * len(header)]
        for label in sorted(self.results):
            result = self.results[label]
            cost = result.cost
            lines.append(
                f"{label:16s}{result.decided_by:>10s}"
                f"{cost.schedule_executions:>8d}"
                f"{cost.interp_instructions:>12d}"
                f"{cost.snapshots_taken:>7d}"
                f"{cost.snapshot_bytes:>10d}"
                f"{cost.total_time_ms:>9.2f}"
                f"{cost.total_cpu_time_ms:>9.2f}"
            )
        return "\n".join(lines)
