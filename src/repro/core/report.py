"""DCA result types."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Verdict values, roughly ordered from best to worst.
COMMUTATIVE = "commutative"
COMMUTATIVE_VACUOUS = "commutative-vacuous"  # never saw 2+ iterations
NON_COMMUTATIVE = "non-commutative"  # a permuted order changed live-outs
SPLIT_MISMATCH = "split-mismatch"  # identity replay diverged from golden
RUNTIME_FAULT = "runtime-fault"  # permuted execution crashed (§IV-E)
UNTESTABLE = "untestable"  # outlining impossible (shape)
ITERATOR_ONLY = "iterator-only"  # empty payload, nothing to permute
NOT_EXERCISED = "not-exercised"  # workload never entered the loop
EXCLUDED_IO = "excluded-io"  # I/O inside the loop (§IV-E)

#: Verdicts DCA reports as (potentially) parallelizable.
_COMMUTATIVE_VERDICTS = frozenset({COMMUTATIVE, COMMUTATIVE_VACUOUS})

#: Which pipeline stage produced a loop's verdict.
DECIDED_SELECTION = "selection"  # candidate selection (I/O, never ran)
DECIDED_STATIC = "static"  # static pre-screen proof
DECIDED_DYNAMIC = "dynamic"  # permutation testing


@dataclass
class LoopResult:
    """DCA's verdict for one source loop."""

    label: str
    function: str
    line: int
    kind: str
    verdict: str
    reason: str = ""
    invocations: int = 0
    max_trip: int = 0
    schedules_tested: List[str] = field(default_factory=list)
    failed_schedule: Optional[str] = None
    #: Which stage decided the verdict (selection / static / dynamic).
    decided_by: str = DECIDED_DYNAMIC
    #: Static pre-screen verdict for this loop, when the pass ran.
    static_verdict: Optional[str] = None
    #: Evidence chain backing the static verdict (rendered strings).
    static_evidence: List[str] = field(default_factory=list)

    @property
    def is_commutative(self) -> bool:
        return self.verdict in _COMMUTATIVE_VERDICTS

    @property
    def qualified_name(self) -> str:
        return self.label

    def to_dict(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "function": self.function,
            "line": self.line,
            "kind": self.kind,
            "verdict": self.verdict,
            "reason": self.reason,
            "invocations": self.invocations,
            "max_trip": self.max_trip,
            "schedules_tested": list(self.schedules_tested),
            "failed_schedule": self.failed_schedule,
            "decided_by": self.decided_by,
            "static_verdict": self.static_verdict,
            "static_evidence": list(self.static_evidence),
            "is_commutative": self.is_commutative,
        }

    def __str__(self) -> str:
        extra = f" ({self.reason})" if self.reason else ""
        return f"{self.label}: {self.verdict}{extra}"


@dataclass
class DcaReport:
    """Full result of one DCA analysis run."""

    entry: str
    results: Dict[str, LoopResult] = field(default_factory=dict)
    #: Total interpreted executions performed (golden + tests).
    executions: int = 0
    #: Permutation-schedule executions performed by the dynamic stage.
    schedule_executions: int = 0
    #: Whether the static pre-screen ran for this report.
    static_filter: bool = False

    def loop(self, label: str) -> LoopResult:
        return self.results[label]

    def commutative_loops(self) -> List[LoopResult]:
        return [r for r in self.results.values() if r.is_commutative]

    def commutative_labels(self) -> List[str]:
        return [r.label for r in self.results.values() if r.is_commutative]

    def verdict_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for result in self.results.values():
            counts[result.verdict] = counts.get(result.verdict, 0) + 1
        return counts

    def decided_by_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for result in self.results.values():
            counts[result.decided_by] = counts.get(result.decided_by, 0) + 1
        return counts

    def static_hit_rate(self) -> Tuple[int, int]:
        """(statically decided, loops that reached the testing stage)."""
        tested = [
            r
            for r in self.results.values()
            if r.decided_by in (DECIDED_STATIC, DECIDED_DYNAMIC)
        ]
        hits = sum(1 for r in tested if r.decided_by == DECIDED_STATIC)
        return hits, len(tested)

    def to_dict(self) -> Dict[str, object]:
        return {
            "entry": self.entry,
            "executions": self.executions,
            "schedule_executions": self.schedule_executions,
            "static_filter": self.static_filter,
            "verdict_counts": self.verdict_counts(),
            "decided_by": self.decided_by_counts(),
            "loops": {
                label: self.results[label].to_dict()
                for label in sorted(self.results)
            },
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def summary(self) -> str:
        lines = [f"DCA report (entry={self.entry}, {self.executions} executions)"]
        for label in sorted(self.results):
            lines.append(f"  {self.results[label]}")
        return "\n".join(lines)
