"""DCA result types."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Verdict values, roughly ordered from best to worst.
COMMUTATIVE = "commutative"
COMMUTATIVE_VACUOUS = "commutative-vacuous"  # never saw 2+ iterations
NON_COMMUTATIVE = "non-commutative"  # a permuted order changed live-outs
SPLIT_MISMATCH = "split-mismatch"  # identity replay diverged from golden
RUNTIME_FAULT = "runtime-fault"  # permuted execution crashed (§IV-E)
UNTESTABLE = "untestable"  # outlining impossible (shape)
ITERATOR_ONLY = "iterator-only"  # empty payload, nothing to permute
NOT_EXERCISED = "not-exercised"  # workload never entered the loop
EXCLUDED_IO = "excluded-io"  # I/O inside the loop (§IV-E)

#: Verdicts DCA reports as (potentially) parallelizable.
_COMMUTATIVE_VERDICTS = frozenset({COMMUTATIVE, COMMUTATIVE_VACUOUS})


@dataclass
class LoopResult:
    """DCA's verdict for one source loop."""

    label: str
    function: str
    line: int
    kind: str
    verdict: str
    reason: str = ""
    invocations: int = 0
    max_trip: int = 0
    schedules_tested: List[str] = field(default_factory=list)
    failed_schedule: Optional[str] = None

    @property
    def is_commutative(self) -> bool:
        return self.verdict in _COMMUTATIVE_VERDICTS

    @property
    def qualified_name(self) -> str:
        return self.label

    def __str__(self) -> str:
        extra = f" ({self.reason})" if self.reason else ""
        return f"{self.label}: {self.verdict}{extra}"


@dataclass
class DcaReport:
    """Full result of one DCA analysis run."""

    entry: str
    results: Dict[str, LoopResult] = field(default_factory=dict)
    #: Total interpreted executions performed (golden + tests).
    executions: int = 0

    def loop(self, label: str) -> LoopResult:
        return self.results[label]

    def commutative_loops(self) -> List[LoopResult]:
        return [r for r in self.results.values() if r.is_commutative]

    def commutative_labels(self) -> List[str]:
        return [r.label for r in self.results.values() if r.is_commutative]

    def verdict_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for result in self.results.values():
            counts[result.verdict] = counts.get(result.verdict, 0) + 1
        return counts

    def summary(self) -> str:
        lines = [f"DCA report (entry={self.entry}, {self.executions} executions)"]
        for label in sorted(self.results):
            lines.append(f"  {self.results[label]}")
        return "\n".join(lines)
