"""The DCA runtime library (paper Fig. 3, right column).

One :class:`DcaRuntime` instance accompanies one program execution and
services the ``rt_*`` intrinsics:

* ``rt_iterator_record`` — linearizes the iterator: appends the payload's
  argument tuple for the current iteration to the invocation buffer;
* ``rt_iterator_permute`` — freezes the buffer and applies the schedule's
  permutation;
* ``rt_iterator_next`` / ``rt_iterator_get`` — drive the dispatch loop;
* ``rt_verify`` — captures the live-out snapshot; in test mode, compares
  it online against the golden reference and aborts on the first mismatch.

Invocation states are kept per loop label as a *stack*, so re-entrant
invocations (recursive callers, a payload reaching the same loop again)
nest correctly — inner invocations complete before outer ones in both the
golden and the test execution, keeping completion order aligned.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import repro.obs as obs
from repro.core.instrument import (
    RT_GET,
    RT_NEXT,
    RT_PERMUTE,
    RT_RECORD,
    RT_VERIFY,
    VerifySpec,
)
from repro.core.liveout import (
    Snapshot,
    canonicalize_snapshot,
    capture,
    snapshot_digest,
    snapshots_equal,
)
from repro.core.schedules import Schedule
from repro.interp.interpreter import Interpreter, RuntimeHooks
from repro.interp.values import MiniCRuntimeError


class CommutativityMismatch(Exception):
    """Raised in fail-fast test mode on the first live-out divergence."""

    def __init__(self, label: str, invocation: int):
        self.label = label
        self.invocation = invocation
        super().__init__(f"live-out mismatch for {label} (invocation {invocation})")


@dataclass
class _Invocation:
    phase: str = "recording"  # "recording" | "iterating"
    buffer: List[Tuple] = field(default_factory=list)
    order: List[int] = field(default_factory=list)
    pos: int = -1


@dataclass
class Violation:
    label: str
    invocation: int


class DcaRuntime(RuntimeHooks):
    """Runtime state for one observed or commutativity-testing execution."""

    #: ``handle_intrinsic`` below is a pure name dispatch, so the
    #: compiled backend may call ``_get``/``_next``/``_record``/
    #: ``_permute``/``_verify`` directly (see RuntimeHooks).
    fast_intrinsics = True

    def __init__(
        self,
        specs: Dict[str, VerifySpec],
        schedule: Optional[Schedule] = None,
        golden: Optional[Dict[str, List[Snapshot]]] = None,
        rtol: float = 1e-9,
        fail_fast: bool = True,
        capture_snapshots: bool = True,
    ):
        self.specs = specs
        self.schedule = schedule
        self.golden = golden
        self.rtol = rtol
        self.fail_fast = fail_fast
        #: When False, rt_verify only counts invocations (eventual policy).
        self.capture_snapshots = capture_snapshots

        #: Completed live-out snapshots per label, in completion order.
        self.snapshots: Dict[str, List[Snapshot]] = {}
        #: Completed invocations per label (independent of snapshotting).
        self.invocations: Dict[str, int] = {}
        #: Trip counts observed by the recording stage per completed invocation.
        self.trip_counts: Dict[str, List[int]] = {}
        self.violations: List[Violation] = []
        self._active: Dict[str, List[_Invocation]] = {}

        #: Always-on cost counters (plain ints — consumed by the report's
        #: per-loop cost breakdowns even with observability disabled).
        self.snapshots_taken = 0
        self.snapshot_nodes = 0
        self.snapshot_bytes = 0
        self.verify_comparisons = 0
        self.mismatches = 0
        #: Wall time of the execution this runtime accompanied, assigned
        #: by whichever driver timed it (the schedule engine).
        self.wall_ms = 0.0
        #: Compact description of the first live-out divergence, built at
        #: mismatch time (never holds snapshots — safe to pickle back
        #: from worker processes).
        self._mismatch_report: Optional[Dict[str, object]] = None
        #: Memoized ``Schedule.permutation(n)`` results keyed by
        #: ``(schedule.name, n)``: re-entrant loops with equal trip
        #: counts would otherwise recompute the identical Fisher-Yates
        #: shuffle per invocation.  Safe to share the list — ``order``
        #: is only ever indexed, never mutated.
        self._perm_cache: Dict[Tuple[str, int], List[int]] = {}
        self._obs = obs.current()
        #: Cached ``self._obs.enabled``: the runtime binds its obs context
        #: once at construction, so the flag is fixed for its lifetime and
        #: the per-iteration intrinsics can test a plain bool.
        self._obs_enabled = self._obs.enabled

    # -- intrinsic dispatch -----------------------------------------------------

    def handle_intrinsic(
        self, interp: Interpreter, name: str, args: List[object]
    ) -> object:
        # Hot-first dispatch: rt_iterator_get/next/record fire once (or
        # more) per loop iteration; permute/verify once per invocation.
        label = args[0]
        if name == RT_GET:
            return self._get(label, args[1])
        if name == RT_NEXT:
            return self._next(label)
        if name == RT_RECORD:
            self._record(label, tuple(args[1:]))
            return None
        if name == RT_PERMUTE:
            self._permute(label)
            return None
        if name == RT_VERIFY:
            self._verify(interp, label, args[1:])
            return None
        raise MiniCRuntimeError(f"unknown DCA intrinsic {name!r}")

    # -- iterator linearization ---------------------------------------------------

    def _stack(self, label: str) -> List[_Invocation]:
        return self._active.setdefault(label, [])

    def _record(self, label: str, values: Tuple) -> None:
        stack = self._stack(label)
        if not stack or stack[-1].phase != "recording":
            stack.append(_Invocation())
        stack[-1].buffer.append(values)
        if self._obs_enabled:
            self._obs.metrics.counter("dca.iterations_recorded").inc()

    def _permute(self, label: str) -> None:
        if self.schedule is None:
            raise MiniCRuntimeError("rt_iterator_permute without a schedule")
        stack = self._stack(label)
        if not stack or stack[-1].phase != "recording":
            stack.append(_Invocation())
        inv = stack[-1]
        inv.phase = "iterating"
        key = (self.schedule.name, len(inv.buffer))
        order = self._perm_cache.get(key)
        if order is None:
            order = self._perm_cache[key] = self.schedule.permutation(
                len(inv.buffer)
            )
        inv.order = order
        inv.pos = -1
        if self._obs.enabled:
            self._obs.metrics.counter("dca.permutes").inc()
            self._obs.metrics.histogram("dca.permute.len").observe(
                len(inv.buffer)
            )

    def _top(self, label: str) -> _Invocation:
        stack = self._active.get(label)
        if not stack:
            raise MiniCRuntimeError(f"no active DCA invocation for {label}")
        return stack[-1]

    def _next(self, label: str) -> bool:
        inv = self._top(label)
        inv.pos += 1
        return inv.pos < len(inv.order)

    def _get(self, label: str, index: int) -> object:
        inv = self._top(label)
        return inv.buffer[inv.order[inv.pos]][index]

    # -- verification ------------------------------------------------------------

    def _verify(self, interp: Interpreter, label: str, reg_values: List[object]) -> None:
        stack = self._active.get(label)
        if stack:
            inv = stack.pop()
            self.trip_counts.setdefault(label, []).append(len(inv.buffer))
        self.invocations[label] = self.invocations.get(label, 0) + 1
        if not self.capture_snapshots:
            return
        spec = self.specs[label]
        roots = list(reg_values)
        for gname in spec.ref_globals:
            roots.append(interp.globals[gname])
        for gname in spec.scalar_globals:
            roots.append(interp.globals[gname])
        snap = capture(roots)
        if spec.equivalence:
            # Verification modulo declared equivalence: rewrite declared
            # containers to their multiset denotation before counting,
            # digesting or comparing.  Golden and test runs share the
            # same spec, so both sides canonicalize identically.
            snap = canonicalize_snapshot(snap, dict(spec.equivalence))
        self.snapshots_taken += 1
        self.snapshot_nodes += snap.size()
        self.snapshot_bytes += snap.approx_bytes()
        if self._obs.enabled:
            metrics = self._obs.metrics
            metrics.counter("dca.snapshots").inc()
            metrics.histogram("dca.snapshot.nodes").observe(snap.size())
            metrics.histogram("dca.snapshot.bytes").observe(snap.approx_bytes())
        done = self.snapshots.setdefault(label, [])
        index = len(done)
        done.append(snap)
        if self.golden is not None:
            self.verify_comparisons += 1
            if self._obs.enabled:
                self._obs.metrics.counter("dca.verify.comparisons").inc()
            reference = self.golden.get(label, [])
            if index < len(reference):
                ref = reference[index]
                # Digest-first: when the golden snapshot's content digest
                # is already cached (the analyzer prepays it), compare it
                # against this snapshot's digest — which the end-of-run
                # snapshot_content_digest() needs anyway, so the hash is
                # prepaid, not extra.  Equal digests imply equal content;
                # differing digests still get the rtol-tolerant
                # structural comparison (float roundoff).
                refd = ref.__dict__.get("_digest")
                ok = (
                    refd is not None and refd == snapshot_digest(snap)
                ) or snapshots_equal(ref, snap, rtol=self.rtol)
            else:
                ok = False
            if not ok:
                # All bookkeeping for the completed snapshot happens
                # before the fail-fast abort: a mismatch must not lose
                # the comparison/snapshot cost it just paid.
                self.mismatches += 1
                self.violations.append(Violation(label, index))
                if self._mismatch_report is None:
                    expected = (
                        reference[index] if index < len(reference) else None
                    )
                    self._mismatch_report = {
                        "loop": label,
                        "invocation": index,
                        "kind": (
                            "liveout-divergence"
                            if expected is not None
                            else "extra-invocation"
                        ),
                        "expected_digest": (
                            snapshot_digest(expected) if expected else ""
                        ),
                        "actual_digest": snapshot_digest(snap),
                        "expected_objects": (
                            expected.size() if expected else 0
                        ),
                        "actual_objects": snap.size(),
                    }
                if self._obs.enabled:
                    self._obs.metrics.counter("dca.verify.mismatches").inc()
                    self._obs.event(
                        "warning",
                        "mismatch",
                        f"live-out mismatch for {label} (invocation {index})",
                        provenance="dynamic",
                        loop=label,
                        invocation=index,
                    )
                if self.fail_fast:
                    raise CommutativityMismatch(label, index)

    # -- results ---------------------------------------------------------------

    def max_trip_count(self, label: str) -> int:
        counts = self.trip_counts.get(label, [])
        return max(counts) if counts else 0

    def invocation_count(self, label: str) -> int:
        return self.invocations.get(label, 0)

    def snapshot_content_digest(self) -> str:
        """Content hash over every snapshot this execution captured.

        Labels and per-label snapshots fold in deterministic order, so
        two executions producing identical live-out content — regardless
        of which process ran them — get identical digests.  Workers ship
        this hex string back instead of the snapshots themselves.
        Empty when no snapshots were captured (eventual policy).
        """
        if not self.snapshots:
            return ""
        h = hashlib.sha256()
        for label in sorted(self.snapshots):
            h.update(label.encode("utf-8"))
            for snap in self.snapshots[label]:
                h.update(snapshot_digest(snap).encode("ascii"))
        return h.hexdigest()

    def first_mismatch_report(self) -> Optional[Dict[str, object]]:
        """Compact description of the first live-out divergence, if any."""
        return self._mismatch_report
