"""Live-out snapshots (paper §IV-B3).

At every ``rt_verify`` point the DCA runtime captures the loop's observable
outcome: the values of its live-out scalars plus the entire heap reachable
from its live-out references and reference-typed globals.  Snapshots are
*canonical*: heap objects are renumbered in a deterministic DFS order from
the roots, so two executions that allocate in different orders but build
structurally identical state compare equal.

Floating-point values are compared with a relative tolerance, because
permuting a floating-point reduction legitimately reorders roundoff — the
same reason the NPB verification routines use epsilon checks.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.interp.values import ArrayObj, StructObj

#: Canonical scalar or reference-placeholder in a snapshot.
SnapValue = object


@dataclass(frozen=True)
class Snapshot:
    """Canonicalized deep copy of values + reachable heap."""

    #: One entry per root: a scalar value or ("ref", canonical_id).
    roots: Tuple[SnapValue, ...]
    #: Canonical object table: objects[i] describes canonical id i as
    #: ("struct", name, (field values...)) or ("array", (elem values...)).
    objects: Tuple[Tuple, ...]

    def size(self) -> int:
        return len(self.objects)

    def approx_bytes(self) -> int:
        """Rough serialized size: 8 bytes per value slot + 16 per object
        header.  Used for observability cost accounting, not for equality.
        """
        total = 8 * len(self.roots)
        for obj in self.objects:
            values = obj[2] if obj[0] == "struct" else obj[1]
            total += 16 + 8 * len(values)
        return total


def capture(roots: Sequence[object]) -> Snapshot:
    """Snapshot ``roots`` (runtime values) and everything reachable."""
    ids: Dict[int, int] = {}
    order: List[object] = []

    def visit(value: object) -> SnapValue:
        if isinstance(value, (StructObj, ArrayObj)):
            key = id(value)
            if key not in ids:
                ids[key] = len(order)
                order.append(value)
                # Traverse after registration (DFS preorder numbering);
                # children handled in the main loop below.
            return ("ref", ids[key])
        return value

    root_vals = tuple(visit(v) for v in roots)

    # Breadth of traversal: order grows as we scan objects.
    described: List[Tuple] = []
    i = 0
    while i < len(order):
        obj = order[i]
        if isinstance(obj, StructObj):
            fields = tuple(visit(v) for v in obj.fields.values())
            described.append(("struct", obj.struct_name, fields))
        else:
            elems = tuple(visit(v) for v in obj.data)
            described.append(("array", elems))
        i += 1
    return Snapshot(roots=root_vals, objects=tuple(described))


def snapshot_digest(snapshot: Snapshot) -> str:
    """Content hash (sha256 hex) of one canonical snapshot.

    Snapshots are already canonical (deterministic DFS renumbering), and
    their payload is tuples of scalars whose ``repr`` is stable, so the
    digest identifies the snapshot's *content* across processes.  Equal
    digests imply equal content; note the converse is weaker than
    :func:`snapshots_equal`, which tolerates float roundoff — digests are
    for cheap cross-process identity checks and mismatch reports, never a
    substitute for the rtol comparison.
    """
    h = hashlib.sha256()
    h.update(repr(snapshot.roots).encode("utf-8"))
    h.update(repr(snapshot.objects).encode("utf-8"))
    return h.hexdigest()


def _values_equal(a: SnapValue, b: SnapValue, rtol: float) -> bool:
    if isinstance(a, tuple) or isinstance(b, tuple):
        return a == b  # ("ref", id) placeholders
    if isinstance(a, bool) or isinstance(b, bool):
        # bools compare only with bools (True is not the int 1 here).
        return isinstance(a, bool) and isinstance(b, bool) and a == b
    if isinstance(a, float) or isinstance(b, float):
        if a is None or b is None:
            return a is None and b is None
        return math.isclose(a, b, rel_tol=rtol, abs_tol=rtol)
    return a == b


def snapshots_equal(a: Snapshot, b: Snapshot, rtol: float = 1e-9) -> bool:
    """Structural equality with float tolerance."""
    if len(a.roots) != len(b.roots) or len(a.objects) != len(b.objects):
        return False
    for va, vb in zip(a.roots, b.roots):
        if not _values_equal(va, vb, rtol):
            return False
    for oa, ob in zip(a.objects, b.objects):
        if oa[0] != ob[0]:
            return False
        if oa[0] == "struct":
            if oa[1] != ob[1] or len(oa[2]) != len(ob[2]):
                return False
            for va, vb in zip(oa[2], ob[2]):
                if not _values_equal(va, vb, rtol):
                    return False
        else:
            if len(oa[1]) != len(ob[1]):
                return False
            for va, vb in zip(oa[1], ob[1]):
                if not _values_equal(va, vb, rtol):
                    return False
    return True
