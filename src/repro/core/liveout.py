"""Live-out snapshots (paper §IV-B3).

At every ``rt_verify`` point the DCA runtime captures the loop's observable
outcome: the values of its live-out scalars plus the entire heap reachable
from its live-out references and reference-typed globals.  Snapshots are
*canonical*: heap objects are renumbered in a deterministic DFS order from
the roots, so two executions that allocate in different orders but build
structurally identical state compare equal.

Floating-point values are compared with a relative tolerance, because
permuting a floating-point reduction legitimately reorders roundoff — the
same reason the NPB verification routines use epsilon checks.
"""

from __future__ import annotations

import hashlib
import math
import pickle
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import repro.obs as obs
from repro.interp.values import ArrayObj, StructObj
from repro.lang.types import BoolType, FloatType, IntType

#: Array element types whose values can never be heap references.  An
#: array of these snapshots as a plain copy of its data — no per-element
#: reference scan (the type checker and IR verifier guarantee a
#: scalar-typed array holds only scalars).
_SCALAR_TYPES = (IntType, FloatType, BoolType)

#: Canonical scalar or reference-placeholder in a snapshot.
SnapValue = object


@dataclass(frozen=True)
class Snapshot:
    """Canonicalized deep copy of values + reachable heap."""

    #: One entry per root: a scalar value or ("ref", canonical_id).
    roots: Tuple[SnapValue, ...]
    #: Canonical object table: objects[i] describes canonical id i as
    #: ("struct", name, (field values...)) or ("array", (elem values...)).
    objects: Tuple[Tuple, ...]

    def size(self) -> int:
        return len(self.objects)

    def approx_bytes(self) -> int:
        """Rough serialized size: 8 bytes per value slot + 16 per object
        header.  Used for observability cost accounting, not for equality.
        """
        total = 8 * len(self.roots)
        for obj in self.objects:
            values = obj[2] if obj[0] == "struct" else obj[1]
            total += 16 + 8 * len(values)
        return total


def capture(roots: Sequence[object]) -> Snapshot:
    """Snapshot ``roots`` (runtime values) and everything reachable."""
    ids: Dict[int, int] = {}
    order: List[object] = []

    def visit(value: object) -> SnapValue:
        # Exact-type test, not isinstance: scalars dominate and the heap
        # classes are never subclassed.
        cls = value.__class__
        if cls is StructObj or cls is ArrayObj:
            key = id(value)
            if key not in ids:
                ids[key] = len(order)
                order.append(value)
                # Traverse after registration (DFS preorder numbering);
                # children handled in the main loop below.
            return ("ref", ids[key])
        return value

    root_vals = tuple(visit(v) for v in roots)

    # Breadth of traversal: order grows as we scan objects.  The per-value
    # body of ``visit`` is inlined here — snapshotting touches every live
    # heap slot of every invocation, and the closure call per scalar is
    # the single largest capture cost.
    described: List[Tuple] = []
    i = 0
    while i < len(order):
        obj = order[i]
        if obj.__class__ is StructObj:
            row: List[SnapValue] = []
            for v in obj.fields.values():
                cls = v.__class__
                if cls is StructObj or cls is ArrayObj:
                    key = id(v)
                    ix = ids.get(key)
                    if ix is None:
                        ix = ids[key] = len(order)
                        order.append(v)
                    row.append(("ref", ix))
                else:
                    row.append(v)
            described.append(("struct", obj.struct_name, tuple(row)))
        elif isinstance(obj.elem_type, _SCALAR_TYPES):
            # Scalar-typed arrays cannot hold references: copy the data
            # wholesale instead of visiting element by element.
            described.append(("array", tuple(obj.data)))
        else:
            row = []
            for v in obj.data:
                cls = v.__class__
                if cls is StructObj or cls is ArrayObj:
                    key = id(v)
                    ix = ids.get(key)
                    if ix is None:
                        ix = ids[key] = len(order)
                        order.append(v)
                    row.append(("ref", ix))
                else:
                    row.append(v)
            described.append(("array", tuple(row)))
        i += 1
    return Snapshot(roots=root_vals, objects=tuple(described))


class _Bail(Exception):
    """Canonicalization bailed; compare the snapshot byte-exactly."""


def canonicalize_snapshot(
    snapshot: Snapshot, chains: Dict[str, int]
) -> Snapshot:
    """Rewrite declared containers to their multiset denotation.

    ``chains`` maps struct names declared order-insensitive (see
    :meth:`repro.analysis.specs.SpecRegistry.chain_slots`) to the slot
    index of their link field.  Every reference to such a node is
    replaced *inline* by ``("chain", name, (sorted content keys...))``
    covering the suffix reachable through the link field — a pointer into
    the middle of a chain denotes that suffix's multiset, so genuinely
    order-sensitive mid-chain references still differ.  A node's content
    key is its non-link fields with nested declared references reduced
    the same way.  Declared nodes leave the object table; survivors are
    renumbered in the original deterministic visit order.

    The rewrite *bails* — returns the snapshot unchanged, falling back to
    byte-exact comparison — whenever the multiset abstraction would be
    lossy or unsound: a cycle through link fields, a float in chain
    content (bag keys compare exactly, which would drop the rtol
    guarantee), a non-reference link value, or a chain node referencing
    an undeclared heap object (its renumbering would depend on bag
    order).  Bailing is always sound: it can only make the verifier
    stricter.
    """
    objects = snapshot.objects
    declared: Dict[int, int] = {}
    for i, obj in enumerate(objects):
        if obj[0] == "struct" and obj[1] in chains:
            declared[i] = chains[obj[1]]
    if not declared:
        obs.current().count("liveout.canonicalize.noop")
        return snapshot

    _IN_PROGRESS = ("chain-in-progress",)
    memo: Dict[int, Tuple] = {}

    def chain_value(i: int) -> Tuple:
        cached = memo.get(i)
        if cached is _IN_PROGRESS:
            raise _Bail()
        if cached is not None:
            return cached
        memo[i] = _IN_PROGRESS
        name = objects[i][1]
        keys: List[Tuple] = []
        walked = set()
        j = i
        while True:
            if j in walked:
                raise _Bail()  # cycle through the link field
            walked.add(j)
            obj = objects[j]
            if obj[0] != "struct" or obj[1] != name:
                raise _Bail()
            link = chains[name]
            row = obj[2]
            key: List[SnapValue] = []
            for slot, v in enumerate(row):
                if slot == link:
                    continue
                key.append(content_value(v))
            keys.append(tuple(key))
            nxt = row[link]
            if nxt is None:
                break
            if not (isinstance(nxt, tuple) and nxt and nxt[0] == "ref"):
                raise _Bail()
            j = nxt[1]
            if j not in declared:
                raise _Bail()
        keys.sort(key=lambda k: pickle.dumps(k, protocol=4))
        value = ("chain", name, tuple(keys))
        memo[i] = value
        return value

    def content_value(v: SnapValue) -> SnapValue:
        if isinstance(v, float):
            raise _Bail()  # exact bag keys would lose the rtol tolerance
        if isinstance(v, tuple) and v and v[0] == "ref":
            if v[1] in declared:
                return chain_value(v[1])
            raise _Bail()  # bag contents may not leak undeclared objects
        return v

    new_ids: Dict[int, int] = {}
    retained: List[int] = []

    def rewrite(v: SnapValue) -> SnapValue:
        if isinstance(v, tuple) and v and v[0] == "ref":
            j = v[1]
            if j in declared:
                return chain_value(j)
            ix = new_ids.get(j)
            if ix is None:
                ix = new_ids[j] = len(retained)
                retained.append(j)
            return ("ref", ix)
        return v

    try:
        new_roots = tuple(rewrite(v) for v in snapshot.roots)
        described: List[Tuple] = []
        k = 0
        while k < len(retained):
            obj = objects[retained[k]]
            if obj[0] == "struct":
                described.append(
                    ("struct", obj[1], tuple(rewrite(v) for v in obj[2]))
                )
            else:
                described.append(("array", tuple(rewrite(v) for v in obj[1])))
            k += 1
    except _Bail:
        obs.current().count("liveout.canonicalize.bailed")
        return snapshot
    obs.current().count("liveout.canonicalize.rewritten")
    return Snapshot(roots=new_roots, objects=tuple(described))


def snapshot_digest(snapshot: Snapshot) -> str:
    """Content hash (sha256 hex) of one canonical snapshot.

    Snapshots are already canonical (deterministic DFS renumbering), and
    their payload is tuples of scalars whose ``repr`` is stable, so the
    digest identifies the snapshot's *content* across processes.  Equal
    digests imply equal content; note the converse is weaker than
    :func:`snapshots_equal`, which tolerates float roundoff — digests are
    for cheap cross-process identity checks and mismatch reports, never a
    substitute for the rtol comparison.

    The digest is memoized on the snapshot: golden snapshots get
    re-digested by every schedule's ``snapshot_content_digest()`` and by
    every mismatch report, and a frozen ``Snapshot`` never changes, so
    the sha256 is computed once.  (``object.__setattr__`` bypasses the
    frozen-dataclass guard; ``_digest`` is not a field, so equality,
    hashing and pickling are unaffected.)
    """
    cached = snapshot.__dict__.get("_digest")
    if cached is not None:
        return cached
    # Fixed protocol: digests must agree across the coordinator and its
    # worker processes.  Pickle serializes the canonical tuples much
    # faster than repr and distinguishes everything repr did (bool vs
    # int, -0.0, float precision).
    payload = pickle.dumps((snapshot.roots, snapshot.objects), protocol=4)
    hexd = hashlib.sha256(payload).hexdigest()
    object.__setattr__(snapshot, "_digest", hexd)
    return hexd


def _values_equal(a: SnapValue, b: SnapValue, rtol: float) -> bool:
    if isinstance(a, tuple) or isinstance(b, tuple):
        return a == b  # ("ref", id) placeholders
    if isinstance(a, bool) or isinstance(b, bool):
        # bools compare only with bools (True is not the int 1 here).
        return isinstance(a, bool) and isinstance(b, bool) and a == b
    if isinstance(a, float) or isinstance(b, float):
        if a is None or b is None:
            return a is None and b is None
        return math.isclose(a, b, rel_tol=rtol, abs_tol=rtol)
    return a == b


def _rows_equal(ra: Tuple, rb: Tuple, rtol: float) -> bool:
    """Elementwise value comparison with a same-type exact fast path.

    ``type(va) is type(vb) and va == vb`` short-circuits without semantic
    drift: same-type exact equality satisfies every `_values_equal` rule
    (bools only match bools, exactly-equal floats pass any rtol, ref
    placeholders compare structurally).  Only genuinely different — or
    float-within-tolerance — values take the slow path.
    """
    if len(ra) != len(rb):
        return False
    for va, vb in zip(ra, rb):
        if va is vb or (type(va) is type(vb) and va == vb):
            continue
        if not _values_equal(va, vb, rtol):
            return False
    return True


def snapshots_equal(a: Snapshot, b: Snapshot, rtol: float = 1e-9) -> bool:
    """Structural equality with float tolerance."""
    if len(a.roots) != len(b.roots) or len(a.objects) != len(b.objects):
        return False
    if not _rows_equal(a.roots, b.roots, rtol):
        return False
    for oa, ob in zip(a.objects, b.objects):
        if oa[0] != ob[0]:
            return False
        if oa[0] == "struct":
            if oa[1] != ob[1]:
                return False
            if not _rows_equal(oa[2], ob[2], rtol):
                return False
        elif not _rows_equal(oa[1], ob[1], rtol):
            return False
    return True
