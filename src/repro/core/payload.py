"""Payload outlining (paper §IV-A2).

Given the iterator/payload separation of a loop, this pass extracts the
payload into a standalone function, leaving a single ``call`` in the loop:

1. **Block splitting** — blocks mixing iterator and payload instructions
   are split so the payload occupies whole blocks (the payload run within a
   block must be contiguous, mirroring LLVM CodeExtractor's single-region
   requirement).
2. **Region discovery** — the payload blocks must form a single-entry
   region whose exits all reach one target block ``X`` inside the loop.
3. **Extraction** — payload blocks move into a new function
   ``__payload_<label>``.  Scalars the payload communicates across
   iterations or out of the loop travel through a synthetic environment
   struct (one field per escaping register): the caller initializes the
   fields before the loop, the payload function loads them in a prologue
   and stores them back in an epilogue, and the caller reloads them after
   each call.

The result leaves the loop semantically identical (the call sits exactly
where the payload run was), which the dynamic stage later checks end-to-end
by comparing an identity-permutation run against the golden reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.defuse import ReachingDefs
from repro.analysis.liveness import Liveness
from repro.analysis.loops import LoopForest, build_loop_forest, invalidate_loops
from repro.analysis.postdom import ControlDependence
from repro.core.iterator_recognition import IteratorSeparation, separate
from repro.ir.function import BasicBlock, Function, Module
from repro.ir.instructions import (
    Branch,
    Call,
    Const,
    GetField,
    Instr,
    Jump,
    Mov,
    NewStruct,
    Reg,
    Ret,
    SetField,
)
from repro.ir.lowering import default_value
from repro.lang.types import INT, VOID, PointerType, StructDef, Type


class OutlineError(Exception):
    """The loop cannot be outlined; ``reason`` is a stable short code."""

    def __init__(self, reason: str, detail: str = ""):
        self.reason = reason
        self.detail = detail
        super().__init__(f"{reason}: {detail}" if detail else reason)


@dataclass
class OutlineResult:
    """Description of an outlined loop."""

    label: str
    payload_func: str
    env_struct: str
    env_reg: Reg
    #: Call argument registers (excluding the env), in call order.
    input_regs: List[Reg] = field(default_factory=list)
    #: Registers communicated through the env struct.
    output_regs: List[Reg] = field(default_factory=list)
    #: env field name per output register.
    env_fields: Dict[Reg, str] = field(default_factory=dict)
    #: Caller block containing the payload call.
    call_block: str = ""
    #: The single region-exit target inside the loop.
    exit_target: str = ""
    #: Entry-edge setup blocks added in the caller.
    setup_blocks: List[str] = field(default_factory=list)


def sanitize(label: str) -> str:
    return label.replace(".", "_").replace("$", "_")


# ---------------------------------------------------------------------------
# Block splitting
# ---------------------------------------------------------------------------


def _classify_block(
    block: BasicBlock,
    iterator_ids: Set[int],
    payload_ids: Set[int],
    payload_branch_ids: Set[int],
) -> Tuple[List[str], str]:
    """Per-instruction tags ('it'/'pl') for the body, plus terminator tag."""
    tags: List[str] = []
    for instr in block.body():
        if id(instr) in payload_ids:
            tags.append("pl")
        elif id(instr) in iterator_ids:
            tags.append("it")
        else:
            # Unclassified sites do not occur: separation covers all sites.
            tags.append("it")
    term = block.instrs[-1]
    if id(term) in payload_branch_ids:
        term_tag = "pl"
    elif isinstance(term, Jump):
        term_tag = "neutral"
    else:
        term_tag = "it"
    return tags, term_tag


def _split_mixed_blocks(
    func: Function,
    loop_blocks: Set[str],
    iterator_ids: Set[int],
    payload_ids: Set[int],
    payload_branch_ids: Set[int],
) -> Set[str]:
    """Split blocks containing both iterator and payload instructions.

    Returns the updated set of loop block names.  The original block keeps
    the iterator prefix (possibly empty) so loop-header identity survives.
    """
    new_loop_blocks = set(loop_blocks)
    for name in sorted(loop_blocks):
        block = func.blocks[name]
        tags, term_tag = _classify_block(
            block, iterator_ids, payload_ids, payload_branch_ids
        )
        has_pl = "pl" in tags or term_tag == "pl"
        if not (has_pl and ("it" in tags or (term_tag == "it" and "pl" in tags))):
            continue  # uniform block, nothing to split
        if "pl" not in tags:
            # Only the terminator is payload (a payload branch whose block
            # body is iterator work): split before the terminator.
            first_pl = len(tags)
            after_pl = len(tags)
        else:
            first_pl = tags.index("pl")
            after_pl = len(tags) - list(reversed(tags)).index("pl")
            if "it" in tags[first_pl:after_pl]:
                raise OutlineError(
                    "noncontiguous-payload",
                    f"block {name} interleaves payload and iterator code",
                )
        body = block.body()
        prefix = body[:first_pl]
        run = body[first_pl:after_pl]
        suffix = body[after_pl:]
        term = block.instrs[-1]

        if term_tag == "pl" and suffix:
            raise OutlineError(
                "noncontiguous-payload",
                f"block {name} has iterator code between payload and its branch",
            )

        pl_name = f"{name}.pl"
        post_name = f"{name}.post"
        pl_block = func.new_block(pl_name)
        new_loop_blocks.add(pl_name)
        pl_block.instrs = list(run)
        if term_tag == "pl" and not suffix:
            pl_block.instrs.append(term)
        else:
            post_block = func.new_block(post_name)
            new_loop_blocks.add(post_name)
            post_block.instrs = list(suffix) + [term]
            pl_block.instrs.append(Jump(post_name, line=term.line))
        block.instrs = list(prefix) + [Jump(pl_name, line=term.line)]
    return new_loop_blocks


# ---------------------------------------------------------------------------
# Region discovery
# ---------------------------------------------------------------------------


def _payload_region(
    func: Function,
    loop_blocks: Set[str],
    header: str,
    payload_ids: Set[int],
    payload_branch_ids: Set[int],
) -> Set[str]:
    """The set of blocks forming the payload region."""
    region: Set[str] = set()
    for name in loop_blocks:
        block = func.blocks[name]
        body = block.body()
        if any(id(i) in payload_ids for i in body):
            region.add(name)
        elif id(block.instrs[-1]) in payload_branch_ids:
            region.add(name)

    # Absorb jump-only glue blocks (if.end / sc.end merges) whose
    # predecessors are all in the region.
    preds = func.predecessors()
    changed = True
    while changed:
        changed = False
        for name in sorted(loop_blocks - region):
            if name == header:
                continue
            block = func.blocks[name]
            if block.body():
                continue
            ps = preds[name]
            if ps and all(p in region for p in ps):
                region.add(name)
                changed = True
    return region


def _region_entry_and_exit(
    func: Function, region: Set[str], loop_blocks: Set[str]
) -> Tuple[str, str, List[Tuple[str, str]]]:
    preds = func.predecessors()
    entries = set()
    for name in region:
        for p in preds[name]:
            if p not in region:
                entries.add(name)
    if len(entries) != 1:
        raise OutlineError(
            "multi-entry-region", f"payload region entries: {sorted(entries)}"
        )
    entry = entries.pop()

    exit_edges: List[Tuple[str, str]] = []
    targets = set()
    for name in sorted(region):
        for succ in func.blocks[name].successors():
            if succ not in region:
                exit_edges.append((name, succ))
                targets.add(succ)
    if len(targets) != 1:
        raise OutlineError(
            "multi-exit-region", f"payload region exits to: {sorted(targets)}"
        )
    exit_target = targets.pop()
    if exit_target not in loop_blocks:
        raise OutlineError(
            "region-exits-loop", f"payload region leaves the loop via {exit_target}"
        )
    return entry, exit_target, exit_edges


# ---------------------------------------------------------------------------
# Extraction
# ---------------------------------------------------------------------------


def _region_reg_sets(
    func: Function, region: Set[str]
) -> Tuple[Set[Reg], Set[Reg]]:
    uses: Set[Reg] = set()
    defs: Set[Reg] = set()
    for name in region:
        for instr in func.blocks[name].instrs:
            uses.update(instr.uses())
            defs.update(instr.defs())
    return uses, defs


def outline_payload(
    module: Module,
    func: Function,
    label: str,
    separation: Optional[IteratorSeparation] = None,
    memory_flow=None,
) -> OutlineResult:
    """Outline the payload of loop ``label`` in ``func`` (mutates both).

    ``module`` gains the payload function and the env struct type.  Raises
    :class:`OutlineError` when the loop shape is unsupported.
    """
    forest = build_loop_forest(func)
    if label not in forest.loops:
        raise OutlineError("no-such-loop", label)
    loop = forest.loops[label]

    if separation is None:
        reaching = ReachingDefs(func)
        controldep = ControlDependence(func)
        separation = separate(func, loop, reaching, controldep, memory_flow)

    if separation.has_return:
        raise OutlineError("return-in-loop", label)
    if separation.payload_is_empty:
        raise OutlineError("empty-payload", label)

    iterator_ids = {
        id(func.blocks[b].instrs[i]) for b, i in separation.iterator_sites
    }
    payload_ids = {
        id(func.blocks[b].instrs[i]) for b, i in separation.payload_sites
    }
    payload_branch_ids = {
        id(func.blocks[b].instrs[i]) for b, i in separation.payload_branches
    }

    # A register defined by both iterator and payload cannot be routed
    # faithfully through the env machinery.
    iter_defs: Set[Reg] = set()
    for b, i in separation.iterator_sites:
        iter_defs.update(func.blocks[b].instrs[i].defs())
    payload_defs: Set[Reg] = set()
    for b, i in separation.payload_sites:
        payload_defs.update(func.blocks[b].instrs[i].defs())
    dual = iter_defs & payload_defs
    if dual:
        raise OutlineError("dual-def-reg", ", ".join(sorted(r.name for r in dual)))

    loop_blocks = _split_mixed_blocks(
        func, set(loop.blocks), iterator_ids, payload_ids, payload_branch_ids
    )
    invalidate_loops(func)

    region = _payload_region(
        func, loop_blocks, loop.header, payload_ids, payload_branch_ids
    )
    if loop.header in region:
        raise OutlineError("header-in-region", label)
    entry, exit_target, exit_edges = _region_entry_and_exit(
        func, region, loop_blocks
    )

    liveness = Liveness(func)
    uses_in_region, defs_in_region = _region_reg_sets(func, region)
    live_into_entry = liveness.live_in[entry]
    live_at_exit = liveness.live_in[exit_target]

    output_regs = sorted(defs_in_region & live_at_exit, key=lambda r: r.name)
    input_regs = sorted(
        (uses_in_region & live_into_entry) - set(output_regs),
        key=lambda r: r.name,
    )

    # --- synthesize the env struct -----------------------------------------
    env_struct_name = f"__env_{sanitize(label)}"
    env_fields: Dict[Reg, str] = {}
    sdef = StructDef(env_struct_name)
    for i, reg in enumerate(output_regs):
        fname = f"v{i}_{sanitize(reg.name)}"
        env_fields[reg] = fname
        sdef.fields[fname] = func.reg_types.get(reg, INT)
    module.structs[env_struct_name] = sdef
    env_type = PointerType(env_struct_name)

    payload_name = f"__payload_{sanitize(label)}"
    if payload_name in module.functions:
        raise OutlineError("already-outlined", label)

    # --- build the payload function -----------------------------------------
    env_param = Reg("__env")
    params: List[Tuple[Reg, Type]] = [(env_param, env_type)]
    for reg in input_regs:
        params.append((reg, func.reg_types.get(reg, INT)))
    payload = Function(payload_name, params, VOID)
    payload.reg_types = dict(func.reg_types)
    payload.reg_types[env_param] = env_type

    prologue = payload.new_block("prologue")
    for reg in output_regs:
        prologue.append(GetField(reg, env_param, env_fields[reg]))
    prologue.append(Jump(entry))

    epilogue_name = "__epilogue"
    moved: Dict[str, BasicBlock] = {}
    for name in sorted(region):
        src = func.blocks[name]
        dst = payload.new_block(name)
        dst.instrs = list(src.instrs)
        moved[name] = dst
    epilogue = payload.new_block(epilogue_name)
    for reg in output_regs:
        epilogue.append(SetField(env_param, env_fields[reg], reg))
    epilogue.append(Ret(None))

    # Retarget region exits to the epilogue.
    for name in sorted(region):
        term = moved[name].instrs[-1]
        if isinstance(term, Jump):
            if term.target == exit_target:
                term.target = epilogue_name
        elif isinstance(term, Branch):
            if term.true_target == exit_target:
                term.true_target = epilogue_name
            if term.false_target == exit_target:
                term.false_target = epilogue_name

    module.add_function(payload)

    # --- rewrite the caller ---------------------------------------------------
    env_reg = Reg(f"__env_{sanitize(label)}")
    func.reg_types[env_reg] = env_type

    call_block_name = f"{sanitize(label)}.call"
    call_block = func.new_block(call_block_name)
    call_args = [env_reg] + list(input_regs)
    call_block.append(Call(None, payload_name, call_args))
    for reg in output_regs:
        call_block.append(GetField(reg, env_reg, env_fields[reg]))
    call_block.append(Jump(exit_target))

    # Redirect all edges into the region entry to the call block.
    for block in func.ordered_blocks():
        if block.name in region or block.name == call_block_name:
            continue
        term = block.instrs[-1]
        if isinstance(term, Jump) and term.target == entry:
            term.target = call_block_name
        elif isinstance(term, Branch):
            if term.true_target == entry:
                term.true_target = call_block_name
            if term.false_target == entry:
                term.false_target = call_block_name

    # Remove the moved region blocks from the caller.
    for name in region:
        del func.blocks[name]
    func.block_order = [n for n in func.block_order if n not in region]

    # Insert env setup on every entry edge of the loop.
    setup_blocks: List[str] = []
    loop_block_names = (loop_blocks - region) | {call_block_name}
    header = loop.header
    for block in list(func.ordered_blocks()):
        if block.name in loop_block_names:
            continue
        term = block.instrs[-1]
        targets = []
        if isinstance(term, Jump):
            targets = [("target", term.target)]
        elif isinstance(term, Branch):
            targets = [
                ("true_target", term.true_target),
                ("false_target", term.false_target),
            ]
        for attr, tgt in targets:
            if tgt != header:
                continue
            setup_name = f"{sanitize(label)}.setup{len(setup_blocks)}"
            setup = func.new_block(setup_name)
            setup.append(NewStruct(env_reg, env_struct_name))
            for reg in output_regs:
                if reg in live_into_entry or reg in liveness.live_in[header]:
                    setup.append(SetField(env_reg, env_fields[reg], reg))
                else:
                    t = func.reg_types.get(reg, INT)
                    setup.append(
                        SetField(env_reg, env_fields[reg], Const(default_value(t), t))
                    )
            setup.append(Jump(header))
            setattr(term, attr, setup_name)
            setup_blocks.append(setup_name)

    # Drop loop metadata for loops whose headers moved into the payload.
    func.loops = {
        lbl: meta for lbl, meta in func.loops.items() if meta.header in func.blocks
    }
    invalidate_loops(func)
    func.remove_unreachable_blocks()

    return OutlineResult(
        label=label,
        payload_func=payload_name,
        env_struct=env_struct_name,
        env_reg=env_reg,
        input_regs=list(input_regs),
        output_regs=list(output_regs),
        env_fields=env_fields,
        call_block=call_block_name,
        exit_target=exit_target,
        setup_blocks=setup_blocks,
    )
