"""Generalized iterator/payload separation (paper §IV-A1).

Following Manilov et al. (*Generalized profile-guided iterator
recognition*, CC 2018), the **iterator** of a loop is the set of
instructions that decide whether execution continues in the loop: the
backward program slice — data *and* control dependences, restricted to the
loop body — of the conditions of every loop-exit branch.  Everything else
is **payload**.

The slice construction guarantees by definition that the iterator never
depends on the payload; the converse (payload consuming iterator values)
is captured by :attr:`IteratorSeparation.iter_value_regs`, the registers
through which the payload observes the current iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set

from repro.analysis.defuse import ReachingDefs, Site
from repro.analysis.loops import Loop
from repro.analysis.postdom import ControlDependence
from repro.ir.function import Function
from repro.ir.instructions import Branch, Reg, Ret


@dataclass
class IteratorSeparation:
    """Result of iterator/payload separation for one loop."""

    loop: Loop
    #: All instruction sites in the loop.
    all_sites: Set[Site] = field(default_factory=set)
    #: Sites forming the iterator slice (includes exit branches).
    iterator_sites: Set[Site] = field(default_factory=set)
    #: Non-terminator payload computation sites.
    payload_sites: Set[Site] = field(default_factory=set)
    #: Branch terminators internal to the payload (payload control flow).
    payload_branches: Set[Site] = field(default_factory=set)
    #: Registers defined by the iterator and consumed by the payload —
    #: the per-iteration "iterator values" that get linearized.
    iter_value_regs: List[Reg] = field(default_factory=list)
    #: True when the loop contains a ``ret`` (cannot be outlined/tested).
    has_return: bool = False

    @property
    def payload_is_empty(self) -> bool:
        return not self.payload_sites


def separate(
    func: Function,
    loop: Loop,
    reaching: ReachingDefs,
    controldep: ControlDependence,
    memory_flow=None,
) -> IteratorSeparation:
    """Split ``loop`` into iterator and payload sites.

    ``memory_flow`` is an optional set of same-invocation dynamic flow
    edges ``((func, block, idx), (func, block, idx))`` from
    :class:`repro.analysis.dynamic_deps.DynamicDepProfiler`.  With it, the
    slice also follows memory data-flow: when a slice instruction reads a
    location written by another loop instruction (possibly through a call,
    e.g. ``pop(frontier)`` updating ``frontier->size``), the writer joins
    the iterator — the profile-guided part of the recognition.
    """
    result = IteratorSeparation(loop)
    loop_blocks = loop.blocks

    # Memory writers per reader site, restricted to this function and loop.
    mem_writers: dict = {}
    if memory_flow:
        for (wf, wb, wi), (rf, rb, ri) in memory_flow:
            if wf != func.name or rf != func.name:
                continue
            if wb not in loop_blocks or rb not in loop_blocks:
                continue
            mem_writers.setdefault((rb, ri), set()).add((wb, wi))

    terminator_sites: Set[Site] = set()
    exit_branch_sites: Set[Site] = set()
    for name in loop_blocks:
        block = func.blocks[name]
        last = len(block.instrs) - 1
        site = (name, last)
        term = block.instrs[last]
        terminator_sites.add(site)
        if isinstance(term, Ret):
            result.has_return = True
        if isinstance(term, Branch):
            if any(succ not in loop_blocks for succ in block.successors()):
                exit_branch_sites.add(site)
        for idx in range(len(block.instrs)):
            result.all_sites.add((name, idx))

    # Backward slice from the exit branches.
    worklist = list(exit_branch_sites)
    iterator: Set[Site] = set(exit_branch_sites)
    while worklist:
        site = worklist.pop()
        block_name, _ = site
        instr = func.blocks[block_name].instrs[site[1]]
        # Data dependences (defs inside the loop only).
        for reg in instr.uses():
            for def_site in reaching.reaching(site, reg):
                if def_site == ("", -1):
                    continue
                if def_site[0] in loop_blocks and def_site not in iterator:
                    iterator.add(def_site)
                    worklist.append(def_site)
        # Memory data-flow (profile-guided): writers feeding this site's
        # reads through memory join the iterator.
        for writer in mem_writers.get(site, ()):
            if writer not in iterator:
                iterator.add(writer)
                worklist.append(writer)
        # Control dependences: the branches governing whether this site
        # executes are part of the traversal decision.
        for ctrl_block in controldep.controlling_blocks(block_name):
            if ctrl_block not in loop_blocks:
                continue
            ctrl_site = (ctrl_block, len(func.blocks[ctrl_block].instrs) - 1)
            if ctrl_site not in iterator:
                iterator.add(ctrl_site)
                worklist.append(ctrl_site)

    result.iterator_sites = iterator

    for site in result.all_sites:
        if site in iterator or site in terminator_sites:
            continue
        result.payload_sites.add(site)
    for site in terminator_sites:
        if site not in iterator:
            block_name, idx = site
            if isinstance(func.blocks[block_name].instrs[idx], Branch):
                result.payload_branches.add(site)

    # Iterator values consumed by the payload.
    payload_like = result.payload_sites | result.payload_branches
    iter_defs: Set[Reg] = set()
    for site in iterator:
        iter_defs.update(func.blocks[site[0]].instrs[site[1]].defs())
    consumed: Set[Reg] = set()
    for site in payload_like:
        instr = func.blocks[site[0]].instrs[site[1]]
        for reg in instr.uses():
            if reg in iter_defs:
                consumed.add(reg)
    result.iter_value_regs = sorted(consumed, key=lambda r: r.name)
    return result


def iterator_fraction(func: Function, label: str, memory_flow=None) -> float:
    """Static share of a loop's body belonging to the iterator slice.

    Used by the parallel executor: in DCA's linearize-then-dispatch code
    generation the iterator runs sequentially, so only the payload share
    of each iteration parallelizes.  Returns 0.0 when the loop is unknown
    or has no sites.
    """
    from repro.analysis.defuse import ReachingDefs
    from repro.analysis.loops import build_loop_forest
    from repro.analysis.postdom import ControlDependence

    forest = build_loop_forest(func)
    if label not in forest.loops:
        return 0.0
    loop = forest.loops[label]
    sep = separate(
        func, loop, ReachingDefs(func), ControlDependence(func), memory_flow
    )
    total = len(sep.all_sites)
    if total == 0:
        return 0.0
    return len(sep.iterator_sites) / total
