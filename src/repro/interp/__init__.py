"""Instrumentable IR interpreter, heap model, events, profiler, and the
closure-compiled execution backend."""

from repro.interp.compiler import (
    CompiledExecutor,
    CompiledProgram,
    CompileError,
    compile_module,
    create_executor,
    resolve_exec_backend,
)
from repro.interp.events import Location, LoopCtx, Observer
from repro.interp.interpreter import Interpreter, RuntimeHooks
from repro.interp.profiler import Profiler
from repro.interp.values import (
    ArrayObj,
    Heap,
    MiniCRuntimeError,
    StructObj,
    format_value,
    truthy,
)

__all__ = [
    "ArrayObj",
    "CompileError",
    "CompiledExecutor",
    "CompiledProgram",
    "Heap",
    "Interpreter",
    "Location",
    "LoopCtx",
    "MiniCRuntimeError",
    "Observer",
    "Profiler",
    "RuntimeHooks",
    "StructObj",
    "compile_module",
    "create_executor",
    "format_value",
    "resolve_exec_backend",
    "truthy",
]
