"""Instrumentable IR interpreter, heap model, events, profiler, and the
closure-compiled and Python-source-codegen execution backends."""

from repro.interp.codegen import (
    CodegenExecutor,
    CodegenProgram,
    codegen_stats,
    compile_module_codegen,
    module_digest,
    resolve_codegen_cache_dir,
)
from repro.interp.compiler import (
    CompiledExecutor,
    CompiledProgram,
    CompileError,
    compile_module,
    create_executor,
    resolve_exec_backend,
)
from repro.interp.events import Location, LoopCtx, Observer
from repro.interp.interpreter import Interpreter, RuntimeHooks
from repro.interp.profiler import Profiler
from repro.interp.values import (
    ArrayObj,
    Heap,
    MiniCRuntimeError,
    StructObj,
    format_value,
    truthy,
)

__all__ = [
    "ArrayObj",
    "CodegenExecutor",
    "CodegenProgram",
    "CompileError",
    "CompiledExecutor",
    "CompiledProgram",
    "Heap",
    "Interpreter",
    "Location",
    "LoopCtx",
    "MiniCRuntimeError",
    "Observer",
    "Profiler",
    "RuntimeHooks",
    "StructObj",
    "codegen_stats",
    "compile_module",
    "compile_module_codegen",
    "create_executor",
    "format_value",
    "module_digest",
    "resolve_codegen_cache_dir",
    "resolve_exec_backend",
    "truthy",
]
