"""Instrumentable IR interpreter, heap model, events and profiler."""

from repro.interp.events import Location, LoopCtx, Observer
from repro.interp.interpreter import Interpreter, RuntimeHooks
from repro.interp.profiler import Profiler
from repro.interp.values import (
    ArrayObj,
    Heap,
    MiniCRuntimeError,
    StructObj,
    format_value,
    truthy,
)

__all__ = [
    "ArrayObj",
    "Heap",
    "Interpreter",
    "Location",
    "LoopCtx",
    "MiniCRuntimeError",
    "Observer",
    "Profiler",
    "RuntimeHooks",
    "StructObj",
    "format_value",
    "truthy",
]
