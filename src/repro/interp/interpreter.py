"""The IR interpreter.

Executes a :class:`repro.ir.function.Module` with:

* precise C-like semantics (truncating integer division, reference
  equality on heap objects, null/bounds faults as catchable errors);
* dynamic loop-context tracking against the natural-loop forest, published
  as enter/iteration/exit events;
* memory-access events for every global/field/element read and write;
* an optional *runtime* object that receives ``Intrinsic`` calls — this is
  how the DCA runtime library (paper Fig. 3) plugs in;
* an optional profiler hook that attributes executed instructions to the
  dynamic loop stack;
* cheap observability hooks (``repro.obs``): when the process-local
  observability context is enabled, the interpreter tallies intrinsic
  calls per name and flushes instructions-retired counters to the metrics
  registry when the run finishes (even on a faulting run).  When the
  context is disabled — the default — the hooks reduce to one boolean
  check per intrinsic and per run.

One ``Interpreter`` instance corresponds to one execution of the program.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import repro.obs as obs_mod
from repro.analysis.loops import build_loop_forest
from repro.interp.events import LoopCtx, Observer
from repro.interp.values import (
    ArrayObj,
    Heap,
    MiniCRuntimeError,
    StructObj,
    format_value,
    truthy,
)
from repro.ir.function import Function, Module
from repro.ir.instructions import (
    ArrayLen,
    BinOp,
    Branch,
    Call,
    CallBuiltin,
    Const,
    GetField,
    GetIndex,
    Instr,
    Intrinsic,
    Jump,
    LoadGlobal,
    Mov,
    NewArray,
    NewStruct,
    Operand,
    Reg,
    Ret,
    SetField,
    SetIndex,
    StoreGlobal,
    UnOp,
)
from repro.lang.builtins import BUILTINS
from repro.lang.types import FloatType

sys.setrecursionlimit(max(sys.getrecursionlimit(), 20000))

_DEFAULT_MAX_STEPS = 200_000_000


def _trunc_div(a: int, b: int) -> int:
    """C-style integer division (truncate toward zero)."""
    if b == 0:
        raise MiniCRuntimeError("integer division by zero")
    q = a // b
    if q < 0 and q * b != a:
        q += 1
    return q


def _c_mod(a: int, b: int) -> int:
    """C-style remainder: sign follows the dividend."""
    return a - _trunc_div(a, b) * b


class RuntimeHooks:
    """Interface for objects receiving ``Intrinsic`` instructions."""

    #: Opt-in contract for the compiled backend: when True, the runtime
    #: guarantees that ``handle_intrinsic`` for the five ``rt_*`` DCA
    #: intrinsics is a pure dispatch to ``_get``/``_next``/``_record``/
    #: ``_permute``/``_verify``, so compiled code may call those methods
    #: directly and skip the per-call name dispatch.  Hooks that wrap or
    #: intercept ``handle_intrinsic`` must leave this False.
    fast_intrinsics = False

    def handle_intrinsic(
        self, interp: "Interpreter", name: str, args: List[object]
    ) -> object:
        raise MiniCRuntimeError(f"no runtime installed for intrinsic {name!r}")


class Interpreter:
    """Executes one program run."""

    def __init__(
        self,
        module: Module,
        runtime: Optional[RuntimeHooks] = None,
        observers: Optional[Sequence[Observer]] = None,
        profiler=None,
        max_steps: Optional[int] = None,
    ):
        self.module = module
        self.heap = Heap()
        self.globals: Dict[str, object] = {
            name: gv.init for name, gv in module.globals.items()
        }
        self.runtime = runtime
        self.observers: List[Observer] = list(observers or [])
        self.profiler = profiler
        self.max_steps = max_steps or _DEFAULT_MAX_STEPS
        self.steps = 0
        self.obs = obs_mod.current()
        self._obs_enabled = self.obs.enabled
        #: Per-name intrinsic call tallies; populated only when the
        #: observability context is enabled.
        self.intrinsic_counts: Dict[str, int] = {}
        self._flushed_steps = 0
        self.output: List[str] = []
        self.loop_stack: List[LoopCtx] = []
        #: Stack of `Call` instructions currently executing (for access
        #: attribution by dynamic-dependence observers).
        self.call_stack: List[object] = []
        #: Bumped on every call_stack push/pop (only maintained while
        #: memory observers are attached) — lets observers cache derived
        #: views of the stack and invalidate them exactly when it moves.
        self.call_stack_version = 0
        self._invocations: Dict[str, int] = {}

        for obs in self.observers:
            obs.attach(self)
        self._loop_obs = [o for o in self.observers if o.wants_loops]
        self._mem_obs = [o for o in self.observers if o.wants_memory]
        self._call_obs = [o for o in self.observers if o.wants_calls]
        self._track_loops = bool(
            self._loop_obs or self._mem_obs or profiler is not None
        )
        #: per-function block → tuple of loop labels (outermost..innermost)
        self._chain_cache: Dict[str, Dict[str, Tuple[str, ...]]] = {}
        self._header_cache: Dict[str, Dict[str, str]] = {}

        self._handlers: Dict[type, Callable] = {
            Mov: self._exec_mov,
            BinOp: self._exec_binop,
            UnOp: self._exec_unop,
            NewStruct: self._exec_newstruct,
            NewArray: self._exec_newarray,
            GetField: self._exec_getfield,
            SetField: self._exec_setfield,
            GetIndex: self._exec_getindex,
            SetIndex: self._exec_setindex,
            ArrayLen: self._exec_arraylen,
            LoadGlobal: self._exec_loadglobal,
            StoreGlobal: self._exec_storeglobal,
            Call: self._exec_call,
            CallBuiltin: self._exec_callbuiltin,
            Intrinsic: self._exec_intrinsic,
        }

    # -- public API ----------------------------------------------------------

    def run(self, entry: str = "main", args: Optional[List[object]] = None) -> object:
        if entry not in self.module.functions:
            raise MiniCRuntimeError(f"no function named {entry!r}")
        if not self._obs_enabled:
            return self._call_function(entry, list(args or []))
        try:
            return self._call_function(entry, list(args or []))
        finally:
            # Flush even when the run raises (mismatch abort, runtime
            # fault): partial executions still cost instructions.
            self._flush_obs()

    def _flush_obs(self) -> None:
        """Publish instruction/intrinsic tallies to the metrics registry."""
        metrics = self.obs.metrics
        metrics.counter("interp.runs").inc()
        metrics.counter("interp.instructions").inc(self.steps - self._flushed_steps)
        self._flushed_steps = self.steps
        for name, count in self.intrinsic_counts.items():
            metrics.counter(f"interp.intrinsic.{name}").inc(count)
        self.intrinsic_counts = {}

    def output_text(self) -> str:
        if not self.output:
            return ""
        return "\n".join(self.output) + "\n"

    def current_loop_iteration(self, label: str) -> Optional[LoopCtx]:
        for ctx in reversed(self.loop_stack):
            if ctx.label == label:
                return ctx
        return None

    # -- loop tracking ----------------------------------------------------------

    def _block_chains(self, func: Function) -> Dict[str, Tuple[str, ...]]:
        cached = self._chain_cache.get(func.name)
        if cached is not None:
            return cached
        forest = build_loop_forest(func)
        chains: Dict[str, Tuple[str, ...]] = {}
        headers: Dict[str, str] = {}
        for name in func.block_order:
            chain = tuple(l.label for l in forest.loop_chain(name))
            chains[name] = chain
        for loop in forest.loops.values():
            headers[loop.header] = loop.label
        self._chain_cache[func.name] = chains
        self._header_cache[func.name] = headers
        return chains

    def _loop_transition(
        self,
        func: Function,
        chains: Dict[str, Tuple[str, ...]],
        prev: Optional[str],
        cur: str,
    ) -> None:
        prev_chain = chains.get(prev, ()) if prev else ()
        cur_chain = chains[cur]
        if prev_chain == cur_chain:
            if cur_chain:
                headers = self._header_cache[func.name]
                label = headers.get(cur)
                if label == cur_chain[-1] and prev is not None:
                    ctx = self.loop_stack[-1]
                    ctx.iteration += 1
                    for obs in self._loop_obs:
                        obs.on_loop_iteration(ctx.label, ctx.invocation, ctx.iteration)
            return
        common = 0
        limit = min(len(prev_chain), len(cur_chain))
        while common < limit and prev_chain[common] == cur_chain[common]:
            common += 1
        for _ in range(len(prev_chain) - common):
            ctx = self.loop_stack.pop()
            for obs in self._loop_obs:
                obs.on_loop_exit(ctx.label, ctx.invocation)
        for label in cur_chain[common:]:
            invocation = self._invocations.get(label, 0)
            self._invocations[label] = invocation + 1
            ctx = LoopCtx(label, invocation, 0)
            self.loop_stack.append(ctx)
            for obs in self._loop_obs:
                obs.on_loop_enter(label, invocation)

    def _unwind_loops(self, depth: int) -> None:
        while len(self.loop_stack) > depth:
            ctx = self.loop_stack.pop()
            for obs in self._loop_obs:
                obs.on_loop_exit(ctx.label, ctx.invocation)

    # -- execution ---------------------------------------------------------------

    def _call_function(self, name: str, args: List[object]) -> object:
        func = self.module.functions[name]
        if len(args) != len(func.params):
            raise MiniCRuntimeError(
                f"{name} expects {len(func.params)} args, got {len(args)}"
            )
        for obs in self._call_obs:
            obs.on_call(name)
        frame: Dict[Reg, object] = {}
        for (reg, _t), value in zip(func.params, args):
            frame[reg] = value

        chains = self._block_chains(func) if self._track_loops else None
        depth0 = len(self.loop_stack)
        prev: Optional[str] = None
        cur = func.entry
        result: object = None
        profiler = self.profiler
        handlers = self._handlers

        while True:
            if chains is not None:
                self._loop_transition(func, chains, prev, cur)
            block = func.blocks[cur]
            instrs = block.instrs
            nbody = len(instrs) - 1
            self.steps += len(instrs)
            if self.steps > self.max_steps:
                raise MiniCRuntimeError("step limit exceeded")
            if profiler is not None:
                profiler.on_block(len(instrs), self.loop_stack)
            for i in range(nbody):
                handlers[type(instrs[i])](instrs[i], frame)
            term = instrs[nbody]
            tkind = type(term)
            if tkind is Jump:
                prev, cur = cur, term.target
            elif tkind is Branch:
                cond = truthy(self._value(term.cond, frame))
                prev, cur = cur, (term.true_target if cond else term.false_target)
            elif tkind is Ret:
                if term.value is not None:
                    result = self._value(term.value, frame)
                break
            else:  # pragma: no cover - verifier guarantees terminators
                raise MiniCRuntimeError(f"bad terminator {term}")

        if chains is not None:
            self._unwind_loops(depth0)
        for obs in self._call_obs:
            obs.on_return(name)
        return result

    # -- operand evaluation --------------------------------------------------------

    @staticmethod
    def _value(op: Operand, frame: Dict[Reg, object]) -> object:
        if type(op) is Const:
            return op.value
        try:
            return frame[op]
        except KeyError:
            raise MiniCRuntimeError(f"read of undefined register {op}") from None

    # -- instruction handlers --------------------------------------------------------

    def _exec_mov(self, instr: Mov, frame: Dict[Reg, object]) -> None:
        frame[instr.dest] = self._value(instr.src, frame)

    def _exec_binop(self, instr: BinOp, frame: Dict[Reg, object]) -> None:
        a = self._value(instr.lhs, frame)
        b = self._value(instr.rhs, frame)
        op = instr.op
        if op == "+":
            frame[instr.dest] = a + b
        elif op == "-":
            frame[instr.dest] = a - b
        elif op == "*":
            frame[instr.dest] = a * b
        elif op == "/":
            if isinstance(instr.result_type, FloatType):
                if b == 0:
                    raise MiniCRuntimeError("float division by zero")
                frame[instr.dest] = a / b
            else:
                frame[instr.dest] = _trunc_div(a, b)
        elif op == "%":
            frame[instr.dest] = _c_mod(a, b)
        elif op == "==":
            frame[instr.dest] = self._ref_eq(a, b)
        elif op == "!=":
            frame[instr.dest] = not self._ref_eq(a, b)
        elif op == "<":
            frame[instr.dest] = a < b
        elif op == "<=":
            frame[instr.dest] = a <= b
        elif op == ">":
            frame[instr.dest] = a > b
        elif op == ">=":
            frame[instr.dest] = a >= b
        else:  # pragma: no cover
            raise MiniCRuntimeError(f"unknown binary operator {op}")

    @staticmethod
    def _ref_eq(a: object, b: object) -> bool:
        if isinstance(a, (StructObj, ArrayObj)) or isinstance(b, (StructObj, ArrayObj)):
            return a is b
        if a is None or b is None:
            return a is None and b is None
        return a == b

    def _exec_unop(self, instr: UnOp, frame: Dict[Reg, object]) -> None:
        v = self._value(instr.operand, frame)
        if instr.op == "-":
            frame[instr.dest] = -v
        elif instr.op == "!":
            frame[instr.dest] = not truthy(v)
        elif instr.op == "itof":
            frame[instr.dest] = float(v)
        else:  # pragma: no cover
            raise MiniCRuntimeError(f"unknown unary operator {instr.op}")

    def _exec_newstruct(self, instr: NewStruct, frame: Dict[Reg, object]) -> None:
        sdef = self.module.structs[instr.struct_name]
        frame[instr.dest] = self.heap.new_struct(sdef)

    def _exec_newarray(self, instr: NewArray, frame: Dict[Reg, object]) -> None:
        length = self._value(instr.length, frame)
        frame[instr.dest] = self.heap.new_array(instr.elem_type, length)

    def _exec_getfield(self, instr: GetField, frame: Dict[Reg, object]) -> None:
        obj = self._value(instr.obj, frame)
        if obj is None:
            raise MiniCRuntimeError(
                f"null dereference reading .{instr.field} (line {instr.line})"
            )
        if self._mem_obs:
            loc = ("f", obj.oid, instr.field)
            for obs in self._mem_obs:
                obs.on_read(loc, instr)
        frame[instr.dest] = obj.fields[instr.field]

    def _exec_setfield(self, instr: SetField, frame: Dict[Reg, object]) -> None:
        obj = self._value(instr.obj, frame)
        if obj is None:
            raise MiniCRuntimeError(
                f"null dereference writing .{instr.field} (line {instr.line})"
            )
        if self._mem_obs:
            loc = ("f", obj.oid, instr.field)
            for obs in self._mem_obs:
                obs.on_write(loc, instr)
        obj.fields[instr.field] = self._value(instr.value, frame)

    def _exec_getindex(self, instr: GetIndex, frame: Dict[Reg, object]) -> None:
        arr = self._value(instr.arr, frame)
        idx = self._value(instr.index, frame)
        if arr is None:
            raise MiniCRuntimeError(f"null array read (line {instr.line})")
        if not 0 <= idx < len(arr.data):
            raise MiniCRuntimeError(
                f"index {idx} out of bounds [0,{len(arr.data)}) (line {instr.line})"
            )
        if self._mem_obs:
            loc = ("a", arr.oid, idx)
            for obs in self._mem_obs:
                obs.on_read(loc, instr)
        frame[instr.dest] = arr.data[idx]

    def _exec_setindex(self, instr: SetIndex, frame: Dict[Reg, object]) -> None:
        arr = self._value(instr.arr, frame)
        idx = self._value(instr.index, frame)
        if arr is None:
            raise MiniCRuntimeError(f"null array write (line {instr.line})")
        if not 0 <= idx < len(arr.data):
            raise MiniCRuntimeError(
                f"index {idx} out of bounds [0,{len(arr.data)}) (line {instr.line})"
            )
        if self._mem_obs:
            loc = ("a", arr.oid, idx)
            for obs in self._mem_obs:
                obs.on_write(loc, instr)
        arr.data[idx] = self._value(instr.value, frame)

    def _exec_arraylen(self, instr: ArrayLen, frame: Dict[Reg, object]) -> None:
        arr = self._value(instr.arr, frame)
        if arr is None:
            raise MiniCRuntimeError(f"len(null) (line {instr.line})")
        frame[instr.dest] = len(arr.data)

    def _exec_loadglobal(self, instr: LoadGlobal, frame: Dict[Reg, object]) -> None:
        if self._mem_obs:
            loc = ("g", instr.name)
            for obs in self._mem_obs:
                obs.on_read(loc, instr)
        frame[instr.dest] = self.globals[instr.name]

    def _exec_storeglobal(self, instr: StoreGlobal, frame: Dict[Reg, object]) -> None:
        if self._mem_obs:
            loc = ("g", instr.name)
            for obs in self._mem_obs:
                obs.on_write(loc, instr)
        self.globals[instr.name] = self._value(instr.src, frame)

    def _exec_call(self, instr: Call, frame: Dict[Reg, object]) -> None:
        args = [self._value(a, frame) for a in instr.args]
        if self._mem_obs:
            self.call_stack.append(instr)
            self.call_stack_version += 1
            try:
                result = self._call_function(instr.func, args)
            finally:
                self.call_stack.pop()
                self.call_stack_version += 1
        else:
            result = self._call_function(instr.func, args)
        if instr.dest is not None:
            frame[instr.dest] = result

    def _exec_callbuiltin(self, instr: CallBuiltin, frame: Dict[Reg, object]) -> None:
        args = [self._value(a, frame) for a in instr.args]
        if instr.func == "print":
            self.output.append(" ".join(format_value(a) for a in args))
            return
        builtin = BUILTINS[instr.func]
        assert builtin.impl is not None
        try:
            result = builtin.impl(*args)
        except (ValueError, OverflowError, ZeroDivisionError) as exc:
            raise MiniCRuntimeError(f"{instr.func}: {exc}") from None
        if instr.dest is not None:
            frame[instr.dest] = result

    def _exec_intrinsic(self, instr: Intrinsic, frame: Dict[Reg, object]) -> None:
        if self._obs_enabled:
            self.intrinsic_counts[instr.func] = (
                self.intrinsic_counts.get(instr.func, 0) + 1
            )
        args = [self._value(a, frame) for a in instr.args]
        if self.runtime is None:
            raise MiniCRuntimeError(
                f"intrinsic {instr.func!r} executed without a runtime"
            )
        result = self.runtime.handle_intrinsic(self, instr.func, args)
        if instr.dest is not None:
            frame[instr.dest] = result
