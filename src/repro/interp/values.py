"""Runtime values and the heap.

MiniC scalars map onto Python ``int``/``float``/``bool``; structs and
arrays are heap objects with stable per-run object ids.  Ids are only
meaningful *within* one execution — cross-run comparison of heap state goes
through the canonical snapshots in :mod:`repro.core.liveout`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.ir.lowering import default_value
from repro.lang.types import StructDef, Type


class MiniCRuntimeError(Exception):
    """Raised for runtime faults (null deref, bounds, step limit, ...)."""


class StructObj:
    """A heap-allocated struct instance."""

    __slots__ = ("oid", "struct_name", "fields")

    def __init__(self, oid: int, struct_name: str, fields: Dict[str, object]):
        self.oid = oid
        self.struct_name = struct_name
        self.fields = fields

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.struct_name}#{self.oid}>"


class ArrayObj:
    """A heap-allocated dynamic array."""

    __slots__ = ("oid", "elem_type", "data")

    def __init__(self, oid: int, elem_type: Type, data: List[object]):
        self.oid = oid
        self.elem_type = elem_type
        self.data = data

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.elem_type}[{len(self.data)}]#{self.oid}>"


class Heap:
    """Allocator with deterministic object ids."""

    def __init__(self):
        self._next_oid = 1
        self.alloc_count = 0

    def new_struct(self, sdef: StructDef) -> StructObj:
        fields = {name: default_value(t) for name, t in sdef.fields.items()}
        obj = StructObj(self._next_oid, sdef.name, fields)
        self._next_oid += 1
        self.alloc_count += 1
        return obj

    def new_array(self, elem_type: Type, length: int) -> ArrayObj:
        if length < 0:
            raise MiniCRuntimeError(f"negative array length {length}")
        data = [default_value(elem_type)] * length
        obj = ArrayObj(self._next_oid, elem_type, data)
        self._next_oid += 1
        self.alloc_count += 1
        return obj


def format_value(value: object) -> str:
    """Stable textual form of a runtime value, used by ``print``."""
    if value is None:
        return "null"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, (StructObj, ArrayObj)):
        return "<obj>"
    return str(value)


def truthy(value: object) -> bool:
    """MiniC condition semantics (C truthiness)."""
    if value is None:
        return False
    if isinstance(value, bool):
        return value
    if isinstance(value, int):
        return value != 0
    if isinstance(value, (StructObj, ArrayObj)):
        return True
    raise MiniCRuntimeError(f"value {value!r} is not usable as a condition")
